"""Shared configuration and helpers for the benchmark harness.

Every bench reproduces one table or figure of the paper.  Default
parameters are scaled down so the full suite finishes on CPU; set
``REPRO_BENCH_SCALE=full`` for larger paper-shaped runs.

Benches print two numbers per cell where the paper reports one: the
paper's value (on the real TU datasets, the authors' GPU) and ours (on
the synthetic reconstructions, CPU numpy).  Absolute values differ by
design; the *comparisons* (who wins, by roughly what factor) are what
EXPERIMENTS.md audits.
"""

from __future__ import annotations

import os
from dataclasses import dataclass
from functools import lru_cache

from repro.datasets import GraphDataset, make_dataset

__all__ = [
    "BenchConfig",
    "CONFIG",
    "bench_dataset",
    "print_header",
    "print_table",
    "once",
]


@dataclass(frozen=True)
class BenchConfig:
    """Knobs shared by all benches."""

    scale: float  # dataset graph-count scale
    folds: int
    epochs: int
    seed: int


def _load_config() -> BenchConfig:
    mode = os.environ.get("REPRO_BENCH_SCALE", "quick")
    if mode == "full":
        return BenchConfig(scale=0.30, folds=10, epochs=60, seed=0)
    if mode == "medium":
        return BenchConfig(scale=0.15, folds=5, epochs=20, seed=0)
    return BenchConfig(scale=0.08, folds=3, epochs=10, seed=0)


CONFIG = _load_config()


@lru_cache(maxsize=32)
def bench_dataset(name: str, scale: float | None = None) -> GraphDataset:
    """Cached dataset for benches (same seed everywhere)."""
    return make_dataset(name, scale=scale or CONFIG.scale, seed=CONFIG.seed)


def print_header(title: str) -> None:
    bar = "=" * max(64, len(title) + 4)
    print(f"\n{bar}\n{title}\n(config: scale={CONFIG.scale}, "
          f"folds={CONFIG.folds}, epochs={CONFIG.epochs})\n{bar}")


def print_table(columns: list[str], rows: list[list[str]], width: int = 16) -> None:
    header = "".join(f"{c:<{width}s}" for c in columns)
    print(header)
    print("-" * len(header))
    for row in rows:
        print("".join(f"{c:<{width}s}" for c in row))


def once(benchmark, fn):
    """Run ``fn`` exactly once under pytest-benchmark timing.

    The table/figure benches perform full cross-validations; repeating
    them for statistical timing would be wasteful, so a single round is
    recorded.
    """
    return benchmark.pedantic(fn, rounds=1, iterations=1, warmup_rounds=0)
