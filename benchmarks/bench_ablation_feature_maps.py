"""Ablation (Section 6): vertex feature maps vs one-hot label inputs.

The Section 6 comparison with PATCHY-SAN: "the input to PATCHY-SAN is
the one-hot encoding of each vertex label, while the input to DeepMap is
the vertex feature map ... [which includes] richer information."  This
bench runs DeepMap's own CNN with both inputs, isolating the
contribution of the substructure features from the architecture.
"""

from benchmarks._common import CONFIG, bench_dataset, once, print_header, print_table
from repro.core import DeepMapClassifier
from repro.eval import evaluate_neural_model
from repro.features import (
    OneHotLabelFeatures,
    ShortestPathVertexFeatures,
    WLVertexFeatures,
)

DATASETS = ("PTC_MR", "KKI", "IMDB-BINARY")
INPUTS = {
    "one-hot": OneHotLabelFeatures,
    "sp-maps": ShortestPathVertexFeatures,
    "wl-maps": lambda: WLVertexFeatures(h=2),
}


def _run():
    folds, epochs, seed = CONFIG.folds, CONFIG.epochs, CONFIG.seed
    results = {}
    for name in DATASETS:
        ds = bench_dataset(name)
        results[name] = {}
        for label, extractor_factory in INPUTS.items():
            results[name][label] = evaluate_neural_model(
                lambda f, mk=extractor_factory: DeepMapClassifier(
                    mk(), r=5, epochs=epochs, seed=f
                ),
                ds, folds, seed=seed,
            )
    return results


def test_ablation_input_features(benchmark):
    results = once(benchmark, _run)
    print_header("Ablation — CNN input: one-hot labels vs vertex feature maps")
    rows = [
        [name] + [results[name][k].formatted() for k in INPUTS]
        for name in DATASETS
    ]
    print_table(["dataset"] + list(INPUTS), rows, width=18)
    richer = sum(
        max(results[n]["sp-maps"].mean, results[n]["wl-maps"].mean)
        >= results[n]["one-hot"].mean
        for n in DATASETS
    )
    print(f"\nfeature maps match/beat one-hot on {richer}/{len(DATASETS)} datasets")
