"""Ablation: vertex-ordering measure for alignment.

The paper chooses eigenvector centrality over PATCHY-SAN's NAUTY
canonical order, arguing it is cheaper and effective.  This bench swaps
the alignment measure: eigenvector centrality (paper), degree
centrality (cheaper, coarser), and the WL canonical ranking (our NAUTY
substitute).
"""

from benchmarks._common import CONFIG, bench_dataset, once, print_header, print_table
from repro.core import DeepMapClassifier
from repro.eval import evaluate_neural_model
from repro.features import WLVertexFeatures

DATASETS = ("PTC_MR", "IMDB-BINARY")
ORDERINGS = ("eigenvector", "degree", "canonical", "pagerank", "betweenness")


def _run():
    folds, epochs, seed = CONFIG.folds, CONFIG.epochs, CONFIG.seed
    results = {}
    for name in DATASETS:
        ds = bench_dataset(name)
        results[name] = {}
        for ordering in ORDERINGS:
            results[name][ordering] = evaluate_neural_model(
                lambda f, o=ordering: DeepMapClassifier(
                    WLVertexFeatures(h=2), r=5, ordering=o,
                    epochs=epochs, seed=f,
                ),
                ds, folds, seed=seed,
            )
    return results


def test_ablation_vertex_ordering(benchmark):
    results = once(benchmark, _run)
    print_header("Ablation — vertex alignment measure (DeepMap-WL)")
    rows = [
        [name] + [results[name][o].formatted() for o in ORDERINGS]
        for name in DATASETS
    ]
    print_table(["dataset"] + list(ORDERINGS), rows, width=15)
