"""Ablation (Section 6): sum readout vs concatenation readout.

The paper's discussion notes the summation layer "loses the local
distribution of each deep vertex feature map" and suggests concatenation
as an alternative.  This bench measures both readouts under the same
protocol.  Trade-off to expect: concat has far more classifier
parameters (8*w vs 8 inputs) and loses size-invariance, so it can fit
harder but generalise worse on small datasets.
"""

from benchmarks._common import CONFIG, bench_dataset, once, print_header, print_table
from repro.core import deepmap_wl
from repro.eval import evaluate_neural_model

DATASETS = ("PTC_MR", "KKI", "IMDB-BINARY")


def _run():
    folds, epochs, seed = CONFIG.folds, CONFIG.epochs, CONFIG.seed
    results = {}
    for name in DATASETS:
        ds = bench_dataset(name)
        results[name] = {
            "sum": evaluate_neural_model(
                lambda f: deepmap_wl(h=2, r=5, epochs=epochs, seed=f, readout="sum"),
                ds, folds, seed=seed,
            ),
            "concat": evaluate_neural_model(
                lambda f: deepmap_wl(h=2, r=5, epochs=epochs, seed=f, readout="concat"),
                ds, folds, seed=seed,
            ),
        }
    return results


def test_ablation_readout(benchmark):
    results = once(benchmark, _run)
    print_header("Ablation — sum vs concat readout (DeepMap-WL)")
    rows = [
        [name, results[name]["sum"].formatted(), results[name]["concat"].formatted()]
        for name in DATASETS
    ]
    print_table(["dataset", "sum (paper)", "concat (Sec. 6)"], rows, width=20)
