"""Distributed CV over loopback socket workers: scaling + parity bench.

Measures, and records to ``BENCH_dist.json`` in the repo root, serial
``evaluate_kernel_svm`` wall time against coordinator-scheduled
distributed CV at 1, 2, and 4 subprocess workers (the real deployment
shape: ``repro dist worker`` processes speaking the length-prefixed
wire protocol over 127.0.0.1).

Distribution pays a real tax — process spawn, gram assembly per worker,
serialized fold shipping — so the speedup assertion only arms on
machines with at least as many CPUs as workers; on smaller boxes the
numbers are still recorded honestly (with ``cpu_count``).  The *parity*
assertion always runs: fold accuracies and selected C values from every
worker count must equal the serial run's exactly.  A wrong answer is
never an acceptable price for speed.

``REPRO_BENCH_SMOKE=1`` shrinks the dataset and writes
``BENCH_dist.smoke.json`` instead (ignored by the regression gate).

Run with ``pytest benchmarks/bench_dist_cv.py``.
"""

from __future__ import annotations

import json
import os
import re
import subprocess
import sys
import timeit
from pathlib import Path

import pytest

from repro.dist import DistCoordinator, run_spec
from repro.dist.protocol import dataset_from_spec, kernel_for
from repro.eval import evaluate_kernel_svm

REPO_ROOT = Path(__file__).resolve().parent.parent
SRC_DIR = str(REPO_ROOT / "src")

SMOKE = os.environ.get("REPRO_BENCH_SMOKE", "") not in ("", "0")
_ARTIFACT = "BENCH_dist.smoke.json" if SMOKE else "BENCH_dist.json"
RESULT_PATH = REPO_ROOT / _ARTIFACT

_SCALE = 0.05 if SMOKE else 0.15
_FOLDS = 3 if SMOKE else 6
MODEL = "wl-svm"
DATASET = "PTC_MR"
WORKER_COUNTS = (1, 2, 4)
#: Required speedup at the largest worker count, when cores allow it.
MIN_SPEEDUP = 1.5

_cores = os.cpu_count() or 1

_LISTEN_RE = re.compile(r"listening on ([\d.]+):(\d+) \(shard (\d+)/(\d+)\)")


def _spec() -> dict:
    return run_spec(
        MODEL, DATASET, scale=_SCALE, dataset_seed=0, n_splits=_FOLDS, seed=0
    )


def _spawn_worker(shard_index: int, num_shards: int):
    """Launch a ``repro dist worker`` subprocess; returns (proc, address)."""
    env = dict(os.environ)
    env["PYTHONPATH"] = SRC_DIR + (
        os.pathsep + env["PYTHONPATH"] if env.get("PYTHONPATH") else ""
    )
    proc = subprocess.Popen(
        [
            sys.executable, "-m", "repro", "dist", "worker",
            "--shard", f"{shard_index}/{num_shards}", "--port", "0",
        ],
        stdout=subprocess.PIPE, stderr=subprocess.STDOUT, text=True, env=env,
    )
    line = proc.stdout.readline()
    match = _LISTEN_RE.search(line)
    if match is None:
        proc.kill()
        raise RuntimeError(f"worker failed to announce itself: {line!r}")
    return proc, (match.group(1), int(match.group(2)))


def _time(fn) -> tuple[float, object]:
    start = timeit.default_timer()
    value = fn()
    return timeit.default_timer() - start, value


def _record(stages: dict) -> None:
    results = {
        "config": {
            "dataset": DATASET,
            "model": MODEL,
            "scale": _SCALE,
            "folds": _FOLDS,
            "smoke": SMOKE,
            "cpu_count": _cores,
        },
        "stages": stages,
    }
    RESULT_PATH.write_text(json.dumps(results, indent=2, sort_keys=True) + "\n")


def test_dist_cv_scaling():
    spec = _spec()
    dataset = dataset_from_spec(spec["dataset"]).materialize()
    kernel = kernel_for(MODEL)
    print(
        f"\ndistributed CV bench: {MODEL} on {DATASET} scale={_SCALE} "
        f"folds={_FOLDS} cpus={_cores} smoke={SMOKE}"
    )

    evaluate_kernel_svm(kernel, dataset, n_splits=_FOLDS, seed=0)  # warmup
    serial_s, serial = _time(
        lambda: evaluate_kernel_svm(kernel, dataset, n_splits=_FOLDS, seed=0)
    )
    print(f"  serial: {serial_s:.2f}s  accuracy {serial.mean:.4f}")

    stages: dict[str, dict] = {}
    for count in WORKER_COUNTS:
        procs, addresses = [], []
        try:
            for index in range(count):
                proc, address = _spawn_worker(index, count)
                procs.append(proc)
                addresses.append(address)
            with DistCoordinator(addresses) as coordinator:
                dist_s, report = _time(lambda: coordinator.run(spec))
                coordinator.shutdown_workers()
            for proc in procs:
                proc.wait(timeout=15)
        finally:
            for proc in procs:
                if proc.poll() is None:
                    proc.kill()
        speedup = serial_s / dist_s if dist_s > 0 else float("inf")
        armed = _cores >= count and count > 1
        print(
            f"  {count} worker(s): {dist_s:.2f}s  speedup {speedup:.2f}x  "
            f"(assertion armed: {armed})"
        )
        # Parity before anything else: every worker count, every time.
        assert report.result.fold_accuracies == serial.fold_accuracies
        assert report.result.extra["selected_c"] == serial.extra["selected_c"]
        assert report.completed_remote == _FOLDS
        assert not report.degraded_folds
        stages[f"dist_cv_{count}w"] = {
            "workers": count,
            "serial_s": serial_s,
            "dist_s": dist_s,
            "speedup": speedup,
            "speedup_armed": armed,
            "accuracy": serial.mean,
        }
        if armed and count == max(WORKER_COUNTS):
            assert speedup >= MIN_SPEEDUP

    _record(stages)
    print(f"  wrote {RESULT_PATH.name}")


if __name__ == "__main__":
    sys.exit(pytest.main([__file__, "-v", "-s"]))
