"""Extension bench: the additional kernels and GNNs beyond the paper's
tables (Tree++, WL-OA, random-walk kernels, GCN, GAT, NGF).

These models come from the paper's related-work section; benchmarking
them against DeepMap rounds out the comparison the full version of the
paper draws (Tree++ is the authors' own prior kernel).
"""

from benchmarks._common import CONFIG, bench_dataset, once, print_header, print_table
from repro.baselines import GATClassifier, GCNClassifier, NGFClassifier
from repro.core import deepmap_wl
from repro.eval import evaluate_kernel_svm, evaluate_neural_model
from repro.kernels import (
    HighOrderRandomWalkKernel,
    RandomWalkKernel,
    TreePlusPlusKernel,
    WLOptimalAssignmentKernel,
)

DATASETS = ("PTC_MR", "IMDB-BINARY")


def _run():
    folds, epochs, seed = CONFIG.folds, CONFIG.epochs, CONFIG.seed
    results = {}
    for name in DATASETS:
        ds = bench_dataset(name)
        row = {}
        row["deepmap-wl"] = evaluate_neural_model(
            lambda f: deepmap_wl(h=3, r=5, epochs=epochs, seed=f),
            ds, folds, seed=seed,
        )
        row["tree++"] = evaluate_kernel_svm(
            TreePlusPlusKernel(depth=2, max_order=1), ds, folds, seed=seed
        )
        row["wl-oa"] = evaluate_kernel_svm(
            WLOptimalAssignmentKernel(h=3), ds, folds, seed=seed
        )
        row["rw"] = evaluate_kernel_svm(
            RandomWalkKernel(steps=3), ds, folds, seed=seed
        )
        row["rw-ho"] = evaluate_kernel_svm(
            HighOrderRandomWalkKernel(steps=3, order=2), ds, folds, seed=seed
        )
        row["gcn"] = evaluate_neural_model(
            lambda f: GCNClassifier(epochs=epochs, seed=f), ds, folds, seed=seed
        )
        row["gat"] = evaluate_neural_model(
            lambda f: GATClassifier(epochs=epochs, seed=f), ds, folds, seed=seed
        )
        row["ngf"] = evaluate_neural_model(
            lambda f: NGFClassifier(epochs=epochs, seed=f), ds, folds, seed=seed
        )
        results[name] = row
    return results


COLUMNS = ["deepmap-wl", "tree++", "wl-oa", "rw", "rw-ho", "gcn", "gat", "ngf"]


def test_extension_models(benchmark):
    results = once(benchmark, _run)
    print_header("Extension — related-work kernels & GNNs vs DeepMap")
    rows = [
        [name] + [results[name][k].formatted() for k in COLUMNS]
        for name in DATASETS
    ]
    print_table(["dataset"] + COLUMNS, rows, width=14)
    # Section 6 hypothesis: the high-order walk kernel captures structure
    # the first-order one misses.
    for name in DATASETS:
        ho = results[name]["rw-ho"].mean
        fo = results[name]["rw"].mean
        print(f"{name}: high-order RW {100 * ho:.1f} vs first-order {100 * fo:.1f}")
