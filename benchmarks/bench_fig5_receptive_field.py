"""Figure 5: parameter sensitivity — accuracy vs receptive-field size r.

On SYNTHIE, sweep r and evaluate the three deep map models; the flat
lines are their base kernels (no r parameter).  Expected shape (paper):

* r = 1 (no neighborhood) collapses to ~27% — near chance;
* r >= 2 beats the base kernels;
* DeepMap-SP/WL degrade slowly for large r ("six degrees of separation");
* DeepMap-GK keeps improving with r.
"""

from benchmarks._common import CONFIG, bench_dataset, once, print_header, print_table
from repro.core import deepmap_gk, deepmap_sp, deepmap_wl
from repro.eval import evaluate_kernel_svm, evaluate_neural_model
from repro.kernels import GraphletKernel, ShortestPathKernel, WeisfeilerLehmanKernel

R_VALUES = (1, 2, 3, 5, 7, 9)

#: Paper Fig. 5 anchor points (percent): value at r=1 and the plateau.
PAPER_NOTE = "paper: ~27% at r=1; 52-56% plateau for r in 2..10; kernels ~24/51/51%"


def _run_sweep():
    ds = bench_dataset("SYNTHIE")
    folds, epochs, seed = CONFIG.folds, CONFIG.epochs, CONFIG.seed
    kernels = {
        "GK": evaluate_kernel_svm(
            GraphletKernel(k=4, samples=10, seed=seed), ds, folds, seed=seed
        ).mean,
        "SP": evaluate_kernel_svm(ShortestPathKernel(), ds, folds, seed=seed).mean,
        "WL": evaluate_kernel_svm(WeisfeilerLehmanKernel(3), ds, folds, seed=seed).mean,
    }
    sweep = {}
    for r in R_VALUES:
        sweep[r] = {
            "DM-GK": evaluate_neural_model(
                lambda f: deepmap_gk(k=4, samples=10, r=r, epochs=epochs, seed=f),
                ds, folds, seed=seed,
            ).mean,
            "DM-SP": evaluate_neural_model(
                lambda f: deepmap_sp(r=r, epochs=epochs, seed=f),
                ds, folds, seed=seed,
            ).mean,
            "DM-WL": evaluate_neural_model(
                lambda f: deepmap_wl(h=3, r=r, epochs=epochs, seed=f),
                ds, folds, seed=seed,
            ).mean,
        }
    return kernels, sweep


def test_fig5_receptive_field_sweep(benchmark):
    kernels, sweep = once(benchmark, _run_sweep)
    print_header("Figure 5 — accuracy vs receptive-field size r (SYNTHIE)")
    rows = [
        [f"r={r}"] + [f"{100 * sweep[r][m]:.1f}" for m in ("DM-GK", "DM-SP", "DM-WL")]
        for r in R_VALUES
    ]
    rows.append(["kernels"] + [f"{100 * kernels[k]:.1f}" for k in ("GK", "SP", "WL")])
    print_table(["", "GK-variant", "SP-variant", "WL-variant"], rows)
    print(PAPER_NOTE)
    # Shape assertions: r=1 should be the weakest setting for at least
    # two of the three variants.
    weakest = sum(
        sweep[1][m] <= max(sweep[r][m] for r in R_VALUES[1:]) + 1e-9
        for m in ("DM-GK", "DM-SP", "DM-WL")
    )
    print(f"\nvariants for which r=1 is not the best: {weakest}/3")
