"""Figure 6: representational power — training accuracy vs epoch.

On SYNTHIE, track the *training* accuracy of the three deep map models
across epochs and compare with the (epoch-free) training accuracy of
their base kernels' SVMs.  Expected shape (paper): the deep map models
reach far higher training accuracy than the kernel machines (which
plateau near 55-65% on the 4-class task), and DeepMap-WL/SP converge
faster than DeepMap-GK.
"""

import numpy as np

from benchmarks._common import CONFIG, bench_dataset, once, print_header, print_table
from repro.core import deepmap_gk, deepmap_sp, deepmap_wl
from repro.kernels import (
    GraphletKernel,
    ShortestPathKernel,
    WeisfeilerLehmanKernel,
    normalize_gram,
)
from repro.svm import KernelSVC, select_c

EPOCH_MARKS = (1, 5, 10, 15, 20)


def _kernel_train_accuracy(kernel, graphs, y, seed):
    gram = normalize_gram(kernel.gram(graphs))
    c = select_c(gram, y, seed=seed)
    model = KernelSVC(c=c).fit(gram, y)
    return model.score(gram, y)


def _run():
    ds = bench_dataset("SYNTHIE")
    epochs = max(EPOCH_MARKS)
    seed = CONFIG.seed
    y = ds.y

    kernel_acc = {
        "GK": _kernel_train_accuracy(
            GraphletKernel(k=4, samples=10, seed=seed), ds.graphs, y, seed
        ),
        "SP": _kernel_train_accuracy(ShortestPathKernel(), ds.graphs, y, seed),
        "WL": _kernel_train_accuracy(WeisfeilerLehmanKernel(3), ds.graphs, y, seed),
    }

    curves = {}
    models = {
        "DM-GK": deepmap_gk(k=4, samples=10, r=5, epochs=epochs, seed=seed),
        "DM-SP": deepmap_sp(r=5, epochs=epochs, seed=seed),
        "DM-WL": deepmap_wl(h=3, r=5, epochs=epochs, seed=seed),
    }
    for name, model in models.items():
        model.fit(ds.graphs, y)
        curves[name] = model.history_.train_accuracy
    return kernel_acc, curves


def test_fig6_representational_power(benchmark):
    kernel_acc, curves = once(benchmark, _run)
    print_header("Figure 6 — training accuracy vs epoch (SYNTHIE)")
    rows = []
    for name, curve in curves.items():
        rows.append(
            [name] + [f"{100 * curve[e - 1]:.1f}" for e in EPOCH_MARKS]
        )
    for name, acc in kernel_acc.items():
        rows.append([name + " (svm)"] + [f"{100 * acc:.1f}"] * len(EPOCH_MARKS))
    print_table(["model"] + [f"ep{e}" for e in EPOCH_MARKS], rows, width=12)
    best_deep = max(curve[-1] for curve in curves.values())
    best_kernel = max(kernel_acc.values())
    print(
        f"\nbest deep-map train acc {100 * best_deep:.1f}% vs best kernel "
        f"train acc {100 * best_kernel:.1f}% "
        "(paper shape: deep maps dramatically higher)"
    )
