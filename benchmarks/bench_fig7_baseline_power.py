"""Figure 7: representational power of DeepMap vs the GNN baselines.

Training-accuracy curves on SYNTHIE for DeepMap-WL and the four GNNs
(one-hot inputs), plus the best graph kernel as a flat reference line.
Expected shape (paper): DeepMap converges faster and higher than every
baseline, with a large margin over the kernel.
"""

from benchmarks._common import CONFIG, bench_dataset, once, print_header, print_table
from repro.baselines import (
    DCNNClassifier,
    DGCNNClassifier,
    GINClassifier,
    PatchySanClassifier,
)
from repro.core import deepmap_wl
from repro.kernels import WeisfeilerLehmanKernel, normalize_gram
from repro.svm import KernelSVC, select_c

EPOCH_MARKS = (1, 5, 10, 15, 20)


def _run():
    ds = bench_dataset("SYNTHIE")
    epochs = max(EPOCH_MARKS)
    seed = CONFIG.seed
    y = ds.y

    models = {
        "DeepMap-WL": deepmap_wl(h=3, r=5, epochs=epochs, seed=seed),
        "GIN": GINClassifier(epochs=epochs, seed=seed),
        "DGCNN": DGCNNClassifier(epochs=epochs, seed=seed),
        "DCNN": DCNNClassifier(epochs=epochs, seed=seed),
        "PATCHY-SAN": PatchySanClassifier(epochs=epochs, seed=seed),
    }
    curves = {}
    for name, model in models.items():
        model.fit(ds.graphs, y)
        curves[name] = model.history_.train_accuracy

    gram = normalize_gram(WeisfeilerLehmanKernel(3).gram(ds.graphs))
    c = select_c(gram, y, seed=seed)
    kernel_acc = KernelSVC(c=c).fit(gram, y).score(gram, y)
    return curves, kernel_acc


def test_fig7_baseline_representational_power(benchmark):
    curves, kernel_acc = once(benchmark, _run)
    print_header("Figure 7 — training accuracy vs epoch, DeepMap vs GNNs (SYNTHIE)")
    rows = [
        [name] + [f"{100 * curve[e - 1]:.1f}" for e in EPOCH_MARKS]
        for name, curve in curves.items()
    ]
    rows.append(["best kernel"] + [f"{100 * kernel_acc:.1f}"] * len(EPOCH_MARKS))
    print_table(["model"] + [f"ep{e}" for e in EPOCH_MARKS], rows, width=12)
    deep_final = curves["DeepMap-WL"][-1]
    others = {k: v[-1] for k, v in curves.items() if k != "DeepMap-WL"}
    beaten = sum(deep_final >= acc for acc in others.values())
    print(f"\nDeepMap's final training accuracy beats {beaten}/4 baselines "
          "(paper shape: beats all)")
