"""Encoder hot paths: vectorized vs preserved reference oracles.

Times each vectorized stage against the original implementation it
replaced (kept in-tree as ``_reference_*``), checks the outputs are
*bitwise* identical while doing so, and records everything to
``BENCH_hotpaths.json`` in the repo root:

* ``receptive_fields`` — lexsort table construction vs per-vertex BFS
  expansion (`core/receptive_field.py`),
* ``wl_feature_maps`` — dataset-batched np.unique label refinement vs
  the per-vertex dict loop (`features/vertex_maps.py`),
* ``sp_features`` — integer-encoded triplet binning vs the nested
  distance loop (`features/vertex_maps.py`),
* ``batched_bfs`` — frontier-matrix APSP vs a queue per source
  (`graph/traversal.py` / `graph/shortest_paths.py`),
* ``conv1d_forward`` / ``conv1d_backward`` — reshape-im2col GEMM and
  fancy-index scatter vs the gather/np.add.at original (`nn/conv1d.py`),
* ``gram_assembly`` — one-GEMM WL gram over stacked feature matrices vs
  the per-pair dot loop (`kernels/base.py`),
* ``fused_encode`` — the fused alignment/receptive-field/assemble path
  (one lexsort over the disjoint union, flat gathers) vs the staged
  per-graph composition (`core/pipeline.py`).

Speedups are machine-relative (both sides run on the same box in the
same process), so the JSON is comparable across machines;
``scripts/check_bench_regression.py`` gates on it.  Equality checks:
every stage asserts *bitwise* identity with its oracle except WL,
which asserts *partition* equality — the splitmix64 radix remap
replaced the blake2b color values (one documented break; see
docs/PERFORMANCE.md) but may never move the partition.

``REPRO_BENCH_SMOKE=1`` shrinks the dataset and skips the speedup
assertions — wiring checks only, for the `perf`/`kernels` test tiers.
The full run asserts the tentpole acceptance: >= 3x on at least two of
{receptive fields, WL feature maps, Conv1D forward} at MUTAG scale,
plus the per-stage floors in ``acceptance.floors`` (WL remap and gram
assembly must each hold >= 3x on their own).

Run with ``pytest benchmarks/bench_hotpaths.py -q`` or
``python benchmarks/bench_hotpaths.py``.
"""

from __future__ import annotations

import json
import os
import timeit
from pathlib import Path

import numpy as np

from benchmarks._common import print_header, print_table
from repro.core.alignment import centrality_scores, union_vertex_order
from repro.core.pipeline import _assemble_fused, _reference_encode_stages
from repro.core.receptive_field import (
    _reference_all_receptive_fields,
    all_receptive_fields,
    all_receptive_fields_many,
)
from repro.datasets import make_dataset
from repro.features import extract_vertex_feature_matrices
from repro.features.vertex_maps import (
    ShortestPathVertexFeatures,
    WLVertexFeatures,
    _reference_sp_vertex_counts,
    _reference_wl_stable_colors,
    wl_stable_colors_many,
)
from repro.kernels.base import ExplicitFeatureKernel
from repro.graph.shortest_paths import _reference_apsp_bfs, apsp_bfs
from repro.nn.conv1d import (
    Conv1D,
    _reference_conv1d_backward,
    _reference_conv1d_forward,
)

SMOKE = os.environ.get("REPRO_BENCH_SMOKE", "") not in ("", "0")

#: Smoke runs exercise the harness without clobbering the committed
#: full-scale artifact that the regression gate treats as baseline.
_ARTIFACT = "BENCH_hotpaths.smoke.json" if SMOKE else "BENCH_hotpaths.json"
RESULT_PATH = Path(__file__).resolve().parent.parent / _ARTIFACT

#: Tentpole acceptance: >= MIN_SPEEDUP on >= MIN_STAGES of KEY_STAGES.
KEY_STAGES = ("receptive_fields", "wl_feature_maps", "conv1d_forward")
MIN_SPEEDUP = 3.0
MIN_STAGES = 2

#: Per-stage floors each gated individually (this PR's hot paths): the
#: WL radix remap and the one-GEMM gram assembly must hold on their own,
#: not just as members of the any-2-of-3 headline gate above.
STAGE_FLOORS = {"wl_feature_maps": 3.0, "gram_assembly": 3.0}

#: MUTAG at scale 1.0 is the acceptance configuration (188 graphs).
_SCALE = 0.05 if SMOKE else 1.0
_REPEATS = 1 if SMOKE else 3

_RESULTS: dict[str, dict] = {}


def _graphs():
    return make_dataset("MUTAG", scale=_SCALE, seed=0).graphs


def _best_of(fn, repeats: int = _REPEATS) -> tuple[float, object]:
    """Best wall time over ``repeats`` runs, plus the last return value."""
    best, value = float("inf"), None
    for _ in range(repeats):
        start = timeit.default_timer()
        value = fn()
        best = min(best, timeit.default_timer() - start)
    return best, value


def _record(stage: str, reference_s: float, vectorized_s: float, **extra) -> None:
    speedup = reference_s / vectorized_s if vectorized_s > 0 else float("inf")
    _RESULTS[stage] = {
        "reference_s": reference_s,
        "vectorized_s": vectorized_s,
        "speedup": speedup,
        **extra,
    }
    _flush()
    print(
        f"  {stage:<18s} reference {reference_s:.4f}s  "
        f"vectorized {vectorized_s:.4f}s  speedup {speedup:.2f}x"
    )


def _flush() -> None:
    results: dict = {}
    if RESULT_PATH.exists():
        try:
            results = json.loads(RESULT_PATH.read_text())
        except (OSError, ValueError):
            results = {}
    results["config"] = {
        "dataset": "MUTAG",
        "scale": _SCALE,
        "repeats": _REPEATS,
        "smoke": SMOKE,
        "acceptance": {
            "key_stages": list(KEY_STAGES),
            "min_speedup": MIN_SPEEDUP,
            "min_stages": MIN_STAGES,
            "floors": dict(STAGE_FLOORS),
        },
    }
    results.setdefault("stages", {}).update(_RESULTS)
    RESULT_PATH.write_text(json.dumps(results, indent=2, sort_keys=True) + "\n")


def test_receptive_fields():
    print_header("Hot path: receptive-field table assembly")
    graphs = _graphs()
    r = 10
    scores = [centrality_scores(g, "eigenvector") for g in graphs]

    def vectorized():
        return [all_receptive_fields(g, r, s) for g, s in zip(graphs, scores)]

    def reference():
        return [
            _reference_all_receptive_fields(g, r, s)
            for g, s in zip(graphs, scores)
        ]

    vectorized()  # warmup
    vec_s, vec = _best_of(vectorized)
    ref_s, ref = _best_of(reference)
    for a, b in zip(vec, ref):
        assert a.tobytes() == b.tobytes() and a.dtype == b.dtype
    _record("receptive_fields", ref_s, vec_s, graphs=len(graphs), r=r)


def _same_partition(a: list, b: list) -> bool:
    """True iff colorings ``a`` and ``b`` group positions identically
    (a bijection between color values, checked both directions)."""
    fwd: dict = {}
    bwd: dict = {}
    for x, y in zip(a, b):
        if fwd.setdefault(x, y) != y or bwd.setdefault(y, x) != x:
            return False
    return True


def test_wl_feature_maps():
    print_header("Hot path: WL stable-color refinement")
    graphs = _graphs()
    h = 3

    def vectorized():
        return wl_stable_colors_many(graphs, h)

    def reference():
        return [_reference_wl_stable_colors(g, h) for g in graphs]

    vectorized()  # warmup
    vec_s, vec = _best_of(vectorized)
    ref_s, ref = _best_of(reference)
    # The splitmix64 remap changed the color *values* (documented break);
    # the *partition* must match the blake2b oracle jointly across the
    # whole dataset at every iteration.
    for it in range(h + 1):
        joint_vec = [c for table in vec for c in table[it]]
        joint_ref = [c for table in ref for c in table[it]]
        assert _same_partition(joint_vec, joint_ref), f"iteration {it}"
    _record("wl_feature_maps", ref_s, vec_s, graphs=len(graphs), h=h)


def test_sp_features():
    print_header("Hot path: shortest-path feature binning")
    graphs = _graphs()
    extractor = ShortestPathVertexFeatures()

    def vectorized():
        return extractor.extract(graphs)

    def reference():
        return [_reference_sp_vertex_counts(g, None) for g in graphs]

    vectorized()  # warmup
    vec_s, vec = _best_of(vectorized)
    ref_s, ref = _best_of(reference)
    assert vec == ref
    _record("sp_features", ref_s, vec_s, graphs=len(graphs))


def test_batched_bfs():
    print_header("Hot path: all-pairs BFS distances")
    graphs = _graphs()

    def vectorized():
        return [apsp_bfs(g) for g in graphs]

    def reference():
        return [_reference_apsp_bfs(g) for g in graphs]

    vectorized()  # warmup
    vec_s, vec = _best_of(vectorized)
    ref_s, ref = _best_of(reference)
    for a, b in zip(vec, ref):
        assert a.tobytes() == b.tobytes()
    _record("batched_bfs", ref_s, vec_s, graphs=len(graphs))


def _conv_setup():
    # DeepMap's convolution regime: kernel == stride == r over w*r slots,
    # sized to a MUTAG-scale encoded batch (smaller in smoke mode).
    r, w = (4, 5) if SMOKE else (10, 18)
    batch, cin, cout = (8, 6, 4) if SMOKE else (64, 32, 16)
    layer = Conv1D(cin, cout, r, stride=r, rng=0)
    x = np.random.default_rng(0).normal(size=(batch, w * r, cin))
    return layer, x, r


def test_conv1d_forward():
    print_header("Hot path: Conv1D forward (im2col GEMM)")
    layer, x, r = _conv_setup()

    def vectorized():
        return layer.forward(x)

    def reference():
        return _reference_conv1d_forward(
            x, layer.weight.value, layer.bias.value, r, r
        )

    vectorized()  # warmup
    vec_s, vec = _best_of(lambda: [vectorized() for _ in range(20)])
    ref_s, ref = _best_of(lambda: [reference() for _ in range(20)])
    assert vec[0].tobytes() == ref[0].tobytes()
    _record("conv1d_forward", ref_s, vec_s, batch=x.shape[0], length=x.shape[1])


def test_conv1d_backward():
    print_header("Hot path: Conv1D backward (scatter)")
    layer, x, r = _conv_setup()
    out = layer.forward(x)
    grad = np.random.default_rng(1).normal(size=out.shape)

    def vectorized():
        layer.forward(x)
        layer.weight.grad[...] = 0.0
        layer.bias.grad[...] = 0.0
        return layer.backward(grad)

    def reference():
        return _reference_conv1d_backward(x, layer.weight.value, grad, r, r)

    vectorized()  # warmup
    vec_s, vec = _best_of(lambda: [vectorized() for _ in range(20)])
    ref_s, ref = _best_of(lambda: [reference() for _ in range(20)])
    assert vec[0].tobytes() == ref[0][0].tobytes()
    _record("conv1d_backward", ref_s, vec_s, batch=x.shape[0], length=x.shape[1])


def test_gram_assembly():
    print_header("Hot path: one-GEMM gram assembly (WL features)")
    graphs = _graphs()
    kernel = ExplicitFeatureKernel(WLVertexFeatures(h=3))
    # Feature extraction is shared by both assemblies (and benched on its
    # own as wl_feature_maps); time the assembly step alone.
    phi = kernel.feature_map(graphs)

    def vectorized():
        return kernel._assemble_gram(phi)

    def reference():
        return kernel._reference_assemble_gram(phi)

    vectorized()  # warmup
    vec_s, vec = _best_of(vectorized)
    ref_s, ref = _best_of(reference)
    # Integer-valued counts < 2^53: the GEMM is bitwise-exact.
    assert vec.tobytes() == ref.tobytes() and vec.dtype == ref.dtype
    _record(
        "gram_assembly", ref_s, vec_s,
        graphs=len(graphs), h=3, feature_dim=int(phi.shape[1]),
    )


def test_fused_encode():
    print_header("Hot path: fused encode (alignment -> fields -> assemble)")
    graphs = _graphs()
    r = 10
    matrices, _ = extract_vertex_feature_matrices(
        graphs, ShortestPathVertexFeatures()
    )
    matrices = list(matrices)
    w = max(g.n for g in graphs)
    m = matrices[0].shape[1]

    def vectorized():
        # The body of DeepMapEncoder.encode, minus cache/obs wrapping.
        scores = [centrality_scores(g, "eigenvector") for g in graphs]
        union = union_vertex_order(graphs, scores)
        sequences = [union.sequence(gi)[:w] for gi in range(len(graphs))]
        fields = all_receptive_fields_many(graphs, r, scores, union=union)
        return _assemble_fused(matrices, sequences, fields, union, w, r, m)

    def reference():
        return _reference_encode_stages(graphs, matrices, w, r, m)

    vectorized()  # warmup
    vec_s, vec = _best_of(vectorized)
    ref_s, ref = _best_of(reference)
    assert vec[0].tobytes() == ref[0].tobytes()
    assert vec[1].tobytes() == ref[1].tobytes()
    _record("fused_encode", ref_s, vec_s, graphs=len(graphs), r=r, w=w, m=m)


def test_acceptance_summary():
    """>= 3x on >= 2 key stages (full mode); always prints the table."""
    rows = [
        [s, f"{d['reference_s']:.4f}", f"{d['vectorized_s']:.4f}", f"{d['speedup']:.2f}x"]
        for s, d in sorted(_RESULTS.items())
    ]
    print_header("Hot-path speedup summary")
    print_table(["stage", "reference_s", "vectorized_s", "speedup"], rows)
    if SMOKE:
        return
    fast = [s for s in KEY_STAGES if _RESULTS.get(s, {}).get("speedup", 0) >= MIN_SPEEDUP]
    assert len(fast) >= MIN_STAGES, (
        f"need >= {MIN_SPEEDUP}x on >= {MIN_STAGES} of {KEY_STAGES}, "
        f"got {[(s, round(_RESULTS.get(s, {}).get('speedup', 0), 2)) for s in KEY_STAGES]}"
    )
    for stage, floor in STAGE_FLOORS.items():
        got = _RESULTS.get(stage, {}).get("speedup", 0)
        assert got >= floor, f"{stage}: speedup {got:.2f}x below floor {floor}x"


def main() -> None:
    test_receptive_fields()
    test_wl_feature_maps()
    test_sp_features()
    test_batched_bfs()
    test_conv1d_forward()
    test_conv1d_backward()
    test_gram_assembly()
    test_fused_encode()
    test_acceptance_summary()
    print(f"\nwrote {RESULT_PATH}")


if __name__ == "__main__":
    main()
