"""Micro-benchmarks: gram-matrix computation cost per kernel.

Not a paper table — engineering telemetry for the kernel substrate.
The paper's complexity analysis (Section 4.2) predicts SP ~ O(n w^3),
WL ~ O(n h e), GK ~ O(n w d^3 sampling); these micro-benches verify the
relative ordering at benchmark scale.
"""

import pytest

from benchmarks._common import bench_dataset
from repro.kernels import (
    GraphNeuralTangentKernel,
    GraphletKernel,
    RandomWalkKernel,
    ReturnProbabilityKernel,
    ShortestPathKernel,
    WeisfeilerLehmanKernel,
)

KERNELS = {
    "gk": lambda: GraphletKernel(k=4, samples=10, seed=0),
    "sp": lambda: ShortestPathKernel(),
    "wl": lambda: WeisfeilerLehmanKernel(3),
    "rw": lambda: RandomWalkKernel(steps=3),
    "retgk": lambda: ReturnProbabilityKernel(steps=8),
    "gntk": lambda: GraphNeuralTangentKernel(blocks=2, mlp_layers=1),
}


@pytest.mark.parametrize("kernel_name", list(KERNELS))
def test_gram_matrix_cost(benchmark, kernel_name):
    ds = bench_dataset("PTC_MR")
    kernel = KERNELS[kernel_name]()
    benchmark.pedantic(
        lambda: kernel.gram(ds.graphs), rounds=2, iterations=1, warmup_rounds=0
    )


def test_deepmap_encoding_cost(benchmark):
    """Algorithm 1 lines 8-20: tensor construction cost."""
    from repro.core import DeepMapEncoder
    from repro.features import WLVertexFeatures, extract_vertex_feature_matrices

    ds = bench_dataset("PTC_MR")
    matrices, _ = extract_vertex_feature_matrices(ds.graphs, WLVertexFeatures(h=2))
    encoder = DeepMapEncoder(r=5).fit(ds.graphs)
    benchmark.pedantic(
        lambda: encoder.encode(ds.graphs, matrices),
        rounds=3, iterations=1, warmup_rounds=0,
    )
