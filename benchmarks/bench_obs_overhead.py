"""Observability overhead guard: disabled instrumentation must be free.

``repro.obs`` promises zero-overhead-by-default: with observability off
(the default), every ``obs.span(...)`` in ``DeepMapEncoder.encode``
returns a shared no-op object.  This bench measures instrumented encode
(obs disabled) against a baseline where the spans are monkeypatched to
bare ``contextlib.nullcontext`` — i.e. the seed's uninstrumented code
path — and asserts the median slowdown stays under 5%.

Run with ``pytest benchmarks/bench_obs_overhead.py``.
"""

from __future__ import annotations

import contextlib
import timeit

from benchmarks._common import bench_dataset
from repro import obs
from repro.core import DeepMapEncoder
from repro.features import WLVertexFeatures, extract_vertex_feature_matrices

#: Allowed relative overhead of disabled instrumentation.
MAX_OVERHEAD = 0.05
#: Absolute slack (seconds) so micro-jitter on a fast encode can't flake
#: the ratio check.
ABS_SLACK_S = 2e-3

_ROUNDS = 9


def test_disabled_encode_overhead(benchmark, monkeypatch):
    assert not obs.enabled(), "bench requires the default (disabled) state"

    ds = bench_dataset("PTC_MR")
    matrices, _ = extract_vertex_feature_matrices(ds.graphs, WLVertexFeatures(h=2))
    encoder = DeepMapEncoder(r=5).fit(ds.graphs)

    def encode():
        encoder.encode(ds.graphs, matrices)

    import repro.core.pipeline as pipeline

    def run_baseline() -> float:
        # Baseline: the spans compiled out entirely (seed code path).
        with monkeypatch.context() as patch:
            patch.setattr(pipeline, "obs", _FakeObs())
            return timeit.timeit(encode, number=1)

    def run_instrumented() -> float:
        return timeit.timeit(encode, number=1)

    # Interleave the two variants, alternating which goes first each
    # round, so CPU-frequency drift and turbo/throttle phases hit both
    # equally; compare medians (robust to stray outliers).
    baseline_samples: list[float] = []
    instrumented_samples: list[float] = []
    encode()  # warmup
    for i in range(_ROUNDS):
        first, second = (
            (run_baseline, run_instrumented)
            if i % 2 == 0
            else (run_instrumented, run_baseline)
        )
        a, b = first(), second()
        if i % 2 == 0:
            baseline_samples.append(a)
            instrumented_samples.append(b)
        else:
            instrumented_samples.append(a)
            baseline_samples.append(b)

    benchmark.pedantic(encode, rounds=3, iterations=1, warmup_rounds=1)

    def median(values: list[float]) -> float:
        ordered = sorted(values)
        return ordered[len(ordered) // 2]

    baseline = median(baseline_samples)
    instrumented = median(instrumented_samples)
    limit = baseline * (1.0 + MAX_OVERHEAD) + ABS_SLACK_S
    assert instrumented <= limit, (
        f"disabled-instrumentation encode took {instrumented:.4f}s vs "
        f"baseline {baseline:.4f}s (limit {limit:.4f}s)"
    )


class _FakeObs:
    """Stand-in for the obs module with spans/counters stripped out."""

    @staticmethod
    def span(name, **attrs):
        return contextlib.nullcontext()

    class _NullCounter:
        @staticmethod
        def inc(amount=1.0):
            pass

    @staticmethod
    def counter(name):
        return _FakeObs._NullCounter


def test_null_span_is_cheap():
    """A disabled span costs well under a microsecond per use."""
    assert not obs.enabled()
    n = 100_000

    def spin():
        for _ in range(n):
            with obs.span("x"):
                pass

    seconds = min(timeit.repeat(spin, number=1, repeat=3))
    per_span = seconds / n
    assert per_span < 5e-6, f"null span costs {per_span * 1e6:.2f}us"
