"""Observability overhead guard: disabled instrumentation must be free.

``repro.obs`` promises zero-overhead-by-default: with observability off
(the default), every ``obs.span(...)`` / ``obs.event(...)`` /
``obs.histogram(...)`` call in the encoder and the serving stack
resolves to a shared no-op object.  Each stage here measures the
instrumented code (obs disabled) against a baseline where the
instrumentation is monkeypatched out entirely — i.e. the seed's
uninstrumented code path — and asserts the median slowdown stays under
5%:

* ``encode`` — ``DeepMapEncoder.encode`` with the pipeline spans
  stripped vs left in place,
* ``serve_predict`` — full HTTP ``/v1/predict`` round-trips against a
  live ``ReproServer`` with the handler/batcher tracing (request spans,
  access-log events, queue/batch histograms) stripped vs left in place.

Results land in ``BENCH_obs.json`` in the repo root using the same
stage/"speedup" shape as ``BENCH_hotpaths.json`` (speedup =
baseline / instrumented, so ~1.0 means free), and
``scripts/check_bench_regression.py --current BENCH_obs.json`` gates on
it.  ``REPRO_BENCH_SMOKE=1`` shrinks the workload and skips the
overhead assertions — wiring checks only, for the `obs` test tier — and
writes ``BENCH_obs.smoke.json`` so the committed artifact stays intact.

Run with ``pytest benchmarks/bench_obs_overhead.py``.
"""

from __future__ import annotations

import json
import os
import timeit
from pathlib import Path

from benchmarks._common import bench_dataset
from repro import obs
from repro.core import DeepMapEncoder
from repro.features import WLVertexFeatures, extract_vertex_feature_matrices

#: Allowed relative overhead of disabled instrumentation.
MAX_OVERHEAD = 0.05
#: Absolute slack (seconds) so micro-jitter on a fast sample can't flake
#: the ratio check.
ABS_SLACK_S = 2e-3

SMOKE = os.environ.get("REPRO_BENCH_SMOKE", "") not in ("", "0")

#: Smoke runs exercise the harness without clobbering the committed
#: full-scale artifact that the regression gate treats as baseline.
_ARTIFACT = "BENCH_obs.smoke.json" if SMOKE else "BENCH_obs.json"
RESULT_PATH = Path(__file__).resolve().parent.parent / _ARTIFACT

_ROUNDS = 3 if SMOKE else 9
#: HTTP round-trips timed as one sample: a single request is a few ms,
#: so batching beats timer noise down to where a 5% ratio is meaningful.
_REQUESTS_PER_SAMPLE = 5 if SMOKE else 30

_RESULTS: dict[str, dict] = {}


def _record(stage: str, baseline_s: float, instrumented_s: float, **extra) -> None:
    speedup = baseline_s / instrumented_s if instrumented_s > 0 else float("inf")
    _RESULTS[stage] = {
        "baseline_s": baseline_s,
        "instrumented_s": instrumented_s,
        "speedup": speedup,
        "overhead": instrumented_s / baseline_s - 1.0 if baseline_s > 0 else 0.0,
        **extra,
    }
    _flush()
    print(
        f"  {stage:<16s} baseline {baseline_s:.4f}s  "
        f"instrumented {instrumented_s:.4f}s  "
        f"overhead {_RESULTS[stage]['overhead']:+.2%}"
    )


def _flush() -> None:
    results: dict = {}
    if RESULT_PATH.exists():
        try:
            results = json.loads(RESULT_PATH.read_text())
        except (OSError, ValueError):
            results = {}
    results["config"] = {
        "smoke": SMOKE,
        "rounds": _ROUNDS,
        "requests_per_sample": _REQUESTS_PER_SAMPLE,
        "max_overhead": MAX_OVERHEAD,
    }
    results.setdefault("stages", {}).update(_RESULTS)
    RESULT_PATH.write_text(json.dumps(results, indent=2, sort_keys=True) + "\n")


def _median(values: list[float]) -> float:
    ordered = sorted(values)
    return ordered[len(ordered) // 2]


def _interleaved_medians(run_baseline, run_instrumented) -> tuple[float, float]:
    """Alternate which variant goes first each round; compare medians.

    Interleaving means CPU-frequency drift and turbo/throttle phases hit
    both variants equally; medians are robust to stray outliers.
    """
    baseline_samples: list[float] = []
    instrumented_samples: list[float] = []
    for i in range(_ROUNDS):
        first, second = (
            (run_baseline, run_instrumented)
            if i % 2 == 0
            else (run_instrumented, run_baseline)
        )
        a, b = first(), second()
        if i % 2 == 0:
            baseline_samples.append(a)
            instrumented_samples.append(b)
        else:
            instrumented_samples.append(a)
            baseline_samples.append(b)
    return _median(baseline_samples), _median(instrumented_samples)


def _assert_overhead(stage: str, baseline: float, instrumented: float) -> None:
    if SMOKE:
        return  # wiring check only; ratios are meaningless at smoke scale
    limit = baseline * (1.0 + MAX_OVERHEAD) + ABS_SLACK_S
    assert instrumented <= limit, (
        f"disabled-instrumentation {stage} took {instrumented:.4f}s vs "
        f"baseline {baseline:.4f}s (limit {limit:.4f}s)"
    )


class _FakeSpan:
    """Inert span: context manager that absorbs attribute writes."""

    def __enter__(self):
        return self

    def __exit__(self, *exc):
        return False

    def set_attr(self, name, value):
        pass


class _FakeObs:
    """Stand-in for the obs module with all instrumentation stripped out."""

    _SPAN = _FakeSpan()

    @staticmethod
    def enabled() -> bool:
        return False

    @classmethod
    def span(cls, name, **attrs):
        return cls._SPAN

    @staticmethod
    def event(name, **attrs):
        pass

    class _NullMetric:
        @staticmethod
        def inc(amount=1.0):
            pass

        @staticmethod
        def set(value):
            pass

        @staticmethod
        def observe(value):
            pass

    @classmethod
    def counter(cls, name):
        return cls._NullMetric

    @classmethod
    def gauge(cls, name):
        return cls._NullMetric

    @classmethod
    def histogram(cls, name, buckets=None):
        return cls._NullMetric


def test_disabled_encode_overhead(benchmark, monkeypatch):
    assert not obs.enabled(), "bench requires the default (disabled) state"

    ds = bench_dataset("PTC_MR")
    matrices, _ = extract_vertex_feature_matrices(ds.graphs, WLVertexFeatures(h=2))
    encoder = DeepMapEncoder(r=5).fit(ds.graphs)

    def encode():
        encoder.encode(ds.graphs, matrices)

    import repro.core.pipeline as pipeline

    def run_baseline() -> float:
        # Baseline: the spans compiled out entirely (seed code path).
        with monkeypatch.context() as patch:
            patch.setattr(pipeline, "obs", _FakeObs())
            return timeit.timeit(encode, number=1)

    def run_instrumented() -> float:
        return timeit.timeit(encode, number=1)

    encode()  # warmup
    baseline, instrumented = _interleaved_medians(run_baseline, run_instrumented)
    benchmark.pedantic(encode, rounds=3, iterations=1, warmup_rounds=1)
    _record("encode", baseline, instrumented, graphs=len(ds.graphs))
    _assert_overhead("encode", baseline, instrumented)


def test_disabled_serve_overhead(benchmark, monkeypatch, tmp_path):
    """HTTP predict round-trips: request tracing off must cost <5%."""
    assert not obs.enabled(), "bench requires the default (disabled) state"

    from repro.core import deepmap_wl, save_model
    from repro.serve import ModelRegistry, ReproServer, ServeClient, ServeConfig

    ds = bench_dataset("PTC_MR")
    model = deepmap_wl(h=1, r=3, epochs=2, seed=0).fit(ds.graphs[:20], ds.y[:20])
    path = tmp_path / "model.pkl"
    save_model(model, path)
    registry = ModelRegistry(warm=False)
    registry.load(path)

    import repro.serve.batcher as batcher_mod
    import repro.serve.http as http_mod

    # max_wait_ms=0: sequential requests each form their own batch, so
    # samples time admission + fuse + infer + serialize, not batch waits.
    with ReproServer(registry, ServeConfig(port=0, max_wait_ms=0)) as server:
        client = ServeClient(server.url)
        payload = ServeClient._payload(ds.graphs[:1], None, None)

        def roundtrips():
            for _ in range(_REQUESTS_PER_SAMPLE):
                status, _, _ = client.request("POST", "/v1/predict", payload)
                assert status == 200

        def run_baseline() -> float:
            # Baseline: handler + batcher instrumentation (request spans,
            # access-log events, queue/batch histograms) stripped out.
            with monkeypatch.context() as patch:
                fake = _FakeObs()
                patch.setattr(http_mod, "obs", fake)
                patch.setattr(batcher_mod, "obs", fake)
                return timeit.timeit(roundtrips, number=1)

        def run_instrumented() -> float:
            return timeit.timeit(roundtrips, number=1)

        roundtrips()  # warmup: connection keep-alive + model warm paths
        baseline, instrumented = _interleaved_medians(
            run_baseline, run_instrumented
        )
        benchmark.pedantic(roundtrips, rounds=3, iterations=1, warmup_rounds=1)
        client.close()

    _record(
        "serve_predict",
        baseline,
        instrumented,
        requests_per_sample=_REQUESTS_PER_SAMPLE,
    )
    _assert_overhead("serve_predict", baseline, instrumented)


def test_null_span_is_cheap():
    """A disabled span costs well under a microsecond per use."""
    assert not obs.enabled()
    n = 100_000

    def spin():
        for _ in range(n):
            with obs.span("x"):
                pass

    seconds = min(timeit.repeat(spin, number=1, repeat=3))
    per_span = seconds / n
    assert per_span < 5e-6, f"null span costs {per_span * 1e6:.2f}us"
