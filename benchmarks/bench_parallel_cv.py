"""Fold-parallel CV and feature-map cache: speedup + parity bench.

Measures, and records to ``BENCH_parallel.json`` in the repo root:

* serial vs fold-parallel wall time for the kernel-SVM and neural CV
  protocols (the tentpole claim: folds fan out across a fork pool), and
* cold vs warm wall time for the cached feature-map + encode path.

Speedup from a process pool is physically bounded by the core count, so
the >= 1.8x assertion only arms on machines with >= 4 CPUs; on smaller
boxes the numbers are still recorded (honestly, with ``cpu_count``) and
the *parity* assertions — identical accuracies either way, bitwise-equal
tensors cold vs warm — always run: a wrong answer is never an acceptable
price for speed.

Run with ``pytest benchmarks/bench_parallel_cv.py``.
"""

from __future__ import annotations

import json
import os
import timeit
from pathlib import Path

import numpy as np
import pytest

from benchmarks._common import CONFIG, bench_dataset, print_header
from repro.cache import FeatureMapCache
from repro.core import DeepMapEncoder, deepmap_wl
from repro.eval import evaluate_kernel_svm, evaluate_neural_model
from repro.features import WLVertexFeatures, extract_vertex_feature_matrices
from repro.kernels import WeisfeilerLehmanKernel
from repro.parallel import parallelism_available

#: Worker count benched against serial (the acceptance configuration).
WORKERS = 4
#: Required speedup when the hardware can actually provide it.
MIN_SPEEDUP = 1.8
#: JSON artifact path (repo root).
RESULT_PATH = Path(__file__).resolve().parent.parent / "BENCH_parallel.json"

_cores = os.cpu_count() or 1
_speedup_armed = _cores >= WORKERS

needs_fork = pytest.mark.skipif(
    not parallelism_available(), reason="fork pool unavailable on this platform"
)


def _record(section: str, payload: dict) -> None:
    """Merge one section into ``BENCH_parallel.json`` (best effort)."""
    results: dict = {}
    if RESULT_PATH.exists():
        try:
            results = json.loads(RESULT_PATH.read_text())
        except (OSError, ValueError):
            results = {}
    results["cpu_count"] = _cores
    results["workers"] = WORKERS
    results["config"] = {
        "scale": CONFIG.scale,
        "folds": CONFIG.folds,
        "epochs": CONFIG.epochs,
        "seed": CONFIG.seed,
    }
    results[section] = payload
    RESULT_PATH.write_text(json.dumps(results, indent=2, sort_keys=True) + "\n")


def _time(fn) -> tuple[float, object]:
    start = timeit.default_timer()
    value = fn()
    return timeit.default_timer() - start, value


@needs_fork
def test_kernel_cv_speedup():
    print_header(f"Fold-parallel kernel CV: 1 vs {WORKERS} workers ({_cores} CPUs)")
    ds = bench_dataset("PTC_MR")
    kernel = WeisfeilerLehmanKernel(3)

    def run(workers):
        return evaluate_kernel_svm(
            kernel, ds, n_splits=CONFIG.folds, seed=CONFIG.seed, workers=workers
        )

    run(1)  # warmup: imports, first-touch allocations
    serial_s, serial = _time(lambda: run(1))
    parallel_s, parallel = _time(lambda: run(WORKERS))
    speedup = serial_s / parallel_s if parallel_s > 0 else float("inf")
    print(
        f"serial {serial_s:.2f}s  parallel {parallel_s:.2f}s  "
        f"speedup {speedup:.2f}x  (assertion armed: {_speedup_armed})"
    )
    _record(
        "kernel_cv",
        {
            "dataset": ds.name,
            "serial_s": serial_s,
            "parallel_s": parallel_s,
            "speedup": speedup,
            "speedup_armed": _speedup_armed,
            "accuracy": serial.mean,
        },
    )
    assert parallel.fold_accuracies == serial.fold_accuracies
    assert parallel.extra["selected_c"] == serial.extra["selected_c"]
    if _speedup_armed:
        assert speedup >= MIN_SPEEDUP


@needs_fork
def test_neural_cv_speedup():
    print_header(f"Fold-parallel neural CV: 1 vs {WORKERS} workers ({_cores} CPUs)")
    ds = bench_dataset("MUTAG")
    factory = lambda fold: deepmap_wl(h=2, r=3, epochs=CONFIG.epochs, seed=fold)

    def run(workers):
        return evaluate_neural_model(
            factory,
            ds,
            n_splits=CONFIG.folds,
            seed=CONFIG.seed,
            name="deepmap-wl",
            workers=workers,
        )

    serial_s, serial = _time(lambda: run(1))
    parallel_s, parallel = _time(lambda: run(WORKERS))
    speedup = serial_s / parallel_s if parallel_s > 0 else float("inf")
    print(
        f"serial {serial_s:.2f}s  parallel {parallel_s:.2f}s  "
        f"speedup {speedup:.2f}x  (assertion armed: {_speedup_armed})"
    )
    _record(
        "neural_cv",
        {
            "dataset": ds.name,
            "serial_s": serial_s,
            "parallel_s": parallel_s,
            "speedup": speedup,
            "speedup_armed": _speedup_armed,
            "accuracy": serial.mean,
            "best_epoch": serial.best_epoch,
        },
    )
    assert parallel.fold_accuracies == serial.fold_accuracies
    assert parallel.best_epoch == serial.best_epoch
    if _speedup_armed:
        assert speedup >= MIN_SPEEDUP


def test_cache_cold_vs_warm(tmp_path):
    print_header("Feature-map cache: cold vs warm extract + encode")
    ds = bench_dataset("PTC_MR")
    extractor = WLVertexFeatures(h=3)

    def pipeline(cache):
        matrices, _ = extract_vertex_feature_matrices(
            ds.graphs, extractor, cache=cache
        )
        encoder = DeepMapEncoder(r=5).fit(ds.graphs)
        return encoder.encode(ds.graphs, matrices, cache=cache)

    pipeline(None)  # warmup without any cache in play
    uncached_s, baseline = _time(lambda: pipeline(None))
    cache = FeatureMapCache(cache_dir=tmp_path)
    cold_s, cold = _time(lambda: pipeline(cache))
    warm_s, warm = _time(lambda: pipeline(cache))
    fresh = FeatureMapCache(cache_dir=tmp_path)  # disk tier only
    disk_s, disk = _time(lambda: pipeline(fresh))
    speedup = cold_s / warm_s if warm_s > 0 else float("inf")
    print(
        f"uncached {uncached_s:.3f}s  cold {cold_s:.3f}s  "
        f"warm {warm_s:.3f}s  disk-warm {disk_s:.3f}s  ({speedup:.1f}x)"
    )
    _record(
        "cache_encode",
        {
            "dataset": ds.name,
            "uncached_s": uncached_s,
            "cold_s": cold_s,
            "warm_memory_s": warm_s,
            "warm_disk_s": disk_s,
            "speedup_cold_over_warm": speedup,
            "disk_entries": cache.disk_usage()[0],
            "disk_bytes": cache.disk_usage()[1],
        },
    )
    # Warm hits must replay the exact bits the cold run produced.
    for encoded in (warm, disk):
        np.testing.assert_array_equal(encoded.tensors, cold.tensors)
        np.testing.assert_array_equal(encoded.vertex_mask, cold.vertex_mask)
    np.testing.assert_array_equal(cold.tensors, baseline.tensors)
    assert cache.stats.hits > 0 and fresh.stats.disk_hits > 0
    # A warm replay that is slower than recomputing would make the cache
    # pointless; allow generous slack for timer jitter on tiny inputs.
    assert warm_s < uncached_s * 1.5
