"""Serving latency/throughput bench: batching, pool scaling, wire codecs.

Boots an in-process :class:`~repro.serve.http.ReproServer` on an
ephemeral port, trains and registers a small DeepMap-WL model, then
measures three independent axes of serving v2:

* **Micro-batching** (``closed_loop_*`` sections) — the closed-loop load
  generator at ``concurrency=1`` (no-batching baseline) vs
  ``concurrency=8``: the mean fused batch size must exceed 1 graph per
  forward pass, and every request must be answered with 200 or 429.
* **Pool scaling** (``pool_scaling`` stage) — the same job stream pushed
  through :class:`~repro.serve.pool.InferencePool` at 1/2/4 worker
  processes by 8 concurrent client threads.  The recorded ``speedup`` is
  1-worker wall-clock over 4-worker wall-clock.  The 1.8x acceptance
  floor is *armed only on boxes with >= 4 CPUs*: process parallelism
  cannot beat the box it runs on, so a 1-core CI machine records honest
  numbers (and its honest ``cpu_count``) without failing the gate.
* **Codec serialization** (``codec_serialize`` stage) — request-body
  encode+parse round-trips through the binary CSR wire format vs the
  JSON codec, same batches, same process.  Binary must hold >= 2x.

Results merge into ``BENCH_serve.json`` in the repo root with the
``stages``/``speedup`` schema that ``scripts/check_bench_regression.py``
gates on (including the absolute floors declared under
``config.acceptance.floors``).  ``REPRO_BENCH_SMOKE=1`` shrinks every
knob and redirects to ``BENCH_serve.smoke.json`` — wiring checks only,
for the `serve` test tier; the gate refuses smoke artifacts.

Run with ``pytest benchmarks/bench_serve_latency.py``.
"""

from __future__ import annotations

import json
import os
import threading
import time
from pathlib import Path

from benchmarks._common import CONFIG, bench_dataset, print_header, print_table
from repro.core import deepmap_wl, save_model
from repro.serve import ModelRegistry, ReproServer, ServeConfig, run_load
from repro.serve.codec import (
    encode_predict_request,
    graph_to_json,
    parse_predict_request,
    parse_predict_request_binary,
)
from repro.serve.pool import InferencePool

SMOKE = os.environ.get("REPRO_BENCH_SMOKE", "") not in ("", "0")

#: Smoke runs exercise the harness without clobbering the committed
#: full-scale artifact that the regression gate treats as baseline.
_ARTIFACT = "BENCH_serve.smoke.json" if SMOKE else "BENCH_serve.json"
RESULT_PATH = Path(__file__).resolve().parent.parent / _ARTIFACT

#: Closed-loop worker counts benched against each other.
BASELINE_CONCURRENCY = 1
BATCHING_CONCURRENCY = 8
#: Measurement window per load run (seconds).
DURATION_S = 0.5 if SMOKE else 4.0
#: Pool-scaling job stream: batches of this many graphs, split across
#: this many concurrent client threads.
POOL_WORKER_COUNTS = (1, 2, 4)
POOL_JOBS = 6 if SMOKE else 48
POOL_BATCH = 8
POOL_CLIENTS = 8
#: Codec stage: encode+parse round-trips per codec at this batch size.
CODEC_REPEATS = 2 if SMOKE else 25
CODEC_BATCH = 32

_cores = os.cpu_count() or 1

#: Pool scaling is gated only where the hardware can express it: with
#: fewer than 4 CPUs the 4-worker pool time-slices one core and the
#: floor would punish the machine, not the code.
POOL_FLOOR = 1.8
POOL_FLOOR_ARMED = _cores >= 4
CODEC_FLOOR = 2.0

STAGE_FLOORS: dict[str, float] = {"codec_serialize": CODEC_FLOOR}
if POOL_FLOOR_ARMED:
    STAGE_FLOORS["pool_scaling"] = POOL_FLOOR

_STAGES: dict[str, dict] = {}


def _record(section: str, payload: dict) -> None:
    """Merge one section into the artifact (best effort)."""
    results: dict = {}
    if RESULT_PATH.exists():
        try:
            results = json.loads(RESULT_PATH.read_text())
        except (OSError, ValueError):
            results = {}
    results["cpu_count"] = _cores
    results["config"] = {
        "scale": CONFIG.scale,
        "epochs": CONFIG.epochs,
        "seed": CONFIG.seed,
        "duration_s": DURATION_S,
        "max_batch": 32,
        "max_wait_ms": 5.0,
        "max_queue": 128,
        "pool_jobs": POOL_JOBS,
        "pool_batch": POOL_BATCH,
        "codec_repeats": CODEC_REPEATS,
        "codec_batch": CODEC_BATCH,
        "smoke": SMOKE,
        "pool_floor_armed": POOL_FLOOR_ARMED,
        "acceptance": {"floors": dict(STAGE_FLOORS)},
    }
    if section == "stages":
        results.setdefault("stages", {}).update(payload)
    else:
        results[section] = payload
    RESULT_PATH.write_text(json.dumps(results, indent=2, sort_keys=True) + "\n")


def _trained_model_path(tmp_path) -> tuple:
    ds = bench_dataset("MUTAG")
    model = deepmap_wl(h=2, r=3, epochs=CONFIG.epochs, seed=CONFIG.seed).fit(
        ds.graphs, ds.y
    )
    path = tmp_path / "bench-model.pkl"
    save_model(model, path)
    return ds, model, path


def test_serve_latency_and_batching(tmp_path):
    print_header(
        f"Serving latency: closed-loop {BASELINE_CONCURRENCY} vs "
        f"{BATCHING_CONCURRENCY} workers ({_cores} CPUs)"
    )
    ds, _, path = _trained_model_path(tmp_path)

    registry = ModelRegistry()
    registry.load(path)
    server = ReproServer(
        registry,
        ServeConfig(port=0, max_batch=32, max_wait_ms=5.0, max_queue=128),
    )
    server.start()
    try:
        sections = {}
        for concurrency in (BASELINE_CONCURRENCY, BATCHING_CONCURRENCY):
            result = run_load(
                server.url,
                ds.graphs,
                mode="closed",
                endpoint="predict_proba",
                concurrency=concurrency,
                duration_s=DURATION_S,
            )
            sections[concurrency] = result
            print(result.summary())
    finally:
        server.stop()

    baseline = sections[BASELINE_CONCURRENCY]
    batched = sections[BATCHING_CONCURRENCY]
    _record("closed_loop_1", baseline.to_dict())
    _record("closed_loop_8", batched.to_dict())

    for result in (baseline, batched):
        # Backpressure contract: nothing dropped, everything 200 or 429.
        assert result.transport_errors == 0
        assert result.answered == result.attempted
        assert result.deadline_expired == 0 and not result.other_status
        assert result.ok + result.shed == result.attempted
        assert result.ok > 0
        assert result.percentile_ms(50) <= result.percentile_ms(95)
        assert result.percentile_ms(95) <= result.percentile_ms(99)

    # The acceptance criterion: concurrency became fusion.  Eight
    # think-time-zero workers against one inference thread must yield a
    # mean fused batch strictly above one graph per forward pass.
    assert batched.mean_batch_size is not None
    if not SMOKE:
        assert batched.mean_batch_size > 1.0, (
            f"no batching observed: mean batch {batched.mean_batch_size}"
        )
    _record(
        "summary",
        {
            "baseline_p50_ms": round(baseline.percentile_ms(50), 3),
            "batched_p50_ms": round(batched.percentile_ms(50), 3),
            "baseline_throughput_rps": round(baseline.throughput_rps, 3),
            "batched_throughput_rps": round(batched.throughput_rps, 3),
            "throughput_gain": round(
                batched.throughput_rps / baseline.throughput_rps, 3
            )
            if baseline.throughput_rps > 0
            else None,
            "mean_batch_size": round(batched.mean_batch_size, 3),
        },
    )
    print(
        f"throughput {baseline.throughput_rps:.1f} -> {batched.throughput_rps:.1f} ok/s, "
        f"mean fused batch {batched.mean_batch_size:.2f} graphs"
    )


def _drive_pool(pool: InferencePool, batches: list) -> float:
    """Push every batch through the pool from 8 client threads.

    Returns wall-clock seconds for the whole job stream.  Any worker
    error propagates — a scaling number from a silently degraded pool
    would be fiction.
    """
    pending = list(enumerate(batches))
    lock = threading.Lock()
    errors: list[BaseException] = []

    def client():
        while True:
            with lock:
                if not pending:
                    return
                _, batch = pending.pop()
            try:
                pool.submit(batch, op="predict_proba")
            except BaseException as exc:  # noqa: BLE001
                with lock:
                    errors.append(exc)
                return

    threads = [threading.Thread(target=client) for _ in range(POOL_CLIENTS)]
    start = time.perf_counter()
    for t in threads:
        t.start()
    for t in threads:
        t.join()
    elapsed = time.perf_counter() - start
    if errors:
        raise errors[0]
    return elapsed


def test_pool_scaling(tmp_path):
    print_header(
        f"Pool scaling: {POOL_JOBS} batches x {POOL_BATCH} graphs at "
        f"{POOL_WORKER_COUNTS} workers ({_cores} CPUs, floor "
        f"{'armed' if POOL_FLOOR_ARMED else 'DISARMED'})"
    )
    ds, _, path = _trained_model_path(tmp_path)
    batches = [
        [ds.graphs[(j * 7 + k) % len(ds.graphs)] for k in range(POOL_BATCH)]
        for j in range(POOL_JOBS)
    ]
    seconds: dict[int, float] = {}
    for workers in POOL_WORKER_COUNTS:
        pool = InferencePool(path, workers=workers).start()
        try:
            _drive_pool(pool, batches[:2])  # warm up: model load per worker
            seconds[workers] = _drive_pool(pool, batches)
            assert not pool.degraded and pool.respawns == 0
        finally:
            pool.stop()
        graphs_per_sec = POOL_JOBS * POOL_BATCH / seconds[workers]
        print(f"  {workers} workers: {seconds[workers]:.2f}s "
              f"({graphs_per_sec:.0f} graphs/s)")

    speedup = seconds[1] / seconds[max(POOL_WORKER_COUNTS)]
    _STAGES["pool_scaling"] = {
        "speedup": speedup,
        "reference_s": seconds[1],
        "vectorized_s": seconds[max(POOL_WORKER_COUNTS)],
        "seconds_by_workers": {str(w): round(s, 4) for w, s in seconds.items()},
        "jobs": POOL_JOBS,
        "batch": POOL_BATCH,
        "clients": POOL_CLIENTS,
        "floor_armed": POOL_FLOOR_ARMED,
    }
    _record("stages", {"pool_scaling": _STAGES["pool_scaling"]})
    print(f"  1 -> {max(POOL_WORKER_COUNTS)} workers: {speedup:.2f}x")


def test_codec_serialize(tmp_path):
    print_header("Wire codec: binary CSR vs JSON request round-trip")
    ds = bench_dataset("MUTAG")
    tiled = ds.graphs * (CODEC_BATCH * 4 // len(ds.graphs) + 1)
    batches = [
        tiled[i : i + CODEC_BATCH] for i in range(0, CODEC_BATCH * 4, CODEC_BATCH)
    ]

    def json_pass():
        for batch in batches:
            body = json.dumps(
                {"graphs": [graph_to_json(g) for g in batch]}
            ).encode()
            graphs, _, _ = parse_predict_request(body)
            assert len(graphs) == len(batch)
        return len(body)

    def binary_pass():
        for batch in batches:
            body = encode_predict_request(batch)
            graphs, _, _ = parse_predict_request_binary(body)
            assert len(graphs) == len(batch)
        return len(body)

    json_pass(), binary_pass()  # warm up
    start = time.perf_counter()
    for _ in range(CODEC_REPEATS):
        json_bytes = json_pass()
    json_s = time.perf_counter() - start
    start = time.perf_counter()
    for _ in range(CODEC_REPEATS):
        binary_bytes = binary_pass()
    binary_s = time.perf_counter() - start

    speedup = json_s / binary_s
    _STAGES["codec_serialize"] = {
        "speedup": speedup,
        "reference_s": json_s,
        "vectorized_s": binary_s,
        "batches": len(batches),
        "repeats": CODEC_REPEATS,
        "json_body_bytes": json_bytes,
        "binary_body_bytes": binary_bytes,
    }
    _record("stages", {"codec_serialize": _STAGES["codec_serialize"]})
    print(
        f"  json {json_s * 1e3:.1f}ms vs binary {binary_s * 1e3:.1f}ms "
        f"per {CODEC_REPEATS}x{len(batches)} batches: {speedup:.2f}x "
        f"(last body {json_bytes} -> {binary_bytes} bytes)"
    )


def test_acceptance_summary():
    """Floors from STAGE_FLOORS (full mode); always prints the table."""
    rows = [
        [stage, f"{data['speedup']:.2f}x",
         f"{STAGE_FLOORS.get(stage, '-')}"]
        for stage, data in sorted(_STAGES.items())
    ]
    print_header("Serving v2 stage summary")
    print_table(["stage", "speedup", "floor"], rows)
    if SMOKE:
        return
    for stage, floor in STAGE_FLOORS.items():
        got = _STAGES.get(stage, {}).get("speedup", 0)
        assert got >= floor, f"{stage}: {got:.2f}x below floor {floor}x"
