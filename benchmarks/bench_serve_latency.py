"""Serving latency/throughput bench: micro-batching under closed-loop load.

Boots an in-process :class:`~repro.serve.http.ReproServer` on an
ephemeral port, trains and registers a small DeepMap-WL model, then
drives it with the closed-loop load generator at two concurrency levels:

* ``concurrency=1`` — the no-batching baseline (one think-time-zero
  client can never co-occupy the queue with itself), and
* ``concurrency=8`` — the batching configuration from the acceptance
  criteria: the mean fused batch size must exceed 1 graph per forward
  pass, and every request must be answered with 200 or 429.

Records p50/p95/p99 latency, throughput, shed counts and the mean fused
batch size to ``BENCH_serve.json`` in the repo root, alongside an honest
``cpu_count`` — batching gains depend on how many HTTP handler threads
the box can actually run while the single inference worker is busy.

Run with ``pytest benchmarks/bench_serve_latency.py``.
"""

from __future__ import annotations

import json
import os
from pathlib import Path

from benchmarks._common import CONFIG, bench_dataset, print_header
from repro.core import deepmap_wl, save_model
from repro.serve import ModelRegistry, ReproServer, ServeConfig, run_load

#: Closed-loop worker counts benched against each other.
BASELINE_CONCURRENCY = 1
BATCHING_CONCURRENCY = 8
#: Measurement window per load run (seconds).
DURATION_S = 4.0
#: JSON artifact path (repo root).
RESULT_PATH = Path(__file__).resolve().parent.parent / "BENCH_serve.json"

_cores = os.cpu_count() or 1


def _record(section: str, payload: dict) -> None:
    """Merge one section into ``BENCH_serve.json`` (best effort)."""
    results: dict = {}
    if RESULT_PATH.exists():
        try:
            results = json.loads(RESULT_PATH.read_text())
        except (OSError, ValueError):
            results = {}
    results["cpu_count"] = _cores
    results["config"] = {
        "scale": CONFIG.scale,
        "epochs": CONFIG.epochs,
        "seed": CONFIG.seed,
        "duration_s": DURATION_S,
        "max_batch": 32,
        "max_wait_ms": 5.0,
        "max_queue": 128,
    }
    results[section] = payload
    RESULT_PATH.write_text(json.dumps(results, indent=2, sort_keys=True) + "\n")


def test_serve_latency_and_batching(tmp_path):
    print_header(
        f"Serving latency: closed-loop {BASELINE_CONCURRENCY} vs "
        f"{BATCHING_CONCURRENCY} workers ({_cores} CPUs)"
    )
    ds = bench_dataset("MUTAG")
    model = deepmap_wl(h=2, r=3, epochs=CONFIG.epochs, seed=CONFIG.seed).fit(
        ds.graphs, ds.y
    )
    path = tmp_path / "bench-model.pkl"
    save_model(model, path)

    registry = ModelRegistry()
    registry.load(path)
    server = ReproServer(
        registry,
        ServeConfig(port=0, max_batch=32, max_wait_ms=5.0, max_queue=128),
    )
    server.start()
    try:
        sections = {}
        for concurrency in (BASELINE_CONCURRENCY, BATCHING_CONCURRENCY):
            result = run_load(
                server.url,
                ds.graphs,
                mode="closed",
                endpoint="predict_proba",
                concurrency=concurrency,
                duration_s=DURATION_S,
            )
            sections[concurrency] = result
            print(result.summary())
    finally:
        server.stop()

    baseline = sections[BASELINE_CONCURRENCY]
    batched = sections[BATCHING_CONCURRENCY]
    _record("closed_loop_1", baseline.to_dict())
    _record("closed_loop_8", batched.to_dict())

    for result in (baseline, batched):
        # Backpressure contract: nothing dropped, everything 200 or 429.
        assert result.transport_errors == 0
        assert result.answered == result.attempted
        assert result.deadline_expired == 0 and not result.other_status
        assert result.ok + result.shed == result.attempted
        assert result.ok > 0
        assert result.percentile_ms(50) <= result.percentile_ms(95)
        assert result.percentile_ms(95) <= result.percentile_ms(99)

    # The acceptance criterion: concurrency became fusion.  Eight
    # think-time-zero workers against one inference thread must yield a
    # mean fused batch strictly above one graph per forward pass.
    assert batched.mean_batch_size is not None
    assert batched.mean_batch_size > 1.0, (
        f"no batching observed: mean batch {batched.mean_batch_size}"
    )
    _record(
        "summary",
        {
            "baseline_p50_ms": round(baseline.percentile_ms(50), 3),
            "batched_p50_ms": round(batched.percentile_ms(50), 3),
            "baseline_throughput_rps": round(baseline.throughput_rps, 3),
            "batched_throughput_rps": round(batched.throughput_rps, 3),
            "throughput_gain": round(
                batched.throughput_rps / baseline.throughput_rps, 3
            )
            if baseline.throughput_rps > 0
            else None,
            "mean_batch_size": round(batched.mean_batch_size, 3),
        },
    )
    print(
        f"throughput {baseline.throughput_rps:.1f} -> {batched.throughput_rps:.1f} ok/s, "
        f"mean fused batch {batched.mean_batch_size:.2f} graphs"
    )
