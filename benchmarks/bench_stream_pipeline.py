"""Streamed vs materialized training: throughput and peak memory.

Runs the same ``deepmap-wl`` fit twice in fresh subprocesses — once
materialized (``fit`` on the full graph list and one resident
``(n, w*r, m)`` tensor), once streamed (``fit_stream`` regenerating
shards from seeds behind the bounded prefetcher, spilling encodes to a
spool cache and memory-mapping them back per batch) — and records to
``BENCH_stream.json`` in the repo root:

* ``stream_throughput`` — streamed-over-materialized graphs/sec ratio
  (the ``speedup`` field the regression gate tracks).  Streaming
  re-derives every graph from its seed and round-trips tensors through
  the cache, so the ratio sits near (and may exceed) 1.0: the prefetch
  worker overlaps generation/encode with consumption.
* ``stream_peak_rss`` — materialized-over-streamed peak-RSS *growth*
  ratio (child RSS at exit minus interpreter baseline).  This is the
  memory advantage that lets the streamed path train datasets the
  materialized one cannot hold; bigger is better.

Both children must agree *bitwise* on the training loss curve — the
bench refuses to time two pipelines that are not running the same
numbers (see tests/equivalence/test_stream_equiv.py for the full parity
matrix).  A full run also records a ``sustained`` block: graphs/sec and
peak RSS for a streamed-only fit at 100x the materialized scale.

Speedups are machine-relative ratios (both sides on the same box), so
the JSON is comparable across machines; ``scripts/check_bench_regression.py
--current BENCH_stream.json`` gates on it, including the absolute
floors declared under ``config.acceptance.floors``.

``REPRO_BENCH_SMOKE=1`` shrinks the dataset and skips the floor
assertions — wiring checks only, for the `stream` test tier.

Run with ``pytest benchmarks/bench_stream_pipeline.py -q`` or
``python benchmarks/bench_stream_pipeline.py``.
"""

from __future__ import annotations

import json
import os
import subprocess
import sys
from pathlib import Path

from benchmarks._common import print_header, print_table

SMOKE = os.environ.get("REPRO_BENCH_SMOKE", "") not in ("", "0")

#: Smoke runs exercise the harness without clobbering the committed
#: full-scale artifact that the regression gate treats as baseline.
_ARTIFACT = "BENCH_stream.smoke.json" if SMOKE else "BENCH_stream.json"
REPO_ROOT = Path(__file__).resolve().parent.parent
RESULT_PATH = REPO_ROOT / _ARTIFACT

#: Head-to-head configuration: big enough that the materialized tensor
#: dominates the child's footprint, small enough to run both ways.
_SCALE = 0.03 if SMOKE else 5.0
_EPOCHS = 1 if SMOKE else 2
_SHARD_SIZE = 4 if SMOKE else 64
#: Streamed-only sustained run: 100x the materialized-suite scale.
_SUSTAINED_SCALE = 44.0

#: Absolute acceptance floors (gated by check_bench_regression.py):
#: streaming may cost at most ~3x throughput (it regenerates graphs per
#: pass and round-trips tensors through the cache) and must cut peak
#: RSS growth by at least 2x at the head-to-head scale.
STAGE_FLOORS = {"stream_throughput": 0.3, "stream_peak_rss": 2.0}

_RESULTS: dict[str, dict] = {}

_CHILD = r"""
import json, sys, time
from repro.core import deepmap_wl
from repro.datasets import make_dataset
from repro.obs.resources import sample_resources

mode, scale, epochs, shard_size = (
    sys.argv[1], float(sys.argv[2]), int(sys.argv[3]), int(sys.argv[4])
)
baseline_rss = sample_resources()["peak_rss_bytes"]  # interpreter + imports
model = deepmap_wl(h=2, r=5, epochs=epochs, seed=0, max_features=256)
start = time.perf_counter()
if mode == "stream":
    data = make_dataset("MUTAG", scale=scale, seed=0, stream=True)
    n = len(data)
    model.fit_stream(data, shard_size=shard_size)
else:
    data = make_dataset("MUTAG", scale=scale, seed=0)
    n = len(data)
    model.fit(data.graphs, data.y)
elapsed = time.perf_counter() - start
peak = sample_resources()["peak_rss_bytes"]
print(json.dumps({
    "n": n,
    "seconds": elapsed,
    "graphs_per_sec": n / elapsed,
    "peak_rss_bytes": peak,
    "rss_growth_bytes": max(peak - baseline_rss, 1),
    "loss": model.history_.loss,
}))
"""


def _run_child(mode: str, scale: float) -> dict:
    """One fit in a fresh interpreter; returns its self-reported stats.

    A subprocess per side keeps the RSS comparison honest: each child's
    peak is its own fit's working set, not whatever the bench process
    allocated earlier.
    """
    env = dict(os.environ)
    src = str(REPO_ROOT / "src")
    env["PYTHONPATH"] = src + (
        os.pathsep + env["PYTHONPATH"] if env.get("PYTHONPATH") else ""
    )
    proc = subprocess.run(
        [sys.executable, "-c", _CHILD, mode, str(scale), str(_EPOCHS),
         str(_SHARD_SIZE)],
        capture_output=True,
        text=True,
        env=env,
        check=True,
    )
    return json.loads(proc.stdout.strip().splitlines()[-1])


def _flush() -> None:
    results: dict = {}
    if RESULT_PATH.exists():
        try:
            results = json.loads(RESULT_PATH.read_text())
        except (OSError, ValueError):
            results = {}
    results["config"] = {
        "dataset": "MUTAG",
        "scale": _SCALE,
        "epochs": _EPOCHS,
        "shard_size": _SHARD_SIZE,
        "sustained_scale": _SUSTAINED_SCALE,
        "smoke": SMOKE,
        "acceptance": {"floors": dict(STAGE_FLOORS)},
    }
    results.setdefault("stages", {}).update(_RESULTS)
    RESULT_PATH.write_text(json.dumps(results, indent=2, sort_keys=True) + "\n")


def test_stream_vs_materialized():
    print_header("Streamed vs materialized fit (subprocess per side)")
    materialized = _run_child("materialize", _SCALE)
    streamed = _run_child("stream", _SCALE)
    assert streamed["n"] == materialized["n"]
    # Refuse to time two pipelines running different numbers.
    assert streamed["loss"] == materialized["loss"], (
        "streamed loss curve diverged from materialized"
    )
    throughput_ratio = (
        streamed["graphs_per_sec"] / materialized["graphs_per_sec"]
    )
    rss_ratio = (
        materialized["rss_growth_bytes"] / streamed["rss_growth_bytes"]
    )
    _RESULTS["stream_throughput"] = {
        "speedup": throughput_ratio,
        "reference_s": materialized["seconds"],
        "vectorized_s": streamed["seconds"],
        "graphs": streamed["n"],
        "materialized_graphs_per_sec": materialized["graphs_per_sec"],
        "streamed_graphs_per_sec": streamed["graphs_per_sec"],
    }
    _RESULTS["stream_peak_rss"] = {
        "speedup": rss_ratio,
        "materialized_rss_growth_bytes": materialized["rss_growth_bytes"],
        "streamed_rss_growth_bytes": streamed["rss_growth_bytes"],
        "materialized_peak_rss_bytes": materialized["peak_rss_bytes"],
        "streamed_peak_rss_bytes": streamed["peak_rss_bytes"],
    }
    _flush()
    print(
        f"  throughput: materialized {materialized['graphs_per_sec']:.1f} g/s, "
        f"streamed {streamed['graphs_per_sec']:.1f} g/s "
        f"(ratio {throughput_ratio:.2f}x)"
    )
    print(
        f"  rss growth: materialized "
        f"{materialized['rss_growth_bytes'] / 2**20:.1f} MiB, streamed "
        f"{streamed['rss_growth_bytes'] / 2**20:.1f} MiB "
        f"(advantage {rss_ratio:.2f}x)"
    )


def test_sustained_streaming():
    """Streamed-only fit at 100x the materialized scale (full mode)."""
    if SMOKE:
        return
    print_header("Sustained streaming at 100x scale")
    stats = _run_child("stream", _SUSTAINED_SCALE)
    results = json.loads(RESULT_PATH.read_text())
    results["sustained"] = {
        "graphs": stats["n"],
        "seconds": stats["seconds"],
        "graphs_per_sec": stats["graphs_per_sec"],
        "peak_rss_bytes": stats["peak_rss_bytes"],
        "rss_growth_bytes": stats["rss_growth_bytes"],
    }
    RESULT_PATH.write_text(json.dumps(results, indent=2, sort_keys=True) + "\n")
    print(
        f"  {stats['n']} graphs in {stats['seconds']:.1f}s "
        f"({stats['graphs_per_sec']:.1f} g/s sustained), peak RSS "
        f"{stats['peak_rss_bytes'] / 2**20:.1f} MiB "
        f"(growth {stats['rss_growth_bytes'] / 2**20:.1f} MiB)"
    )


def test_acceptance_summary():
    """Floors from STAGE_FLOORS (full mode); always prints the table."""
    rows = [
        [stage, f"{data['speedup']:.2f}x"]
        for stage, data in sorted(_RESULTS.items())
    ]
    print_header("Streaming pipeline summary")
    print_table(["stage", "ratio"], rows)
    if SMOKE:
        return
    for stage, floor in STAGE_FLOORS.items():
        got = _RESULTS.get(stage, {}).get("speedup", 0)
        assert got >= floor, f"{stage}: ratio {got:.2f}x below floor {floor}x"


def main() -> None:
    test_stream_vs_materialized()
    test_sustained_streaming()
    test_acceptance_summary()
    print(f"\nwrote {RESULT_PATH}")


if __name__ == "__main__":
    main()
