"""Table 1: statistics of the benchmark datasets.

Regenerates every dataset and prints its statistics next to the paper's
Table 1 row.  Graph counts are scaled by the bench config; vertex counts
for SYNTHIE and COLLAB are intentionally shrunk (see DESIGN.md).
"""

from benchmarks._common import CONFIG, bench_dataset, once, print_header, print_table
from repro.datasets import DATASET_NAMES, paper_statistics


def _generate_all():
    rows = []
    for name in DATASET_NAMES:
        ds = bench_dataset(name)
        s = ds.statistics()
        p = paper_statistics(name)
        rows.append(
            [
                name,
                f"{s.size} / {p.size}",
                f"{s.num_classes}",
                f"{s.avg_nodes:.1f} / {p.avg_nodes:.1f}",
                f"{s.avg_edges:.1f} / {p.avg_edges:.1f}",
                f"{s.num_labels} / {p.num_labels or 'N/A'}",
            ]
        )
    return rows


def test_table1_dataset_statistics(benchmark):
    rows = once(benchmark, _generate_all)
    print_header("Table 1 — dataset statistics (ours / paper)")
    print_table(
        ["dataset", "graphs", "cls", "avg nodes", "avg edges", "labels"], rows
    )
