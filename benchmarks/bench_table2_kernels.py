"""Table 2: deep map models vs their base graph kernels.

For each dataset: GK vs DeepMap-GK, SP vs DeepMap-SP, WL vs DeepMap-WL,
all under the paper's CV protocols.  The paper's headline: the deep map
model beats its base kernel on most datasets.

Quick mode covers a representative dataset subset; ``REPRO_BENCH_SCALE=
full`` covers all 15.
"""

import os

from benchmarks._common import CONFIG, bench_dataset, once, print_header, print_table
from repro.core import deepmap_gk, deepmap_sp, deepmap_wl
from repro.datasets import DATASET_NAMES
from repro.eval import evaluate_kernel_svm, evaluate_neural_model
from repro.kernels import GraphletKernel, ShortestPathKernel, WeisfeilerLehmanKernel

QUICK_DATASETS = ("SYNTHIE", "KKI", "BZR_MD", "PTC_MR", "IMDB-BINARY")

#: Paper Table 2, percent accuracy: (GK, DM-GK, SP, DM-SP, WL, DM-WL).
PAPER = {
    "SYNTHIE": (23.7, 54.5, 50.7, 54.0, 50.9, 54.5),
    "KKI": (51.9, 56.8, 50.1, 62.9, 50.4, 61.7),
    "BZR_MD": (49.3, 63.1, 68.6, 73.6, 59.7, 71.6),
    "COX2_MD": (48.2, 52.4, 65.7, 72.3, 56.3, 69.7),
    "DHFR": (61.0, 61.6, 77.8, 81.4, 82.4, 85.2),
    "NCI1": (62.1, 63.3, 73.1, 79.9, 84.8, 83.1),
    "PTC_MM": (50.8, 66.7, 62.2, 66.3, 67.2, 69.6),
    "PTC_MR": (49.7, 63.4, 59.9, 67.7, 61.3, 63.6),
    "PTC_FM": (51.9, 62.8, 61.4, 64.5, 64.4, 65.2),
    "PTC_FR": (49.5, 65.8, 66.9, 68.4, 66.2, 67.8),
    "ENZYMES": (23.9, 30.5, 41.1, 50.3, 52.0, 54.3),
    "PROTEINS": (71.4, 73.8, 75.8, 76.2, 75.5, 75.5),
    "IMDB-BINARY": (67.0, 69.6, 72.2, 74.6, 72.3, 78.1),
    "IMDB-MULTI": (40.8, 42.8, 50.9, 48.3, 50.4, 53.3),
    "COLLAB": (72.8, 73.9, float("nan"), float("nan"), 78.9, 75.5),
}


def _dataset_names():
    if os.environ.get("REPRO_BENCH_SCALE") == "full":
        return DATASET_NAMES
    return QUICK_DATASETS


def _evaluate(name: str):
    ds = bench_dataset(name)
    folds, epochs, seed = CONFIG.folds, CONFIG.epochs, CONFIG.seed
    # COLLAB is too dense for all-pairs SP at bench scale (paper: N/A).
    skip_sp = name == "COLLAB"
    gk_k, gk_q = (4, 10) if len(ds) * ds.statistics().avg_nodes > 2500 else (5, 20)

    out = {}
    out["gk"] = evaluate_kernel_svm(
        GraphletKernel(k=gk_k, samples=gk_q, seed=seed), ds, folds, seed=seed
    ).mean
    out["dm-gk"] = evaluate_neural_model(
        lambda f: deepmap_gk(k=gk_k, samples=gk_q, r=5, epochs=epochs, seed=f),
        ds, folds, seed=seed,
    ).mean
    if skip_sp:
        out["sp"] = out["dm-sp"] = float("nan")
    else:
        out["sp"] = evaluate_kernel_svm(
            ShortestPathKernel(), ds, folds, seed=seed
        ).mean
        out["dm-sp"] = evaluate_neural_model(
            lambda f: deepmap_sp(r=5, epochs=epochs, seed=f), ds, folds, seed=seed
        ).mean
    out["wl"] = evaluate_kernel_svm(
        WeisfeilerLehmanKernel(3), ds, folds, seed=seed
    ).mean
    out["dm-wl"] = evaluate_neural_model(
        lambda f: deepmap_wl(h=3, r=5, epochs=epochs, seed=f), ds, folds, seed=seed
    ).mean
    return out


def _run_all():
    return {name: _evaluate(name) for name in _dataset_names()}


def test_table2_deepmap_vs_base_kernels(benchmark):
    results = once(benchmark, _run_all)
    print_header("Table 2 — DeepMap vs base kernels, % accuracy (ours | paper)")
    cols = ["dataset", "GK", "DM-GK", "SP", "DM-SP", "WL", "DM-WL", "DM wins"]
    rows = []
    for name, r in results.items():
        paper = PAPER[name]
        cells = [name]
        for i, key in enumerate(["gk", "dm-gk", "sp", "dm-sp", "wl", "dm-wl"]):
            cells.append(f"{100 * r[key]:.1f}|{paper[i]:.1f}")
        wins = sum(
            r[f"dm-{k}"] >= r[k]
            for k in ("gk", "sp", "wl")
            if r[k] == r[k]  # skip NaN
        )
        cells.append(f"{wins}/3")
        rows.append(cells)
    print_table(cols, rows, width=14)
    # Shape check: deep maps should win the majority of comparisons.
    total_wins = total = 0
    for r in results.values():
        for k in ("gk", "sp", "wl"):
            if r[k] == r[k] and r[f"dm-{k}"] == r[f"dm-{k}"]:
                total += 1
                total_wins += r[f"dm-{k}"] >= r[k] - 0.02
    print(f"\nDeepMap matches or beats its base kernel in {total_wins}/{total} comparisons")
