"""Table 3: DeepMap vs state-of-the-art graph kernels and GNNs.

Competitors: DGCNN, GIN, DCNN, PATCHY-SAN (one-hot label inputs, their
papers' protocol) and DGK, RetGK, GNTK (kernel + SVM protocol).  DeepMap
is represented by its WL variant (the paper reports the best of the
three; WL wins most often).
"""

import os

from benchmarks._common import CONFIG, bench_dataset, once, print_header, print_table
from repro.baselines import (
    DCNNClassifier,
    DGCNNClassifier,
    GINClassifier,
    PatchySanClassifier,
)
from repro.core import deepmap_wl
from repro.eval import evaluate_kernel_svm, evaluate_neural_model
from repro.kernels import (
    DeepGraphKernel,
    GraphNeuralTangentKernel,
    ReturnProbabilityKernel,
)

QUICK_DATASETS = ("SYNTHIE", "KKI", "PTC_MR", "IMDB-BINARY")
FULL_DATASETS = QUICK_DATASETS + (
    "BZR_MD", "COX2_MD", "DHFR", "NCI1", "PTC_MM", "PTC_FM", "PTC_FR",
    "ENZYMES", "PROTEINS", "IMDB-MULTI", "COLLAB",
)

#: Paper Table 3 (percent): DeepMap, DGCNN, GIN, DCNN, PATCHYSAN, DGK,
#: RETGK, GNTK.
PAPER = {
    "SYNTHIE": (54.5, 47.5, 53.5, 54.2, 44.3, 52.4, 50.0, 54.0),
    "KKI": (62.9, 56.3, 60.3, 48.9, 43.8, 51.3, 48.5, 46.8),
    "PTC_MR": (67.7, 55.3, 62.6, 55.7, 55.3, 62.0, 62.5, 58.3),
    "IMDB-BINARY": (78.1, 70.0, 75.1, 71.4, 71.0, 67.0, 72.3, 76.9),
    "BZR_MD": (73.6, 64.7, 70.5, 59.6, 67.0, 58.5, 62.8, 66.5),
    "COX2_MD": (72.3, 64.0, 66.0, 51.3, 65.3, 51.6, 59.5, 64.3),
    "DHFR": (85.2, 70.7, 82.2, 59.8, 77.0, 64.1, 82.3, 73.5),
    "NCI1": (83.1, 71.7, 82.7, 57.1, 78.6, 80.3, 84.5, 84.2),
    "PTC_MM": (69.6, 62.1, 67.2, 63.0, 56.6, 67.1, 67.9, 65.9),
    "PTC_FM": (65.2, 60.3, 64.2, 63.5, 58.4, 64.5, 63.9, 63.9),
    "PTC_FR": (68.4, 65.4, 67.0, 66.2, 61.0, 67.7, 67.8, 67.0),
    "ENZYMES": (54.3, 43.8, 50.5, 17.5, 22.5, 53.4, 60.4, 32.4),
    "PROTEINS": (76.2, 73.1, 76.2, 66.5, 75.9, 75.7, 75.8, 75.6),
    "IMDB-MULTI": (53.3, 47.8, 52.3, 45.0, 45.2, 44.6, 48.7, 52.8),
    "COLLAB": (75.5, 73.8, 80.2, 76.2, 72.6, 73.1, 81.0, 83.6),
}


def _dataset_names():
    if os.environ.get("REPRO_BENCH_SCALE") == "full":
        return FULL_DATASETS
    return QUICK_DATASETS


def _evaluate(name: str):
    ds = bench_dataset(name)
    folds, epochs, seed = CONFIG.folds, CONFIG.epochs, CONFIG.seed
    out = {}
    out["deepmap"] = evaluate_neural_model(
        lambda f: deepmap_wl(h=3, r=5, epochs=epochs, seed=f), ds, folds, seed=seed
    ).mean
    gnns = {
        "dgcnn": lambda f: DGCNNClassifier(epochs=epochs, seed=f),
        "gin": lambda f: GINClassifier(epochs=epochs, seed=f),
        "dcnn": lambda f: DCNNClassifier(epochs=epochs, seed=f),
        "patchysan": lambda f: PatchySanClassifier(epochs=epochs, seed=f),
    }
    for key, factory in gnns.items():
        out[key] = evaluate_neural_model(factory, ds, folds, seed=seed).mean
    kernels = {
        "dgk": DeepGraphKernel(),
        "retgk": ReturnProbabilityKernel(steps=12),
        "gntk": GraphNeuralTangentKernel(blocks=2, mlp_layers=2),
    }
    for key, kernel in kernels.items():
        out[key] = evaluate_kernel_svm(kernel, ds, folds, seed=seed).mean
    return out


COLUMNS = ["deepmap", "dgcnn", "gin", "dcnn", "patchysan", "dgk", "retgk", "gntk"]


def _run_all():
    return {name: _evaluate(name) for name in _dataset_names()}


def test_table3_deepmap_vs_competitors(benchmark):
    results = once(benchmark, _run_all)
    print_header("Table 3 — DeepMap vs competitors, % accuracy (ours | paper)")
    rows = []
    for name, r in results.items():
        paper = PAPER[name]
        cells = [name]
        for i, key in enumerate(COLUMNS):
            cells.append(f"{100 * r[key]:.1f}|{paper[i]:.1f}")
        rows.append(cells)
    print_table(["dataset"] + COLUMNS, rows, width=13)
    wins = sum(
        all(r["deepmap"] >= r[k] - 0.03 for k in COLUMNS[1:])
        for r in results.values()
    )
    print(f"\nDeepMap within 3 points of the best on {wins}/{len(results)} datasets")
