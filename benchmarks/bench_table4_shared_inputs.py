"""Table 4: GNN baselines fed DeepMap's vertex feature maps.

The control experiment of Section 5.3.3: give DGCNN/GIN/DCNN/PATCHY-SAN
the *same inputs* as DeepMap (WL vertex feature maps) and check whether
DeepMap's architecture — not just its richer input — drives the gain.
"""

import os

from benchmarks._common import CONFIG, bench_dataset, once, print_header, print_table
from repro.baselines import (
    DCNNClassifier,
    DGCNNClassifier,
    GINClassifier,
    PatchySanClassifier,
)
from repro.core import deepmap_wl
from repro.eval import evaluate_neural_model
from repro.features import WLVertexFeatures

QUICK_DATASETS = ("SYNTHIE", "KKI", "PTC_MR", "IMDB-BINARY")
FULL_DATASETS = QUICK_DATASETS + (
    "BZR_MD", "COX2_MD", "DHFR", "NCI1", "PTC_MM", "PTC_FM", "PTC_FR",
    "ENZYMES", "PROTEINS", "IMDB-MULTI", "COLLAB",
)

#: Paper Table 4 (percent): DeepMap, DGCNN, GIN, DCNN, PATCHYSAN.
PAPER = {
    "SYNTHIE": (54.5, 47.3, 53.7, 50.7, 42.0),
    "KKI": (62.9, 56.3, 64.9, 53.9, 48.8),
    "PTC_MR": (67.7, 54.1, 64.9, 57.6, 58.9),
    "IMDB-BINARY": (78.1, 69.2, 74.1, 74.6, 68.7),
    "BZR_MD": (73.6, 64.3, 73.0, 68.7, 67.3),
    "COX2_MD": (72.3, 59.0, 65.8, 62.0, 62.0),
    "DHFR": (85.2, 79.3, 80.2, 76.5, 71.0),
    "NCI1": (83.1, 71.1, 75.4, 77.3, 80.1),
    "PTC_MM": (69.6, 61.2, 68.4, 64.6, 62.0),
    "PTC_FM": (65.2, 58.5, 61.9, 57.8, 58.4),
    "PTC_FR": (68.4, 65.4, 66.1, 63.0, 58.3),
    "ENZYMES": (54.3, 35.3, 37.5, 42.8, 25.2),
    "PROTEINS": (76.2, 76.6, 75.1, 65.6, 65.5),
    "IMDB-MULTI": (53.3, 47.7, 49.9, 48.3, 43.3),
    "COLLAB": (75.5, 73.5, 71.7, 76.5, 72.4),
}

COLUMNS = ["deepmap", "dgcnn", "gin", "dcnn", "patchysan"]


def _dataset_names():
    if os.environ.get("REPRO_BENCH_SCALE") == "full":
        return FULL_DATASETS
    return QUICK_DATASETS


def _evaluate(name: str):
    ds = bench_dataset(name)
    folds, epochs, seed = CONFIG.folds, CONFIG.epochs, CONFIG.seed
    features = lambda: WLVertexFeatures(h=2)
    out = {
        "deepmap": evaluate_neural_model(
            lambda f: deepmap_wl(h=2, r=5, epochs=epochs, seed=f),
            ds, folds, seed=seed,
        ).mean,
        "dgcnn": evaluate_neural_model(
            lambda f: DGCNNClassifier(features=features(), epochs=epochs, seed=f),
            ds, folds, seed=seed,
        ).mean,
        "gin": evaluate_neural_model(
            lambda f: GINClassifier(features=features(), epochs=epochs, seed=f),
            ds, folds, seed=seed,
        ).mean,
        "dcnn": evaluate_neural_model(
            lambda f: DCNNClassifier(features=features(), epochs=epochs, seed=f),
            ds, folds, seed=seed,
        ).mean,
        "patchysan": evaluate_neural_model(
            lambda f: PatchySanClassifier(features=features(), epochs=epochs, seed=f),
            ds, folds, seed=seed,
        ).mean,
    }
    return out


def _run_all():
    return {name: _evaluate(name) for name in _dataset_names()}


def test_table4_gnns_with_vertex_feature_maps(benchmark):
    results = once(benchmark, _run_all)
    print_header(
        "Table 4 — GNNs fed DeepMap's vertex feature maps, % accuracy (ours | paper)"
    )
    rows = []
    for name, r in results.items():
        paper = PAPER[name]
        cells = [name]
        for i, key in enumerate(COLUMNS):
            cells.append(f"{100 * r[key]:.1f}|{paper[i]:.1f}")
        rows.append(cells)
    print_table(["dataset"] + COLUMNS, rows, width=14)
    wins = sum(
        sum(r["deepmap"] >= r[k] for k in COLUMNS[1:]) >= 3
        for r in results.values()
    )
    print(f"\nDeepMap beats >=3/4 same-input GNNs on {wins}/{len(results)} datasets")
