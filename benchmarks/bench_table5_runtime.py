"""Table 5: per-epoch runtime of DeepMap and the GNN baselines.

The paper reports per-epoch wall-clock per model per dataset.  Here each
model's single-epoch cost is measured with pytest-benchmark (several
rounds) on the same datasets; EXPERIMENTS.md compares the *relative*
ordering with the paper (absolute values differ: CPU numpy vs GPU Keras).
"""

import numpy as np
import pytest

from benchmarks._common import CONFIG, bench_dataset, print_header
from repro.baselines import (
    DCNNClassifier,
    DGCNNClassifier,
    GINClassifier,
    PatchySanClassifier,
)
from repro.core import deepmap_wl

DATASETS = ("PTC_MR", "IMDB-BINARY")

MODELS = {
    "deepmap": lambda: deepmap_wl(h=2, r=5, epochs=1, seed=0),
    "dgcnn": lambda: DGCNNClassifier(epochs=1, seed=0),
    "gin": lambda: GINClassifier(epochs=1, seed=0),
    "dcnn": lambda: DCNNClassifier(epochs=1, seed=0),
    "patchysan": lambda: PatchySanClassifier(epochs=1, seed=0),
}

#: Paper Table 5 per-epoch runtimes (milliseconds) for reference.
PAPER_MS = {
    "PTC_MR": {"deepmap": 212.5, "dgcnn": 213.0, "gin": 1100.0, "dcnn": 148.1, "patchysan": 390.5},
    "IMDB-BINARY": {"deepmap": 2900.0, "dgcnn": 638.0, "gin": 1200.0, "dcnn": 514.0, "patchysan": 932.8},
}


@pytest.mark.parametrize("dataset_name", DATASETS)
@pytest.mark.parametrize("model_name", list(MODELS))
def test_table5_epoch_runtime(benchmark, dataset_name, model_name):
    ds = bench_dataset(dataset_name)
    factory = MODELS[model_name]

    def one_epoch():
        model = factory()
        model.fit(ds.graphs, ds.y)
        return model

    benchmark.pedantic(one_epoch, rounds=3, iterations=1, warmup_rounds=0)
    paper = PAPER_MS[dataset_name][model_name]
    print_header(
        f"Table 5 — {model_name} on {dataset_name}: one epoch "
        f"(paper: {paper:.0f} ms on GPU; see benchmark stats above)"
    )
