"""Benchmark-suite configuration: make the repo root importable so the
``benchmarks._common`` helpers resolve when pytest is invoked from any
directory."""

import sys
from pathlib import Path

ROOT = Path(__file__).resolve().parent.parent
if str(ROOT) not in sys.path:
    sys.path.insert(0, str(ROOT))
