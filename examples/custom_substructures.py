#!/usr/bin/env python
"""Extending DeepMap with custom substructures.

The paper: "DeepMap can be built on the vertex feature maps of any
substructures."  This example shows the extension API end to end:

1. write a new :class:`VertexFeatureExtractor` (here: triangle
   participation counts — a 10-line extractor);
2. plug it into DeepMap unchanged;
3. compare with the library's built-in substructure families (WL
   subtrees, shortest paths, Tree++ path patterns, labeled walks) on one
   dataset.

Run:  python examples/custom_substructures.py
"""

from collections import Counter

import numpy as np

from repro import make_dataset
from repro.core import DeepMapClassifier
from repro.eval import evaluate_neural_model
from repro.features import (
    LabeledWalkVertexFeatures,
    PathPatternVertexFeatures,
    ShortestPathVertexFeatures,
    VertexFeatureExtractor,
    WLVertexFeatures,
)


class TriangleVertexFeatures(VertexFeatureExtractor):
    """Counts, per vertex, the labeled triangles it participates in.

    Feature key: ("tri", sorted labels of the triangle).  A miniature
    graphlet feature restricted to k = 3 cliques — written from scratch
    to demonstrate the extractor protocol.
    """

    name = "triangles"

    def extract(self, graphs):
        out = []
        for g in graphs:
            per_vertex = [Counter() for _ in range(g.n)]
            for u, v in g.edges:
                # common neighbors of u and v close triangles
                common = set(g.neighbors(int(u))) & set(g.neighbors(int(v)))
                for w in common:
                    if w > v:  # count each triangle once
                        key = ("tri", tuple(sorted(
                            (g.label(int(u)), g.label(int(v)), g.label(int(w)))
                        )))
                        for vertex in (int(u), int(v), int(w)):
                            per_vertex[vertex][key] += 1
            out.append(per_vertex)
        return out


def main() -> None:
    dataset = make_dataset("IMDB-BINARY", scale=0.06, seed=0)
    print(f"dataset: {dataset.name} with {len(dataset)} graphs\n")

    extractors = {
        "triangles (custom)": TriangleVertexFeatures(),
        "wl subtrees": WLVertexFeatures(h=2),
        "shortest paths": ShortestPathVertexFeatures(),
        "tree++ paths": PathPatternVertexFeatures(depth=2),
        "labeled walks": LabeledWalkVertexFeatures(length=2),
    }
    print(f"{'substructure':<22s} accuracy (3-fold)")
    for name, extractor in extractors.items():
        result = evaluate_neural_model(
            lambda fold, e=extractor: DeepMapClassifier(
                e, r=4, epochs=10, max_features=512, seed=fold
            ),
            dataset,
            n_splits=3,
            seed=0,
            name=name,
        )
        print(f"{name:<22s} {result.formatted()}")


if __name__ == "__main__":
    main()
