#!/usr/bin/env python
"""Explaining DeepMap predictions: which vertices drive the decision?

Because DeepMap's readout is a sum of deep vertex feature maps, a graph's
prediction decomposes over its vertices.  This example trains on a
molecule dataset where the class signal is a labeled ring motif, then
uses both attribution methods in :mod:`repro.core.interpret`:

* linear vertex contributions (fast, first-order), and
* occlusion scores (exact, n forward passes),

and checks that the highlighted vertices are disproportionately the ring
vertices (the 2-core) — i.e. the model looks where the signal is.

Run:  python examples/explain_predictions.py
"""

import numpy as np

from repro import deepmap_wl
from repro.core import occlusion_scores, vertex_contributions
from repro.datasets import MoleculeGenerator, molecule_dataset


def two_core(g) -> np.ndarray:
    """Boolean mask of vertices surviving iterated leaf-stripping."""
    alive = np.ones(g.n, dtype=bool)
    degrees = g.degrees().copy()
    changed = True
    while changed:
        changed = False
        for v in range(g.n):
            if alive[v] and degrees[v] <= 1:
                alive[v] = False
                changed = True
                for u in g.neighbors(v):
                    if alive[u]:
                        degrees[u] -= 1
    return alive


def main() -> None:
    gen = MoleculeGenerator(
        avg_nodes=16, num_labels=6, ring_rate=0.2, motif_strength=0.9
    )
    graphs, y = molecule_dataset(gen, 50, seed=0)
    model = deepmap_wl(h=2, r=4, epochs=25, seed=0)
    model.fit(graphs[:40], y[:40])
    acc = model.score(graphs[40:], y[40:])
    print(f"trained DeepMap-WL, held-out accuracy {acc:.2f}\n")

    hits_lin, hits_occ, ring_rates = [], [], []
    for g in graphs[40:]:
        ring = two_core(g)
        if not ring.any() or ring.all():
            continue
        lin = vertex_contributions(model, g)
        occ = occlusion_scores(model, g)
        top_lin = np.argsort(-np.abs(lin))[: max(3, int(ring.sum()))]
        top_occ = np.argsort(-np.abs(occ))[: max(3, int(ring.sum()))]
        hits_lin.append(ring[top_lin].mean())
        hits_occ.append(ring[top_occ].mean())
        ring_rates.append(ring.mean())

    print(f"fraction of top-attributed vertices on rings (base rate "
          f"{np.mean(ring_rates):.2f}):")
    print(f"  linear contributions: {np.mean(hits_lin):.2f}")
    print(f"  occlusion scores:     {np.mean(hits_occ):.2f}")

    g = graphs[40]
    lin = vertex_contributions(model, g)
    print(f"\nexample graph ({g.n} vertices), per-vertex contribution:")
    ring = two_core(g)
    for v in np.argsort(-np.abs(lin))[:6]:
        tag = "ring" if ring[v] else "tree"
        print(f"  vertex {v:2d} ({tag}, label {g.label(int(v))}): {lin[v]:+.4f}")


if __name__ == "__main__":
    main()
