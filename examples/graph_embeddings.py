#!/usr/bin/env python
"""Using DeepMap's learned representations as graph embeddings.

The paper notes the deep feature map is "a dense and low-dimensional
vector" usable beyond the built-in classifier.  This example trains
DeepMap on a brain-network dataset, extracts the 8-d embeddings, and
shows that (a) nearest neighbors in embedding space share class labels
far more often than chance, and (b) the embeddings separate classes
linearly (a ridge classifier on frozen embeddings).

Run:  python examples/graph_embeddings.py
"""

import numpy as np

from repro import deepmap_wl, make_dataset
from repro.eval import train_test_split


def neighbor_purity(embeddings: np.ndarray, labels: np.ndarray) -> float:
    """Fraction of points whose nearest neighbor shares their label."""
    dists = np.linalg.norm(embeddings[:, None] - embeddings[None, :], axis=-1)
    np.fill_diagonal(dists, np.inf)
    nearest = dists.argmin(axis=1)
    return float(np.mean(labels[nearest] == labels))


def linear_probe(train_x, train_y, test_x, test_y) -> float:
    """Ridge-regression one-vs-rest probe on frozen embeddings."""
    classes = np.unique(train_y)
    targets = (train_y[:, None] == classes[None, :]).astype(float)
    x = np.hstack([train_x, np.ones((len(train_x), 1))])
    w = np.linalg.lstsq(x.T @ x + 1e-3 * np.eye(x.shape[1]), x.T @ targets,
                        rcond=None)[0]
    xt = np.hstack([test_x, np.ones((len(test_x), 1))])
    preds = classes[np.argmax(xt @ w, axis=1)]
    return float(np.mean(preds == test_y))


def main() -> None:
    dataset = make_dataset("KKI", scale=0.6, seed=0)
    print(f"dataset: {dataset.name} with {len(dataset)} brain networks")

    train_idx, test_idx = train_test_split(dataset.y, 0.25, seed=0)
    model = deepmap_wl(h=2, r=4, epochs=25, seed=0)
    model.fit([dataset.graphs[i] for i in train_idx], dataset.y[train_idx])

    train_emb = model.transform([dataset.graphs[i] for i in train_idx])
    test_emb = model.transform([dataset.graphs[i] for i in test_idx])
    print(f"embedding dimension: {train_emb.shape[1]}")

    purity = neighbor_purity(train_emb, dataset.y[train_idx])
    chance = float(np.mean(dataset.y[train_idx] ==
                           np.roll(dataset.y[train_idx], 1)))
    print(f"nearest-neighbor label purity: {purity:.3f} (chance ~{chance:.3f})")

    probe_acc = linear_probe(
        train_emb, dataset.y[train_idx], test_emb, dataset.y[test_idx]
    )
    end_to_end = model.score([dataset.graphs[i] for i in test_idx],
                             dataset.y[test_idx])
    print(f"linear probe on frozen embeddings: {probe_acc:.3f}")
    print(f"end-to-end DeepMap classifier:     {end_to_end:.3f}")


if __name__ == "__main__":
    main()
