#!/usr/bin/env python
"""Graph kernels and feature maps from the inside (Figs. 1-2, Eq. 7).

Shows the library's substructure machinery directly:

* Fig. 1: the two connected graphlets of size 3, found by exhaustive
  enumeration;
* Fig. 2: one iteration of Weisfeiler-Lehman refinement on the paper's
  example graph;
* Definitions 2/3 + Equation 7: vertex feature maps summing to the graph
  feature map;
* all seven kernels' normalised similarity between two example graphs.

Run:  python examples/kernel_feature_maps.py
"""

import numpy as np

from repro.features import (
    ShortestPathVertexFeatures,
    WLVertexFeatures,
    extract_vertex_feature_matrices,
    graph_feature_maps,
)
from repro.graph import (
    Graph,
    complete_graph,
    cycle_graph,
    enumerate_graphlets,
    wl_iterations,
)
from repro.kernels import (
    DeepGraphKernel,
    GraphNeuralTangentKernel,
    GraphletKernel,
    RandomWalkKernel,
    ReturnProbabilityKernel,
    ShortestPathKernel,
    WeisfeilerLehmanKernel,
)


def figure1() -> None:
    print("=== Fig. 1: connected size-3 graphlets ===")
    host = complete_graph(4)  # contains triangles
    chain = cycle_graph(5)  # contains paths
    triangles = enumerate_graphlets(host, 3)
    paths = enumerate_graphlets(chain, 3)
    print(f"  K4 contains {sum(triangles.values())} graphlets of "
          f"{len(triangles)} type(s) (triangles)")
    print(f"  C5 contains {sum(paths.values())} graphlets of "
          f"{len(paths)} type(s) (paths)")


def figure2() -> None:
    print("\n=== Fig. 2: one WL iteration on the paper's example ===")
    g = Graph(5, [(0, 1), (1, 2), (1, 3), (2, 4), (3, 4)], [1, 4, 3, 3, 2])
    iters = wl_iterations(g, 1)
    print("  labels before:", iters[0].tolist())
    print("  labels after: ", iters[1].tolist())
    print("  (vertex 1, label 4, neighbors {1,3,3} -> a new compressed label)")


def equation7() -> None:
    print("\n=== Definition 3 + Equation 7 ===")
    g = cycle_graph(6).with_labels([0, 1, 0, 1, 0, 1])
    extractor = WLVertexFeatures(h=1)
    matrices, vocab = extract_vertex_feature_matrices([g], extractor)
    phi, _ = graph_feature_maps([g], extractor)
    print(f"  vertex feature maps: {matrices[0].shape} "
          f"({vocab.size} subtree patterns)")
    print("  sum of vertex maps == graph map:",
          bool(np.allclose(matrices[0].sum(axis=0), phi[0])))


def kernel_zoo() -> None:
    print("\n=== normalised kernel similarities: C6 vs C6 / C6 vs K6 ===")
    graphs = [cycle_graph(6), cycle_graph(6), complete_graph(6)]
    kernels = [
        GraphletKernel(k=4, samples=10, seed=0),
        ShortestPathKernel(),
        WeisfeilerLehmanKernel(2),
        RandomWalkKernel(steps=3),
        ReturnProbabilityKernel(steps=8),
        DeepGraphKernel(),
        GraphNeuralTangentKernel(blocks=2, mlp_layers=1),
    ]
    for kernel in kernels:
        gram = kernel.normalized_gram(graphs)
        print(f"  {kernel.name:<7s} k(C6, C6) = {gram[0, 1]:.3f}   "
              f"k(C6, K6) = {gram[0, 2]:.3f}")


def main() -> None:
    figure1()
    figure2()
    equation7()
    kernel_zoo()


if __name__ == "__main__":
    main()
