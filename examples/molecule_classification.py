#!/usr/bin/env python
"""Molecule activity classification: DeepMap vs its base graph kernels.

The paper's motivating bioinformatics scenario: predict whether a
chemical compound is active (NCI1-style anti-cancer screening).  This
example reproduces the paper's central comparison on one dataset — each
DeepMap variant against the R-convolution kernel whose vertex feature
maps it consumes (Table 2's layout).

Run:  python examples/molecule_classification.py
"""

from repro import make_dataset
from repro.core import deepmap_sp, deepmap_wl
from repro.eval import evaluate_kernel_svm, evaluate_neural_model
from repro.kernels import ShortestPathKernel, WeisfeilerLehmanKernel

FOLDS = 3
EPOCHS = 15


def main() -> None:
    dataset = make_dataset("NCI1", scale=0.03, seed=0)
    print(f"dataset: {dataset.name} with {len(dataset)} molecules "
          f"({dataset.statistics().num_labels} atom types)\n")

    pairs = [
        ("SP ", evaluate_kernel_svm(ShortestPathKernel(), dataset, FOLDS, seed=0)),
        ("DeepMap-SP", evaluate_neural_model(
            lambda fold: deepmap_sp(r=5, epochs=EPOCHS, seed=fold),
            dataset, FOLDS, seed=0, name="deepmap-sp")),
        ("WL ", evaluate_kernel_svm(WeisfeilerLehmanKernel(3), dataset, FOLDS, seed=0)),
        ("DeepMap-WL", evaluate_neural_model(
            lambda fold: deepmap_wl(h=3, r=5, epochs=EPOCHS, seed=fold),
            dataset, FOLDS, seed=0, name="deepmap-wl")),
    ]
    print(f"{'model':<12s} accuracy (mean +- std over {FOLDS} folds)")
    for name, result in pairs:
        print(f"{name:<12s} {result.formatted()}")

    print("\nNote: the deep map models should match or beat their base "
          "kernels — the paper's Table 2 shape.")


if __name__ == "__main__":
    main()
