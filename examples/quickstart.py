#!/usr/bin/env python
"""Quickstart: train DeepMap on a small benchmark and inspect its pieces.

Walks through the full pipeline of the paper:

1. build a graph dataset;
2. look at vertex alignment (eigenvector centrality ordering) and BFS
   receptive fields — the Fig. 3 machinery — on one concrete graph;
3. train DeepMap-WL and evaluate on a held-out split;
4. extract the learned deep graph feature maps (dense 8-d embeddings).

Run:  python examples/quickstart.py
"""

import numpy as np

from repro import deepmap_wl, make_dataset
from repro.core import centrality_scores, receptive_field, vertex_sequence
from repro.eval import train_test_split


def show_alignment(graph) -> None:
    """Print the Fig. 3 ingredients for one graph."""
    scores = centrality_scores(graph)
    sequence = vertex_sequence(graph, scores)
    print(f"  graph: {graph}")
    print("  eigenvector centrality:",
          np.array2string(scores, precision=3, suppress_small=True))
    print("  vertex sequence (desc. centrality):", sequence.tolist())
    for v in sequence[:3]:
        field = receptive_field(graph, int(v), r=4, scores=scores)
        print(f"  receptive field of vertex {v}: {field.tolist()}  (-1 = dummy)")


def main() -> None:
    print("=== 1. dataset ===")
    dataset = make_dataset("PTC_MR", scale=0.2, seed=0)
    stats = dataset.statistics()
    print(f"{stats.name}: {stats.size} graphs, {stats.num_classes} classes, "
          f"avg {stats.avg_nodes:.1f} vertices / {stats.avg_edges:.1f} edges")

    print("\n=== 2. vertex alignment + receptive fields (Fig. 3) ===")
    show_alignment(dataset.graphs[0])

    print("\n=== 3. train DeepMap-WL ===")
    train_idx, test_idx = train_test_split(dataset.y, test_fraction=0.2, seed=0)
    train_graphs = [dataset.graphs[i] for i in train_idx]
    test_graphs = [dataset.graphs[i] for i in test_idx]

    model = deepmap_wl(h=3, r=5, epochs=30, seed=0)
    model.fit(train_graphs, dataset.y[train_idx])
    accuracy = model.score(test_graphs, dataset.y[test_idx])
    print(f"held-out accuracy: {accuracy:.3f} "
          f"(final train accuracy {model.history_.train_accuracy[-1]:.3f})")

    print("\n=== 4. deep graph feature maps ===")
    embeddings = model.transform(test_graphs[:5])
    print(f"embedding shape: {embeddings.shape} (dense, low-dimensional)")
    print(np.array2string(embeddings, precision=2, suppress_small=True))


if __name__ == "__main__":
    main()
