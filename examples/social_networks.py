#!/usr/bin/env python
"""Social ego-network classification: DeepMap vs GNN baselines.

The paper's social-network scenario (IMDB collaboration ego networks,
degree vertex labels).  Compares DeepMap-WL against GIN and DGCNN under
the same protocol, plus GIN fed DeepMap's vertex feature maps (the
Table 4 experiment: is the gain the input or the architecture?).

Run:  python examples/social_networks.py
"""

from repro import make_dataset
from repro.baselines import DGCNNClassifier, GINClassifier
from repro.core import deepmap_wl
from repro.eval import evaluate_neural_model
from repro.features import WLVertexFeatures

FOLDS = 3
EPOCHS = 12


def main() -> None:
    dataset = make_dataset("IMDB-BINARY", scale=0.08, seed=0)
    print(f"dataset: {dataset.name} with {len(dataset)} ego networks\n")

    rows = [
        ("DeepMap-WL", lambda fold: deepmap_wl(h=2, r=5, epochs=EPOCHS, seed=fold)),
        ("GIN (one-hot)", lambda fold: GINClassifier(epochs=EPOCHS, seed=fold)),
        ("DGCNN (one-hot)", lambda fold: DGCNNClassifier(epochs=EPOCHS, seed=fold)),
        ("GIN (vertex feature maps)", lambda fold: GINClassifier(
            features=WLVertexFeatures(h=2), epochs=EPOCHS, seed=fold)),
    ]
    print(f"{'model':<28s} accuracy (mean +- std over {FOLDS} folds)")
    for name, factory in rows:
        result = evaluate_neural_model(factory, dataset, FOLDS, seed=0, name=name)
        print(f"{name:<28s} {result.formatted()}")


if __name__ == "__main__":
    main()
