#!/usr/bin/env python
"""Vertex-level learning with vertex feature maps (Section 7).

The paper's conclusion suggests the per-vertex representations can serve
for vertex classification.  This example probes two representations on a
vertex task (predicting whether a vertex is a hub, degree >= 3) with a
linear probe:

1. the *vertex feature maps* themselves (Definition 3, WL subtrees) —
   rich local-structure descriptors;
2. the *deep vertex feature maps* from a DeepMap model trained on the
   graph-level task (``transform_vertices``).

Expected outcome: the raw vertex feature maps solve the structural
vertex task easily, while the deep 8-channel embeddings are *task-
specialised* — the graph-level training objective keeps what separates
the graph classes and discards generic structure.  Both behaviours are
useful: raw maps for generic vertex tasks, deep maps for explaining the
graph decision (they satisfy phi(G) = sum_v phi_deep(v)).

Run:  python examples/vertex_classification.py
"""

import numpy as np

from repro import deepmap_wl
from repro.datasets import MoleculeGenerator, molecule_dataset
from repro.features import WLVertexFeatures, extract_vertex_feature_matrices


def linear_probe(train_x, train_y, test_x, test_y) -> float:
    """Ridge regression probe with a bias column."""
    mu, sd = train_x.mean(0), train_x.std(0) + 1e-9
    train_x = (train_x - mu) / sd
    test_x = (test_x - mu) / sd
    x = np.hstack([train_x, np.ones((len(train_x), 1))])
    w = np.linalg.lstsq(
        x.T @ x + 1e-2 * np.eye(x.shape[1]),
        x.T @ (2.0 * train_y - 1.0),
        rcond=None,
    )[0]
    xt = np.hstack([test_x, np.ones((len(test_x), 1))])
    return float(np.mean((xt @ w > 0).astype(int) == test_y))


def main() -> None:
    gen = MoleculeGenerator(avg_nodes=18, num_labels=8, ring_rate=1.2)
    graphs, y = molecule_dataset(gen, 60, seed=0)
    split = 45
    print(f"{len(graphs)} molecules; vertex task: hub prediction (degree >= 3)")

    targets = [(g.degrees() >= 3).astype(int) for g in graphs]
    train_t = np.concatenate(targets[:split])
    test_t = np.concatenate(targets[split:])
    majority = max(test_t.mean(), 1 - test_t.mean())

    # 1. raw vertex feature maps (Definition 3)
    matrices, vocab = extract_vertex_feature_matrices(graphs, WLVertexFeatures(h=1))
    raw_acc = linear_probe(
        np.vstack(matrices[:split]), train_t, np.vstack(matrices[split:]), test_t
    )
    print(f"\nraw WL vertex feature maps ({vocab.size}-d): "
          f"probe accuracy {raw_acc:.3f} (majority {majority:.3f})")

    # 2. deep vertex feature maps from a graph-level model
    model = deepmap_wl(h=1, r=4, epochs=20, seed=0)
    model.fit(graphs[:split], y[:split])
    deep_train = np.vstack(model.transform_vertices(graphs[:split]))
    deep_test = np.vstack(model.transform_vertices(graphs[split:]))
    deep_acc = linear_probe(deep_train, train_t, deep_test, test_t)
    print(f"deep vertex feature maps (8-d, graph-task-trained): "
          f"probe accuracy {deep_acc:.3f}")
    print("\nThe deep channels specialise to the graph-level classes; the "
          "raw maps retain generic structure. Deep vertex maps still "
          "explain the graph decision: sum_v phi_deep(v) == phi_deep(G).")

    graph_emb = model.transform(graphs[:3])
    vertex_emb = model.transform_vertices(graphs[:3])
    consistent = all(
        np.allclose(ve.sum(axis=0), ge) for ve, ge in zip(vertex_emb, graph_emb)
    )
    print(f"decomposition identity holds: {consistent}")


if __name__ == "__main__":
    main()
