#!/usr/bin/env python
"""Perf-regression gate over committed benchmark artifacts.

Compares a freshly generated benchmark artifact (``BENCH_hotpaths.json``
by default, or e.g. ``BENCH_obs.json`` via ``--current``) against a
baseline — by default the same-named file committed at ``HEAD`` — and
fails if any stage's *speedup* — instrumented-vs-baseline or
vectorized-vs-reference, both timed in the same process on the same
machine — has dropped by more than ``--tolerance`` (default 10%).
Comparing the ratio rather than raw wall-clock keeps the gate
machine-independent: a slower CI box slows both sides equally.

On top of the relative-drop check, the gate enforces any *absolute*
per-stage floors the current artifact declares under
``config.acceptance.floors`` (e.g. the WL radix remap and one-GEMM gram
assembly must each hold >= 3x regardless of what the baseline scored).

Typical use::

    python benchmarks/bench_hotpaths.py          # rewrites BENCH_hotpaths.json
    python scripts/check_bench_regression.py     # vs git HEAD's copy

or for the observability-overhead artifact::

    pytest benchmarks/bench_obs_overhead.py      # rewrites BENCH_obs.json
    python scripts/check_bench_regression.py --current BENCH_obs.json

or explicitly::

    python scripts/check_bench_regression.py --current BENCH_hotpaths.json \
        --baseline /path/to/old/BENCH_hotpaths.json

Exit status: 0 = no regression, 1 = regression, 2 = usage/data error.
"""

from __future__ import annotations

import argparse
import json
import subprocess
import sys
from pathlib import Path

REPO_ROOT = Path(__file__).resolve().parent.parent
DEFAULT_CURRENT = REPO_ROOT / "BENCH_hotpaths.json"


def load_baseline(path: str | None, current: str) -> dict:
    """Baseline JSON from ``path``, or from ``git show HEAD`` when omitted.

    The HEAD lookup uses the basename of ``current``, so gating
    ``BENCH_obs.json`` compares against the committed ``BENCH_obs.json``.
    """
    if path is not None:
        return json.loads(Path(path).read_text())
    artifact = Path(current).name
    proc = subprocess.run(
        ["git", "show", f"HEAD:{artifact}"],
        cwd=REPO_ROOT,
        capture_output=True,
        text=True,
    )
    if proc.returncode != 0:
        raise FileNotFoundError(
            f"no {artifact} committed at HEAD; pass --baseline"
        )
    return json.loads(proc.stdout)


def compare(current: dict, baseline: dict, tolerance: float) -> list[str]:
    """Return a list of human-readable regression messages (empty = pass)."""
    cur_stages = current.get("stages", {})
    base_stages = baseline.get("stages", {})
    if current.get("config", {}).get("smoke") or baseline.get("config", {}).get("smoke"):
        raise ValueError(
            "refusing to gate on smoke-mode numbers; rerun without REPRO_BENCH_SMOKE"
        )
    problems = []
    for stage, base in sorted(base_stages.items()):
        cur = cur_stages.get(stage)
        if cur is None:
            problems.append(f"{stage}: missing from current run")
            continue
        floor = base["speedup"] * (1.0 - tolerance)
        status = "ok" if cur["speedup"] >= floor else "REGRESSED"
        print(
            f"  {stage:<18s} baseline {base['speedup']:6.2f}x  "
            f"current {cur['speedup']:6.2f}x  floor {floor:6.2f}x  {status}"
        )
        if cur["speedup"] < floor:
            problems.append(
                f"{stage}: speedup {cur['speedup']:.2f}x fell below "
                f"{floor:.2f}x (baseline {base['speedup']:.2f}x - {tolerance:.0%})"
            )
    # Absolute floors declared by the current artifact itself: these are
    # acceptance criteria, not relative drift, so no tolerance applies.
    hard_floors = (
        current.get("config", {}).get("acceptance", {}).get("floors", {})
    )
    for stage, hard in sorted(hard_floors.items()):
        cur = cur_stages.get(stage)
        if cur is None:
            problems.append(f"{stage}: declared floor {hard}x but stage missing")
            continue
        status = "ok" if cur["speedup"] >= hard else "BELOW FLOOR"
        print(
            f"  {stage:<18s} absolute floor {hard:6.2f}x  "
            f"current {cur['speedup']:6.2f}x  {status}"
        )
        if cur["speedup"] < hard:
            problems.append(
                f"{stage}: speedup {cur['speedup']:.2f}x below the "
                f"absolute acceptance floor {hard:.2f}x"
            )
    return problems


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument(
        "--current",
        default=str(DEFAULT_CURRENT),
        help="freshly generated BENCH_hotpaths.json (default: repo root)",
    )
    parser.add_argument(
        "--baseline",
        default=None,
        help="baseline JSON path (default: BENCH_hotpaths.json at git HEAD)",
    )
    parser.add_argument(
        "--tolerance",
        type=float,
        default=0.10,
        help="allowed fractional speedup drop per stage (default 0.10)",
    )
    args = parser.parse_args(argv)

    try:
        current = json.loads(Path(args.current).read_text())
        baseline = load_baseline(args.baseline, args.current)
        problems = compare(current, baseline, args.tolerance)
    except (OSError, ValueError, KeyError) as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 2

    if problems:
        print("\nperf regression detected:", file=sys.stderr)
        for p in problems:
            print(f"  - {p}", file=sys.stderr)
        return 1
    print("\nno perf regression: every stage within tolerance of baseline")
    return 0


if __name__ == "__main__":
    sys.exit(main())
