#!/usr/bin/env python
"""Regenerate the golden end-to-end regression fixture.

Runs the full DeepMap path — vertex features (GK / SP / WL) -> aligned
receptive-field encoding -> CNN training -> GIN-style epoch selection —
on a tiny pinned-seed dataset and records the exact fold accuracies in
``tests/golden/expected.json``.

``tests/golden/test_golden.py`` recomputes the same runs and compares
against this file *exactly* (JSON float round-trips are lossless for
IEEE doubles, so equality is bitwise).  Any drift in kernels, encoding,
initialisation, optimisation, shuffling, or epoch selection fails the
test; rerun this script only when such a change is intentional.

Because the goldens are the repo's last line of defence against silent
numeric drift, regeneration is deliberately awkward: the script refuses
to run unless ``REPRO_GOLDEN_BREAK_OK=1`` is set, and it prints a
per-variant digest diff (old vs new) so the commit message can state
exactly which variants moved and why:

    REPRO_GOLDEN_BREAK_OK=1 PYTHONPATH=src python scripts/regen_golden.py
"""

from __future__ import annotations

import hashlib
import json
import os
import platform
import sys
from pathlib import Path

ROOT = Path(__file__).resolve().parents[1]
sys.path.insert(0, str(ROOT / "src"))

import numpy as np  # noqa: E402

from repro.core import deepmap_gk, deepmap_sp, deepmap_wl  # noqa: E402
from repro.datasets import make_dataset  # noqa: E402
from repro.eval import evaluate_neural_model  # noqa: E402

EXPECTED_PATH = ROOT / "tests" / "golden" / "expected.json"

# Keep these in lockstep with tests/golden/test_golden.py.
DATASET = {"name": "MUTAG", "scale": 0.05, "seed": 0}
N_SPLITS = 3
SEED = 0
EPOCHS = 4
VARIANTS = {
    "deepmap-gk": lambda fold: deepmap_gk(
        k=4, samples=10, r=3, epochs=EPOCHS, batch_size=16, seed=fold
    ),
    "deepmap-sp": lambda fold: deepmap_sp(
        r=3, epochs=EPOCHS, batch_size=16, seed=fold
    ),
    "deepmap-wl": lambda fold: deepmap_wl(
        h=2, r=3, epochs=EPOCHS, batch_size=16, seed=fold
    ),
}


def compute_results() -> dict:
    dataset = make_dataset(**DATASET)
    results = {}
    for name, factory in VARIANTS.items():
        cv = evaluate_neural_model(
            factory, dataset, n_splits=N_SPLITS, seed=SEED, name=name
        )
        results[name] = {
            "fold_accuracies": cv.fold_accuracies,
            "best_epoch": cv.best_epoch,
            "mean_curve": cv.extra["mean_curve"],
        }
    return results


def _variant_digest(entry: dict) -> str:
    """Content digest of one variant's golden numbers."""
    blob = json.dumps(entry, sort_keys=True).encode()
    return hashlib.blake2b(blob, digest_size=8).hexdigest()


def _load_previous() -> dict:
    if not EXPECTED_PATH.exists():
        return {}
    try:
        return json.loads(EXPECTED_PATH.read_text()).get("results", {})
    except (json.JSONDecodeError, OSError):
        return {}


def main() -> None:
    # Gate FIRST: regenerating goldens rewrites the repo's drift oracle,
    # so it must be an explicit, auditable decision — never a side effect
    # of running the script out of habit.
    if os.environ.get("REPRO_GOLDEN_BREAK_OK") != "1":
        print(
            "refusing to regenerate golden fixtures: set"
            " REPRO_GOLDEN_BREAK_OK=1 to confirm the break is intentional",
            file=sys.stderr,
        )
        raise SystemExit(2)
    previous = _load_previous()
    results = compute_results()
    payload = {
        "dataset": DATASET,
        "n_splits": N_SPLITS,
        "seed": SEED,
        "numpy": np.__version__,
        "python": platform.python_version(),
        "results": results,
    }
    EXPECTED_PATH.parent.mkdir(parents=True, exist_ok=True)
    EXPECTED_PATH.write_text(json.dumps(payload, indent=2) + "\n")
    print("digest diff (old -> new):")
    for name, entry in results.items():
        new_digest = _variant_digest(entry)
        old_digest = _variant_digest(previous[name]) if name in previous else "(absent)"
        marker = "  unchanged" if old_digest == new_digest else "  CHANGED"
        print(f"  {name}: {old_digest} -> {new_digest}{marker}")
    for name in previous.keys() - results.keys():
        print(f"  {name}: {_variant_digest(previous[name])} -> (removed)")
    for name, entry in results.items():
        accs = ", ".join(f"{a:.4f}" for a in entry["fold_accuracies"])
        print(f"{name}: folds [{accs}] best_epoch={entry['best_epoch']}")
    print(f"wrote {EXPECTED_PATH.relative_to(ROOT)}")


if __name__ == "__main__":
    main()
