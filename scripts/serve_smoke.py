#!/usr/bin/env python
"""End-to-end smoke test for the `repro serve` CLI.

Exercises the path no in-process test covers: the real console
entrypoint as a subprocess.  Trains a tiny model, saves it, boots
``python -m repro serve --model ... --port 0``, parses the ephemeral
port from the startup contract line, performs one predict round-trip
plus a /healthz and /metrics scrape, then sends SIGINT and checks the
process shuts down cleanly with exit code 0.

Run from the repository root (scripts/test-tiers.sh serve does):

    PYTHONPATH=src python scripts/serve_smoke.py
"""

from __future__ import annotations

import os
import re
import signal
import subprocess
import sys
import tempfile
import time

sys.path.insert(0, os.path.join(os.path.dirname(__file__), "..", "src"))

import numpy as np  # noqa: E402

from repro.core import deepmap_wl, save_model  # noqa: E402
from repro.graph import ensure_connected, erdos_renyi  # noqa: E402
from repro.serve import ServeClient  # noqa: E402

STARTUP_RE = re.compile(r"listening on (http://[\d.]+:\d+)")


def make_model_file(directory: str) -> tuple[str, list]:
    rng = np.random.default_rng(7)
    graphs, labels = [], []
    for i in range(10):
        g = ensure_connected(erdos_renyi(8, 0.25 if i % 2 == 0 else 0.6, rng), rng)
        graphs.append(g.with_labels((np.arange(8) % 3).tolist()))
        labels.append(i % 2)
    model = deepmap_wl(h=1, r=3, epochs=3, seed=0).fit(graphs, np.array(labels))
    path = os.path.join(directory, "smoke-model.pkl")
    save_model(model, path)
    return path, graphs


def wait_for_startup(proc: subprocess.Popen, timeout_s: float = 60.0) -> str:
    deadline = time.monotonic() + timeout_s
    assert proc.stdout is not None
    while time.monotonic() < deadline:
        line = proc.stdout.readline()
        if not line:
            raise SystemExit(
                f"server exited before startup (rc={proc.poll()}): "
                f"{proc.stderr.read() if proc.stderr else ''}"
            )
        sys.stdout.write(f"  server: {line}")
        match = STARTUP_RE.search(line)
        if match:
            return match.group(1)
    raise SystemExit("timed out waiting for the startup line")


def main() -> int:
    with tempfile.TemporaryDirectory(prefix="repro-serve-smoke-") as tmp:
        print("training + saving a tiny model...")
        model_path, graphs = make_model_file(tmp)

        env = dict(os.environ)
        env["PYTHONPATH"] = (
            os.path.join(os.path.dirname(__file__), "..", "src")
            + os.pathsep
            + env.get("PYTHONPATH", "")
        )
        cmd = [
            sys.executable,
            "-m",
            "repro",
            "serve",
            "--model",
            model_path,
            "--port",
            "0",
            "--max-batch",
            "8",
            "--max-wait-ms",
            "2",
        ]
        print(f"spawning: {' '.join(cmd)}")
        proc = subprocess.Popen(
            cmd,
            stdout=subprocess.PIPE,
            stderr=subprocess.PIPE,
            text=True,
            env=env,
        )
        try:
            url = wait_for_startup(proc)
            client = ServeClient(url)
            try:
                health = client.healthz()
                assert health["status"] == "ok", health
                labels = client.predict(graphs[:3])
                assert labels.shape == (3,), labels
                proba = client.predict_proba(graphs[:3])
                assert proba.shape[0] == 3 and np.allclose(proba.sum(axis=1), 1.0)
                metrics = client.metrics()
                assert "serve_batch_size" in metrics
                assert "serve_requests_shed_total" in metrics
            finally:
                client.close()
            print("round-trip ok; sending SIGINT")
            proc.send_signal(signal.SIGINT)
            rc = proc.wait(timeout=30)
            if rc != 0:
                print(f"FAIL: server exited with rc={rc}")
                print(proc.stderr.read() if proc.stderr else "")
                return 1
        finally:
            if proc.poll() is None:
                proc.kill()
                proc.wait(timeout=10)
    print("serve smoke test passed")
    return 0


if __name__ == "__main__":
    sys.exit(main())
