#!/bin/sh
# Test tiers for CI and local runs.
#
#   ./scripts/test-tiers.sh fast    tier 1: the whole suite minus -m slow
#                                   (slow = subprocess e2e + hypothesis
#                                   resume property tests)
#   ./scripts/test-tiers.sh faults  the crash-recovery fault matrix only
#                                   (tests/resilience, slow cases included)
#   ./scripts/test-tiers.sh serve   the inference-serving tier: tests/serve
#                                   (incl. the differential codec/backend
#                                   harness, binary-codec fuzz, pool fault
#                                   injection, autoscaler, canary/shadow
#                                   routing) plus an end-to-end CLI smoke
#                                   test that boots `repro serve` on an
#                                   ephemeral port, does one predict
#                                   round-trip, and checks clean SIGINT
#                                   shutdown, then a smoke-mode run of
#                                   the serve bench so the pool-scaling /
#                                   codec stages can't rot; full-scale
#                                   numbers + the regression gate on
#                                   BENCH_serve.json are a separate
#                                   manual step (see docs/SERVING.md)
#   ./scripts/test-tiers.sh obs     the observability tier: tests/obs
#                                   (tracing, SLOs, resources, metrics,
#                                   events) plus a smoke-mode run of the
#                                   disabled-overhead bench so the
#                                   zero-overhead harness itself can't
#                                   rot; full-scale numbers + the
#                                   regression gate on BENCH_obs.json
#                                   are a separate manual step (see
#                                   docs/OBSERVABILITY.md)
#   ./scripts/test-tiers.sh kernels the kernel/gram tier: the differential
#                                   equivalence harness (tests/equivalence),
#                                   the kernel unit suite (tests/kernels),
#                                   the fork-pool gram-parity and cache-key
#                                   stability suites (tests/parallel), and a
#                                   smoke-mode run of the hot-path bench so
#                                   the gram/encode bench stages can't rot
#   ./scripts/test-tiers.sh stream  the streaming out-of-core tier:
#                                   tests/stream (prefetcher semantics,
#                                   shard store, mmap cache reads, fault
#                                   injection at prefetch_worker) plus the
#                                   streamed-vs-materialized bitwise
#                                   equivalence suite, then a smoke-mode
#                                   run of the stream bench so the
#                                   harness can't rot; full-scale numbers
#                                   + the regression gate on
#                                   BENCH_stream.json are a separate
#                                   manual step (see docs/STREAMING.md)
#   ./scripts/test-tiers.sh dist    the distributed-CV tier: tests/dist
#                                   (wire format, shard store parity, KV
#                                   fallthrough, coordinator scheduling,
#                                   subprocess worker e2e incl. kill-fault
#                                   reassignment) plus the fold-claims
#                                   race suite, then a smoke-mode run of
#                                   the dist scaling bench so the harness
#                                   can't rot; full-scale numbers + the
#                                   regression gate on BENCH_dist.json
#                                   are a separate manual step (see
#                                   docs/DISTRIBUTED.md)
#   ./scripts/test-tiers.sh full    tier 1 + slow, then tier 1 again with
#                                   REPRO_WORKERS=2 so every fold-parallel
#                                   code path runs through the fork pool
#   ./scripts/test-tiers.sh perf    the differential-equivalence harness
#                                   (tests/equivalence: vectorized hot
#                                   paths vs their _reference_* oracles,
#                                   bitwise) plus a smoke-mode run of the
#                                   hot-path bench to keep the perf
#                                   harness itself from rotting; full-
#                                   scale numbers + the regression gate
#                                   are a separate manual step (see
#                                   docs/PERFORMANCE.md)
#
# Run from the repository root.  Extra arguments pass through to pytest.
set -eu

tier="${1:-fast}"
[ $# -gt 0 ] && shift

cd "$(dirname "$0")/.."
PYTHONPATH="src${PYTHONPATH:+:$PYTHONPATH}"
export PYTHONPATH

case "$tier" in
    fast)
        python -m pytest tests/ -m "not slow" "$@"
        ;;
    faults)
        python -m pytest tests/resilience/ "$@"
        ;;
    serve)
        python -m pytest tests/serve/ "$@"
        python scripts/serve_smoke.py
        REPRO_BENCH_SMOKE=1 python -m pytest benchmarks/bench_serve_latency.py "$@"
        ;;
    obs)
        python -m pytest tests/obs/ "$@"
        REPRO_BENCH_SMOKE=1 python -m pytest benchmarks/bench_obs_overhead.py "$@"
        ;;
    stream)
        python -m pytest tests/stream/ tests/equivalence/test_stream_equiv.py "$@"
        REPRO_BENCH_SMOKE=1 python -m pytest benchmarks/bench_stream_pipeline.py "$@"
        ;;
    dist)
        python -m pytest tests/dist/ tests/resilience/test_journal_claims.py "$@"
        REPRO_BENCH_SMOKE=1 python -m pytest benchmarks/bench_dist_cv.py "$@"
        ;;
    full)
        python -m pytest tests/ "$@"
        REPRO_WORKERS=2 python -m pytest tests/ -m "not slow" "$@"
        ;;
    perf)
        python -m pytest tests/equivalence/ "$@"
        REPRO_BENCH_SMOKE=1 python -m pytest benchmarks/bench_hotpaths.py "$@"
        ;;
    kernels)
        python -m pytest tests/equivalence/ tests/kernels/ tests/parallel/ "$@"
        REPRO_BENCH_SMOKE=1 python -m pytest benchmarks/bench_hotpaths.py "$@"
        ;;
    *)
        echo "usage: $0 {fast|faults|serve|obs|stream|dist|full|perf|kernels} [pytest args...]" >&2
        exit 2
        ;;
esac
