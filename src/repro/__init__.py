"""repro — a from-scratch reproduction of DeepMap.

"Learning Deep Graph Representations via Convolutional Neural Networks"
(Ye, Askarisichani, Jones, Singh): CNNs on graph-kernel vertex feature
maps, with eigenvector-centrality vertex alignment and BFS receptive
fields.

Public API highlights:

* :class:`repro.Graph` — the graph type.
* :func:`repro.deepmap_wl` / ``deepmap_sp`` / ``deepmap_gk`` — the three
  DeepMap variants as fit/predict estimators.
* :mod:`repro.kernels` — GK, SP, WL, random-walk, RetGK, DGK, GNTK.
* :mod:`repro.baselines` — GIN, DGCNN, DCNN, PATCHY-SAN.
* :func:`repro.make_dataset` — the 15 synthetic benchmark datasets.
* :mod:`repro.eval` — the paper's 10-fold CV protocols.
"""

from repro.core import (
    DeepMapClassifier,
    DeepMapEncoder,
    build_deepmap_cnn,
    deepmap_gk,
    deepmap_sp,
    deepmap_wl,
)
from repro.datasets import DATASET_NAMES, GraphDataset, make_dataset
from repro.eval import evaluate_kernel_svm, evaluate_neural_model
from repro.graph import Graph

__version__ = "1.0.0"

__all__ = [
    "Graph",
    "DeepMapClassifier",
    "DeepMapEncoder",
    "build_deepmap_cnn",
    "deepmap_gk",
    "deepmap_sp",
    "deepmap_wl",
    "GraphDataset",
    "make_dataset",
    "DATASET_NAMES",
    "evaluate_kernel_svm",
    "evaluate_neural_model",
    "__version__",
]
