"""GNN baselines of the paper's evaluation (Tables 3, 4, 5)."""

from repro.baselines.common import (
    GNNBaseline,
    PaddedBatch,
    normalized_adjacency,
    one_hot_label_features,
    pad_graph_batch,
)
from repro.baselines.dcnn import DCNNClassifier, DCNNNetwork, diffusion_features
from repro.baselines.dgcnn import DGCNNClassifier, DGCNNNetwork, SortPooling
from repro.baselines.gat import GATClassifier, GATNetwork
from repro.baselines.gcn import GCNClassifier, GCNNetwork
from repro.baselines.ngf import NGFClassifier, NGFNetwork
from repro.baselines.gin import GINClassifier, GINNetwork
from repro.baselines.patchysan import PatchySanClassifier, encode_patchysan

__all__ = [
    "GNNBaseline",
    "PaddedBatch",
    "pad_graph_batch",
    "one_hot_label_features",
    "normalized_adjacency",
    "GINClassifier",
    "GINNetwork",
    "DGCNNClassifier",
    "DGCNNNetwork",
    "SortPooling",
    "DCNNClassifier",
    "DCNNNetwork",
    "diffusion_features",
    "PatchySanClassifier",
    "encode_patchysan",
    "GCNClassifier",
    "GCNNetwork",
    "GATClassifier",
    "GATNetwork",
    "NGFClassifier",
    "NGFNetwork",
]
