"""Shared machinery for the GNN baselines.

All four baselines (GIN, DGCNN, DCNN, PATCHY-SAN) consume *padded dense
batches*: vertex features ``(B, w, d)``, adjacency ``(B, w, w)`` and a
validity mask ``(B, w)``.  Padding rows are all-zero and padded adjacency
rows/columns are zero, so message passing never mixes padding into real
vertices; readouts apply the mask explicitly.

Two input featurisations exist, matching the paper's Tables 3 and 4:

* :func:`one_hot_label_features` — "the inputs to DGCNN and GIN are the
  one-hot encodings of vertex labels" (Table 3);
* the vertex feature maps of :mod:`repro.features` (Table 4, "other GNNs
  with the same input of vertex feature maps").
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.features.vocabulary import FeatureVocabulary
from repro.graph.graph import Graph
from repro.nn.model import History, Trainer, predict_labels
from repro.utils.rng import as_rng
from repro.utils.validation import check_fitted, check_labels

__all__ = [
    "PaddedBatch",
    "pad_graph_batch",
    "one_hot_label_features",
    "normalized_adjacency",
    "GNNBaseline",
]


@dataclass
class PaddedBatch:
    """Dense padded tensors for a list of graphs."""

    features: np.ndarray  # (B, w, d)
    adjacency: np.ndarray  # (B, w, w) — raw 0/1, no self-loops
    mask: np.ndarray  # (B, w)

    @property
    def w(self) -> int:
        return self.features.shape[1]

    @property
    def dim(self) -> int:
        return self.features.shape[2]

    def as_inputs(self) -> tuple[np.ndarray, np.ndarray, np.ndarray]:
        """Tuple form consumed by the trainer (sliceable on axis 0)."""
        return (self.features, self.adjacency, self.mask)


def pad_graph_batch(
    graphs: list[Graph], feature_matrices: list[np.ndarray], w: int | None = None
) -> PaddedBatch:
    """Stack graphs into padded dense tensors.

    Graphs larger than ``w`` (possible for held-out graphs when ``w`` was
    fixed on a training set) keep their first ``w`` vertices.
    """
    if len(graphs) != len(feature_matrices):
        raise ValueError("graphs and feature matrices must align")
    if not graphs:
        raise ValueError("need at least one graph")
    if w is None:
        w = max(g.n for g in graphs)
    d = feature_matrices[0].shape[1]
    b = len(graphs)
    feats = np.zeros((b, w, d), dtype=np.float64)
    adj = np.zeros((b, w, w), dtype=np.float64)
    mask = np.zeros((b, w), dtype=np.float64)
    for i, (g, x) in enumerate(zip(graphs, feature_matrices)):
        k = min(g.n, w)
        feats[i, :k] = x[:k]
        a = g.adjacency_matrix()
        adj[i, :k, :k] = a[:k, :k]
        mask[i, :k] = 1.0
    return PaddedBatch(features=feats, adjacency=adj, mask=mask)


def one_hot_label_features(
    graphs: list[Graph], vocabulary: FeatureVocabulary | None = None
) -> tuple[list[np.ndarray], FeatureVocabulary]:
    """One-hot encodings of vertex labels (the GNN papers' input).

    Pass a frozen ``vocabulary`` to encode held-out graphs in the training
    label space (unknown labels become zero rows).
    """
    if vocabulary is None:
        vocabulary = FeatureVocabulary()
        for g in graphs:
            vocabulary.add_all(int(l) for l in g.labels)
        vocabulary.freeze()
    matrices = []
    for g in graphs:
        mat = np.zeros((g.n, vocabulary.size), dtype=np.float64)
        for v in range(g.n):
            key = int(g.labels[v])
            if key in vocabulary:
                mat[v, vocabulary.index(key)] = 1.0
        matrices.append(mat)
    return matrices, vocabulary


def normalized_adjacency(adjacency: np.ndarray, add_self_loops: bool = True) -> np.ndarray:
    """Row-normalised (batched) adjacency ``D^-1 (A + I)`` respecting padding.

    Padding rows stay all-zero (their degree is zero, guarded against
    division by zero), so propagation cannot resurrect padded vertices.
    """
    a = adjacency.copy()
    if add_self_loops:
        # Self-loops only where the vertex exists (row or column non-empty
        # OR degree zero but real — callers pass masked adjacency, so we
        # add loops on the diagonal and later multiply by the mask).
        idx = np.arange(a.shape[1])
        a[:, idx, idx] += 1.0
    deg = a.sum(axis=2, keepdims=True)
    deg[deg == 0] = 1.0
    return a / deg


class GNNBaseline:
    """Base estimator: class mapping, trainer protocol, fit/predict glue.

    Subclasses implement ``_prepare(graphs, fit)`` returning trainer
    inputs, and ``_build(num_classes)`` returning the network.
    """

    def __init__(
        self,
        features="onehot",
        epochs: int = 50,
        batch_size: int = 32,
        seed: int | None = 0,
    ) -> None:
        self.features = features
        self.epochs = epochs
        self.batch_size = batch_size
        self.seed = seed
        self.classes_: np.ndarray | None = None
        self.network_ = None
        self.history_: History | None = None
        self.vocabulary_: FeatureVocabulary | None = None

    def _featurize(self, graphs: list[Graph], fit: bool) -> list[np.ndarray]:
        """Vertex input features: one-hot labels or vertex feature maps.

        ``features="onehot"`` reproduces the GNN papers' input (Table 3);
        passing a :class:`~repro.features.VertexFeatureExtractor` feeds the
        baselines DeepMap's vertex feature maps (Table 4).
        """
        if self.features == "onehot":
            matrices, vocab = one_hot_label_features(
                graphs, None if fit else self.vocabulary_
            )
            if fit:
                self.vocabulary_ = vocab
            return matrices
        counts = self.features.extract(graphs)
        if fit:
            vocab = FeatureVocabulary()
            for vertex_counts in counts:
                for counter in vertex_counts:
                    vocab.add_all(counter.keys())
            self.vocabulary_ = vocab.freeze()
        check_fitted(self, "vocabulary_")
        assert self.vocabulary_ is not None
        return [self.vocabulary_.vectorize_rows(vc) for vc in counts]

    # Subclass hooks ----------------------------------------------------
    def _prepare(self, graphs: list[Graph], fit: bool):
        raise NotImplementedError

    def _build(self, num_classes: int, rng: np.random.Generator):
        raise NotImplementedError

    # ------------------------------------------------------------------
    def fit(
        self,
        graphs: list[Graph],
        y: np.ndarray | list,
        validation: tuple[list[Graph], np.ndarray] | None = None,
        epoch_callback=None,
    ):
        y = check_labels(y)
        if len(graphs) != y.size:
            raise ValueError(f"{len(graphs)} graphs but {y.size} labels")
        self.classes_ = np.unique(y)
        class_index = {int(c): i for i, c in enumerate(self.classes_)}
        targets = np.array([class_index[int(v)] for v in y])
        inputs = self._prepare(graphs, fit=True)
        rng = as_rng(self.seed)
        self.network_ = self._build(self.classes_.size, rng)
        trainer = Trainer(
            batch_size=self.batch_size,
            epochs=self.epochs,
            seed=rng.integers(0, 2**31 - 1),
        )
        val_data = None
        if validation is not None:
            val_graphs, val_y = validation
            val_y = check_labels(val_y)
            val_targets = np.array([class_index[int(v)] for v in val_y])
            val_data = (self._prepare(val_graphs, fit=False), val_targets)
        self.history_ = trainer.fit(
            self.network_, inputs, targets, validation=val_data,
            epoch_callback=epoch_callback,
        )
        return self

    def predict(self, graphs: list[Graph]) -> np.ndarray:
        check_fitted(self, "network_")
        assert self.classes_ is not None
        inputs = self._prepare(graphs, fit=False)
        return self.classes_[predict_labels(self.network_, inputs)]

    def score(self, graphs: list[Graph], y: np.ndarray | list) -> float:
        y = check_labels(y)
        return float(np.mean(self.predict(graphs) == y))
