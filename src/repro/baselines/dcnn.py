"""DCNN — Diffusion-Convolutional Neural Network (Atwood & Towsley 2016).

For graph classification DCNN computes, per graph, the diffusion tensor
``[mean_v (P^j X)_v for j = 1..H]`` (``P`` the random-walk transition
matrix), multiplies it elementwise with learned weights, applies tanh and
classifies with a dense layer.  The diffusion tensor is input data (it has
no parameters), so it is precomputed in ``_prepare``.
"""

from __future__ import annotations

import numpy as np

from repro.baselines.common import GNNBaseline
from repro.graph.graph import Graph
from repro.nn.activations import Tanh
from repro.nn.dense import Dense
from repro.nn.module import Network, Parameter
from repro.nn.pooling import Flatten
from repro.utils.rng import as_rng
from repro.utils.validation import check_positive

__all__ = ["DCNNClassifier", "DCNNNetwork", "diffusion_features"]


def diffusion_features(g: Graph, x: np.ndarray, hops: int) -> np.ndarray:
    """``(hops, d)`` mean diffusion features of graph ``g``.

    Row ``j`` is the vertex-mean of ``P^{j+1} X`` where ``P`` is the
    row-normalised adjacency (random-walk transition matrix).
    """
    check_positive("hops", hops)
    if g.n == 0:
        return np.zeros((hops, x.shape[1]))
    a = g.adjacency_matrix()
    deg = a.sum(axis=1)
    deg[deg == 0] = 1.0
    p = a / deg[:, None]
    out = np.empty((hops, x.shape[1]), dtype=np.float64)
    cur = x
    for j in range(hops):
        cur = p @ cur
        out[j] = cur.mean(axis=0)
    return out


class DCNNNetwork(Network):
    """Elementwise diffusion weights + tanh + dense classifier."""

    def __init__(
        self,
        hops: int,
        in_dim: int,
        num_classes: int,
        rng: np.random.Generator | int | None = 0,
    ) -> None:
        rng = as_rng(rng)
        self.weight = Parameter(
            rng.normal(0.0, 1.0, size=(hops, in_dim)), name="dcnn.weight"
        )
        self.act = Tanh()
        self.flatten = Flatten()
        self.classifier = Dense(hops * in_dim, num_classes, rng=rng)
        self._x: np.ndarray | None = None

    def forward(self, x, training: bool = False) -> np.ndarray:
        if isinstance(x, tuple):
            (x,) = x
        self._x = x  # (B, hops, d)
        z = self.act.forward(x * self.weight.value[None], training)
        z = self.flatten.forward(z, training)
        return self.classifier.forward(z, training)

    def backward(self, grad: np.ndarray) -> None:
        assert self._x is not None
        grad = self.classifier.backward(grad)
        grad = self.flatten.backward(grad)
        grad = self.act.backward(grad)
        self.weight.grad += (grad * self._x).sum(axis=0)

    def parameters(self) -> list[Parameter]:
        return [self.weight] + self.classifier.parameters()


class DCNNClassifier(GNNBaseline):
    """DCNN estimator with ``hops`` diffusion steps (original paper: 2-5)."""

    name = "dcnn"

    def __init__(
        self,
        features="onehot",
        hops: int = 3,
        epochs: int = 50,
        batch_size: int = 32,
        seed: int | None = 0,
    ) -> None:
        super().__init__(features=features, epochs=epochs, batch_size=batch_size, seed=seed)
        check_positive("hops", hops)
        self.hops = hops
        self._dim: int | None = None

    def _prepare(self, graphs: list[Graph], fit: bool):
        matrices = self._featurize(graphs, fit)
        if fit:
            self._dim = matrices[0].shape[1]
        tensor = np.stack(
            [diffusion_features(g, x, self.hops) for g, x in zip(graphs, matrices)]
        )
        return tensor

    def _build(self, num_classes: int, rng: np.random.Generator):
        assert self._dim is not None
        return DCNNNetwork(
            hops=self.hops, in_dim=self._dim, num_classes=num_classes, rng=rng
        )
