"""DGCNN — Deep Graph CNN with SortPooling (Zhang et al., AAAI 2018).

Stacked graph convolutions ``Z_t = tanh(D^-1 (A + I) Z_{t-1} W_t)`` whose
channel-wise concatenation feeds the *SortPooling* layer: vertices are
sorted by their last convolution channel (a WL-color-like continuous
signature) and the top ``k`` rows are kept, giving a fixed-size tensor a
conventional 1-D CNN + dense head can classify.
"""

from __future__ import annotations

import numpy as np

from repro.baselines.common import GNNBaseline, normalized_adjacency, pad_graph_batch
from repro.graph.graph import Graph
from repro.nn.activations import ReLU, Tanh
from repro.nn.conv1d import Conv1D
from repro.nn.dense import Dense
from repro.nn.dropout import Dropout
from repro.nn.module import Network, Parameter
from repro.nn.pooling import Flatten
from repro.utils.rng import as_rng
from repro.utils.validation import check_positive

__all__ = ["DGCNNClassifier", "DGCNNNetwork", "SortPooling"]


class SortPooling:
    """Keep the top-``k`` vertices sorted by the last feature channel.

    Padded vertices sort last (their channel value is forced below any
    real vertex).  Backward scatters gradients to the selected rows.
    """

    def __init__(self, k: int) -> None:
        check_positive("k", k)
        self.k = k
        self._src: np.ndarray | None = None
        self._in_shape: tuple[int, ...] | None = None

    def forward(self, z: np.ndarray, mask: np.ndarray) -> np.ndarray:
        b, w, c = z.shape
        key = z[:, :, -1].copy()
        # Push padding to the bottom regardless of its channel value.
        key = np.where(mask > 0, key, -np.inf)
        order = np.argsort(-key, axis=1, kind="stable")  # descending
        take = order[:, : self.k]
        rows = np.arange(b)[:, None]
        out = z[rows, take]
        # Zero rows that were padding (possible when fewer than k real).
        selected_mask = mask[rows, take]
        out = out * selected_mask[:, :, None]
        self._src = take
        self._sel_mask = selected_mask
        self._in_shape = z.shape
        return out

    def backward(self, grad: np.ndarray) -> np.ndarray:
        assert self._src is not None and self._in_shape is not None
        dz = np.zeros(self._in_shape, dtype=np.float64)
        rows = np.arange(grad.shape[0])[:, None]
        np.add.at(dz, (rows, self._src), grad * self._sel_mask[:, :, None])
        return dz


class _GraphConv:
    """One DGCNN conv: ``Z' = tanh(P Z W)`` with row-normalised ``P``."""

    def __init__(self, in_dim: int, out_dim: int, rng: np.random.Generator) -> None:
        self.fc = Dense(in_dim, out_dim, use_bias=False, rng=rng)
        self.act = Tanh()
        self._p: np.ndarray | None = None

    def forward(self, h: np.ndarray, p: np.ndarray, training: bool) -> np.ndarray:
        self._p = p
        z = self.fc.forward(h, training)
        z = p @ z
        return self.act.forward(z, training)

    def backward(self, grad: np.ndarray) -> np.ndarray:
        assert self._p is not None
        grad = self.act.backward(grad)
        grad = np.swapaxes(self._p, 1, 2) @ grad
        return self.fc.backward(grad)

    def parameters(self) -> list[Parameter]:
        return self.fc.parameters()


class DGCNNNetwork(Network):
    """Graph conv stack -> SortPooling -> 1-D conv -> dense head."""

    def __init__(
        self,
        in_dim: int,
        num_classes: int,
        conv_channels: tuple[int, ...] = (32, 32, 1),
        sort_k: int = 16,
        head_channels: int = 16,
        dense_units: int = 128,
        dropout: float = 0.5,
        rng: np.random.Generator | int | None = 0,
    ) -> None:
        rng = as_rng(rng)
        dims = [in_dim] + list(conv_channels)
        self.convs = [
            _GraphConv(dims[i], dims[i + 1], rng) for i in range(len(conv_channels))
        ]
        total = sum(conv_channels)
        self.sort_pool = SortPooling(sort_k)
        self.conv1d = Conv1D(total, head_channels, kernel_size=1, rng=rng)
        self.act = ReLU()
        self.flatten = Flatten()
        self.fc1 = Dense(sort_k * head_channels, dense_units, rng=rng)
        self.act2 = ReLU()
        self.dropout = Dropout(dropout, rng=rng)
        self.fc2 = Dense(dense_units, num_classes, rng=rng)
        self._channels = list(conv_channels)

    def forward(self, x, training: bool = False) -> np.ndarray:
        feats, adjacency, mask = x
        p = normalized_adjacency(adjacency)
        h = feats
        zs = []
        for conv in self.convs:
            h = conv.forward(h, p, training)
            zs.append(h)
        z = np.concatenate(zs, axis=2)
        z = self.sort_pool.forward(z, mask)
        z = self.act.forward(self.conv1d.forward(z, training), training)
        z = self.flatten.forward(z, training)
        z = self.act2.forward(self.fc1.forward(z, training), training)
        z = self.dropout.forward(z, training)
        return self.fc2.forward(z, training)

    def backward(self, grad: np.ndarray) -> None:
        grad = self.fc2.backward(grad)
        grad = self.dropout.backward(grad)
        grad = self.fc1.backward(self.act2.backward(grad))
        grad = self.flatten.backward(grad)
        grad = self.conv1d.backward(self.act.backward(grad))
        grad = self.sort_pool.backward(grad)
        splits = np.cumsum(self._channels)[:-1]
        grads = np.split(grad, splits, axis=2)
        dh = None
        for conv, g in zip(reversed(self.convs), reversed(grads)):
            total = g if dh is None else g + dh
            dh = conv.backward(total)

    def parameters(self) -> list[Parameter]:
        params = [p for conv in self.convs for p in conv.parameters()]
        return (
            params
            + self.conv1d.parameters()
            + self.fc1.parameters()
            + self.fc2.parameters()
        )


class DGCNNClassifier(GNNBaseline):
    """DGCNN estimator.

    ``sort_k`` defaults to None = the 60th percentile of training graph
    sizes, as the original paper recommends.
    """

    name = "dgcnn"

    def __init__(
        self,
        features="onehot",
        conv_channels: tuple[int, ...] = (32, 32, 1),
        sort_k: int | None = None,
        epochs: int = 50,
        batch_size: int = 32,
        seed: int | None = 0,
    ) -> None:
        super().__init__(features=features, epochs=epochs, batch_size=batch_size, seed=seed)
        self.conv_channels = conv_channels
        self.sort_k = sort_k
        self._w: int | None = None
        self._dim: int | None = None
        self._k: int | None = None

    def _prepare(self, graphs: list[Graph], fit: bool):
        matrices = self._featurize(graphs, fit)
        if fit:
            self._w = max(g.n for g in graphs)
            self._dim = matrices[0].shape[1]
            if self.sort_k is not None:
                self._k = self.sort_k
            else:
                sizes = sorted(g.n for g in graphs)
                self._k = max(2, sizes[int(0.6 * (len(sizes) - 1))])
        batch = pad_graph_batch(graphs, matrices, w=self._w)
        return batch.as_inputs()

    def _build(self, num_classes: int, rng: np.random.Generator):
        assert self._dim is not None and self._k is not None
        return DGCNNNetwork(
            in_dim=self._dim,
            num_classes=num_classes,
            conv_channels=self.conv_channels,
            sort_k=self._k,
            rng=rng,
        )
