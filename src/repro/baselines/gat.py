"""GAT — Graph Attention Network (Velickovic et al., ICLR 2018).

Section 2.2 of the paper discusses GAT as the self-attention GNN that
"specifies different weights to different vertices in a neighborhood".
For graph classification we stack masked multi-head attention layers and
read out with a masked mean, as with the GCN adaptation.

Each head computes

    e_ij   = LeakyReLU(a_src . (W h_i) + a_dst . (W h_j))
    alpha  = softmax_j(e_ij)  over j in N(i) + {i}
    h'_i   = sum_j alpha_ij (W h_j)

with the softmax masked to existing edges (padding rows attend only to
themselves, keeping them inert).  The backward pass is derived by hand
and verified against finite differences in the tests.
"""

from __future__ import annotations

import numpy as np

from repro.baselines.common import GNNBaseline, pad_graph_batch
from repro.graph.graph import Graph
from repro.nn.dense import Dense
from repro.nn.dropout import Dropout
from repro.nn.initializers import glorot_uniform
from repro.nn.module import Network, Parameter
from repro.utils.rng import as_rng
from repro.utils.validation import check_positive

__all__ = ["GATClassifier", "GATNetwork"]

_LEAKY_SLOPE = 0.2


class _AttentionHead:
    """One attention head with exact backward."""

    def __init__(self, in_dim: int, out_dim: int, rng: np.random.Generator) -> None:
        self.weight = Parameter(
            glorot_uniform((in_dim, out_dim), in_dim, out_dim, rng), name="gat.W"
        )
        self.a_src = Parameter(
            glorot_uniform((out_dim,), out_dim, 1, rng), name="gat.a_src"
        )
        self.a_dst = Parameter(
            glorot_uniform((out_dim,), out_dim, 1, rng), name="gat.a_dst"
        )
        self._cache: tuple | None = None

    def forward(self, h: np.ndarray, attend: np.ndarray) -> np.ndarray:
        """``attend``: (B, w, w) 0/1 — who may attend to whom (incl self)."""
        z = h @ self.weight.value  # (B, w, F')
        s_src = z @ self.a_src.value  # (B, w)
        s_dst = z @ self.a_dst.value  # (B, w)
        e = s_src[:, :, None] + s_dst[:, None, :]
        leaky_mask = e > 0
        e = np.where(leaky_mask, e, _LEAKY_SLOPE * e)
        e = np.where(attend > 0, e, -1e30)
        e -= e.max(axis=2, keepdims=True)
        exp = np.exp(e) * (attend > 0)
        denom = np.maximum(exp.sum(axis=2, keepdims=True), 1e-30)
        alpha = exp / denom  # (B, w, w)
        out = alpha @ z
        self._cache = (h, z, alpha, leaky_mask, attend)
        return out

    def backward(self, grad: np.ndarray) -> np.ndarray:
        assert self._cache is not None
        h, z, alpha, leaky_mask, attend = self._cache
        # out = alpha @ z
        dalpha = grad @ np.swapaxes(z, 1, 2)  # (B, w, w)
        dz = np.swapaxes(alpha, 1, 2) @ grad  # (B, w, F')
        # softmax over axis 2
        de = alpha * (dalpha - (dalpha * alpha).sum(axis=2, keepdims=True))
        # masked entries have alpha == 0, so de is already zero there
        de = np.where(leaky_mask, de, _LEAKY_SLOPE * de)
        ds_src = de.sum(axis=2)  # (B, w)
        ds_dst = de.sum(axis=1)  # (B, w)
        # s_src = z @ a_src, s_dst = z @ a_dst
        self.a_src.grad += np.einsum("bw,bwf->f", ds_src, z)
        self.a_dst.grad += np.einsum("bw,bwf->f", ds_dst, z)
        dz += ds_src[:, :, None] * self.a_src.value[None, None, :]
        dz += ds_dst[:, :, None] * self.a_dst.value[None, None, :]
        # z = h @ W
        h2 = h.reshape(-1, h.shape[-1])
        dz2 = dz.reshape(-1, dz.shape[-1])
        self.weight.grad += h2.T @ dz2
        return dz @ self.weight.value.T

    def parameters(self) -> list[Parameter]:
        return [self.weight, self.a_src, self.a_dst]


class _GATLayer:
    """Multi-head attention with ELU activation and head concatenation."""

    def __init__(
        self, in_dim: int, out_dim: int, heads: int, rng: np.random.Generator
    ) -> None:
        self.heads = [_AttentionHead(in_dim, out_dim, rng) for _ in range(heads)]
        self._elu_cache: np.ndarray | None = None

    @property
    def out_dim(self) -> int:
        return len(self.heads) * self.heads[0].weight.value.shape[1]

    def forward(self, h: np.ndarray, attend: np.ndarray) -> np.ndarray:
        out = np.concatenate([head.forward(h, attend) for head in self.heads], axis=2)
        self._elu_cache = out
        return np.where(out > 0, out, np.exp(np.minimum(out, 0.0)) - 1.0)

    def backward(self, grad: np.ndarray) -> np.ndarray:
        assert self._elu_cache is not None
        pre = self._elu_cache
        grad = np.where(pre > 0, grad, grad * np.exp(np.minimum(pre, 0.0)))
        splits = np.split(grad, len(self.heads), axis=2)
        dh = None
        for head, g in zip(self.heads, splits):
            part = head.backward(g)
            dh = part if dh is None else dh + part
        return dh

    def parameters(self) -> list[Parameter]:
        return [p for head in self.heads for p in head.parameters()]


class GATNetwork(Network):
    """GAT layer stack + masked mean readout + dense classifier."""

    def __init__(
        self,
        in_dim: int,
        hidden: int,
        num_layers: int,
        num_classes: int,
        heads: int = 2,
        dropout: float = 0.5,
        rng: np.random.Generator | int | None = 0,
    ) -> None:
        check_positive("hidden", hidden)
        check_positive("num_layers", num_layers)
        check_positive("heads", heads)
        rng = as_rng(rng)
        self.layers: list[_GATLayer] = []
        dim = in_dim
        for _ in range(num_layers):
            layer = _GATLayer(dim, hidden, heads, rng)
            self.layers.append(layer)
            dim = layer.out_dim
        self.dropout = Dropout(dropout, rng=rng)
        self.classifier = Dense(dim, num_classes, rng=rng)
        self._mask: np.ndarray | None = None
        self._counts: np.ndarray | None = None

    def forward(self, x, training: bool = False) -> np.ndarray:
        feats, adjacency, mask = x
        attend = adjacency.copy()
        idx = np.arange(attend.shape[1])
        attend[:, idx, idx] = 1.0  # self-attention keeps isolated rows sane
        h = feats
        for layer in self.layers:
            h = layer.forward(h, attend)
        counts = np.maximum(mask.sum(axis=1, keepdims=True), 1.0)
        readout = (h * mask[:, :, None]).sum(axis=1) / counts
        self._mask, self._counts = mask, counts
        readout = self.dropout.forward(readout, training)
        return self.classifier.forward(readout, training)

    def backward(self, grad: np.ndarray) -> None:
        assert self._mask is not None and self._counts is not None
        grad = self.dropout.backward(self.classifier.backward(grad))
        dh = grad[:, None, :] * self._mask[:, :, None] / self._counts[:, :, None]
        for layer in reversed(self.layers):
            dh = layer.backward(dh)

    def parameters(self) -> list[Parameter]:
        params = [p for layer in self.layers for p in layer.parameters()]
        return params + self.classifier.parameters()


class GATClassifier(GNNBaseline):
    """GAT graph-classification estimator."""

    name = "gat"

    def __init__(
        self,
        features="onehot",
        hidden: int = 16,
        num_layers: int = 2,
        heads: int = 2,
        epochs: int = 50,
        batch_size: int = 32,
        seed: int | None = 0,
    ) -> None:
        super().__init__(features=features, epochs=epochs, batch_size=batch_size, seed=seed)
        self.hidden = hidden
        self.num_layers = num_layers
        self.heads = heads
        self._w: int | None = None
        self._dim: int | None = None

    def _prepare(self, graphs: list[Graph], fit: bool):
        matrices = self._featurize(graphs, fit)
        if fit:
            self._w = max(g.n for g in graphs)
            self._dim = matrices[0].shape[1]
        batch = pad_graph_batch(graphs, matrices, w=self._w)
        return batch.as_inputs()

    def _build(self, num_classes: int, rng: np.random.Generator):
        assert self._dim is not None
        return GATNetwork(
            in_dim=self._dim,
            hidden=self.hidden,
            num_layers=self.num_layers,
            num_classes=num_classes,
            heads=self.heads,
            rng=rng,
        )
