"""GCN / GraphSAGE graph classifiers (paper Section 2.2).

GCN (Kipf & Welling 2017) and GraphSAGE (Hamilton et al. 2017) are
vertex classifiers in their original papers; the paper discusses both as
related work.  For graph classification we use the standard adaptation:
stacked propagation layers followed by a masked mean readout and a dense
classifier.

Two aggregators:

* ``"gcn"``     — symmetric normalisation ``D^-1/2 (A + I) D^-1/2 H W``;
* ``"sage"``    — GraphSAGE-mean: ``[H | D^-1 A H] W`` (self features
  concatenated with the mean of the neighbors).
"""

from __future__ import annotations

import numpy as np

from repro.baselines.common import GNNBaseline, pad_graph_batch
from repro.graph.graph import Graph
from repro.nn.activations import ReLU
from repro.nn.dense import Dense
from repro.nn.dropout import Dropout
from repro.nn.module import Network, Parameter
from repro.utils.rng import as_rng
from repro.utils.validation import check_positive

__all__ = ["GCNClassifier", "GCNNetwork"]


def _gcn_propagation(adjacency: np.ndarray) -> np.ndarray:
    """Batched ``D^-1/2 (A + I) D^-1/2`` respecting padding."""
    a = adjacency.copy()
    idx = np.arange(a.shape[1])
    a[:, idx, idx] += 1.0
    deg = a.sum(axis=2)
    inv_sqrt = 1.0 / np.sqrt(np.maximum(deg, 1e-12))
    return a * inv_sqrt[:, :, None] * inv_sqrt[:, None, :]


def _mean_propagation(adjacency: np.ndarray) -> np.ndarray:
    """Batched row-normalised ``D^-1 A`` (neighbors only, no self)."""
    deg = adjacency.sum(axis=2, keepdims=True)
    deg[deg == 0] = 1.0
    return adjacency / deg


class _PropagationLayer:
    """One propagation + linear + ReLU layer with exact backward."""

    def __init__(
        self, in_dim: int, out_dim: int, aggregator: str, rng: np.random.Generator
    ) -> None:
        fc_in = 2 * in_dim if aggregator == "sage" else in_dim
        self.fc = Dense(fc_in, out_dim, rng=rng)
        self.act = ReLU()
        self.aggregator = aggregator
        self._p: np.ndarray | None = None
        self._in_dim = in_dim

    def forward(self, h: np.ndarray, p: np.ndarray, training: bool) -> np.ndarray:
        self._p = p
        if self.aggregator == "sage":
            z = np.concatenate([h, p @ h], axis=2)
        else:
            z = p @ h
        return self.act.forward(self.fc.forward(z, training), training)

    def backward(self, grad: np.ndarray) -> np.ndarray:
        assert self._p is not None
        grad = self.fc.backward(self.act.backward(grad))
        pt = np.swapaxes(self._p, 1, 2)
        if self.aggregator == "sage":
            d_self = grad[:, :, : self._in_dim]
            d_nbrs = grad[:, :, self._in_dim :]
            return d_self + pt @ d_nbrs
        return pt @ grad

    def parameters(self) -> list[Parameter]:
        return self.fc.parameters()


class GCNNetwork(Network):
    """Propagation stack + masked mean readout + dense classifier."""

    def __init__(
        self,
        in_dim: int,
        hidden: int,
        num_layers: int,
        num_classes: int,
        aggregator: str = "gcn",
        dropout: float = 0.5,
        rng: np.random.Generator | int | None = 0,
    ) -> None:
        check_positive("hidden", hidden)
        check_positive("num_layers", num_layers)
        if aggregator not in ("gcn", "sage"):
            raise ValueError(f"unknown aggregator {aggregator!r}")
        rng = as_rng(rng)
        dims = [in_dim] + [hidden] * num_layers
        self.layers = [
            _PropagationLayer(dims[i], dims[i + 1], aggregator, rng)
            for i in range(num_layers)
        ]
        self.aggregator = aggregator
        self.dropout = Dropout(dropout, rng=rng)
        self.classifier = Dense(hidden, num_classes, rng=rng)
        self._mask: np.ndarray | None = None
        self._counts: np.ndarray | None = None

    def forward(self, x, training: bool = False) -> np.ndarray:
        feats, adjacency, mask = x
        if self.aggregator == "gcn":
            p = _gcn_propagation(adjacency)
        else:
            p = _mean_propagation(adjacency)
        h = feats
        for layer in self.layers:
            h = layer.forward(h, p, training)
        counts = np.maximum(mask.sum(axis=1, keepdims=True), 1.0)
        readout = (h * mask[:, :, None]).sum(axis=1) / counts
        self._mask = mask
        self._counts = counts
        readout = self.dropout.forward(readout, training)
        return self.classifier.forward(readout, training)

    def backward(self, grad: np.ndarray) -> None:
        assert self._mask is not None and self._counts is not None
        grad = self.dropout.backward(self.classifier.backward(grad))
        dh = grad[:, None, :] * self._mask[:, :, None] / self._counts[:, :, None]
        for layer in reversed(self.layers):
            dh = layer.backward(dh)

    def parameters(self) -> list[Parameter]:
        params = [p for layer in self.layers for p in layer.parameters()]
        return params + self.classifier.parameters()


class GCNClassifier(GNNBaseline):
    """GCN / GraphSAGE graph-classification estimator.

    Parameters
    ----------
    aggregator:
        "gcn" (symmetric normalisation) or "sage" (GraphSAGE-mean).
    """

    name = "gcn"

    def __init__(
        self,
        features="onehot",
        hidden: int = 32,
        num_layers: int = 2,
        aggregator: str = "gcn",
        epochs: int = 50,
        batch_size: int = 32,
        seed: int | None = 0,
    ) -> None:
        super().__init__(features=features, epochs=epochs, batch_size=batch_size, seed=seed)
        self.hidden = hidden
        self.num_layers = num_layers
        self.aggregator = aggregator
        self._w: int | None = None
        self._dim: int | None = None

    def _prepare(self, graphs: list[Graph], fit: bool):
        matrices = self._featurize(graphs, fit)
        if fit:
            self._w = max(g.n for g in graphs)
            self._dim = matrices[0].shape[1]
        batch = pad_graph_batch(graphs, matrices, w=self._w)
        return batch.as_inputs()

    def _build(self, num_classes: int, rng: np.random.Generator):
        assert self._dim is not None
        return GCNNetwork(
            in_dim=self._dim,
            hidden=self.hidden,
            num_layers=self.num_layers,
            num_classes=num_classes,
            aggregator=self.aggregator,
            rng=rng,
        )
