"""GIN — Graph Isomorphism Network (Xu et al., ICLR 2019).

The GIN-0 variant (epsilon fixed at 0, the paper's strongest): each layer
computes ``H' = MLP((A + I) H)`` — a sum over the closed neighborhood
followed by a 2-layer ReLU MLP — and the classifier reads out a masked
vertex sum of *every* layer's representation (jumping-knowledge style
concatenation), followed by dropout and a linear layer.
"""

from __future__ import annotations

import numpy as np

from repro.baselines.common import GNNBaseline, pad_graph_batch
from repro.graph.graph import Graph
from repro.nn.activations import ReLU
from repro.nn.dense import Dense
from repro.nn.dropout import Dropout
from repro.nn.module import Network, Parameter
from repro.utils.rng import as_rng
from repro.utils.validation import check_positive

__all__ = ["GINClassifier", "GINNetwork"]


class _GINLayer:
    """One GIN block: ``H' = MLP(S H)`` with ``S = A + I``."""

    def __init__(self, in_dim: int, hidden: int, rng: np.random.Generator) -> None:
        self.fc1 = Dense(in_dim, hidden, rng=rng)
        self.act1 = ReLU()
        self.fc2 = Dense(hidden, hidden, rng=rng)
        self.act2 = ReLU()
        self._s: np.ndarray | None = None

    def forward(self, h: np.ndarray, s: np.ndarray, training: bool) -> np.ndarray:
        self._s = s
        z = s @ h  # batched (B, w, w) @ (B, w, d)
        z = self.act1.forward(self.fc1.forward(z, training), training)
        return self.act2.forward(self.fc2.forward(z, training), training)

    def backward(self, grad: np.ndarray) -> np.ndarray:
        assert self._s is not None
        grad = self.fc1.backward(self.act1.backward(
            self.fc2.backward(self.act2.backward(grad))
        ))
        # d(S H)/dH with symmetric S would be S grad; keep the transpose for
        # generality (S is symmetric here since A is undirected + I).
        return np.swapaxes(self._s, 1, 2) @ grad

    def parameters(self) -> list[Parameter]:
        return self.fc1.parameters() + self.fc2.parameters()


class GINNetwork(Network):
    """GIN-0 with masked-sum readouts of all layers."""

    def __init__(
        self,
        in_dim: int,
        hidden: int,
        num_layers: int,
        num_classes: int,
        dropout: float = 0.5,
        rng: np.random.Generator | int | None = 0,
    ) -> None:
        check_positive("hidden", hidden)
        check_positive("num_layers", num_layers)
        rng = as_rng(rng)
        self.layers = [
            _GINLayer(in_dim if i == 0 else hidden, hidden, rng)
            for i in range(num_layers)
        ]
        readout_dim = in_dim + num_layers * hidden
        self.dropout = Dropout(dropout, rng=rng)
        self.classifier = Dense(readout_dim, num_classes, rng=rng)
        self._mask: np.ndarray | None = None
        self._dims: list[int] = [in_dim] + [hidden] * num_layers
        self._w: int | None = None

    def forward(self, x, training: bool = False) -> np.ndarray:
        feats, adjacency, mask = x
        self._mask = mask
        self._w = feats.shape[1]
        idx = np.arange(feats.shape[1])
        s = adjacency.copy()
        s[:, idx, idx] += 1.0
        h = feats
        readouts = [(h * mask[:, :, None]).sum(axis=1)]
        for layer in self.layers:
            h = layer.forward(h, s, training)
            readouts.append((h * mask[:, :, None]).sum(axis=1))
        cat = np.concatenate(readouts, axis=1)
        cat = self.dropout.forward(cat, training)
        return self.classifier.forward(cat, training)

    def backward(self, grad: np.ndarray) -> None:
        assert self._mask is not None
        grad = self.dropout.backward(self.classifier.backward(grad))
        # Split the concatenated readout gradient back per layer.
        splits = np.cumsum(self._dims)[:-1]
        readout_grads = np.split(grad, splits, axis=1)
        mask3 = self._mask[:, :, None]
        dh = readout_grads[-1][:, None, :] * mask3
        for layer, rg in zip(reversed(self.layers), reversed(readout_grads[:-1])):
            dh_prev = layer.backward(dh)
            dh = dh_prev + rg[:, None, :] * mask3

    def parameters(self) -> list[Parameter]:
        params = [p for layer in self.layers for p in layer.parameters()]
        return params + self.classifier.parameters()


class GINClassifier(GNNBaseline):
    """GIN estimator.

    Parameters
    ----------
    features:
        "onehot" (Table 3) or a vertex-feature extractor (Table 4).
    hidden:
        MLP width.
    num_layers:
        GIN blocks (the GIN paper uses 5; 3 suffices at benchmark scale).
    """

    name = "gin"

    def __init__(
        self,
        features="onehot",
        hidden: int = 32,
        num_layers: int = 3,
        dropout: float = 0.5,
        epochs: int = 50,
        batch_size: int = 32,
        seed: int | None = 0,
    ) -> None:
        super().__init__(features=features, epochs=epochs, batch_size=batch_size, seed=seed)
        self.hidden = hidden
        self.num_layers = num_layers
        self.dropout = dropout
        self._w: int | None = None
        self._dim: int | None = None

    def _prepare(self, graphs: list[Graph], fit: bool):
        matrices = self._featurize(graphs, fit)
        if fit:
            self._w = max(g.n for g in graphs)
            self._dim = matrices[0].shape[1]
        batch = pad_graph_batch(graphs, matrices, w=self._w)
        return batch.as_inputs()

    def _build(self, num_classes: int, rng: np.random.Generator):
        assert self._dim is not None
        return GINNetwork(
            in_dim=self._dim,
            hidden=self.hidden,
            num_layers=self.num_layers,
            num_classes=num_classes,
            dropout=self.dropout,
            rng=rng,
        )
