"""NGF — Neural Graph Fingerprints (Duvenaud et al., NeurIPS 2015).

Section 2.2: NGF "replaces each discrete operation in circular
fingerprints with a differentiable analog".  Each layer aggregates the
closed neighborhood, applies a sigmoid (the smooth hash), and every
vertex *writes* a softmax distribution into a fixed-size fingerprint
vector (the smooth index operation).  The summed fingerprint across all
layers feeds a dense classifier.
"""

from __future__ import annotations

import numpy as np

from repro.baselines.common import GNNBaseline, pad_graph_batch
from repro.graph.graph import Graph
from repro.nn.activations import Sigmoid
from repro.nn.dense import Dense
from repro.nn.losses import softmax
from repro.nn.module import Network, Parameter
from repro.utils.rng import as_rng
from repro.utils.validation import check_positive

__all__ = ["NGFClassifier", "NGFNetwork"]


class _FingerprintLayer:
    """One circular-fingerprint level: aggregate, hash, write."""

    def __init__(
        self, in_dim: int, hidden: int, fingerprint_dim: int, rng: np.random.Generator
    ) -> None:
        self.hash_fc = Dense(in_dim, hidden, rng=rng)
        self.hash_act = Sigmoid()
        self.write_fc = Dense(hidden, fingerprint_dim, rng=rng)
        self._cache: tuple | None = None

    def forward(
        self, h: np.ndarray, s: np.ndarray, mask: np.ndarray, training: bool
    ) -> tuple[np.ndarray, np.ndarray]:
        """Returns (new hidden state, fingerprint contribution)."""
        agg = s @ h
        hidden = self.hash_act.forward(self.hash_fc.forward(agg, training), training)
        logits = self.write_fc.forward(hidden, training)
        writes = softmax(logits)  # (B, w, F) rows are distributions
        contribution = (writes * mask[:, :, None]).sum(axis=1)
        self._cache = (s, writes, mask)
        return hidden, contribution

    def backward(
        self, grad_hidden: np.ndarray, grad_contribution: np.ndarray
    ) -> np.ndarray:
        assert self._cache is not None
        s, writes, mask = self._cache
        # contribution -> writes
        dwrites = grad_contribution[:, None, :] * mask[:, :, None]
        # softmax backward per position
        dlogits = writes * (dwrites - (dwrites * writes).sum(axis=2, keepdims=True))
        dhidden = self.write_fc.backward(dlogits) + grad_hidden
        dagg = self.hash_fc.backward(self.hash_act.backward(dhidden))
        return np.swapaxes(s, 1, 2) @ dagg

    def parameters(self) -> list[Parameter]:
        return self.hash_fc.parameters() + self.write_fc.parameters()


class NGFNetwork(Network):
    """Fingerprint layer stack + dense classifier on the fingerprint."""

    def __init__(
        self,
        in_dim: int,
        hidden: int,
        fingerprint_dim: int,
        num_layers: int,
        num_classes: int,
        rng: np.random.Generator | int | None = 0,
    ) -> None:
        check_positive("hidden", hidden)
        check_positive("fingerprint_dim", fingerprint_dim)
        check_positive("num_layers", num_layers)
        rng = as_rng(rng)
        dims = [in_dim] + [hidden] * num_layers
        self.layers = [
            _FingerprintLayer(dims[i], hidden, fingerprint_dim, rng)
            for i in range(num_layers)
        ]
        self.classifier = Dense(fingerprint_dim, num_classes, rng=rng)

    def forward(self, x, training: bool = False) -> np.ndarray:
        feats, adjacency, mask = x
        s = adjacency.copy()
        idx = np.arange(s.shape[1])
        s[:, idx, idx] += 1.0
        h = feats
        fingerprint = None
        for layer in self.layers:
            h, contribution = layer.forward(h, s, mask, training)
            fingerprint = contribution if fingerprint is None else fingerprint + contribution
        return self.classifier.forward(fingerprint, training)

    def backward(self, grad: np.ndarray) -> None:
        dfingerprint = self.classifier.backward(grad)
        dh: np.ndarray | float = 0.0  # last layer gets no hidden-state grad
        for layer in reversed(self.layers):
            dh = layer.backward(dh, dfingerprint)

    def parameters(self) -> list[Parameter]:
        params = [p for layer in self.layers for p in layer.parameters()]
        return params + self.classifier.parameters()


class NGFClassifier(GNNBaseline):
    """Neural-graph-fingerprint estimator."""

    name = "ngf"

    def __init__(
        self,
        features="onehot",
        hidden: int = 16,
        fingerprint_dim: int = 32,
        num_layers: int = 2,
        epochs: int = 50,
        batch_size: int = 32,
        seed: int | None = 0,
    ) -> None:
        super().__init__(features=features, epochs=epochs, batch_size=batch_size, seed=seed)
        self.hidden = hidden
        self.fingerprint_dim = fingerprint_dim
        self.num_layers = num_layers
        self._w: int | None = None
        self._dim: int | None = None

    def _prepare(self, graphs: list[Graph], fit: bool):
        matrices = self._featurize(graphs, fit)
        if fit:
            self._w = max(g.n for g in graphs)
            self._dim = matrices[0].shape[1]
        batch = pad_graph_batch(graphs, matrices, w=self._w)
        return batch.as_inputs()

    def _build(self, num_classes: int, rng: np.random.Generator):
        assert self._dim is not None
        return NGFNetwork(
            in_dim=self._dim,
            hidden=self.hidden,
            fingerprint_dim=self.fingerprint_dim,
            num_layers=self.num_layers,
            num_classes=num_classes,
            rng=rng,
        )
