"""PATCHY-SAN — learning CNNs for arbitrary graphs (Niepert et al. 2016).

Pipeline: (1) order vertices canonically (the original uses NAUTY; we use
the WL-refinement canonical ranking, see DESIGN.md), (2) select a fixed-
length vertex sequence, (3) assemble a size-``k`` neighborhood per
selected vertex via BFS, (4) normalise each neighborhood by the canonical
ranking, then classify the resulting ``(w * k, d)`` tensor with a 1-D CNN.

Structurally this is DeepMap's pipeline with a different vertex ordering
and one-hot label inputs — which is exactly the comparison Section 6 of
the paper draws.
"""

from __future__ import annotations

import numpy as np

from repro.baselines.common import GNNBaseline
from repro.core.alignment import centrality_scores
from repro.core.receptive_field import DUMMY, all_receptive_fields
from repro.graph.graph import Graph
from repro.nn.activations import ReLU
from repro.nn.conv1d import Conv1D
from repro.nn.dense import Dense
from repro.nn.dropout import Dropout
from repro.nn.module import Sequential
from repro.nn.pooling import Flatten
from repro.utils.rng import as_rng
from repro.utils.validation import check_positive

__all__ = ["PatchySanClassifier", "encode_patchysan"]


def encode_patchysan(
    graphs: list[Graph],
    feature_matrices: list[np.ndarray],
    w: int,
    k: int,
) -> np.ndarray:
    """Build the ``(B, w * k, d)`` PATCHY-SAN input tensor.

    Vertices are ranked by the WL canonical ranking; the first ``w`` form
    the sequence, each contributing a normalised neighborhood of ``k``
    vertex feature rows (zeros where the graph runs out of vertices).
    """
    check_positive("w", w)
    check_positive("k", k)
    d = feature_matrices[0].shape[1]
    out = np.zeros((len(graphs), w * k, d), dtype=np.float64)
    for gi, (g, feats) in enumerate(zip(graphs, feature_matrices)):
        scores = centrality_scores(g, ordering="canonical")
        order = np.argsort(-scores, kind="stable")
        fields = all_receptive_fields(g, k, scores)
        for slot, v in enumerate(order[:w]):
            field = fields[v]
            real = field != DUMMY
            rows = np.zeros((k, d), dtype=np.float64)
            rows[real] = feats[field[real]]
            out[gi, slot * k : (slot + 1) * k] = rows
    return out


class PatchySanClassifier(GNNBaseline):
    """PATCHY-SAN estimator.

    Parameters
    ----------
    k:
        Neighborhood (receptive-field) size; the original paper uses 10,
        or the average degree for dense datasets.
    w:
        Sequence length; ``None`` = maximum training graph size.
    """

    name = "patchysan"

    def __init__(
        self,
        features="onehot",
        k: int = 8,
        w: int | None = None,
        dropout: float = 0.5,
        epochs: int = 50,
        batch_size: int = 32,
        seed: int | None = 0,
    ) -> None:
        super().__init__(features=features, epochs=epochs, batch_size=batch_size, seed=seed)
        check_positive("k", k)
        self.k = k
        self.w = w
        self.dropout = dropout
        self._w: int | None = None
        self._dim: int | None = None

    def _prepare(self, graphs: list[Graph], fit: bool):
        matrices = self._featurize(graphs, fit)
        if fit:
            self._w = self.w if self.w is not None else max(g.n for g in graphs)
            self._dim = matrices[0].shape[1]
        assert self._w is not None
        return encode_patchysan(graphs, matrices, w=self._w, k=self.k)

    def _build(self, num_classes: int, rng: np.random.Generator):
        assert self._dim is not None and self._w is not None
        rng = as_rng(rng)
        return Sequential(
            [
                Conv1D(self._dim, 16, kernel_size=self.k, stride=self.k, rng=rng),
                ReLU(),
                Conv1D(16, 8, kernel_size=1, rng=rng),
                ReLU(),
                Flatten(),
                Dense(self._w * 8, 128, rng=rng),
                ReLU(),
                Dropout(self.dropout, rng=rng),
                Dense(128, num_classes, rng=rng),
            ]
        )
