"""Content-addressed cache for vertex feature maps and encoded tensors.

The paper's evaluation grid (Tables 1-5: 15 datasets x 3 feature maps x
10-fold CV) recomputes every vertex feature map and every ``(w*r, m)``
input tensor from scratch on each invocation, and that preprocessing —
not the CNN — dominates wall clock at benchmark scale.  This module
memoizes those artifacts across calls *and* across processes:

* :func:`stable_hash` canonically encodes nested Python/numpy/graph
  values so equal *content* always produces the same digest — dict
  insertion order, list vs tuple, and object identity never matter.
* Cache keys combine a dataset fingerprint (graph structure + labels),
  the extractor class + hyperparameters, and any encoder parameters, so
  changing ``k``, ``h``, ``max_distance``, ``seed``, ``r`` … changes the
  key: entries are invalidated by construction, never by TTL.
* :class:`FeatureMapCache` stores ``{name: ndarray}`` payloads in an
  in-memory LRU tier backed by an optional on-disk ``.npz`` tier laid
  out as ``<cache_dir>/<key[:2]>/<key>.npz`` (atomic writes).  A
  corrupted or unreadable file is treated as a miss — the entry is
  dropped and the caller recomputes; the cache never raises into the
  pipeline.

A process-wide default cache is configured with :func:`configure` (the
CLI's ``--cache-dir``) or the ``REPRO_CACHE_DIR`` environment variable;
:func:`get_cache` returns it (or ``None`` — caching disabled, the
default).  ``repro cache stats|clear`` exposes the disk tier on the
command line.
"""

from __future__ import annotations

import hashlib
import os
import tempfile
import threading
import zipfile
from collections import Counter, OrderedDict
from dataclasses import dataclass, field
from pathlib import Path

import numpy as np

from repro import obs
from repro.graph.graph import Graph
from repro.resilience import faults

__all__ = [
    "stable_hash",
    "dataset_fingerprint",
    "extractor_fingerprint",
    "cache_key",
    "CacheStats",
    "FeatureMapCache",
    "configure",
    "get_cache",
    "reset_default_cache",
]

#: Environment variable naming the default on-disk cache directory.
CACHE_DIR_ENV = "REPRO_CACHE_DIR"

#: Default capacity (entries) of the in-memory LRU tier.
DEFAULT_MEMORY_ITEMS = 32


# ----------------------------------------------------------------------
# Canonical content hashing
# ----------------------------------------------------------------------

def _feed(h, obj) -> None:
    """Feed a canonical, type-tagged byte encoding of ``obj`` into ``h``.

    Dicts are encoded in sorted-key order (insertion order is
    irrelevant); lists and tuples share one tag (sequences compare by
    content); numpy arrays hash dtype + shape + raw bytes; graphs hash
    vertex count, edge list and labels.  Unknown types are rejected so a
    silent ``repr``-drift can never alias two different configurations.
    """
    if obj is None:
        h.update(b"N")
    elif isinstance(obj, bool):
        h.update(b"T" if obj else b"F")
    elif isinstance(obj, (int, np.integer)):
        h.update(b"i" + str(int(obj)).encode())
    elif isinstance(obj, (float, np.floating)):
        h.update(b"f" + repr(float(obj)).encode())
    elif isinstance(obj, str):
        data = obj.encode()
        h.update(b"s" + str(len(data)).encode() + b":" + data)
    elif isinstance(obj, bytes):
        h.update(b"b" + str(len(obj)).encode() + b":" + obj)
    elif isinstance(obj, np.ndarray):
        arr = np.ascontiguousarray(obj)
        h.update(b"a" + arr.dtype.str.encode() + repr(arr.shape).encode())
        h.update(arr.tobytes())
    elif isinstance(obj, Graph):
        h.update(b"G" + str(obj.n).encode())
        h.update(obj.edges.tobytes())
        h.update(obj.labels.tobytes())
    elif isinstance(obj, (list, tuple)):
        h.update(b"l" + str(len(obj)).encode())
        for item in obj:
            _feed(h, item)
    elif isinstance(obj, (set, frozenset)):
        h.update(b"e" + str(len(obj)).encode())
        for digest in sorted(stable_hash(item) for item in obj):
            h.update(digest.encode())
    elif isinstance(obj, dict):
        h.update(b"d" + str(len(obj)).encode())
        entries = sorted(
            (stable_hash(key), key, value) for key, value in obj.items()
        )
        for key_digest, _, value in entries:
            h.update(key_digest.encode())
            _feed(h, value)
    else:
        raise TypeError(
            f"stable_hash cannot canonically encode {type(obj).__name__!r}"
        )


def stable_hash(obj) -> str:
    """Hex digest of the canonical encoding of ``obj`` (32 chars).

    Equal content gives equal digests regardless of dict ordering,
    sequence type (list vs tuple), numpy scalar vs Python number, or
    object identity.
    """
    h = hashlib.blake2b(digest_size=16)
    _feed(h, obj)
    return h.hexdigest()


def dataset_fingerprint(graphs: list[Graph]) -> str:
    """Content digest of an ordered list of graphs.

    Order matters (cached payloads are per-position matrices); two lists
    of structurally identical graphs in the same order fingerprint the
    same even when the ``Graph`` objects differ by identity.
    """
    return stable_hash(list(graphs))


def extractor_fingerprint(extractor) -> str:
    """Digest of an extractor's class + hyperparameters (+ algo version).

    Uses the extractor's ``cache_params()`` when available (the
    :class:`~repro.features.vertex_maps.VertexFeatureExtractor`
    contract) and falls back to its public instance attributes, so any
    hyperparameter change (``k``, ``h``, ``max_distance``, ``seed`` …)
    changes the digest.

    An extractor class may additionally declare a ``CACHE_VERSION``
    string: it is folded into the digest *only when present*, so
    declaring one the first time an extractor's *output values* change
    (while its hyperparameters do not) invalidates every payload cached
    under the old scheme without disturbing any other extractor's keys.
    ``WLVertexFeatures`` uses this for its color-scheme generation — the
    integer radix remap produces partition-equivalent but numerically
    different colors than the original blake2b hashing, and a stale
    ``counts``/``vfm`` hit would mix old and new color keys across
    train/predict extract calls.
    """
    if hasattr(extractor, "cache_params"):
        params = extractor.cache_params()
    else:
        params = {
            key: value
            for key, value in vars(extractor).items()
            if not key.startswith("_") and not key.endswith("_")
        }
    payload = {"class": type(extractor).__qualname__, "params": params}
    version = getattr(type(extractor), "CACHE_VERSION", None)
    if version is not None:
        payload["algo"] = version
    return stable_hash(payload)


def cache_key(namespace: str, *parts) -> str:
    """Compose a namespaced content-addressed key ("counts", "vfm", "enc")."""
    return stable_hash([namespace, list(parts)])


# ----------------------------------------------------------------------
# The cache proper
# ----------------------------------------------------------------------

@dataclass
class CacheStats:
    """Hit/miss accounting for one :class:`FeatureMapCache` instance."""

    hits: int = 0
    misses: int = 0
    memory_hits: int = 0
    disk_hits: int = 0
    mmap_hits: int = 0
    remote_hits: int = 0
    stores: int = 0
    evictions: int = 0
    errors: int = 0
    by_namespace: Counter = field(default_factory=Counter)

    def as_dict(self) -> dict:
        return {
            "hits": self.hits,
            "misses": self.misses,
            "memory_hits": self.memory_hits,
            "disk_hits": self.disk_hits,
            "mmap_hits": self.mmap_hits,
            "remote_hits": self.remote_hits,
            "stores": self.stores,
            "evictions": self.evictions,
            "errors": self.errors,
            "by_namespace": dict(self.by_namespace),
        }

    def diff(self, before: dict) -> dict:
        """What happened since ``before`` (an earlier :meth:`as_dict`).

        Worker processes snapshot the stats they inherited at fork time
        and ship only the delta back, so parent totals never
        double-count.
        """
        now = self.as_dict()
        delta = {
            key: now[key] - before.get(key, 0)
            for key in now
            if key != "by_namespace"
        }
        names = set(now["by_namespace"]) | set(before.get("by_namespace", {}))
        delta["by_namespace"] = {
            name: now["by_namespace"].get(name, 0)
            - before.get("by_namespace", {}).get(name, 0)
            for name in names
        }
        return delta

    def merge(self, delta: dict | None) -> None:
        """Fold a :meth:`diff` delta (e.g. from a worker) into this object."""
        if not delta:
            return
        for key, value in delta.items():
            if key == "by_namespace":
                self.by_namespace.update(value)
            else:
                setattr(self, key, getattr(self, key) + value)


def _mmap_npz(path: Path) -> dict[str, np.ndarray]:
    """Memory-map every member of an uncompressed ``.npz`` in place.

    ``np.load(..., mmap_mode="r")`` silently ignores ``mmap_mode`` for
    ``.npz`` containers, so this walks the zip structure by hand: for
    each ``ZIP_STORED`` member, the array data lives at a fixed span of
    the archive file (local header + name + extra fields, then the
    ``.npy`` header, then raw little-endian array bytes), which
    ``np.memmap`` can map read-only with the right dtype/shape/offset.

    Raises on anything that cannot be mapped — compressed members,
    object dtypes, unknown npy versions, or structural damage (bad
    magic, member span past EOF).  Callers treat a raise as "use the
    copying reader instead".

    Everything — stat, zip parse, and the maps themselves — goes
    through ONE open handle.  Opening the path per member would let a
    concurrent atomic replace swap the inode mid-read and hand back a
    payload stitched from two different writes.
    """
    payload: dict[str, np.ndarray] = {}
    with open(path, "rb") as fh:
        file_size = os.fstat(fh.fileno()).st_size
        zf = zipfile.ZipFile(fh)
        for info in zf.infolist():
            if info.compress_type != zipfile.ZIP_STORED:
                raise ValueError(f"{info.filename}: compressed member")
            fh.seek(info.header_offset)
            local = fh.read(30)
            if len(local) != 30 or local[:4] != b"PK\x03\x04":
                raise ValueError(f"{info.filename}: bad local file header")
            name_len = int.from_bytes(local[26:28], "little")
            extra_len = int.from_bytes(local[28:30], "little")
            fh.seek(info.header_offset + 30 + name_len + extra_len)
            version = np.lib.format.read_magic(fh)
            if version == (1, 0):
                shape, fortran, dtype = np.lib.format.read_array_header_1_0(fh)
            elif version == (2, 0):
                shape, fortran, dtype = np.lib.format.read_array_header_2_0(fh)
            else:
                raise ValueError(f"{info.filename}: npy format {version}")
            if dtype.hasobject:
                raise ValueError(f"{info.filename}: object dtype")
            data_offset = fh.tell()
            n_items = int(np.prod(shape, dtype=np.int64)) if shape else 1
            if data_offset + n_items * dtype.itemsize > file_size:
                raise ValueError(f"{info.filename}: member extends past EOF")
            name = info.filename
            if name.endswith(".npy"):
                name = name[: -len(".npy")]
            arr = np.memmap(
                fh, dtype=dtype, mode="r", offset=data_offset, shape=shape,
                order="F" if fortran else "C",
            )
            payload[name] = arr
    return payload


class FeatureMapCache:
    """Two-tier (memory LRU + optional disk) array-payload cache.

    Payloads are ``{name: ndarray}`` dicts; object-dtype arrays are
    allowed (vocabulary key lists, per-vertex ``Counter`` lists) and are
    pickled inside the ``.npz`` container.  All reads that fail for any
    reason — missing file, truncation, bad pickle, wrong format — count
    as misses, drop the offending file, and let the caller recompute.

    Parameters
    ----------
    cache_dir:
        Directory for the disk tier; ``None`` keeps the cache
        memory-only.
    memory_items:
        Max entries held by the in-memory LRU tier (0 disables it).
    mmap_read:
        Memory-map disk reads where safe (default True).  ``np.savez``
        stores members uncompressed, so each ``.npy`` member can be
        mapped in place (``np.memmap`` over the member's data span)
        instead of copied into fresh arrays — a disk hit then costs
        page-table entries, not resident bytes, which is what lets the
        streaming pipeline hold "hot" encoded shards far beyond RAM.
        Object-dtype members (pickled vocabularies/Counters) and any
        file the mapper cannot parse fall back to ``np.load``; a file
        neither path can read is still a miss, dropped and recomputed.
        Mapped arrays are read-only views backed by the cache file.
    remote:
        Optional third tier consulted after memory and disk miss: any
        object with ``fetch(key, namespace) -> payload | None`` (the
        dist KV client, :class:`repro.dist.client.RemoteCacheClient`).
        A remote hit is copied into the local tiers so it is paid for
        once; remote errors are swallowed and count as misses — the
        cache never raises into the pipeline, network or not.
    """

    def __init__(
        self,
        cache_dir: str | os.PathLike | None = None,
        memory_items: int = DEFAULT_MEMORY_ITEMS,
        mmap_read: bool = True,
        remote=None,
    ) -> None:
        if memory_items < 0:
            raise ValueError(f"memory_items must be >= 0, got {memory_items}")
        self.cache_dir = Path(cache_dir) if cache_dir is not None else None
        self.memory_items = memory_items
        self.mmap_read = mmap_read
        self.remote = remote
        self.stats = CacheStats()
        self._memory: OrderedDict[str, dict[str, np.ndarray]] = OrderedDict()
        self._lock = threading.RLock()
        self._writes = 0

    def _next_write_index(self) -> int:
        """0-based index of this disk-write attempt (fault-plan matching)."""
        with self._lock:
            index = self._writes
            self._writes += 1
        return index

    # -- paths ----------------------------------------------------------
    def _path(self, key: str) -> Path:
        assert self.cache_dir is not None
        return self.cache_dir / key[:2] / f"{key}.npz"

    # -- read -----------------------------------------------------------
    def get(
        self, key: str, namespace: str = "", local_only: bool = False
    ) -> dict[str, np.ndarray] | None:
        """Payload stored under ``key``, or ``None`` (a miss, recompute).

        ``local_only`` skips the remote tier — the dist KV server
        answers peer lookups with local-only reads so two workers that
        both miss can never recurse into each other.
        """
        with self._lock:
            payload = self._memory.get(key)
            if payload is not None:
                self._memory.move_to_end(key)
                self._record_hit(namespace, memory=True)
                return payload
        if self.cache_dir is not None:
            path = self._path(key)
            if path.exists():
                try:
                    payload = self._read_disk(path)
                except Exception:
                    # Corrupted / truncated / unreadable: drop and recompute.
                    self.stats.errors += 1
                    try:
                        path.unlink()
                    except OSError:
                        pass
                else:
                    self._memory_store(key, payload)
                    self._record_hit(namespace, memory=False)
                    return payload
        if self.remote is not None and not local_only:
            try:
                payload = self.remote.fetch(key, namespace)
            except Exception:
                payload = None  # a dead peer is a miss, never an error
                self.stats.errors += 1
            if payload is not None:
                # Pay the network cost once: land the payload in both
                # local tiers (disk write best-effort, like any put).
                self._memory_store(key, payload)
                if self.cache_dir is not None:
                    self._write_disk(key, payload)
                self.stats.hits += 1
                self.stats.remote_hits += 1
                self.stats.by_namespace[f"{namespace or 'any'}_hits"] += 1
                obs.counter("cache_hits_total").inc()
                obs.counter("cache_remote_hits_total").inc()
                return payload
        self.stats.misses += 1
        self.stats.by_namespace[f"{namespace or 'any'}_misses"] += 1
        obs.counter("cache_misses_total").inc()
        return None

    def _read_disk(self, path: Path) -> dict[str, np.ndarray]:
        """Read a disk entry, memory-mapping members when possible.

        The mmap attempt validates the full zip structure (central
        directory, local headers, npy headers, member spans inside the
        file), so a truncated or damaged entry fails *here* — cleanly,
        at map time, never as a later SIGBUS — and the ``np.load``
        fallback then fails on the same damage, turning the read into a
        miss for the caller.
        """
        if self.mmap_read:
            try:
                payload = _mmap_npz(path)
            except Exception:
                pass  # not mappable (object dtype, compressed, damaged)
            else:
                self.stats.mmap_hits += 1
                return payload
        with np.load(path, allow_pickle=True) as npz:
            return {name: npz[name] for name in npz.files}

    # -- write ----------------------------------------------------------
    def put(self, key: str, payload: dict[str, np.ndarray], namespace: str = "") -> None:
        """Store ``payload`` under ``key`` in both tiers (best effort)."""
        self._memory_store(key, payload)
        if self.cache_dir is not None:
            # Fault-injection point: InjectedFault is a BaseException, so
            # the best-effort ``except Exception`` inside _write_disk
            # cannot swallow a deliberately injected crash
            # (tests/resilience relies on this); "corrupt" mode tears the
            # file post-rename instead.
            mode = faults.check("cache_write", self._next_write_index())
            if not self._write_disk(key, payload, corrupt=mode == "corrupt"):
                return
        self.stats.stores += 1
        self.stats.by_namespace[f"{namespace or 'any'}_stores"] += 1

    def _write_disk(
        self, key: str, payload: dict[str, np.ndarray], corrupt: bool = False
    ) -> bool:
        """Atomically write one disk entry; False on (swallowed) failure.

        The remote-hit backfill path calls this directly — without the
        ``cache_write`` fault point or store accounting, which belong to
        caller-initiated :meth:`put` only.
        """
        try:
            path = self._path(key)
            path.parent.mkdir(parents=True, exist_ok=True)
            fd, tmp = tempfile.mkstemp(
                dir=path.parent, prefix=".tmp-", suffix=".npz"
            )
            try:
                with os.fdopen(fd, "wb") as fh:
                    np.savez(fh, **payload)
                os.replace(tmp, path)  # atomic: readers never see partial files
            except BaseException:
                try:
                    os.unlink(tmp)
                except OSError:
                    pass
                raise
            if corrupt:
                with open(path, "r+b") as fh:
                    fh.truncate(max(1, path.stat().st_size // 2))
        except Exception:
            self.stats.errors += 1  # a failed write must never crash a run
            return False
        return True

    def _memory_store(self, key: str, payload: dict[str, np.ndarray]) -> None:
        if self.memory_items <= 0:
            return
        with self._lock:
            self._memory[key] = payload
            self._memory.move_to_end(key)
            while len(self._memory) > self.memory_items:
                self._memory.popitem(last=False)
                self.stats.evictions += 1

    def _record_hit(self, namespace: str, memory: bool) -> None:
        self.stats.hits += 1
        if memory:
            self.stats.memory_hits += 1
        else:
            self.stats.disk_hits += 1
        self.stats.by_namespace[f"{namespace or 'any'}_hits"] += 1
        obs.counter("cache_hits_total").inc()

    # -- maintenance ----------------------------------------------------
    def clear(self) -> int:
        """Drop both tiers; returns the number of disk entries removed."""
        with self._lock:
            self._memory.clear()
        removed = 0
        for path in self._disk_entries():
            try:
                path.unlink()
                removed += 1
            except OSError:
                self.stats.errors += 1
        return removed

    def _disk_entries(self) -> list[Path]:
        if self.cache_dir is None or not self.cache_dir.exists():
            return []
        return sorted(self.cache_dir.glob("??/*.npz"))

    def disk_usage(self) -> tuple[int, int]:
        """``(entry_count, total_bytes)`` of the disk tier."""
        entries = self._disk_entries()
        return len(entries), sum(p.stat().st_size for p in entries)

    def __len__(self) -> int:
        with self._lock:
            return len(self._memory)

    def __repr__(self) -> str:
        where = str(self.cache_dir) if self.cache_dir else "memory-only"
        return (
            f"FeatureMapCache({where}, entries={len(self)}, "
            f"hits={self.stats.hits}, misses={self.stats.misses})"
        )


# ----------------------------------------------------------------------
# Process-wide default cache
# ----------------------------------------------------------------------

_default_cache: FeatureMapCache | None = None


def configure(
    cache_dir: str | os.PathLike | None = None,
    memory_items: int = DEFAULT_MEMORY_ITEMS,
) -> FeatureMapCache:
    """Install (and return) the process-wide default cache.

    ``cache_dir=None`` yields a memory-only cache — still useful across
    CV folds within one process.
    """
    global _default_cache
    _default_cache = FeatureMapCache(cache_dir=cache_dir, memory_items=memory_items)
    return _default_cache


def get_cache() -> FeatureMapCache | None:
    """The default cache, or ``None`` when caching is disabled.

    Resolution order: an explicit :func:`configure` call, then the
    ``REPRO_CACHE_DIR`` environment variable, else ``None``.
    """
    global _default_cache
    if _default_cache is not None:
        return _default_cache
    env_dir = os.environ.get(CACHE_DIR_ENV, "").strip()
    if env_dir:
        _default_cache = FeatureMapCache(cache_dir=env_dir)
        return _default_cache
    return None


def reset_default_cache() -> None:
    """Forget the default cache (tests and CLI teardown)."""
    global _default_cache
    _default_cache = None
