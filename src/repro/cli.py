"""Command-line interface: ``python -m repro <command>``.

Commands
--------
``list-datasets``
    Names and Table 1 statistics of the 15 benchmark generators.
``stats NAME [--scale S] [--seed K]``
    Generate a dataset and print its measured statistics.
``train --dataset NAME [--model M] [--scale S] [--folds F] [--epochs E]``
    Cross-validate a model on a benchmark and print the accuracy.
``export --dataset NAME --out DIR [--scale S]``
    Write a generated dataset to TU format for use with other tools.
``report RUN.jsonl``
    Summarise a ``--log-json`` run file: stage timings + telemetry.
``cache stats|clear [--cache-dir DIR]``
    Inspect or empty the content-addressed feature-map cache.
``checkpoints ls|prune --checkpoint-dir DIR [--keep N]``
    Inspect or prune training checkpoints and fold journals.
``serve --model PATH [--port N] [--max-batch B] [--max-wait-ms T]``
    Serve a saved model over HTTP with dynamic micro-batching.
``loadtest URL [--mode closed|open] [--rps R] [--duration S]``
    Drive a running server and report latency/throughput percentiles.
``ops trace|traces|slo``
    Reconstruct per-request trace waterfalls and SLO summaries from a
    serve ``--log-json`` run file (or a live server via ``--url``).
``dist worker --shard I/N [--port P]``
    Run one shard-owning distributed CV worker (socket protocol).
``dist run --dataset NAME --model M --workers HOST:PORT,...``
    Coordinate a distributed cross-validation over running workers.
"""

from __future__ import annotations

import argparse
import sys

__all__ = ["main", "build_parser"]

EPILOG = """\
observability:
  repro train --profile            print an aggregated stage-timing tree
                                   (feature_map / alignment / receptive_field
                                   / encode / train spans) after the run
  repro train --log-json RUN.jsonl stream structured spans, per-epoch
                                   telemetry and metrics to a JSONL file
  repro report RUN.jsonl           rebuild the same summary offline

parallelism and caching:
  repro train --workers N          run CV folds concurrently in a fork pool
                                   (N=0 uses every CPU; results are bitwise
                                   identical to --workers 1); defaults to
                                   $REPRO_WORKERS, else 1
  repro train --cache-dir DIR      memoize vertex feature maps and encoded
                                   tensors on disk, keyed by dataset content
                                   + extractor/encoder parameters; defaults
                                   to $REPRO_CACHE_DIR, else off
  repro cache stats|clear          inspect or empty that cache

crash recovery:
  repro train --checkpoint-dir DIR journal every finished CV fold; rerunning
                                   the same command after a crash skips the
                                   journaled folds and recomputes only the
                                   missing ones (results are bitwise equal
                                   to an uninterrupted run)
  repro train --no-resume          discard any previous journal first
  repro checkpoints ls|prune       inspect or prune checkpoints + journals

inference serving:
  repro serve --model model.pkl \\
              --port 8080 --max-batch 32 --max-wait-ms 5
                                   serve a saved model over HTTP; concurrent
                                   single-graph requests fuse into one CNN
                                   forward pass (flush on max-batch graphs or
                                   max-wait-ms); a full admission queue sheds
                                   with 429 + Retry-After instead of queueing
                                   unboundedly; GET /metrics exposes queue
                                   depth, batch-size histograms + shed counts
  repro serve --model model.pkl --backend pool --workers 4
                                   run fused batches on a process pool with
                                   shared-memory tensor handoff; crashed
                                   workers respawn (bounded), then degrade to
                                   in-thread execution (/healthz: degraded)
  repro serve --model model.pkl --backend pool --workers auto
                                   autoscale workers between 1 and
                                   min(4, cpu count) from the queue-depth and
                                   p95-latency gauges (hysteresis + cooldown)
  repro serve --model v1.pkl --model v2.pkl --canary default@1:10
                                   load two versions; route 10% of traffic
                                   (by deterministic trace-id hash) to v1
  repro serve --model v1.pkl --model v2.pkl --shadow default@1
                                   shadow-evaluate v1 on every live batch;
                                   agreement is counted (serve_shadow_*),
                                   the shadow answer is never returned
  repro loadtest http://127.0.0.1:8080 \\
              --mode closed --concurrency 8 --duration 5
                                   closed- or open-loop (--mode open --rps R)
                                   load generator; prints p50/p95/p99 latency,
                                   throughput, the mean fused batch size, and
                                   the admission-queue high-water mark
  repro loadtest URL --codec binary
                                   drive the binary CSR wire codec
                                   (application/x-repro-graph) instead of JSON

streaming / out-of-core training:
  repro train --stream             train a single deepmap-* model out of core:
                                   graphs are regenerated lazily from per-graph
                                   seeds, encoded shard-by-shard behind a
                                   bounded prefetcher, and spilled to the
                                   feature-map cache (mmap'd back per batch);
                                   peak RSS stays bounded at any --scale and
                                   the result is bitwise-equal to the
                                   materialized fit
  repro train --stream --shard-size K --prefetch D
                                   graphs per encoded shard (default 64) and
                                   prefetch queue depth (default 2)
  repro stats NAME --stream        one-pass streamed dataset statistics
                                   without materializing the graphs

request tracing and SLOs:
  repro serve --log-json RUN.jsonl stream every request's spans (queue_wait /
                                   batch_wait / infer / serialize), access-log
                                   events and SLO alerts to a JSONL file;
                                   every response echoes X-Repro-Trace-Id and
                                   GET /v1/traces/<id> returns the waterfall
  repro ops traces RUN.jsonl       list the traced requests in a run file
  repro ops trace ID RUN.jsonl     render one request's stage waterfall
                                   (--url http://HOST:PORT fetches it live
                                   from the server instead)
  repro ops slo RUN.jsonl          replay the run's access log against the
                                   latency/error-budget objectives
  repro serve --slo-p95-ms 500 --slo-error-rate 0.01
                                   objectives behind /healthz degradation and
                                   slo_breach alert events

distributed cross-validation:
  repro dist worker --shard 0/2 --port 9101
                                   run one shard-owning worker: serves its
                                   local feature-map cache as a KV tensor
                                   store to peers and executes CV folds on
                                   demand; --port 0 picks an ephemeral port
                                   (parse the printed "listening on" line)
  repro dist run --dataset PTC_MR --model wl-svm \\
                 --workers 127.0.0.1:9101,127.0.0.1:9102
                                   coordinate a distributed CV over running
                                   workers: heartbeat liveness, dead-worker
                                   fold reassignment, serial degradation
                                   when the fleet is gone; results are
                                   bitwise-equal to repro train
  repro dist run --checkpoint-dir DIR
                                   journal finished folds (exactly-once via
                                   atomic fold claims); a rerun after any
                                   crash recomputes zero completed folds,
                                   and the same journal resumes a serial
                                   repro train run and vice versa

Instrumentation is off unless one of these flags is given (zero overhead
by default).  Schema and metric names: docs/OBSERVABILITY.md; worker
model and cache layout: docs/PARALLEL.md; checkpoint format, resume
semantics and fault injection: docs/RESILIENCE.md; serving architecture
and the backpressure contract: docs/SERVING.md; streaming sampler design,
memory model and the parity contract: docs/STREAMING.md; dist protocol,
shard/KV architecture and the exactly-once contract: docs/DISTRIBUTED.md.
"""

MODEL_CHOICES = (
    "deepmap-wl",
    "deepmap-sp",
    "deepmap-gk",
    "gin",
    "gcn",
    "gat",
    "dgcnn",
    "dcnn",
    "ngf",
    "patchysan",
    "wl-svm",
    "sp-svm",
    "gk-svm",
)


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro",
        description="DeepMap reproduction: datasets, models, evaluation.",
        epilog=EPILOG,
        formatter_class=argparse.RawDescriptionHelpFormatter,
    )
    sub = parser.add_subparsers(dest="command", required=True)

    sub.add_parser("list-datasets", help="list benchmark dataset names")

    stats = sub.add_parser("stats", help="generate a dataset and print stats")
    stats.add_argument("name")
    stats.add_argument("--scale", type=float, default=0.15)
    stats.add_argument("--seed", type=int, default=0)
    stats.add_argument(
        "--stream",
        action="store_true",
        help="compute statistics in one streamed pass without "
        "materializing the graph list",
    )

    train = sub.add_parser("train", help="cross-validate a model")
    train.add_argument("--dataset", required=True)
    train.add_argument("--model", choices=MODEL_CHOICES, default="deepmap-wl")
    train.add_argument("--scale", type=float, default=0.1)
    train.add_argument("--folds", type=int, default=3)
    train.add_argument("--epochs", type=int, default=15)
    train.add_argument("--seed", type=int, default=0)
    train.add_argument(
        "--log-json",
        metavar="PATH",
        default=None,
        help="stream structured run events (spans, telemetry, metrics) to PATH",
    )
    train.add_argument(
        "--profile",
        action="store_true",
        help="print the aggregated stage-timing tree after the run",
    )
    train.add_argument(
        "--workers",
        type=int,
        default=None,
        metavar="N",
        help="CV-fold worker processes (0 = all CPUs; default $REPRO_WORKERS or 1)",
    )
    train.add_argument(
        "--cache-dir",
        default=None,
        metavar="DIR",
        help="content-addressed feature-map cache directory "
        "(default $REPRO_CACHE_DIR or no caching)",
    )
    train.add_argument(
        "--checkpoint-dir",
        default=None,
        metavar="DIR",
        help="journal finished CV folds under DIR so an interrupted run "
        "can resume (skips already-completed folds on rerun)",
    )
    train.add_argument(
        "--no-resume",
        action="store_true",
        help="discard any existing fold journal instead of resuming from it",
    )
    train.add_argument(
        "--stream",
        action="store_true",
        help="train a single deepmap-* model out of core: regenerate "
        "graphs lazily, encode shard-by-shard, spill to the cache "
        "(bitwise-equal to the materialized fit; no CV folds)",
    )
    train.add_argument(
        "--shard-size",
        type=int,
        default=64,
        metavar="K",
        help="graphs per encoded shard in --stream mode (default 64)",
    )
    train.add_argument(
        "--prefetch",
        type=int,
        default=2,
        metavar="D",
        help="bounded prefetch queue depth in --stream mode (default 2)",
    )

    cache = sub.add_parser(
        "cache", help="inspect or clear the feature-map cache"
    )
    cache.add_argument("action", choices=("stats", "clear"))
    cache.add_argument(
        "--cache-dir",
        default=None,
        metavar="DIR",
        help="cache directory (default $REPRO_CACHE_DIR)",
    )

    checkpoints = sub.add_parser(
        "checkpoints", help="inspect or prune checkpoints and fold journals"
    )
    checkpoints.add_argument("action", choices=("ls", "prune"))
    checkpoints.add_argument(
        "--checkpoint-dir",
        required=True,
        metavar="DIR",
        help="directory holding ckpt-*.npz files and/or fold journals",
    )
    checkpoints.add_argument(
        "--keep",
        type=int,
        default=3,
        metavar="N",
        help="checkpoints to retain per directory when pruning (default 3)",
    )

    serve = sub.add_parser(
        "serve", help="serve a saved model over HTTP with micro-batching"
    )
    serve.add_argument(
        "--model",
        required=True,
        action="append",
        metavar="PATH",
        help="model file written by repro.core.persistence.save_model; "
        "repeat to load successive versions of the slot (v1, v2, ...) "
        "for --canary / --shadow routing",
    )
    serve.add_argument(
        "--name",
        default="default",
        help="registry slot name for the model (default: default)",
    )
    serve.add_argument(
        "--backend",
        choices=("thread", "pool"),
        default="thread",
        help="inference backend: in-process threads or a process pool "
        "with shared-memory tensor handoff (default: thread)",
    )
    serve.add_argument(
        "--workers",
        default="1",
        metavar="N|auto",
        help="batcher drainers (and pool workers with --backend pool); "
        "'auto' autoscales between 1 and min(4, cpu count) from "
        "queue-depth/p95 gauges (default: 1)",
    )
    serve.add_argument(
        "--canary",
        default=None,
        metavar="NAME@VERSION:PCT",
        help="route PCT%% of NAME's traffic to VERSION "
        "(e.g. default@1:10); the split is a deterministic trace-id hash",
    )
    serve.add_argument(
        "--shadow",
        default=None,
        metavar="NAME@VERSION",
        help="shadow-evaluate VERSION on every NAME batch; results are "
        "compared and counted (serve_shadow_* metrics), never returned",
    )
    serve.add_argument("--host", default="127.0.0.1")
    serve.add_argument(
        "--port",
        type=int,
        default=8080,
        help="listen port (0 picks an ephemeral port, printed at startup)",
    )
    serve.add_argument(
        "--max-batch",
        type=int,
        default=32,
        metavar="B",
        help="flush a fused batch at B graphs (default 32)",
    )
    serve.add_argument(
        "--max-wait-ms",
        type=float,
        default=5.0,
        metavar="T",
        help="flush a fused batch after T ms of coalescing (default 5)",
    )
    serve.add_argument(
        "--max-queue",
        type=int,
        default=128,
        metavar="Q",
        help="admission-queue bound; beyond it requests shed with 429 (default 128)",
    )
    serve.add_argument(
        "--timeout-ms",
        type=float,
        default=30000.0,
        metavar="T",
        help="default per-request deadline when the request sets none (default 30000)",
    )
    serve.add_argument(
        "--no-warm",
        action="store_true",
        help="skip the warm-up prediction at model load time",
    )
    serve.add_argument(
        "--log-json",
        metavar="PATH",
        default=None,
        help="stream request spans, access-log events and SLO alerts to PATH "
        "(repro ops reconstructs waterfalls and SLO summaries from it)",
    )
    serve.add_argument(
        "--slo-p95-ms",
        type=float,
        default=500.0,
        metavar="MS",
        help="p95 latency objective behind /healthz degradation (default 500)",
    )
    serve.add_argument(
        "--slo-error-rate",
        type=float,
        default=0.01,
        metavar="R",
        help="error-budget rate objective in (0,1) (default 0.01)",
    )
    serve.add_argument(
        "--slo-window-s",
        type=float,
        default=60.0,
        metavar="S",
        help="sliding window the objectives are evaluated over (default 60)",
    )
    serve.add_argument(
        "--resource-interval-s",
        type=float,
        default=5.0,
        metavar="S",
        help="background resource-sampler period; <= 0 disables (default 5)",
    )

    loadtest = sub.add_parser(
        "loadtest", help="drive a running serve endpoint and report latency"
    )
    loadtest.add_argument("url", metavar="URL", help="e.g. http://127.0.0.1:8080")
    loadtest.add_argument(
        "--mode",
        choices=("closed", "open"),
        default="closed",
        help="closed: workers fire back-to-back; open: fixed --rps schedule",
    )
    loadtest.add_argument(
        "--rps", type=float, default=None, help="target request rate (open mode)"
    )
    loadtest.add_argument("--duration", type=float, default=5.0, metavar="S")
    loadtest.add_argument("--concurrency", type=int, default=8, metavar="C")
    loadtest.add_argument(
        "--endpoint",
        choices=("predict", "predict_proba"),
        default="predict_proba",
    )
    loadtest.add_argument(
        "--codec",
        choices=("json", "binary"),
        default="json",
        help="wire codec for requests/responses (binary = "
        "application/x-repro-graph CSR tensors; same numbers, fewer bytes)",
    )
    loadtest.add_argument(
        "--dataset",
        default="MUTAG",
        help="benchmark generator supplying the request graphs (default MUTAG)",
    )
    loadtest.add_argument("--scale", type=float, default=0.08)
    loadtest.add_argument("--seed", type=int, default=0)
    loadtest.add_argument(
        "--timeout-ms",
        type=float,
        default=None,
        help="per-request deadline sent with every request",
    )
    loadtest.add_argument(
        "--json",
        metavar="PATH",
        default=None,
        help="also write the full report as JSON to PATH",
    )

    report = sub.add_parser(
        "report", help="summarise a --log-json run file (stage timings, telemetry)"
    )
    report.add_argument("run_file", metavar="RUN.jsonl")

    ops = sub.add_parser(
        "ops", help="trace waterfalls and SLO summaries from serve run files"
    )
    ops_sub = ops.add_subparsers(dest="ops_command", required=True)

    ops_trace = ops_sub.add_parser(
        "trace", help="render one request's stage waterfall"
    )
    ops_trace.add_argument("trace_id", metavar="TRACE_ID")
    ops_trace.add_argument(
        "run_file",
        metavar="RUN.jsonl",
        nargs="?",
        default=None,
        help="serve --log-json file (omit when using --url)",
    )
    ops_trace.add_argument(
        "--url",
        default=None,
        metavar="URL",
        help="fetch the trace live from GET /v1/traces/<id> instead",
    )
    ops_trace.add_argument(
        "--json",
        action="store_true",
        help="print the raw waterfall record instead of the ASCII rendering",
    )

    ops_traces = ops_sub.add_parser(
        "traces", help="list the traced requests in a run file"
    )
    ops_traces.add_argument("run_file", metavar="RUN.jsonl")

    ops_slo = ops_sub.add_parser(
        "slo", help="replay a run's access log against SLO objectives"
    )
    ops_slo.add_argument("run_file", metavar="RUN.jsonl")
    ops_slo.add_argument(
        "--latency-target-ms",
        type=float,
        default=500.0,
        metavar="MS",
        help="p95 latency objective (default 500)",
    )
    ops_slo.add_argument(
        "--error-rate-target",
        type=float,
        default=0.01,
        metavar="R",
        help="error-budget rate objective in (0,1) (default 0.01)",
    )

    export = sub.add_parser("export", help="write a dataset in TU format")
    export.add_argument("--dataset", required=True)
    export.add_argument("--out", required=True)
    export.add_argument("--scale", type=float, default=0.15)
    export.add_argument("--seed", type=int, default=0)

    dist = sub.add_parser(
        "dist", help="distributed CV: shard workers + coordinator"
    )
    dist_sub = dist.add_subparsers(dest="dist_command", required=True)

    dist_worker = dist_sub.add_parser(
        "worker", help="run one shard-owning dist worker"
    )
    dist_worker.add_argument("--host", default="127.0.0.1")
    dist_worker.add_argument(
        "--port",
        type=int,
        default=0,
        help="bind port (0 = ephemeral; parse the 'listening on' line)",
    )
    dist_worker.add_argument(
        "--shard",
        default="0/1",
        metavar="I/N",
        help="this worker's shard: index/num_shards (e.g. 1/4)",
    )
    dist_worker.add_argument(
        "--cache-dir",
        default=None,
        metavar="DIR",
        help="back the worker's feature-map cache with this directory",
    )
    dist_worker.add_argument(
        "--worker-id",
        default=None,
        help="stable identifier in logs and reports (default shard<I>)",
    )

    dist_run = dist_sub.add_parser(
        "run", help="coordinate a distributed CV over running workers"
    )
    dist_run.add_argument("--dataset", required=True)
    dist_run.add_argument(
        "--model", choices=MODEL_CHOICES, default="wl-svm"
    )
    dist_run.add_argument(
        "--workers",
        required=True,
        metavar="HOST:PORT,...",
        help="comma-separated addresses of running dist workers",
    )
    dist_run.add_argument("--scale", type=float, default=0.1)
    dist_run.add_argument("--folds", type=int, default=3)
    dist_run.add_argument("--epochs", type=int, default=15)
    dist_run.add_argument("--seed", type=int, default=0)
    dist_run.add_argument(
        "--checkpoint-dir",
        default=None,
        metavar="DIR",
        help="journal finished folds (exactly-once, crash-resumable)",
    )
    dist_run.add_argument(
        "--no-resume",
        action="store_true",
        help="discard any previous fold journal before running",
    )
    dist_run.add_argument(
        "--shutdown-workers",
        action="store_true",
        help="ask the workers to exit after the run completes",
    )
    return parser


def _cmd_list_datasets() -> int:
    from repro.datasets import DATASET_NAMES, paper_statistics

    print(f"{'dataset':<12s} {'n':>5s} {'cls':>4s} {'nodes':>8s} {'edges':>9s}")
    for name in DATASET_NAMES:
        s = paper_statistics(name)
        print(
            f"{name:<12s} {s.size:>5d} {s.num_classes:>4d} "
            f"{s.avg_nodes:>8.1f} {s.avg_edges:>9.1f}"
        )
    return 0


def _cmd_stats(args: argparse.Namespace) -> int:
    from repro.datasets import make_dataset

    ds = make_dataset(
        args.name, scale=args.scale, seed=args.seed, stream=args.stream
    )
    s = ds.statistics()
    print(f"dataset:  {s.name}")
    print(f"graphs:   {s.size}")
    print(f"classes:  {s.num_classes}")
    print(f"avg |V|:  {s.avg_nodes:.2f}")
    print(f"avg |E|:  {s.avg_edges:.2f}")
    print(f"labels:   {s.num_labels}")
    return 0


def _make_model_factory(model: str, epochs: int):
    # Canonical registry lives in repro.dist.protocol so a dist worker
    # handed a model name builds the identical model this CLI would.
    from repro.dist.protocol import model_factory_for

    return model_factory_for(model, epochs)


def _make_kernel(model: str):
    from repro.dist.protocol import kernel_for

    return kernel_for(model)


def _print_extras(result) -> None:
    """Print the per-fold diagnostics carried in ``CVResult.extra``."""
    seconds = result.extra.get("fold_seconds")
    if seconds:
        per_fold = ", ".join(f"{s:.2f}s" for s in seconds)
        print(f"fold times: {per_fold}  (total {sum(seconds):.2f}s)")
    curves = result.extra.get("fold_val_curves")
    if curves and result.best_epoch is not None:
        at_best = ", ".join(f"{c[result.best_epoch]:.3f}" for c in curves)
        print(f"fold val acc @ best epoch: {at_best}")
    selected_c = result.extra.get("selected_c")
    if selected_c:
        print(f"selected C per fold: {', '.join(f'{c:g}' for c in selected_c)}")


def _run_stream_train(args: argparse.Namespace) -> int:
    """One streamed out-of-core fit (no CV folds); bitwise-equal to fit."""
    import time

    from repro.datasets import make_dataset
    from repro.obs.resources import sample_resources

    if not args.model.startswith("deepmap-"):
        print(
            f"--stream supports deepmap-* models only (got {args.model})",
            file=sys.stderr,
        )
        return 2
    stream = make_dataset(
        args.dataset, scale=args.scale, seed=args.seed, stream=True
    )
    factory = _make_model_factory(args.model, args.epochs)
    assert factory is not None  # deepmap-* is always neural
    model = factory(args.seed)
    print(
        f"{args.model} on {stream.name} ({len(stream)} graphs, streamed, "
        f"shard size {args.shard_size}, prefetch depth {args.prefetch})..."
    )
    start = time.perf_counter()
    model.fit_stream(
        stream,
        shard_size=args.shard_size,
        prefetch_depth=args.prefetch,
    )
    elapsed = time.perf_counter() - start
    sample = sample_resources()
    print(f"train accuracy: {model.history_.train_accuracy[-1]:.4f}")
    print(
        f"throughput: {len(stream) / elapsed:.1f} graphs/sec sustained "
        f"({elapsed:.2f}s, {args.epochs} epochs)"
    )
    print(f"peak RSS: {sample['peak_rss_bytes'] / 2**20:.1f} MiB")
    return 0


def _cmd_train(args: argparse.Namespace) -> int:
    from repro import obs
    from repro.datasets import make_dataset
    from repro.eval import evaluate_kernel_svm, evaluate_neural_model

    observing = args.profile or args.log_json is not None
    if observing:
        obs.reset()  # each run profiles from a clean slate
        obs.enable(jsonl_path=args.log_json)
        obs.meta(
            "run",
            command="train",
            dataset=args.dataset,
            model=args.model,
            scale=args.scale,
            folds=args.folds,
            epochs=args.epochs,
            seed=args.seed,
            stream=args.stream,
        )
    try:
        if args.cache_dir is not None:
            from repro.cache import configure

            configure(cache_dir=args.cache_dir)
        if args.stream:
            rc = _run_stream_train(args)
            if rc != 0:
                return rc
        else:
            ds = make_dataset(args.dataset, scale=args.scale, seed=args.seed)
            print(
                f"{args.model} on {ds.name} "
                f"({len(ds)} graphs, {args.folds}-fold CV)..."
            )
            factory = _make_model_factory(args.model, args.epochs)
            if factory is not None:
                result = evaluate_neural_model(
                    factory,
                    ds,
                    n_splits=args.folds,
                    seed=args.seed,
                    name=args.model,
                    workers=args.workers,
                    checkpoint_dir=args.checkpoint_dir,
                    resume=not args.no_resume,
                )
                print(
                    f"accuracy: {result.formatted()}  "
                    f"(best epoch {result.best_epoch})"
                )
            else:
                kernel = _make_kernel(args.model)
                assert kernel is not None  # argparse choices guarantee it
                result = evaluate_kernel_svm(
                    kernel,
                    ds,
                    n_splits=args.folds,
                    seed=args.seed,
                    workers=args.workers,
                    checkpoint_dir=args.checkpoint_dir,
                    resume=not args.no_resume,
                )
                print(f"accuracy: {result.formatted()}")
            _print_extras(result)
        from repro.cache import get_cache

        cache = get_cache()
        if cache is not None:
            s = cache.stats
            print(
                f"cache: {s.hits} hits / {s.misses} misses "
                f"({s.memory_hits} memory, {s.disk_hits} disk)"
            )
        if observing:
            obs.flush_metrics()
            if args.profile:
                print()
                print(obs.render_profile())
            if args.log_json is not None:
                print(f"run events written to {args.log_json}")
    finally:
        if observing:
            obs.disable()
    return 0


def _cmd_cache(args: argparse.Namespace) -> int:
    import os

    from repro.cache import CACHE_DIR_ENV, FeatureMapCache

    cache_dir = args.cache_dir or os.environ.get(CACHE_DIR_ENV, "").strip()
    if not cache_dir:
        print(
            "no cache directory: pass --cache-dir or set "
            f"{CACHE_DIR_ENV} (caching is off by default)"
        )
        return 2
    cache = FeatureMapCache(cache_dir=cache_dir)
    if args.action == "clear":
        removed = cache.clear()
        print(f"removed {removed} cached entries from {cache_dir}")
        return 0
    entries, total_bytes = cache.disk_usage()
    print(f"cache dir: {cache_dir}")
    print(f"entries:   {entries}")
    print(f"size:      {total_bytes / 1024:.1f} KiB")
    return 0


def _cmd_checkpoints(args: argparse.Namespace) -> int:
    from pathlib import Path

    from repro.resilience import CheckpointManager, FoldJournal

    root = Path(args.checkpoint_dir)
    if not root.exists():
        print(f"no such directory: {root}")
        return 2
    # Checkpoints and journals may live in the root or one level down
    # (protocol journals use per-run-key subdirectories).
    directories = [root] + sorted(p for p in root.iterdir() if p.is_dir())
    if args.action == "prune":
        removed = 0
        for directory in directories:
            manager = CheckpointManager(directory, keep=None)
            if manager.list():
                removed += manager.prune(args.keep)
        print(f"removed {removed} checkpoints (kept newest {args.keep} per dir)")
        return 0
    found = False
    for directory in directories:
        infos = CheckpointManager(directory, keep=None).list()
        for info in infos:
            found = True
            print(f"{info.path}  step={info.step}  {info.bytes / 1024:.1f} KiB")
        journal_path = directory / "folds.jsonl"
        if journal_path.exists():
            found = True
            folds = sorted(FoldJournal(journal_path).load())
            print(f"{journal_path}  folds={folds}")
    if not found:
        print(f"no checkpoints or fold journals under {root}")
    return 0


def _cmd_serve(args: argparse.Namespace) -> int:
    import threading

    from repro import obs
    from repro.serve import ModelRegistry, ReproServer, ServeConfig

    if args.log_json is not None:
        # Enable before the server starts so it streams rather than
        # owning an in-memory-only context.
        obs.reset()
        obs.enable(jsonl_path=args.log_json)
    import os

    from repro.serve.registry import parse_canary_spec

    registry = ModelRegistry(warm=not args.no_warm)
    for path in args.model:  # repeated --model = successive versions
        entry = registry.load(path, name=args.name)
    if args.canary is not None:
        name, version, pct = parse_canary_spec(args.canary)
        registry.set_canary(name, version, pct)
    if args.shadow is not None:
        try:
            shadow_name, shadow_version_s = args.shadow.rsplit("@", 1)
            shadow_version = int(shadow_version_s)
        except ValueError:
            print(f"bad --shadow spec {args.shadow!r}; expected name@version")
            return 2
        registry.set_shadow(shadow_name, shadow_version)
    if args.workers == "auto":
        autoscale = True
        workers = 1
        autoscale_max = max(1, min(4, os.cpu_count() or 1))
    else:
        autoscale = False
        try:
            workers = int(args.workers)
        except ValueError:
            print(f"--workers must be an integer or 'auto', got {args.workers!r}")
            return 2
        autoscale_max = max(workers, 1)
    config = ServeConfig(
        host=args.host,
        port=args.port,
        max_batch=args.max_batch,
        max_wait_ms=args.max_wait_ms,
        max_queue=args.max_queue,
        request_timeout_s=args.timeout_ms / 1000.0,
        slo_latency_p95_ms=args.slo_p95_ms,
        slo_error_rate_target=args.slo_error_rate,
        slo_window_s=args.slo_window_s,
        resource_interval_s=args.resource_interval_s,
        backend=args.backend,
        pool_workers=workers,
        batcher_workers=workers,
        autoscale=autoscale,
        autoscale_max=autoscale_max,
    )
    server = ReproServer(registry, config)
    server.start()
    # The exact "listening on" line is the startup contract scripts
    # (e.g. the serve smoke tier) parse to learn the ephemeral port.
    workers_desc = "auto" if autoscale else str(workers)
    print(
        f"listening on {server.url}  "
        f"(model {entry.name} v{entry.version}: {entry.model.extractor.name}, "
        f"max_batch={config.max_batch}, max_wait_ms={config.max_wait_ms:g}, "
        f"max_queue={config.max_queue}, backend={config.backend}, "
        f"workers={workers_desc})",
        flush=True,
    )
    try:
        threading.Event().wait()
    except KeyboardInterrupt:
        print("shutting down...", flush=True)
    finally:
        server.stop()
        if args.log_json is not None:
            obs.disable()
            print(f"run events written to {args.log_json}", flush=True)
    return 0


def _cmd_loadtest(args: argparse.Namespace) -> int:
    import json as json_mod

    from repro.datasets import make_dataset
    from repro.serve import ServeClient, run_load

    if args.mode == "open" and not args.rps:
        print("open-loop mode needs --rps", flush=True)
        return 2
    ds = make_dataset(args.dataset, scale=args.scale, seed=args.seed)
    client = ServeClient(args.url)
    health = client.healthz()  # fail fast on a dead/missing server
    client.close()
    models = ", ".join(m["name"] for m in health.get("models", [])) or "none"
    print(
        f"target {args.url} up ({health.get('uptime_s', 0):.0f}s, models: {models}); "
        f"sending {ds.name} graphs"
    )
    result = run_load(
        args.url,
        ds.graphs,
        mode=args.mode,
        endpoint=args.endpoint,
        concurrency=args.concurrency,
        duration_s=args.duration,
        rps=args.rps,
        timeout_ms=args.timeout_ms,
        codec=args.codec,
    )
    print(result.summary())
    if args.json is not None:
        with open(args.json, "w") as fh:
            json_mod.dump(result.to_dict(), fh, indent=2, sort_keys=True)
            fh.write("\n")
        print(f"full report written to {args.json}")
    return 0 if result.transport_errors == 0 else 1


def _cmd_report(args: argparse.Namespace) -> int:
    from repro.obs.report import build_report, format_report, load_events

    print(format_report(build_report(load_events(args.run_file))))
    return 0


def _cmd_ops(args: argparse.Namespace) -> int:
    import json as json_mod

    from repro.obs.report import load_events
    from repro.obs.reqtrace import build_waterfall, format_waterfall, list_traces
    from repro.obs.slo import SloConfig, build_slo_summary, format_slo_summary

    if args.ops_command == "trace":
        if args.url is not None:
            from repro.serve import ServeClient, ServeClientError

            client = ServeClient(args.url)
            try:
                record = client.trace(args.trace_id)
            except ServeClientError as exc:
                print(f"trace {args.trace_id}: {exc}")
                return 2
            finally:
                client.close()
        elif args.run_file is not None:
            record = build_waterfall(load_events(args.run_file), args.trace_id)
            if record is None:
                print(f"trace {args.trace_id} not found in {args.run_file}")
                return 2
        else:
            print("ops trace needs a RUN.jsonl file or --url")
            return 2
        if args.json:
            print(json_mod.dumps(record, indent=2, sort_keys=True))
        else:
            print(format_waterfall(record))
        return 0

    if args.ops_command == "traces":
        rows = list_traces(load_events(args.run_file))
        if not rows:
            print(f"no traced requests in {args.run_file}")
            return 0
        print(f"{'trace_id':<18s} {'endpoint':<14s} {'status':>6s} "
              f"{'batch':>6s} {'ms':>9s}")
        for row in rows:
            print(
                f"{row['trace_id']:<18s} {row['endpoint']:<14s} "
                f"{row['status'] if row['status'] is not None else '?':>6} "
                f"{row['batch_id'] or '-':>6s} {row['duration_s'] * 1000:>9.2f}"
            )
        return 0

    # args.ops_command == "slo" (argparse enforces the choices)
    config = SloConfig(
        latency_p95_ms=args.latency_target_ms,
        error_rate_target=args.error_rate_target,
    )
    summary = build_slo_summary(load_events(args.run_file), config)
    print(format_slo_summary(summary))
    return 0 if summary["status"] == "ok" else 1


def _parse_shard(spec: str) -> tuple[int, int]:
    try:
        index_s, num_s = spec.split("/", 1)
        index, num = int(index_s), int(num_s)
    except ValueError:
        raise SystemExit(f"--shard must look like I/N, got {spec!r}") from None
    if not 0 <= index < num:
        raise SystemExit(f"--shard index {index} out of range for {num} shards")
    return index, num


def _parse_worker_addresses(spec: str) -> list[tuple[str, int]]:
    addresses = []
    for part in spec.split(","):
        part = part.strip()
        if not part:
            continue
        try:
            host, port_s = part.rsplit(":", 1)
            addresses.append((host, int(port_s)))
        except ValueError:
            raise SystemExit(
                f"--workers entries must look like HOST:PORT, got {part!r}"
            ) from None
    if not addresses:
        raise SystemExit("--workers needs at least one HOST:PORT address")
    return addresses


def _cmd_dist_worker(args: argparse.Namespace) -> int:
    from repro.cache import FeatureMapCache
    from repro.dist import DistWorker

    shard_index, num_shards = _parse_shard(args.shard)
    cache = FeatureMapCache(cache_dir=args.cache_dir)
    worker = DistWorker(
        args.host,
        args.port,
        shard_index=shard_index,
        num_shards=num_shards,
        cache=cache,
        worker_id=args.worker_id,
    )
    host, port = worker.start()
    # The exact "listening on" line is the startup contract the dist
    # test harness (and any launcher script) parses for the port.
    print(
        f"dist worker {worker.worker_id} listening on {host}:{port} "
        f"(shard {shard_index}/{num_shards})",
        flush=True,
    )
    try:
        worker.serve_forever()
    except KeyboardInterrupt:
        print("shutting down...", flush=True)
    finally:
        worker.stop()
    return 0


def _cmd_dist_run(args: argparse.Namespace) -> int:
    from repro.dist import DistCoordinator, run_spec

    addresses = _parse_worker_addresses(args.workers)
    spec = run_spec(
        args.model,
        args.dataset,
        scale=args.scale,
        dataset_seed=args.seed,
        n_splits=args.folds,
        seed=args.seed,
        epochs=args.epochs,
    )
    print(
        f"{args.model} on {args.dataset} ({args.folds}-fold CV, "
        f"{len(addresses)} workers)..."
    )
    with DistCoordinator(addresses) as coordinator:
        report = coordinator.run(
            spec,
            checkpoint_dir=args.checkpoint_dir,
            resume=not args.no_resume,
        )
        if args.shutdown_workers:
            coordinator.shutdown_workers()
    result = report.result
    if result.best_epoch is not None:
        print(f"accuracy: {result.formatted()}  (best epoch {result.best_epoch})")
    else:
        print(f"accuracy: {result.formatted()}")
    _print_extras(result)
    by_worker = ", ".join(
        f"{worker}={sorted(folds)}"
        for worker, folds in sorted(report.folds_by_worker.items())
    )
    print(
        f"dist: {report.completed_remote} folds remote"
        + (f" ({by_worker})" if by_worker else "")
        + (
            f", {report.completed_from_journal} from journal"
            if report.completed_from_journal
            else ""
        )
        + (
            f", {len(report.degraded_folds)} degraded to serial"
            if report.degraded_folds
            else ""
        )
        + (
            f", {report.worker_deaths} worker deaths, "
            f"{report.reassignments} reassignments"
            if report.worker_deaths
            else ""
        )
    )
    return 0


def _cmd_export(args: argparse.Namespace) -> int:
    from repro.datasets import make_dataset
    from repro.datasets.tu_format import save_tu_dataset

    ds = make_dataset(args.dataset, scale=args.scale, seed=args.seed)
    save_tu_dataset(ds, args.out)
    print(f"wrote {len(ds)} graphs to {args.out} (TU format)")
    return 0


def main(argv: list[str] | None = None) -> int:
    """Entry point; returns the process exit code."""
    args = build_parser().parse_args(argv)
    if args.command == "list-datasets":
        return _cmd_list_datasets()
    if args.command == "stats":
        return _cmd_stats(args)
    if args.command == "train":
        return _cmd_train(args)
    if args.command == "report":
        return _cmd_report(args)
    if args.command == "cache":
        return _cmd_cache(args)
    if args.command == "checkpoints":
        return _cmd_checkpoints(args)
    if args.command == "export":
        return _cmd_export(args)
    if args.command == "serve":
        return _cmd_serve(args)
    if args.command == "loadtest":
        return _cmd_loadtest(args)
    if args.command == "ops":
        return _cmd_ops(args)
    if args.command == "dist":
        if args.dist_command == "worker":
            return _cmd_dist_worker(args)
        return _cmd_dist_run(args)
    return 2  # pragma: no cover - argparse enforces the choices


if __name__ == "__main__":  # pragma: no cover
    sys.exit(main())
