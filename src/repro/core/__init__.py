"""DeepMap: the paper's primary contribution.

Vertex alignment by eigenvector centrality, BFS receptive fields, the
Algorithm 1 encoding pipeline, the Fig. 4 CNN, and the end-to-end
classifier with its three feature-map variants.
"""

from repro.core.alignment import ORDERINGS, centrality_scores, vertex_sequence
from repro.core.architecture import (
    DEFAULT_CHANNELS,
    DEFAULT_DENSE_UNITS,
    build_deepmap_cnn,
)
from repro.core.interpret import occlusion_scores, vertex_contributions
from repro.core.model import DeepMapClassifier, deepmap_gk, deepmap_sp, deepmap_wl
from repro.core.persistence import ModelPersistenceError, load_model, save_model
from repro.core.pipeline import DeepMapEncoder, EncodedDataset
from repro.core.vertex_model import DeepMapVertexClassifier
from repro.core.receptive_field import DUMMY, all_receptive_fields, receptive_field

__all__ = [
    "ORDERINGS",
    "centrality_scores",
    "vertex_sequence",
    "receptive_field",
    "all_receptive_fields",
    "DUMMY",
    "DeepMapEncoder",
    "EncodedDataset",
    "build_deepmap_cnn",
    "DEFAULT_CHANNELS",
    "DEFAULT_DENSE_UNITS",
    "DeepMapClassifier",
    "deepmap_gk",
    "deepmap_sp",
    "deepmap_wl",
    "save_model",
    "load_model",
    "ModelPersistenceError",
    "DeepMapVertexClassifier",
    "vertex_contributions",
    "occlusion_scores",
]
