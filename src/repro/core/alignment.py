"""Vertex alignment across graphs (Section 4.1, step 1).

DeepMap makes CNNs applicable to graphs by giving every graph a vertex
sequence sorted by eigenvector centrality; sequences shorter than the
dataset maximum ``w`` are padded with dummy vertices whose feature maps
are zero.  This module produces the orderings; padding happens in
:mod:`repro.core.pipeline`.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.graph.canonical import canonical_ranking
from repro.graph.centrality import (
    betweenness_centrality,
    closeness_centrality,
    degree_centrality,
    eigenvector_centrality,
    pagerank_centrality,
)
from repro.graph.graph import Graph

__all__ = [
    "vertex_sequence",
    "centrality_scores",
    "union_vertex_order",
    "UnionOrder",
    "ORDERINGS",
]

#: Supported vertex orderings.  "eigenvector" is the paper's choice;
#: the others are ablation alternatives
#: (benchmarks/bench_ablation_ordering.py).
ORDERINGS = (
    "eigenvector",
    "degree",
    "canonical",
    "pagerank",
    "closeness",
    "betweenness",
)


def centrality_scores(g: Graph, ordering: str = "eigenvector") -> np.ndarray:
    """Importance score per vertex under the chosen ordering measure."""
    if ordering == "eigenvector":
        return eigenvector_centrality(g)
    if ordering == "degree":
        return degree_centrality(g)
    if ordering == "pagerank":
        return pagerank_centrality(g)
    if ordering == "closeness":
        return closeness_centrality(g)
    if ordering == "betweenness":
        return betweenness_centrality(g)
    if ordering == "canonical":
        # Convert the canonical rank into a descending score.
        order = canonical_ranking(g)
        scores = np.empty(g.n, dtype=np.float64)
        scores[order] = np.arange(g.n, 0, -1, dtype=np.float64)
        return scores
    raise ValueError(f"unknown ordering {ordering!r}; choose from {ORDERINGS}")


def vertex_sequence(
    g: Graph, scores: np.ndarray | None = None, ordering: str = "eigenvector"
) -> np.ndarray:
    """Vertex ids sorted for CNN traversal.

    Primary key: centrality score (descending).  Ties are broken by degree
    (descending) and label (ascending) — both isomorphism-invariant — and
    finally by vertex id for full determinism.
    """
    if scores is None:
        scores = centrality_scores(g, ordering)
    if scores.shape != (g.n,):
        raise ValueError(f"scores shape {scores.shape} mismatches n={g.n}")
    degrees = g.degrees()
    # np.lexsort sorts ascending by the LAST key first.
    order = np.lexsort((np.arange(g.n), g.labels, -degrees, -scores))
    return order.astype(np.int64)


@dataclass
class UnionOrder:
    """Shared tie-break ordering over the disjoint union of a graph list.

    ``order`` holds *global* vertex ids (graph offsets applied) sorted by
    ``(graph, -score, -degree, label, local id)``.  The graph index is
    the primary key, so the block ``order[starts[g] : starts[g] +
    sizes[g]]`` covers exactly graph ``g``'s vertices and — lexsort being
    stable with per-block keys identical to :func:`vertex_sequence`'s —
    lists them in exactly that graph's own sequence order.  ``rank``
    inverts the ordering per graph: ``rank[starts[g] + u]`` is local
    vertex ``u``'s position in graph ``g``'s sequence.

    One instance serves both encoder stages that need the ordering
    (alignment sequences and receptive-field tie-breaking), which is what
    lets the fused encode path sort the whole dataset once.
    """

    order: np.ndarray
    rank: np.ndarray
    starts: np.ndarray
    sizes: np.ndarray

    def sequence(self, gi: int) -> np.ndarray:
        """Local vertex sequence of graph ``gi`` (== vertex_sequence)."""
        lo = int(self.starts[gi])
        block = self.order[lo : lo + int(self.sizes[gi])]
        return (block - lo).astype(np.int64)


def union_vertex_order(
    graphs: list[Graph], scores_list: list[np.ndarray]
) -> UnionOrder:
    """One lexsort ranking every vertex of every graph at once.

    Bitwise-equivalent per graph to :func:`vertex_sequence` (pinned in
    ``tests/equivalence/test_pipeline_equiv.py``): the sort keys within a
    graph's block are the same values in the same precedence, with the
    graph index prepended as the primary key.
    """
    n_graphs = len(graphs)
    sizes = np.asarray([g.n for g in graphs], dtype=np.int64)
    starts = np.zeros(n_graphs, dtype=np.int64)
    if n_graphs:
        starts[1:] = np.cumsum(sizes)[:-1]
    total = int(sizes.sum()) if n_graphs else 0
    for g, scores in zip(graphs, scores_list):
        scores = np.asarray(scores)
        if scores.shape != (g.n,):
            raise ValueError(f"scores shape {scores.shape} mismatches n={g.n}")
    if total == 0:
        empty = np.zeros(0, dtype=np.int64)
        return UnionOrder(order=empty, rank=empty.copy(), starts=starts, sizes=sizes)
    gid = np.repeat(np.arange(n_graphs), sizes)
    labels_flat = np.concatenate([np.asarray(g.labels) for g in graphs])
    deg_flat = np.concatenate([g.degrees() for g in graphs])
    scores_flat = np.concatenate(
        [np.asarray(s, dtype=np.float64) for s in scores_list]
    )
    id_local = np.concatenate([np.arange(g.n, dtype=np.int64) for g in graphs])
    order = np.lexsort((id_local, labels_flat, -deg_flat, -scores_flat, gid))
    rank = np.empty(total, dtype=np.int64)
    rank[order] = np.arange(total, dtype=np.int64) - starts[gid[order]]
    return UnionOrder(
        order=order.astype(np.int64), rank=rank, starts=starts, sizes=sizes
    )
