"""Vertex alignment across graphs (Section 4.1, step 1).

DeepMap makes CNNs applicable to graphs by giving every graph a vertex
sequence sorted by eigenvector centrality; sequences shorter than the
dataset maximum ``w`` are padded with dummy vertices whose feature maps
are zero.  This module produces the orderings; padding happens in
:mod:`repro.core.pipeline`.
"""

from __future__ import annotations

import numpy as np

from repro.graph.canonical import canonical_ranking
from repro.graph.centrality import (
    betweenness_centrality,
    closeness_centrality,
    degree_centrality,
    eigenvector_centrality,
    pagerank_centrality,
)
from repro.graph.graph import Graph

__all__ = ["vertex_sequence", "centrality_scores", "ORDERINGS"]

#: Supported vertex orderings.  "eigenvector" is the paper's choice;
#: the others are ablation alternatives
#: (benchmarks/bench_ablation_ordering.py).
ORDERINGS = (
    "eigenvector",
    "degree",
    "canonical",
    "pagerank",
    "closeness",
    "betweenness",
)


def centrality_scores(g: Graph, ordering: str = "eigenvector") -> np.ndarray:
    """Importance score per vertex under the chosen ordering measure."""
    if ordering == "eigenvector":
        return eigenvector_centrality(g)
    if ordering == "degree":
        return degree_centrality(g)
    if ordering == "pagerank":
        return pagerank_centrality(g)
    if ordering == "closeness":
        return closeness_centrality(g)
    if ordering == "betweenness":
        return betweenness_centrality(g)
    if ordering == "canonical":
        # Convert the canonical rank into a descending score.
        order = canonical_ranking(g)
        scores = np.empty(g.n, dtype=np.float64)
        scores[order] = np.arange(g.n, 0, -1, dtype=np.float64)
        return scores
    raise ValueError(f"unknown ordering {ordering!r}; choose from {ORDERINGS}")


def vertex_sequence(
    g: Graph, scores: np.ndarray | None = None, ordering: str = "eigenvector"
) -> np.ndarray:
    """Vertex ids sorted for CNN traversal.

    Primary key: centrality score (descending).  Ties are broken by degree
    (descending) and label (ascending) — both isomorphism-invariant — and
    finally by vertex id for full determinism.
    """
    if scores is None:
        scores = centrality_scores(g, ordering)
    if scores.shape != (g.n,):
        raise ValueError(f"scores shape {scores.shape} mismatches n={g.n}")
    degrees = g.degrees()
    # np.lexsort sorts ascending by the LAST key first.
    order = np.lexsort((np.arange(g.n), g.labels, -degrees, -scores))
    return order.astype(np.int64)
