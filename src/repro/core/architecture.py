"""The Fig. 4 convolutional architecture.

Three 1-D convolutions with ReLU (the first has kernel = stride = r so
each output position aggregates one receptive field; the next two are
width-1 channel mixers: 32 -> 16 -> 8 channels), a summation readout over
the ``w`` vertex positions (Equation 7 as a layer), then Dense(128) +
ReLU, Dropout(0.5) and the softmax classification layer.

All convolutions are bias-free so the all-zero feature rows of dummy
vertices map to exactly zero through ReLU stacks, making the summation
readout ignore padding — the property Theorem 1's proof relies on.
"""

from __future__ import annotations

import numpy as np

from repro.nn.activations import ReLU
from repro.nn.conv1d import Conv1D
from repro.nn.dense import Dense
from repro.nn.dropout import Dropout
from repro.nn.module import Sequential
from repro.nn.pooling import Flatten, SumPool1D
from repro.utils.rng import as_rng
from repro.utils.validation import check_positive

__all__ = ["build_deepmap_cnn", "DEFAULT_CHANNELS", "DEFAULT_DENSE_UNITS"]

#: Output channels of the three convolution layers (paper: 32, 16, 8).
DEFAULT_CHANNELS = (32, 16, 8)
#: Width of the dense layer (paper: 128).
DEFAULT_DENSE_UNITS = 128


def build_deepmap_cnn(
    m: int,
    r: int,
    num_classes: int,
    channels: tuple[int, int, int] = DEFAULT_CHANNELS,
    dense_units: int = DEFAULT_DENSE_UNITS,
    dropout: float = 0.5,
    readout: str = "sum",
    w: int | None = None,
    rng: np.random.Generator | int | None = 0,
) -> Sequential:
    """Build the DeepMap CNN.

    Parameters
    ----------
    m:
        Vertex feature-map dimension (input channels).
    r:
        Receptive-field size (kernel and stride of the first conv).
    num_classes:
        Softmax width.
    channels:
        Conv output channels, default (32, 16, 8).
    dense_units:
        Hidden dense width, default 128.
    dropout:
        Dropout rate before the classifier, default 0.5.
    readout:
        "sum" (the paper) or "concat" (the Section 6 alternative, which
        needs ``w`` to size the following dense layer).
    rng:
        Initialisation seed.
    """
    check_positive("m", m)
    check_positive("r", r)
    check_positive("num_classes", num_classes)
    rng = as_rng(rng)
    c1, c2, c3 = channels
    layers = [
        Conv1D(m, c1, kernel_size=r, stride=r, use_bias=False, rng=rng),
        ReLU(),
        Conv1D(c1, c2, kernel_size=1, use_bias=False, rng=rng),
        ReLU(),
        Conv1D(c2, c3, kernel_size=1, use_bias=False, rng=rng),
        ReLU(),
    ]
    if readout == "sum":
        layers.append(SumPool1D())
        readout_dim = c3
    elif readout == "concat":
        if w is None:
            raise ValueError("concat readout requires w")
        layers.append(Flatten())
        readout_dim = c3 * w
    else:
        raise ValueError(f"unknown readout {readout!r}; use 'sum' or 'concat'")
    layers.extend(
        [
            Dense(readout_dim, dense_units, rng=rng),
            ReLU(),
            Dropout(dropout, rng=rng),
            Dense(dense_units, num_classes, rng=rng),
        ]
    )
    return Sequential(layers)
