"""Interpreting DeepMap predictions.

Because the deep graph feature map is a *sum* of deep vertex feature
maps (the summation readout), a prediction can be attributed back to
vertices.  Two attribution methods:

* :func:`vertex_contributions` — linear attribution: each vertex's deep
  feature map is pushed through the (locally linearised) dense head and
  scored for the predicted class.  Exact for the final linear layer,
  first-order for the ReLU dense stack.
* :func:`occlusion_scores` — model-agnostic: zero out one vertex's
  receptive-field rows at a time and measure the predicted-class logit
  drop.  Exact but ``n`` forward passes per graph.
"""

from __future__ import annotations

import numpy as np

from repro.core.model import DeepMapClassifier
from repro.graph.graph import Graph
from repro.utils.validation import check_fitted

__all__ = ["vertex_contributions", "occlusion_scores"]


def vertex_contributions(
    model: DeepMapClassifier, graph: Graph, target_class: int | None = None
) -> np.ndarray:
    """Per-vertex first-order contribution to the class logit.

    Computes the gradient of the target-class logit w.r.t. the summed
    deep feature map and dots it with each vertex's deep feature map —
    a Taylor attribution that is exact when the dense head is linear in
    the readout (it is, up to the ReLU/dropout nonlinearity).
    """
    check_fitted(model, "network_")
    assert model.network_ is not None
    vertex_maps = model.transform_vertices([graph])[0]  # (n, c)
    graph_map = vertex_maps.sum(axis=0)

    # Forward the readout through the dense head, caching for backward.
    from repro.nn.pooling import Flatten, SumPool1D

    layers = model.network_.layers
    readout_index = next(
        i for i, l in enumerate(layers) if isinstance(l, (SumPool1D, Flatten))
    )
    head = layers[readout_index + 1 :]
    x = graph_map[None, :]
    for layer in head:
        x = layer.forward(x, training=False)
    logits = x[0]
    cls = int(np.argmax(logits)) if target_class is None else int(target_class)

    grad = np.zeros((1, logits.size))
    grad[0, cls] = 1.0
    for layer in reversed(head):
        grad = layer.backward(grad)
    sensitivity = grad[0]  # d logit / d readout
    return vertex_maps @ sensitivity


def occlusion_scores(
    model: DeepMapClassifier, graph: Graph, target_class: int | None = None
) -> np.ndarray:
    """Per-vertex logit drop when the vertex is occluded.

    Occlusion zeroes every receptive-field row belonging to the vertex's
    sequence slot (its whole local patch), re-runs the network, and
    reports ``logit(original) - logit(occluded)`` for the target class.
    """
    check_fitted(model, "network_")
    assert model.network_ is not None
    from repro.core.alignment import centrality_scores, vertex_sequence
    from repro.nn.model import predict_logits

    encoded = model.encode([graph], fit=False)
    base_logits = predict_logits(model.network_, encoded.tensors)[0]
    cls = int(np.argmax(base_logits)) if target_class is None else int(target_class)

    scores = centrality_scores(graph, model.ordering)
    sequence = vertex_sequence(graph, scores, model.ordering)[: encoded.w]
    r = encoded.r
    out = np.zeros(graph.n, dtype=np.float64)
    for slot, v in enumerate(sequence):
        occluded = encoded.tensors.copy()
        occluded[0, slot * r : (slot + 1) * r, :] = 0.0
        logits = predict_logits(model.network_, occluded)[0]
        out[int(v)] = base_logits[cls] - logits[cls]
    return out
