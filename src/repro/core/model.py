"""DeepMap estimator: the paper's end-to-end model (Algorithm 1 + Fig. 4).

``DeepMapClassifier`` bundles a vertex-feature extractor (GK / SP / WL), a
:class:`DeepMapEncoder` and the CNN into a fit/predict estimator.  The
three named variants of the paper are the factory helpers
:func:`deepmap_gk`, :func:`deepmap_sp`, :func:`deepmap_wl`.
"""

from __future__ import annotations

import numpy as np

from repro import obs
from repro.core.architecture import build_deepmap_cnn
from repro.core.pipeline import DeepMapEncoder
from repro.features.vertex_maps import (
    GraphletVertexFeatures,
    ShortestPathVertexFeatures,
    VertexFeatureExtractor,
    WLVertexFeatures,
    cached_vertex_counts,
)
from repro.features.vocabulary import FeatureVocabulary
from repro.graph.graph import Graph
from repro.nn.model import History, Trainer, predict_labels, predict_proba
from repro.utils.rng import as_rng
from repro.utils.validation import check_fitted, check_labels

__all__ = ["DeepMapClassifier", "deepmap_gk", "deepmap_sp", "deepmap_wl"]

_EXTRACTORS = {
    "gk": GraphletVertexFeatures,
    "sp": ShortestPathVertexFeatures,
    "wl": WLVertexFeatures,
}


class DeepMapClassifier:
    """Graph classifier learning deep representations of feature maps.

    Parameters
    ----------
    feature_map:
        "gk" / "sp" / "wl" (with default extractor settings) or a
        configured :class:`VertexFeatureExtractor`.
    r:
        Receptive-field size (paper default 5; swept in Fig. 5).
    ordering:
        Vertex-alignment measure ("eigenvector", the paper's choice).
    readout:
        "sum" (paper) or "concat" (Section 6 ablation).
    epochs / batch_size:
        Training protocol (paper: batch size from {32, 256}).
    max_features:
        Optional cap on the vertex-feature dimension ``m``: keep the
        ``max_features`` most frequent substructures (by total count on
        the training set).  Section 6 notes the feature-map dimension
        "may be very high and leads to low efficiency for CNNs"; this is
        the standard frequency-truncation mitigation.  ``None`` keeps
        everything (the paper's setting).
    seed:
        Controls initialisation, dropout and shuffling.
    cache:
        Optional :class:`repro.cache.FeatureMapCache` memoizing vertex
        counts and encoded tensors; ``None`` (default) uses the
        process-wide cache when one is configured.
    """

    def __init__(
        self,
        feature_map: str | VertexFeatureExtractor = "wl",
        r: int = 5,
        ordering: str = "eigenvector",
        readout: str = "sum",
        epochs: int = 50,
        batch_size: int = 32,
        max_features: int | None = None,
        seed: int | None = 0,
        cache=None,
    ) -> None:
        if isinstance(feature_map, str):
            if feature_map not in _EXTRACTORS:
                raise ValueError(
                    f"unknown feature map {feature_map!r}; choose from "
                    f"{sorted(_EXTRACTORS)} or pass an extractor"
                )
            self.extractor: VertexFeatureExtractor = _EXTRACTORS[feature_map]()
        else:
            self.extractor = feature_map
        self.r = r
        self.ordering = ordering
        self.readout = readout
        self.epochs = epochs
        self.batch_size = batch_size
        self.max_features = max_features
        self.seed = seed
        self.cache = cache

        self.vocabulary_: FeatureVocabulary | None = None
        self.encoder_: DeepMapEncoder | None = None
        self.network_ = None
        self.classes_: np.ndarray | None = None
        self.history_: History | None = None

    # ------------------------------------------------------------------
    def _feature_matrices(
        self, graphs: list[Graph], fit_vocabulary: bool
    ) -> list[np.ndarray]:
        with obs.span(
            "feature_map", extractor=self.extractor.name, graphs=len(graphs)
        ):
            return self._feature_matrices_inner(graphs, fit_vocabulary)

    def _feature_matrices_inner(
        self, graphs: list[Graph], fit_vocabulary: bool
    ) -> list[np.ndarray]:
        with obs.span("extract"):
            counts = cached_vertex_counts(self.extractor, graphs, cache=self.cache)
        if fit_vocabulary:
            totals: dict = {}
            for vertex_counts in counts:
                for counter in vertex_counts:
                    for key, value in counter.items():
                        totals[key] = totals.get(key, 0) + value
            keys = totals.keys()
            if self.max_features is not None and len(totals) > self.max_features:
                # Keep the most frequent substructures; break count ties
                # by key repr so the selection is deterministic.
                keys = sorted(totals, key=lambda k: (-totals[k], repr(k)))
                keys = keys[: self.max_features]
            vocab = FeatureVocabulary()
            vocab.add_all(keys)
            self.vocabulary_ = vocab.freeze()
        assert self.vocabulary_ is not None
        with obs.span("vectorize", m=self.vocabulary_.size):
            return [self.vocabulary_.vectorize_rows(vc) for vc in counts]

    def encode(self, graphs: list[Graph], fit: bool = False):
        """Vertex feature maps -> Algorithm 1 tensors for ``graphs``."""
        matrices = self._feature_matrices(graphs, fit_vocabulary=fit)
        if fit:
            self.encoder_ = DeepMapEncoder(r=self.r, ordering=self.ordering).fit(graphs)
        check_fitted(self, "encoder_")
        assert self.encoder_ is not None
        return self.encoder_.encode(graphs, matrices, cache=self.cache)

    # ------------------------------------------------------------------
    def fit(
        self,
        graphs: list[Graph],
        y: np.ndarray | list,
        validation: tuple[list[Graph], np.ndarray] | None = None,
        epoch_callback=None,
    ) -> "DeepMapClassifier":
        """Extract features, build tensors, train the CNN.

        ``validation`` (graphs, labels) adds per-epoch validation accuracy
        to ``history_`` for the epoch-selection protocol.
        """
        y = check_labels(y)
        if len(graphs) != y.size:
            raise ValueError(f"{len(graphs)} graphs but {y.size} labels")
        with obs.span(
            "fit", model=f"deepmap-{self.extractor.name}", graphs=len(graphs)
        ):
            self.classes_ = np.unique(y)
            class_index = {int(c): i for i, c in enumerate(self.classes_)}
            targets = np.array([class_index[int(v)] for v in y])

            encoded = self.encode(graphs, fit=True)
            rng = as_rng(self.seed)
            self.network_ = build_deepmap_cnn(
                m=encoded.m,
                r=self.r,
                num_classes=self.classes_.size,
                readout=self.readout,
                w=encoded.w,
                rng=rng,
            )
            trainer = Trainer(
                batch_size=self.batch_size,
                epochs=self.epochs,
                seed=rng.integers(0, 2**31 - 1),
            )
            val_data = None
            if validation is not None:
                val_graphs, val_y = validation
                val_y = check_labels(val_y)
                val_targets = np.array([class_index[int(v)] for v in val_y])
                val_encoded = self.encode(val_graphs, fit=False)
                val_data = (val_encoded.tensors, val_targets)
            with obs.span("train", epochs=self.epochs, batch_size=self.batch_size):
                self.history_ = trainer.fit(
                    self.network_,
                    encoded.tensors,
                    targets,
                    validation=val_data,
                    epoch_callback=epoch_callback,
                )
        return self

    def fit_stream(
        self,
        stream,
        shard_size: int = 64,
        prefetch_depth: int = 2,
        max_restarts: int = 2,
        epoch_callback=None,
    ) -> "DeepMapClassifier":
        """Out-of-core fit on a streamed dataset.

        ``stream`` is a
        :class:`~repro.datasets.streaming.StreamingGraphDataset`
        (``make_dataset(..., stream=True)``).  Shards of ``shard_size``
        graphs are regenerated from seeds, encoded once and spilled to
        the feature-map cache; training gathers mini-batches shard by
        shard.  The fitted model — weights, history, predictions — is
        **bitwise-identical** to ``fit(stream.materialize().graphs,
        stream.labels())``, at peak memory bounded by a few shards
        instead of the whole dataset.  See ``docs/STREAMING.md``.
        """
        from repro.stream import fit_stream as _fit_stream

        return _fit_stream(
            self,
            stream,
            shard_size=shard_size,
            prefetch_depth=prefetch_depth,
            max_restarts=max_restarts,
            epoch_callback=epoch_callback,
        )

    # ------------------------------------------------------------------
    def _chunks(self, graphs: list[Graph], chunk_size: int | None):
        """Yield ``graphs`` in encode-sized chunks (one chunk when None).

        Every inference stage — feature extraction, alignment, receptive
        fields, the CNN forward — is per-graph independent, so chunking
        changes peak memory (one ``(chunk, w*r, m)`` tensor at a time
        instead of ``(n, w*r, m)``) but never the results: outputs are
        bitwise-identical for any ``chunk_size``.
        """
        if chunk_size is None:
            yield graphs
            return
        if chunk_size < 1:
            raise ValueError(f"chunk_size must be >= 1, got {chunk_size}")
        for start in range(0, len(graphs), chunk_size):
            yield graphs[start : start + chunk_size]

    def predict(
        self, graphs: list[Graph], chunk_size: int | None = None
    ) -> np.ndarray:
        """Predicted class labels for held-out graphs.

        ``chunk_size`` bounds inference memory: graphs are encoded and
        classified ``chunk_size`` at a time instead of materialising one
        ``(n, w*r, m)`` tensor for the whole list.
        """
        check_fitted(self, "network_")
        assert self.classes_ is not None
        idx = np.concatenate(
            [
                predict_labels(self.network_, self.encode(chunk, fit=False).tensors)
                for chunk in self._chunks(graphs, chunk_size)
            ]
        )
        return self.classes_[idx]

    def predict_proba(
        self, graphs: list[Graph], chunk_size: int | None = None
    ) -> np.ndarray:
        """Class-probability matrix for held-out graphs.

        ``chunk_size`` bounds inference memory exactly as in
        :meth:`predict`; results are bitwise-identical either way.
        """
        check_fitted(self, "network_")
        return np.concatenate(
            [
                predict_proba(self.network_, self.encode(chunk, fit=False).tensors)
                for chunk in self._chunks(graphs, chunk_size)
            ]
        )

    def score(self, graphs: list[Graph], y: np.ndarray | list) -> float:
        """Classification accuracy."""
        y = check_labels(y)
        return float(np.mean(self.predict(graphs) == y))

    def transform(self, graphs: list[Graph]) -> np.ndarray:
        """Deep graph feature maps: activations after the summation layer.

        The dense low-dimensional representation the paper's title refers
        to — usable as a graph embedding for downstream tasks.
        """
        return self._conv_activations(graphs).sum(axis=1)

    def transform_vertices(self, graphs: list[Graph]) -> list[np.ndarray]:
        """Deep *vertex* feature maps (paper, Section 7: "the learned deep
        feature map of each vertex can also be considered as vertex
        embedding and used for vertex classification").

        Returns one ``(graph.n, c)`` array per graph: the last
        convolution layer's activation at each vertex's sequence slot,
        re-indexed so row ``v`` is vertex ``v`` of the input graph.
        """
        from repro.core.alignment import centrality_scores, vertex_sequence

        activations = self._conv_activations(graphs)  # (B, w, c)
        out: list[np.ndarray] = []
        for gi, g in enumerate(graphs):
            scores = centrality_scores(g, self.ordering)
            sequence = vertex_sequence(g, scores, self.ordering)
            w = activations.shape[1]
            emb = np.zeros((g.n, activations.shape[2]), dtype=np.float64)
            for slot, v in enumerate(sequence[:w]):
                emb[int(v)] = activations[gi, slot]
            out.append(emb)
        return out

    def _conv_activations(self, graphs: list[Graph]) -> np.ndarray:
        """Activations after the last conv/ReLU, shape ``(B, w, c)``."""
        check_fitted(self, "network_")
        assert self.network_ is not None
        encoded = self.encode(graphs, fit=False)
        x = encoded.tensors
        from repro.nn.pooling import Flatten, SumPool1D

        for layer in self.network_.layers:
            if isinstance(layer, (SumPool1D, Flatten)):
                return x
            x = layer.forward(x, training=False)
        raise RuntimeError("network has no readout layer")  # pragma: no cover


def deepmap_gk(
    k: int = 5, samples: int = 20, r: int = 5, seed: int | None = 0, **kwargs
) -> DeepMapClassifier:
    """DeepMap-GK: deep maps over sampled graphlet features."""
    return DeepMapClassifier(
        GraphletVertexFeatures(k=k, samples=samples, seed=seed), r=r, seed=seed, **kwargs
    )


def deepmap_sp(r: int = 5, seed: int | None = 0, **kwargs) -> DeepMapClassifier:
    """DeepMap-SP: deep maps over shortest-path triplet features."""
    return DeepMapClassifier(ShortestPathVertexFeatures(), r=r, seed=seed, **kwargs)


def deepmap_wl(h: int = 3, r: int = 5, seed: int | None = 0, **kwargs) -> DeepMapClassifier:
    """DeepMap-WL: deep maps over WL subtree features."""
    return DeepMapClassifier(WLVertexFeatures(h=h), r=r, seed=seed, **kwargs)
