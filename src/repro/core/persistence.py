"""Saving and loading fitted DeepMap models.

A fitted :class:`~repro.core.model.DeepMapClassifier` bundles the
extractor configuration, the frozen feature vocabulary, the encoder
state, and the CNN weights.  :func:`save_model` serialises all of it to
one file; :func:`load_model` restores a model that predicts identically.

Format version 2 wraps the pickled model in an envelope carrying a
BLAKE2b checksum of the payload bytes (the same digest primitive the
resilience checkpoints use), so bit rot, truncation, or a torn copy is
detected at load time instead of surfacing as silently wrong
predictions — the serving registry (:mod:`repro.serve.registry`)
depends on loads being trustworthy.  Version-1 files (no checksum) are
still read; files from a future format raise
:class:`ModelPersistenceError`.

Uses :mod:`pickle` (stdlib) — the standard trade-off for scientific
Python model checkpoints; the checksum authenticates *integrity*, not
provenance, so still only load files you trust.
"""

from __future__ import annotations

import pickle
from pathlib import Path

from repro.core.model import DeepMapClassifier
from repro.utils.wire import blake2b_hexdigest
from repro.utils.validation import check_fitted

__all__ = ["ModelPersistenceError", "save_model", "load_model"]

_FORMAT_VERSION = 2


class ModelPersistenceError(ValueError):
    """The model file is corrupt, truncated, or from an unknown format."""


def save_model(model: DeepMapClassifier, path: str | Path) -> None:
    """Serialise a fitted DeepMap model to ``path`` (format version 2)."""
    check_fitted(model, "network_")
    blob = pickle.dumps(model, protocol=pickle.HIGHEST_PROTOCOL)
    payload = {
        "format_version": _FORMAT_VERSION,
        "checksum": blake2b_hexdigest([blob]),
        "model_bytes": blob,
    }
    with open(path, "wb") as fh:
        pickle.dump(payload, fh)


def load_model(path: str | Path) -> DeepMapClassifier:
    """Load a model previously written by :func:`save_model`.

    Verifies the envelope checksum before unpickling the payload and
    raises :class:`ModelPersistenceError` on a mismatch, an unknown
    format version, or a payload that is not a fitted DeepMap model.
    """
    try:
        with open(path, "rb") as fh:
            payload = pickle.load(fh)
    except (pickle.UnpicklingError, EOFError, AttributeError, ValueError) as exc:
        raise ModelPersistenceError(f"unreadable model file {path}: {exc}") from exc
    if not isinstance(payload, dict):
        raise ModelPersistenceError(f"{path} is not a DeepMap model file")
    version = payload.get("format_version")
    if version == 1:
        # Legacy envelope: the model object is stored directly, with no
        # checksum to verify.
        model = payload.get("model")
    elif version == _FORMAT_VERSION:
        blob = payload.get("model_bytes")
        if not isinstance(blob, bytes):
            raise ModelPersistenceError(f"{path} has no model payload")
        digest = blake2b_hexdigest([blob])
        if digest != payload.get("checksum"):
            raise ModelPersistenceError(
                f"checksum mismatch in {path}: file is corrupt "
                f"(expected {payload.get('checksum')}, got {digest})"
            )
        model = pickle.loads(blob)
    else:
        raise ModelPersistenceError(
            f"unsupported model file version {version!r} in {path} "
            f"(this build reads versions 1..{_FORMAT_VERSION})"
        )
    if not isinstance(model, DeepMapClassifier):
        raise ModelPersistenceError(
            f"{path} does not contain a DeepMapClassifier"
        )
    return model
