"""Saving and loading fitted DeepMap models.

A fitted :class:`~repro.core.model.DeepMapClassifier` bundles the
extractor configuration, the frozen feature vocabulary, the encoder
state, and the CNN weights.  :func:`save_model` serialises all of it to
one file; :func:`load_model` restores a model that predicts identically.

Uses :mod:`pickle` (stdlib) — the standard trade-off for scientific
Python model checkpoints; only load files you trust.
"""

from __future__ import annotations

import pickle
from pathlib import Path

from repro.core.model import DeepMapClassifier
from repro.utils.validation import check_fitted

__all__ = ["save_model", "load_model"]

_FORMAT_VERSION = 1


def save_model(model: DeepMapClassifier, path: str | Path) -> None:
    """Serialise a fitted DeepMap model to ``path``."""
    check_fitted(model, "network_")
    payload = {
        "format_version": _FORMAT_VERSION,
        "model": model,
    }
    with open(path, "wb") as fh:
        pickle.dump(payload, fh)


def load_model(path: str | Path) -> DeepMapClassifier:
    """Load a model previously written by :func:`save_model`."""
    with open(path, "rb") as fh:
        payload = pickle.load(fh)
    version = payload.get("format_version")
    if version != _FORMAT_VERSION:
        raise ValueError(
            f"unsupported model file version {version!r} "
            f"(expected {_FORMAT_VERSION})"
        )
    model = payload["model"]
    if not isinstance(model, DeepMapClassifier):
        raise ValueError("file does not contain a DeepMapClassifier")
    return model
