"""Algorithm 1: from graphs + vertex feature maps to CNN input tensors.

For each graph, the vertex sequence (sorted by centrality) is padded to
the dataset maximum ``w``; every sequence slot contributes its receptive
field of ``r`` vertex feature-map rows, giving an input of shape
``(w * r, m)`` per graph.  Dummy slots (sequence padding and unfilled
field positions) are all-zero rows, which — combined with the bias-free
convolutions of :mod:`repro.core.architecture` — guarantees they never
contribute to the deep feature map (the paper's dummy-vertex property).

The encode path is *fused*: one shared lexsort over the disjoint union
of all graphs feeds both the alignment sequences and the
receptive-field tie-breaking, and assembly gathers from a single
stacked feature matrix straight into the output tensor — no per-graph
intermediate is re-materialized between stages.  The pre-fusion staged
composition survives as :func:`_reference_encode_stages`, the bitwise
oracle for ``tests/equivalence/test_pipeline_equiv.py``.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro import obs
from repro.core.alignment import (
    UnionOrder,
    centrality_scores,
    union_vertex_order,
    vertex_sequence,
)
from repro.core.receptive_field import (
    DUMMY,
    all_receptive_fields,
    all_receptive_fields_many,
)
from repro.graph.graph import Graph
from repro.utils.validation import check_positive

__all__ = ["DeepMapEncoder", "EncodedDataset"]


@dataclass
class EncodedDataset:
    """The tensors Algorithm 1 hands to the CNN.

    Attributes
    ----------
    tensors:
        ``(n_graphs, w * r, m)`` input array.
    vertex_mask:
        ``(n_graphs, w)`` 1.0 where the sequence slot holds a real vertex.
    w, r, m:
        Sequence length, receptive-field size, feature dimension.
    """

    tensors: np.ndarray
    vertex_mask: np.ndarray
    w: int
    r: int
    m: int


class DeepMapEncoder:
    """Stateful encoder: fixes ``w`` on the training set, reuses it later.

    Parameters
    ----------
    r:
        Receptive-field size (paper sweeps 1..10, Fig. 5).
    ordering:
        Vertex-ordering measure (paper: "eigenvector").
    w:
        Sequence length; ``None`` (default) uses the maximum graph size
        seen in :meth:`fit`/first encode.  Graphs larger than ``w`` keep
        their ``w`` highest-centrality vertices (can only happen for
        held-out graphs larger than any training graph).
    """

    def __init__(
        self, r: int = 5, ordering: str = "eigenvector", w: int | None = None
    ) -> None:
        check_positive("r", r)
        self.r = r
        self.ordering = ordering
        self.w = w

    def fit(self, graphs: list[Graph]) -> "DeepMapEncoder":
        """Fix the sequence length ``w`` from ``graphs``."""
        if not graphs:
            raise ValueError("need at least one graph")
        if self.w is None:
            self.w = max(g.n for g in graphs)
        return self

    def fit_width(self, sizes) -> "DeepMapEncoder":
        """Fix ``w`` from an iterable of graph sizes.

        The streaming fit path sees graphs one shard at a time and
        tracks the running maximum itself; this sets the same ``w``
        :meth:`fit` would have derived from the full list.
        """
        w = max(sizes, default=0)
        if w <= 0:
            raise ValueError("need at least one positive graph size")
        if self.w is None:
            self.w = int(w)
        return self

    def encode_key(
        self, graphs: list[Graph], feature_matrices: list[np.ndarray]
    ) -> str:
        """Content-addressed cache key of :meth:`encode`'s result.

        Exposed so out-of-core consumers (the streaming shard store) can
        re-load a previously encoded shard straight from the cache by
        key — without regenerating the graphs the key was derived from.
        """
        if self.w is None:
            raise ValueError("encoder is not fitted (w is None)")
        from repro import cache as cache_mod

        return cache_mod.cache_key(
            "enc",
            cache_mod.dataset_fingerprint(graphs),
            cache_mod.stable_hash(list(feature_matrices)),
            self.r,
            self.ordering,
            self.w,
        )

    def encode(
        self,
        graphs: list[Graph],
        feature_matrices: list[np.ndarray],
        cache=None,
    ) -> EncodedDataset:
        """Build the ``(n, w*r, m)`` tensor for ``graphs``.

        ``feature_matrices[i]`` must be the ``(graphs[i].n, m)`` vertex
        feature-map matrix from
        :func:`repro.features.extract_vertex_feature_matrices` (or the
        vocabulary-aligned equivalent for held-out graphs).

        When a feature-map cache is available (``cache`` argument or the
        process default), the assembled tensor is memoized by graph
        content, feature-matrix content, and the encoder parameters
        ``(r, ordering, w)``; a warm hit returns bitwise-identical
        arrays without recomputing alignment or receptive fields.
        """
        if self.w is None:
            self.fit(graphs)
        assert self.w is not None
        if len(graphs) != len(feature_matrices):
            raise ValueError("graphs and feature matrices must align")
        if not graphs:
            raise ValueError("need at least one graph")
        m = feature_matrices[0].shape[1]
        n = len(graphs)
        w, r = self.w, self.r
        for gi, (g, feats) in enumerate(zip(graphs, feature_matrices)):
            if feats.shape != (g.n, m):
                raise ValueError(
                    f"feature matrix {gi} has shape {feats.shape}, expected {(g.n, m)}"
                )
        from repro import cache as cache_mod

        cache = cache if cache is not None else cache_mod.get_cache()
        key = None
        if cache is not None:
            key = self.encode_key(graphs, feature_matrices)
            payload = cache.get(key, namespace="enc")
            if payload is not None:
                return EncodedDataset(
                    tensors=payload["tensors"],
                    vertex_mask=payload["vertex_mask"],
                    w=w,
                    r=r,
                    m=m,
                )
        with obs.span("encode", graphs=n, w=w, r=r, m=m):
            # Stage 1: centrality-based vertex alignment (Section 4.2).
            # One lexsort over the disjoint union orders every graph at
            # once; the same UnionOrder feeds stage 2's tie-breaking.
            with obs.span("alignment", ordering=self.ordering):
                all_scores = [centrality_scores(g, self.ordering) for g in graphs]
                union = union_vertex_order(graphs, all_scores)
                sequences = [union.sequence(gi)[:w] for gi in range(n)]
            # Stage 2: BFS receptive fields around every vertex.
            with obs.span("receptive_field", r=r):
                all_fields = all_receptive_fields_many(
                    graphs, r, all_scores, union=union
                )
            # Stage 3: assemble the (n, w*r, m) CNN input tensor.
            with obs.span("assemble"):
                tensors, vertex_mask = _assemble_fused(
                    feature_matrices, sequences, all_fields, union, w, r, m
                )
            obs.counter("graphs_encoded_total").inc(n)
        if cache is not None and key is not None:
            cache.put(
                key,
                {"tensors": tensors, "vertex_mask": vertex_mask},
                namespace="enc",
            )
        return EncodedDataset(tensors=tensors, vertex_mask=vertex_mask, w=w, r=r, m=m)


def _assemble_fused(
    feature_matrices: list[np.ndarray],
    sequences: list[np.ndarray],
    all_fields: list[np.ndarray],
    union: UnionOrder,
    w: int,
    r: int,
    m: int,
) -> tuple[np.ndarray, np.ndarray]:
    """Fused tensor assembly: flat index computation, streaming placement.

    The (slot, field-position) → source-row mapping for *every* graph is
    computed in two flat fancy gathers over the stacked receptive-field
    table (this is the per-graph work the staged path re-did graph by
    graph).  The float64 rows themselves are then placed one graph at a
    time — a gather from that graph's small feature matrix straight into
    its contiguous destination slice — because the tensor is padded and
    memory-bound: streaming real cells beats any whole-tensor gather
    (padding can double the bytes) and keeps each gather cache-hot.

    Bitwise-equal to :func:`_assemble` (and to
    :func:`_reference_assemble`): feature rows are copied, never
    recomputed, and dummy cells are exactly zero.
    """
    n = len(feature_matrices)
    tensors = np.zeros((n, w * r, m), dtype=np.float64)
    slots = np.asarray([len(seq) for seq in sequences], dtype=np.int64)
    vertex_mask = (np.arange(w)[None, :] < slots[:, None]).astype(np.float64)
    total_slots = int(slots.sum())
    if total_slots == 0:
        return tensors, vertex_mask
    fields_stack = np.concatenate(all_fields, axis=0)  # (total_vertices, r)
    g_of_slot = np.repeat(np.arange(n), slots)
    vstart = union.starts[g_of_slot]
    sel = fields_stack[vstart + np.concatenate(sequences)]  # (total_slots, r)
    real = sel != DUMMY
    src_local = np.where(real, sel, 0)
    dummy = ~real
    offs = 0
    for gi, feats in enumerate(feature_matrices):
        k = int(slots[gi])
        if k == 0:
            continue
        block = feats[src_local[offs : offs + k]]  # (k, r, m)
        block[dummy[offs : offs + k]] = 0.0
        tensors[gi, : k * r] = block.reshape(k * r, m)
        offs += k
    return tensors, vertex_mask


def _reference_encode_stages(
    graphs: list[Graph],
    feature_matrices: list[np.ndarray],
    w: int,
    r: int,
    m: int,
    ordering: str = "eigenvector",
) -> tuple[np.ndarray, np.ndarray]:
    """Pre-fusion staged encode (oracle for tests/equivalence).

    Exactly the old pipeline body: per-graph vertex sequences, per-graph
    receptive-field tables, then the per-graph assembly of
    :func:`_assemble`.
    """
    all_scores = [centrality_scores(g, ordering) for g in graphs]
    sequences = [
        vertex_sequence(g, scores, ordering)[:w]
        for g, scores in zip(graphs, all_scores)
    ]
    all_fields = [
        all_receptive_fields(g, r, scores)
        for g, scores in zip(graphs, all_scores)
    ]
    return _assemble(feature_matrices, sequences, all_fields, w, r, m)


def _assemble(
    feature_matrices: list[np.ndarray],
    sequences: list[np.ndarray],
    all_fields: list[np.ndarray],
    w: int,
    r: int,
    m: int,
) -> tuple[np.ndarray, np.ndarray]:
    """Vectorized tensor assembly: one gather per graph instead of one
    zero-fill + gather per sequence slot.

    Dummy field slots index row 0 via a clamped gather, then get zeroed
    by boolean assignment — identical rows to the reference's
    ``rows[real] = feats[field[real]]`` construction.
    """
    n = len(feature_matrices)
    tensors = np.zeros((n, w * r, m), dtype=np.float64)
    vertex_mask = np.zeros((n, w), dtype=np.float64)
    for gi, (feats, sequence, fields) in enumerate(
        zip(feature_matrices, sequences, all_fields)
    ):
        slots = len(sequence)
        if slots == 0:
            continue
        vertex_mask[gi, :slots] = 1.0
        seq_fields = fields[sequence]  # (slots, r)
        real = seq_fields != DUMMY
        block = feats[np.where(real, seq_fields, 0)]  # (slots, r, m)
        block[~real] = 0.0
        tensors[gi, : slots * r] = block.reshape(slots * r, m)
    return tensors, vertex_mask


def _reference_assemble(
    feature_matrices: list[np.ndarray],
    sequences: list[np.ndarray],
    all_fields: list[np.ndarray],
    w: int,
    r: int,
    m: int,
) -> tuple[np.ndarray, np.ndarray]:
    """Original per-slot assembly loop (oracle for tests/equivalence)."""
    n = len(feature_matrices)
    tensors = np.zeros((n, w * r, m), dtype=np.float64)
    vertex_mask = np.zeros((n, w), dtype=np.float64)
    for gi, (feats, sequence, fields) in enumerate(
        zip(feature_matrices, sequences, all_fields)
    ):
        for slot, v in enumerate(sequence):
            vertex_mask[gi, slot] = 1.0
            field = fields[v]
            real = field != DUMMY
            rows = np.zeros((r, m), dtype=np.float64)
            rows[real] = feats[field[real]]
            tensors[gi, slot * r : (slot + 1) * r] = rows
    return tensors, vertex_mask
