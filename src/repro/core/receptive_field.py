"""Receptive-field construction (Section 4.1, step 2; Algorithm 1 l.15-19).

For each vertex a field of exactly ``r`` vertex slots is built by BFS on
the original graph: take the highest-centrality one-hop neighbors; if
fewer than ``r - 1`` exist, continue with two-hop neighbors, and so on.
Slots that cannot be filled (small components / small graphs) hold the
dummy marker ``-1``, which the pipeline maps to zero feature rows.

The paper notes the field vertices "are also sorted in descending order
according to their eigenvector centrality values" — accordingly the final
field (center included) is sorted by score, with the same tie-breaking as
the global vertex sequence.
"""

from __future__ import annotations

import numpy as np

from repro.graph.graph import Graph
from repro.graph.traversal import bfs_layers
from repro.utils.validation import check_positive

__all__ = ["receptive_field", "all_receptive_fields", "DUMMY"]

#: Marker for unfilled receptive-field slots.
DUMMY = -1


def receptive_field(
    g: Graph, v: int, r: int, scores: np.ndarray
) -> np.ndarray:
    """Field of ``r`` vertex ids (or DUMMY) for center vertex ``v``.

    Selection: expand BFS hop by hop; within the hop that overflows the
    budget, keep the top-score vertices.  The selected set (center
    included) is then sorted by descending score.
    """
    check_positive("r", r)
    if not 0 <= v < g.n:
        raise ValueError(f"vertex {v} out of range for n={g.n}")
    selected: list[int] = []
    degrees = g.degrees()

    def sort_key(u: int) -> tuple:
        return (-scores[u], -degrees[u], g.labels[u], u)

    layers = bfs_layers(g, v)
    next(layers)  # skip layer 0 = [v]; the center is always included.
    budget = r - 1
    for layer in layers:
        if budget <= 0:
            break
        ranked = sorted(layer, key=sort_key)
        take = ranked[:budget]
        selected.extend(take)
        budget -= len(take)

    field = sorted([v] + selected, key=sort_key)
    out = np.full(r, DUMMY, dtype=np.int64)
    out[: len(field)] = field
    return out


def all_receptive_fields(g: Graph, r: int, scores: np.ndarray) -> np.ndarray:
    """``(n, r)`` receptive-field table for every vertex of ``g``."""
    return np.stack([receptive_field(g, v, r, scores) for v in range(g.n)])
