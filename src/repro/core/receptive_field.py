"""Receptive-field construction (Section 4.1, step 2; Algorithm 1 l.15-19).

For each vertex a field of exactly ``r`` vertex slots is built by BFS on
the original graph: take the highest-centrality one-hop neighbors; if
fewer than ``r - 1`` exist, continue with two-hop neighbors, and so on.
Slots that cannot be filled (small components / small graphs) hold the
dummy marker ``-1``, which the pipeline maps to zero feature rows.

The paper notes the field vertices "are also sorted in descending order
according to their eigenvector centrality values" — accordingly the final
field (center included) is sorted by score, with the same tie-breaking as
the global vertex sequence.

:func:`all_receptive_fields` is fully vectorized: one batched BFS gives
the hop-distance matrix, and a single lexsort over (hop, global
tie-break rank) replaces the per-vertex Python BFS + ``sorted`` calls.
Selecting the first ``r - 1`` non-center vertices in (hop, rank) order is
exactly the reference's layer-by-layer expansion with in-layer top-score
overflow; the preserved per-vertex oracle (:func:`receptive_field`,
:func:`_reference_all_receptive_fields`) pins this bitwise in
``tests/equivalence``.
"""

from __future__ import annotations

import numpy as np

from repro.core.alignment import UnionOrder, union_vertex_order
from repro.graph.graph import Graph
from repro.graph.traversal import bfs_distances_batch, bfs_layers
from repro.utils.validation import check_positive

__all__ = [
    "receptive_field",
    "all_receptive_fields",
    "all_receptive_fields_many",
    "DUMMY",
]

#: Marker for unfilled receptive-field slots.
DUMMY = -1


def receptive_field(
    g: Graph, v: int, r: int, scores: np.ndarray
) -> np.ndarray:
    """Field of ``r`` vertex ids (or DUMMY) for center vertex ``v``.

    Selection: expand BFS hop by hop; within the hop that overflows the
    budget, keep the top-score vertices.  The selected set (center
    included) is then sorted by descending score.

    This per-vertex implementation is the reference oracle for the
    vectorized :func:`all_receptive_fields`.
    """
    check_positive("r", r)
    if not 0 <= v < g.n:
        raise ValueError(f"vertex {v} out of range for n={g.n}")
    selected: list[int] = []
    degrees = g.degrees()

    def sort_key(u: int) -> tuple:
        return (-scores[u], -degrees[u], g.labels[u], u)

    layers = bfs_layers(g, v)
    next(layers)  # skip layer 0 = [v]; the center is always included.
    budget = r - 1
    for layer in layers:
        if budget <= 0:
            break
        ranked = sorted(layer, key=sort_key)
        take = ranked[:budget]
        selected.extend(take)
        budget -= len(take)

    field = sorted([v] + selected, key=sort_key)
    out = np.full(r, DUMMY, dtype=np.int64)
    out[: len(field)] = field
    return out


def all_receptive_fields(g: Graph, r: int, scores: np.ndarray) -> np.ndarray:
    """``(n, r)`` receptive-field table for every vertex of ``g``.

    Vectorized: hop distances for all centers come from one batched BFS,
    then a single flat lexsort ranks every (center, candidate) pair by
    ``(hop, -score, -degree, label, id)``.  The first ``r`` entries per
    row are the center (hop 0) plus the ``r - 1`` selected vertices; a
    second rank-only sort produces the final score-descending field.
    """
    check_positive("r", r)
    n = g.n
    if n == 0:
        return np.empty((0, r), dtype=np.int64)
    scores = np.asarray(scores)
    degrees = g.degrees()
    dist = bfs_distances_batch(g)

    # Global tie-break order: (-score, -degree, label, id) ascending ==
    # the reference's per-vertex sort_key.  rank[u] is u's position;
    # order_global inverts it (order_global[rank[u]] == u).
    order_global = np.lexsort((np.arange(n), g.labels, -degrees, -scores))
    rank = np.empty(n, dtype=np.int64)
    rank[order_global] = np.arange(n)

    unreach = np.int64(n + 1)  # real hops are <= n - 1
    dsel = np.where(dist < 0, unreach, dist)
    rows = np.repeat(np.arange(n), n)
    flat_order = np.lexsort((np.tile(rank, n), dsel.ravel(), rows))
    cols_sorted = (flat_order % n).reshape(n, n)

    # Per row: column 0 is the center (unique hop-0 entry); columns
    # 1..r-1 are the best reachable candidates in (hop, rank) order.
    k = min(r, n)
    sel = cols_sorted[:, :k]
    sel_dist = np.take_along_axis(dsel, sel, axis=1)
    valid = sel_dist < unreach

    # Re-sort the field members by rank alone (descending score order).
    member_rank = np.where(valid, rank[sel], n)  # n acts as +inf
    member_rank = np.sort(member_rank, axis=1)
    out = np.full((n, r), DUMMY, dtype=np.int64)
    filled = member_rank < n
    out[:, :k][filled] = order_global[member_rank[filled]]
    return out


def all_receptive_fields_many(
    graphs: list[Graph],
    r: int,
    scores_list: list[np.ndarray],
    union: UnionOrder | None = None,
) -> list[np.ndarray]:
    """Receptive-field tables for a whole dataset in one flat pass.

    All ``(center, candidate)`` pairs of every graph are ranked by a
    single lexsort over ``(pair row, hop, tie-break rank)``; per-row
    first-``k`` selection, rank re-sorting, and the final id mapping all
    run on flat arrays over the disjoint union, so no per-graph
    ``(n, n)`` intermediate is rebuilt in Python.  BFS hop distances stay
    per graph (each graph's batched BFS is already one dense matmul loop;
    a block-diagonal union would do strictly more work).

    Bitwise-equal to calling :func:`all_receptive_fields` graph by graph
    (``tests/equivalence/test_pipeline_equiv.py``): the pair segments of
    one graph see exactly the keys its own lexsort would, and lexsort is
    stable.  Pass ``union`` to reuse the ordering the alignment stage
    already computed.
    """
    check_positive("r", r)
    n_graphs = len(graphs)
    if n_graphs == 0:
        return []
    if union is None:
        union = union_vertex_order(graphs, scores_list)
    sizes, starts = union.sizes, union.starts
    total = int(sizes.sum())
    if total == 0:
        return [np.empty((0, r), dtype=np.int64) for _ in graphs]
    order, rank = union.order, union.rank
    gid = np.repeat(np.arange(n_graphs), sizes)

    # Flat (center, candidate) hop distances; unreachable pairs get the
    # per-graph sentinel n_g + 1 (real hops are <= n_g - 1).
    dsel_parts = []
    rank_parts = []
    for gi, g in enumerate(graphs):
        if g.n == 0:
            continue
        dist = bfs_distances_batch(g)
        dsel_parts.append(np.where(dist < 0, g.n + 1, dist).ravel())
        lo = int(starts[gi])
        rank_parts.append(np.tile(rank[lo : lo + g.n], g.n))
    dsel_flat = np.concatenate(dsel_parts)
    rank_tiled = np.concatenate(rank_parts)
    pair_rows = np.repeat(np.arange(total), np.repeat(sizes, sizes))
    flat_order = np.lexsort((rank_tiled, dsel_flat, pair_rows))

    # First min(r, n_g) pairs of every row segment, via flat positional
    # arithmetic (rows of graph g are contiguous runs of length n_g).
    seg_len = sizes[gid]  # pairs per row
    pstart = np.zeros(total, dtype=np.int64)
    pstart[1:] = np.cumsum(seg_len)[:-1]
    k_rows = np.minimum(r, seg_len)
    total_sel = int(k_rows.sum())
    sel_start = np.zeros(total, dtype=np.int64)
    sel_start[1:] = np.cumsum(k_rows)[:-1]
    within = np.arange(total_sel) - np.repeat(sel_start, k_rows)
    sel_pair = flat_order[np.repeat(pstart, k_rows) + within]

    pair_starts = np.zeros(n_graphs, dtype=np.int64)
    pair_starts[1:] = np.cumsum(sizes * sizes)[:-1]
    g_sel = np.repeat(gid, k_rows)
    cand_local = (sel_pair - pair_starts[g_sel]) % sizes[g_sel]
    valid = dsel_flat[sel_pair] < sizes[g_sel] + 1
    member_rank = np.where(
        valid, rank[starts[g_sel] + cand_local], sizes[g_sel]
    )

    # (total, r) rank matrix with the per-row sentinel n_g (acts as +inf
    # for that graph); sorting ascending puts the field in descending
    # score order, exactly as the per-graph path does.
    ranks = np.repeat(sizes[gid], r).reshape(total, r)
    ranks[np.repeat(np.arange(total), k_rows), within] = member_rank
    ranks.sort(axis=1)
    filled_rows, filled_cols = np.nonzero(ranks < sizes[gid][:, None])
    out = np.full((total, r), DUMMY, dtype=np.int64)
    row_starts = starts[gid]
    out[filled_rows, filled_cols] = (
        order[row_starts[filled_rows] + ranks[filled_rows, filled_cols]]
        - row_starts[filled_rows]
    )
    return [
        out[int(starts[gi]) : int(starts[gi]) + int(sizes[gi])]
        for gi in range(n_graphs)
    ]


def _reference_all_receptive_fields(
    g: Graph, r: int, scores: np.ndarray
) -> np.ndarray:
    """Original per-vertex stacking loop (oracle for tests/equivalence)."""
    return np.stack([receptive_field(g, v, r, scores) for v in range(g.n)])
