"""End-to-end vertex classification with the DeepMap architecture.

Section 7 of the paper: "The learned deep feature map of each vertex can
also be considered as vertex embedding and used for vertex
classification."  :class:`DeepMapVertexClassifier` realises that remark
as a trainable estimator: the same alignment + receptive-field encoding
and convolution stack as the graph classifier, but instead of a
summation readout, every sequence slot gets a position-wise dense head
and a softmax — trained with a mask so padded slots contribute nothing.
"""

from __future__ import annotations

import numpy as np

from repro.core.pipeline import DeepMapEncoder
from repro.core.alignment import centrality_scores, vertex_sequence
from repro.features.vertex_maps import (
    VertexFeatureExtractor,
    WLVertexFeatures,
)
from repro.features.vocabulary import FeatureVocabulary
from repro.graph.graph import Graph
from repro.nn.activations import ReLU
from repro.nn.conv1d import Conv1D
from repro.nn.dense import Dense
from repro.nn.dropout import Dropout
from repro.nn.losses import SoftmaxCrossEntropy, softmax
from repro.nn.module import Network, Parameter
from repro.nn.optimizers import RMSprop
from repro.nn.schedulers import ReduceLROnPlateau
from repro.utils.rng import as_rng
from repro.utils.validation import check_fitted, check_positive

__all__ = ["DeepMapVertexClassifier"]


class _VertexNetwork(Network):
    """Conv stack + position-wise classification head: (B, w*r, m) ->
    (B, w, classes)."""

    def __init__(
        self,
        m: int,
        r: int,
        num_classes: int,
        channels: tuple[int, int, int] = (32, 16, 8),
        dense_units: int = 64,
        dropout: float = 0.5,
        rng: np.random.Generator | int | None = 0,
    ) -> None:
        rng = as_rng(rng)
        c1, c2, c3 = channels
        self.layers = [
            Conv1D(m, c1, kernel_size=r, stride=r, use_bias=False, rng=rng),
            ReLU(),
            Conv1D(c1, c2, kernel_size=1, use_bias=False, rng=rng),
            ReLU(),
            Conv1D(c2, c3, kernel_size=1, use_bias=False, rng=rng),
            ReLU(),
            Dense(c3, dense_units, rng=rng),
            ReLU(),
            Dropout(dropout, rng=rng),
            Dense(dense_units, num_classes, rng=rng),
        ]

    def forward(self, x: np.ndarray, training: bool = False) -> np.ndarray:
        for layer in self.layers:
            x = layer.forward(x, training=training)
        return x  # (B, w, classes) — Dense applies position-wise

    def backward(self, grad: np.ndarray) -> None:
        for layer in reversed(self.layers):
            grad = layer.backward(grad)

    def parameters(self) -> list[Parameter]:
        return [p for layer in self.layers for p in layer.parameters()]


class DeepMapVertexClassifier:
    """Vertex classifier on DeepMap's aligned receptive-field encoding.

    Parameters mirror :class:`~repro.core.model.DeepMapClassifier`;
    targets are per-graph integer arrays (one label per vertex).
    """

    def __init__(
        self,
        feature_map: str | VertexFeatureExtractor = "wl",
        r: int = 5,
        ordering: str = "eigenvector",
        epochs: int = 50,
        batch_size: int = 16,
        seed: int | None = 0,
    ) -> None:
        if isinstance(feature_map, str):
            if feature_map != "wl":
                raise ValueError(
                    "named shortcuts support 'wl'; pass an extractor instance "
                    "for other feature maps"
                )
            self.extractor: VertexFeatureExtractor = WLVertexFeatures()
        else:
            self.extractor = feature_map
        check_positive("r", r)
        self.r = r
        self.ordering = ordering
        self.epochs = epochs
        self.batch_size = batch_size
        self.seed = seed

        self.vocabulary_: FeatureVocabulary | None = None
        self.encoder_: DeepMapEncoder | None = None
        self.network_: _VertexNetwork | None = None
        self.classes_: np.ndarray | None = None
        self.loss_history_: list[float] = []

    # ------------------------------------------------------------------
    def _matrices(self, graphs: list[Graph], fit: bool) -> list[np.ndarray]:
        counts = self.extractor.extract(graphs)
        if fit:
            vocab = FeatureVocabulary()
            for vc in counts:
                for counter in vc:
                    vocab.add_all(counter.keys())
            self.vocabulary_ = vocab.freeze()
        check_fitted(self, "vocabulary_")
        assert self.vocabulary_ is not None
        return [self.vocabulary_.vectorize_rows(vc) for vc in counts]

    def _slot_targets(
        self, graphs: list[Graph], targets: list[np.ndarray], w: int, index: dict
    ) -> tuple[np.ndarray, np.ndarray]:
        """Per-slot class indices (and mask) aligned with the encoding."""
        slot_y = np.zeros((len(graphs), w), dtype=np.int64)
        mask = np.zeros((len(graphs), w), dtype=np.float64)
        for gi, (g, t) in enumerate(zip(graphs, targets)):
            scores = centrality_scores(g, self.ordering)
            sequence = vertex_sequence(g, scores, self.ordering)[:w]
            for slot, v in enumerate(sequence):
                slot_y[gi, slot] = index[int(t[int(v)])]
                mask[gi, slot] = 1.0
        return slot_y, mask

    # ------------------------------------------------------------------
    def fit(
        self, graphs: list[Graph], vertex_targets: list[np.ndarray | list]
    ) -> "DeepMapVertexClassifier":
        """Train on per-graph vertex-label arrays."""
        if len(graphs) != len(vertex_targets):
            raise ValueError("graphs and vertex_targets must align")
        targets = [np.asarray(t, dtype=np.int64) for t in vertex_targets]
        for g, t in zip(graphs, targets):
            if t.shape != (g.n,):
                raise ValueError(
                    f"target shape {t.shape} mismatches graph with {g.n} vertices"
                )
        self.classes_ = np.unique(np.concatenate(targets))
        index = {int(c): i for i, c in enumerate(self.classes_)}

        matrices = self._matrices(graphs, fit=True)
        self.encoder_ = DeepMapEncoder(r=self.r, ordering=self.ordering).fit(graphs)
        encoded = self.encoder_.encode(graphs, matrices)
        slot_y, mask = self._slot_targets(graphs, targets, encoded.w, index)

        rng = as_rng(self.seed)
        self.network_ = _VertexNetwork(
            m=encoded.m, r=self.r, num_classes=self.classes_.size, rng=rng
        )
        optimizer = RMSprop(self.network_.parameters(), lr=0.01)
        scheduler = ReduceLROnPlateau(optimizer)
        loss_fn = SoftmaxCrossEntropy()
        n = len(graphs)
        shuffle_rng = as_rng(int(rng.integers(0, 2**31 - 1)))

        self.loss_history_ = []
        for _ in range(self.epochs):
            order = shuffle_rng.permutation(n)
            epoch_loss = 0.0
            total_vertices = 0
            for start in range(0, n, self.batch_size):
                idx = order[start : start + self.batch_size]
                x = encoded.tensors[idx]
                y = slot_y[idx]
                m = mask[idx]
                logits = self.network_.forward(x, training=True)
                real = m.reshape(-1) > 0
                flat_logits = logits.reshape(-1, logits.shape[-1])[real]
                flat_y = y.reshape(-1)[real]
                loss = loss_fn.forward(flat_logits, flat_y)
                # Scatter the flat gradient back into the padded tensor.
                grad = np.zeros(
                    (y.size, logits.shape[-1]), dtype=np.float64
                )
                grad[real] = loss_fn.backward()
                self.network_.zero_grad()
                self.network_.backward(grad.reshape(logits.shape))
                optimizer.step()
                epoch_loss += loss * int(real.sum())
                total_vertices += int(real.sum())
            epoch_loss /= max(total_vertices, 1)
            self.loss_history_.append(epoch_loss)
            scheduler.step(epoch_loss)
        return self

    # ------------------------------------------------------------------
    def predict(self, graphs: list[Graph]) -> list[np.ndarray]:
        """Per-graph arrays of predicted vertex labels."""
        check_fitted(self, "network_")
        assert self.network_ is not None and self.classes_ is not None
        assert self.encoder_ is not None
        matrices = self._matrices(graphs, fit=False)
        encoded = self.encoder_.encode(graphs, matrices)
        logits = self.network_.forward(encoded.tensors, training=False)
        out: list[np.ndarray] = []
        for gi, g in enumerate(graphs):
            scores = centrality_scores(g, self.ordering)
            sequence = vertex_sequence(g, scores, self.ordering)[: encoded.w]
            labels = np.zeros(g.n, dtype=np.int64)
            for slot, v in enumerate(sequence):
                labels[int(v)] = self.classes_[int(np.argmax(logits[gi, slot]))]
            out.append(labels)
        return out

    def predict_proba(self, graphs: list[Graph]) -> list[np.ndarray]:
        """Per-graph ``(n, classes)`` probability arrays."""
        check_fitted(self, "network_")
        assert self.network_ is not None and self.encoder_ is not None
        matrices = self._matrices(graphs, fit=False)
        encoded = self.encoder_.encode(graphs, matrices)
        logits = self.network_.forward(encoded.tensors, training=False)
        probs = softmax(logits)
        out: list[np.ndarray] = []
        for gi, g in enumerate(graphs):
            scores = centrality_scores(g, self.ordering)
            sequence = vertex_sequence(g, scores, self.ordering)[: encoded.w]
            p = np.zeros((g.n, probs.shape[-1]), dtype=np.float64)
            for slot, v in enumerate(sequence):
                p[int(v)] = probs[gi, slot]
            out.append(p)
        return out

    def score(
        self, graphs: list[Graph], vertex_targets: list[np.ndarray | list]
    ) -> float:
        """Micro-averaged vertex accuracy."""
        preds = self.predict(graphs)
        correct = total = 0
        for pred, target in zip(preds, vertex_targets):
            target = np.asarray(target, dtype=np.int64)
            correct += int((pred == target).sum())
            total += target.size
        return correct / max(total, 1)
