"""Synthetic reconstructions of the paper's 15 benchmark datasets."""

from repro.datasets.base import DatasetStatistics, GraphDataset
from repro.datasets.communities import (
    BrainNetworkGenerator,
    SynthieGenerator,
    community_dataset,
)
from repro.datasets.ego import EgoNetworkGenerator, ego_dataset
from repro.datasets.molecules import MoleculeGenerator, molecule_dataset
from repro.datasets.registry import (
    DATASET_NAMES,
    PAPER_STATS,
    DatasetSpec,
    dataset_spec,
    degree_labeled,
    make_dataset,
    paper_statistics,
    sample_graph,
)
from repro.datasets.streaming import GraphShard, StreamingGraphDataset
from repro.datasets.tu_format import load_tu_dataset, save_tu_dataset

__all__ = [
    "GraphDataset",
    "DatasetStatistics",
    "MoleculeGenerator",
    "molecule_dataset",
    "EgoNetworkGenerator",
    "ego_dataset",
    "SynthieGenerator",
    "BrainNetworkGenerator",
    "community_dataset",
    "DATASET_NAMES",
    "PAPER_STATS",
    "DatasetSpec",
    "dataset_spec",
    "sample_graph",
    "GraphShard",
    "StreamingGraphDataset",
    "make_dataset",
    "paper_statistics",
    "degree_labeled",
    "load_tu_dataset",
    "save_tu_dataset",
]
