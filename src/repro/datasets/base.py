"""Dataset container and statistics (paper Table 1)."""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from repro.graph.graph import Graph

__all__ = ["GraphDataset", "DatasetStatistics"]


@dataclass
class DatasetStatistics:
    """The columns of the paper's Table 1."""

    name: str
    size: int
    num_classes: int
    avg_nodes: float
    avg_edges: float
    num_labels: int

    def row(self) -> str:
        """Formatted Table 1 row."""
        return (
            f"{self.name:<12s} {self.size:>5d} {self.num_classes:>3d} "
            f"{self.avg_nodes:>8.2f} {self.avg_edges:>9.2f} {self.num_labels:>4d}"
        )


@dataclass
class GraphDataset:
    """A named list of labeled graphs with class labels.

    Attributes
    ----------
    name:
        Benchmark name (e.g. "PTC_MR").
    graphs:
        The graphs.
    y:
        ``(len(graphs),)`` integer class labels.
    has_vertex_labels:
        False for the social datasets, where Table 1 reports "N/A"; for
        those, degree labels are substituted at generation time (the
        paper: "for datasets without vertex labels, we use vertex degrees
        as their vertex labels").
    """

    name: str
    graphs: list[Graph]
    y: np.ndarray
    has_vertex_labels: bool = True
    metadata: dict = field(default_factory=dict)

    def __post_init__(self) -> None:
        self.y = np.asarray(self.y, dtype=np.int64)
        if len(self.graphs) != self.y.size:
            raise ValueError(
                f"{len(self.graphs)} graphs but {self.y.size} class labels"
            )

    def __len__(self) -> int:
        return len(self.graphs)

    def statistics(self) -> DatasetStatistics:
        """Compute the Table 1 statistics for this dataset."""
        sizes = np.array([g.n for g in self.graphs], dtype=np.float64)
        edges = np.array([g.num_edges for g in self.graphs], dtype=np.float64)
        labels = {int(l) for g in self.graphs for l in g.labels}
        return DatasetStatistics(
            name=self.name,
            size=len(self.graphs),
            num_classes=int(np.unique(self.y).size),
            avg_nodes=float(sizes.mean()) if sizes.size else 0.0,
            avg_edges=float(edges.mean()) if edges.size else 0.0,
            num_labels=len(labels),
        )

    def subset(self, indices) -> "GraphDataset":
        """Dataset restricted to ``indices`` (keeps name/metadata)."""
        idx = np.asarray(indices, dtype=np.int64)
        return GraphDataset(
            name=self.name,
            graphs=[self.graphs[i] for i in idx],
            y=self.y[idx],
            has_vertex_labels=self.has_vertex_labels,
            metadata=dict(self.metadata),
        )
