"""Community-structured generators (SYNTHIE, KKI).

SYNTHIE (Morris et al. 2016) is generated "from two Erdos-Renyi graphs
with edge probability 0.2": seed graphs are perturbed and combined, and
the four classes correspond to which seed drives the structure and how
segments are mixed.  We reproduce that recipe: two fixed ER(p=0.2) seeds;
each sample perturbs one seed (edge rewiring) and splices in a block of
the other seed at a class-dependent rate.

KKI is a brain-connectome benchmark: ~27 regions of interest per subject
drawn from a 190-region atlas (hence 190 distinct vertex labels in Table
1); ADHD and control subjects differ in functional-connectivity topology
(hub strength / modularity).  The generator fixes a latent atlas with
community structure and samples class-dependent connectivity.
"""

from __future__ import annotations

import numpy as np

from repro.graph.builders import ensure_connected, erdos_renyi
from repro.graph.graph import Graph
from repro.utils.rng import as_rng, spawn_rngs
from repro.utils.validation import check_positive

__all__ = ["SynthieGenerator", "BrainNetworkGenerator", "community_dataset"]


class SynthieGenerator:
    """Four-class SYNTHIE-style generator from two ER(p=0.2) seeds."""

    NUM_CLASSES = 4

    def __init__(
        self,
        seed_nodes: int = 40,
        seed_p: float = 0.2,
        rewire: float = 0.15,
        atlas_seed: int = 1234,
    ) -> None:
        check_positive("seed_nodes", seed_nodes)
        self.seed_nodes = seed_nodes
        self.rewire = rewire
        rng = as_rng(atlas_seed)
        self.seeds = [
            ensure_connected(erdos_renyi(seed_nodes, seed_p, rng), rng)
            for _ in range(2)
        ]

    def sample(self, cls: int, rng: np.random.Generator | int | None = None) -> Graph:
        """One graph of class ``cls`` (0..3).

        Classes 0/1 derive from seed A, classes 2/3 from seed B; the even
        classes splice a larger foreign block than the odd ones, which is
        the inter-class signal within each seed family.
        """
        if not 0 <= cls < self.NUM_CLASSES:
            raise ValueError(f"class {cls} out of range")
        rng = as_rng(rng)
        own = self.seeds[cls // 2]
        other = self.seeds[1 - cls // 2]
        splice_fraction = 0.35 if cls % 2 == 0 else 0.1

        n = own.n
        edges = {tuple(map(int, e)) for e in own.edges}
        # Rewire a fraction of edges randomly (sample-level noise).
        for e in list(edges):
            if rng.random() < self.rewire:
                edges.discard(e)
                u = int(rng.integers(0, n))
                v = int(rng.integers(0, n))
                if u != v:
                    edges.add((min(u, v), max(u, v)))
        # Splice: overwrite the induced structure of a random block with
        # the other seed's corresponding block.
        k = int(splice_fraction * n)
        if k >= 2:
            block = rng.choice(n, size=k, replace=False)
            block_set = {int(b) for b in block}
            edges = {
                e for e in edges if not (e[0] in block_set and e[1] in block_set)
            }
            pos = {int(b): i for i, b in enumerate(sorted(block_set))}
            other_block = sorted(block_set)
            for i, u in enumerate(other_block):
                for v in other_block[i + 1 :]:
                    if other.has_edge(pos[u] % other.n, pos[v] % other.n):
                        edges.add((min(u, v), max(u, v)))
        g = Graph(n, sorted(edges))
        return ensure_connected(g, rng)


class BrainNetworkGenerator:
    """Two-class KKI-style brain networks over a fixed labeled atlas."""

    NUM_CLASSES = 2

    def __init__(
        self,
        atlas_size: int = 190,
        regions_per_subject: float = 27.0,
        communities: int = 5,
        atlas_seed: int = 77,
    ) -> None:
        check_positive("atlas_size", atlas_size)
        check_positive("regions_per_subject", regions_per_subject)
        self.atlas_size = atlas_size
        self.regions_per_subject = regions_per_subject
        self.communities = communities
        rng = as_rng(atlas_seed)
        # Each atlas region belongs to a functional community.
        self.community_of = rng.integers(0, communities, size=atlas_size)

    def sample(self, cls: int, rng: np.random.Generator | int | None = None) -> Graph:
        """One subject network of class ``cls`` (0 = control, 1 = ADHD).

        Controls show strong within-community connectivity; the patient
        class shows weaker modular structure with stronger random
        (cross-community) connections — the hub-disruption signature the
        classification literature reports.
        """
        if not 0 <= cls < self.NUM_CLASSES:
            raise ValueError(f"class {cls} out of range")
        rng = as_rng(rng)
        k = max(8, int(rng.poisson(self.regions_per_subject)))
        k = min(k, self.atlas_size)
        regions = np.sort(rng.choice(self.atlas_size, size=k, replace=False))
        if cls == 0:
            p_within, p_between = 0.40, 0.07
        else:
            p_within, p_between = 0.20, 0.13
        edges = []
        for i in range(k):
            for j in range(i + 1, k):
                same = self.community_of[regions[i]] == self.community_of[regions[j]]
                p = p_within if same else p_between
                if rng.random() < p:
                    edges.append((i, j))
        labels = regions.astype(np.int64)  # ROI identity = vertex label
        g = Graph(k, edges, labels)
        return ensure_connected(g, rng)


def community_dataset(
    generator, n_graphs: int, seed: int | np.random.Generator | None = 0
) -> tuple[list[Graph], np.ndarray]:
    """Balanced dataset from a SYNTHIE or brain-network generator."""
    check_positive("n_graphs", n_graphs)
    rngs = spawn_rngs(seed, n_graphs)
    labels = np.array(
        [i % generator.NUM_CLASSES for i in range(n_graphs)], dtype=np.int64
    )
    graphs = [generator.sample(int(c), r) for c, r in zip(labels, rngs)]
    return graphs, labels
