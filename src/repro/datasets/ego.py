"""Ego-network generators (IMDB-BINARY, IMDB-MULTI, COLLAB).

Real collaboration ego networks are unions of near-cliques (one clique
per movie / paper) around an ego vertex.  Genres/fields differ in how
many collaborations there are and how much they overlap: Action movies
reuse large ensembles (few big cliques), Romance casts are smaller and
churn more (more, smaller cliques), Sci-Fi sits between; physics
subfields differ similarly in team size.  The generators reproduce that
regime, so degree-distribution and density features separate the classes
the same way they do in the real data.
"""

from __future__ import annotations

import numpy as np

from repro.graph.graph import Graph
from repro.utils.rng import as_rng, spawn_rngs
from repro.utils.validation import check_positive

__all__ = ["EgoNetworkGenerator", "ego_dataset"]


class EgoNetworkGenerator:
    """Clique-union ego networks with class-dependent clique profiles.

    Parameters
    ----------
    class_profiles:
        One ``(num_cliques_mean, clique_size_mean, overlap)`` triple per
        class.  ``overlap`` in [0, 1] is the expected fraction of each
        clique's members drawn from previously used vertices (cast reuse).
    avg_nodes:
        Target average vertex count; the per-class profiles are scaled so
        all classes share it (class signal is *shape*, not raw size).
    """

    def __init__(
        self,
        class_profiles: list[tuple[float, float, float]],
        avg_nodes: float = 20.0,
        min_nodes: int = 6,
    ) -> None:
        if not class_profiles:
            raise ValueError("need at least one class profile")
        check_positive("avg_nodes", avg_nodes)
        self.class_profiles = class_profiles
        self.avg_nodes = avg_nodes
        self.min_nodes = min_nodes

    @property
    def num_classes(self) -> int:
        return len(self.class_profiles)

    def sample(self, cls: int, rng: np.random.Generator | int | None = None) -> Graph:
        """Generate one ego network of class ``cls``."""
        if not 0 <= cls < self.num_classes:
            raise ValueError(f"class {cls} out of range")
        rng = as_rng(rng)
        n_cliques_mean, clique_size_mean, overlap = self.class_profiles[cls]
        # Loose cap: the clique profile drives the expected size; the cap
        # only prevents runaway samples from the Poisson tails.
        n_target = max(self.min_nodes, int(rng.poisson(self.avg_nodes * 1.6)))

        edges: set[tuple[int, int]] = set()
        members: list[int] = [0]  # vertex 0 is the ego
        next_vertex = 1
        n_cliques = max(1, int(rng.poisson(n_cliques_mean)))
        for _ in range(n_cliques):
            size = max(2, int(rng.poisson(clique_size_mean)))
            clique = []
            for _ in range(size):
                if members[1:] and rng.random() < overlap:
                    clique.append(int(members[1 + rng.integers(0, len(members) - 1)]))
                elif next_vertex < n_target:
                    clique.append(next_vertex)
                    members.append(next_vertex)
                    next_vertex += 1
                elif members[1:]:
                    clique.append(int(members[1 + rng.integers(0, len(members) - 1)]))
            clique = sorted(set(clique))
            # Fully connect the clique and attach it to the ego.
            for i, u in enumerate(clique):
                edges.add((0, u))
                for v in clique[i + 1 :]:
                    edges.add((u, v))
        n = next_vertex
        if n < 2:  # degenerate: ego only — add one collaborator
            n = 2
            edges.add((0, 1))
        return Graph(n, sorted(edges))


def ego_dataset(
    generator: EgoNetworkGenerator,
    n_graphs: int,
    seed: int | np.random.Generator | None = 0,
) -> tuple[list[Graph], np.ndarray]:
    """Balanced ego-network dataset (unlabeled vertices)."""
    check_positive("n_graphs", n_graphs)
    rngs = spawn_rngs(seed, n_graphs)
    labels = np.array(
        [i % generator.num_classes for i in range(n_graphs)], dtype=np.int64
    )
    graphs = [generator.sample(int(c), r) for c, r in zip(labels, rngs)]
    return graphs, labels
