"""Molecule-style graph generators.

Covers the chemical / molecular benchmarks (BZR_MD, COX2_MD, DHFR, NCI1,
PTC_*, ENZYMES, PROTEINS).  Two structural regimes occur in the real
datasets and are reproduced here:

* *sparse molecules* (DHFR, NCI1, PTC, proteins): a tree/chain backbone
  with rings attached — average degree around 2;
* *complete graphs* (BZR_MD, COX2_MD: "the chemical compounds ... are
  represented as complete graphs" after removing explicit hydrogens).

Class signal is injected the way structure-activity datasets carry it:
*label motifs*.  Each class has a preferred set of labeled ring/chain
motifs that occur with higher probability, plus a class-tilted label
distribution, against a shared random background — so classes overlap
(accuracy well below 100%) but are learnable from substructure counts.
"""

from __future__ import annotations

import numpy as np

from repro.graph.builders import ensure_connected, random_tree
from repro.graph.graph import Graph
from repro.utils.rng import as_rng, spawn_rngs
from repro.utils.validation import check_positive, check_probability

__all__ = ["MoleculeGenerator", "molecule_dataset"]


class MoleculeGenerator:
    """Generates one molecule-like labeled graph per call.

    Parameters
    ----------
    avg_nodes:
        Target mean vertex count (Poisson-ish spread around it).
    num_labels:
        Size of the atom-type alphabet.
    num_classes:
        Number of activity classes.
    complete:
        Produce complete graphs (the *_MD regime) instead of sparse ones.
    ring_rate:
        Expected number of rings attached per 10 backbone vertices.
    extra_edge_rate:
        Expected extra random edges per vertex beyond the tree backbone —
        raises density for the protein-style datasets (ENZYMES/PROTEINS
        have average degree near 4, vs 2 for small molecules).
    motif_strength:
        Probability that a class-specific motif is embedded (per motif
        slot); higher = easier classification.
    label_tilt:
        How strongly the label distribution leans toward class-preferred
        labels (0 = identical distributions across classes).
    """

    def __init__(
        self,
        avg_nodes: float = 15.0,
        num_labels: int = 8,
        num_classes: int = 2,
        complete: bool = False,
        ring_rate: float = 0.8,
        extra_edge_rate: float = 0.0,
        motif_strength: float = 0.7,
        label_tilt: float = 0.35,
        min_nodes: int = 5,
    ) -> None:
        check_positive("avg_nodes", avg_nodes)
        check_positive("num_labels", num_labels)
        check_positive("num_classes", num_classes)
        check_probability("motif_strength", motif_strength)
        check_probability("label_tilt", label_tilt)
        self.avg_nodes = avg_nodes
        self.num_labels = num_labels
        self.num_classes = num_classes
        self.complete = complete
        self.ring_rate = ring_rate
        self.extra_edge_rate = extra_edge_rate
        self.motif_strength = motif_strength
        self.label_tilt = label_tilt
        self.min_nodes = min_nodes

    # ------------------------------------------------------------------
    def _class_label_distribution(self, cls: int) -> np.ndarray:
        """Label distribution tilted toward the class's preferred labels."""
        base = np.ones(self.num_labels)
        preferred = [
            (cls + j * self.num_classes) % self.num_labels for j in range(2)
        ]
        for lab in preferred:
            # A fixed multiplicative bump (independent of alphabet size):
            # the aggregate histogram signal grows with graph size, so the
            # per-label tilt must stay mild to keep classes overlapping.
            base[lab] *= 1.0 + 4.0 * self.label_tilt
        return base / base.sum()

    def _class_motif(self, cls: int, slot: int) -> list[int]:
        """Deterministic labeled ring motif for (class, slot)."""
        length = 5 if slot % 2 == 0 else 6
        return [
            (cls * 3 + slot + j * (cls + 2)) % self.num_labels for j in range(length)
        ]

    # ------------------------------------------------------------------
    def sample(self, cls: int, rng: np.random.Generator | int | None = None) -> Graph:
        """Generate one graph of class ``cls``."""
        if not 0 <= cls < self.num_classes:
            raise ValueError(f"class {cls} out of range")
        rng = as_rng(rng)
        n = max(self.min_nodes, int(rng.poisson(self.avg_nodes)))
        if self.complete:
            return self._sample_complete(cls, n, rng)
        return self._sample_sparse(cls, n, rng)

    def _sample_sparse(self, cls: int, n: int, rng: np.random.Generator) -> Graph:
        backbone = random_tree(n, rng)
        edges = {tuple(map(int, e)) for e in backbone.edges}
        labels = rng.choice(
            self.num_labels, size=n, p=self._class_label_distribution(cls)
        ).astype(np.int64)

        # Close random rings: connect backbone vertices at distance >= 2.
        n_rings = rng.poisson(self.ring_rate * n / 10.0)
        n_extra = rng.poisson(self.extra_edge_rate * n)
        for _ in range(int(n_rings) + int(n_extra)):
            u, v = rng.integers(0, n, size=2)
            u, v = int(min(u, v)), int(max(u, v))
            if u != v and (u, v) not in edges:
                edges.add((u, v))

        # Embed exactly one labeled ring motif.  Its class identity is
        # noisy: with probability motif_strength it is this class's motif,
        # otherwise a uniformly random class's — bounding the attainable
        # accuracy below 100% the way real structure-activity data does
        # (the same compound scaffold appears in actives and inactives).
        motif_cls = (
            cls
            if rng.random() < self.motif_strength
            else int(rng.integers(0, self.num_classes))
        )
        self._stamp_motif(self._class_motif(motif_cls, 0), edges, labels, n, rng)
        g = Graph(n, sorted(edges), labels)
        return ensure_connected(g, rng)

    def _stamp_motif(
        self,
        motif: list[int],
        edges: set[tuple[int, int]],
        labels: np.ndarray,
        n: int,
        rng: np.random.Generator,
    ) -> None:
        """Stamp a labeled ring motif onto random distinct vertices."""
        if n < len(motif):
            return
        chain = sorted(int(v) for v in rng.choice(n, size=len(motif), replace=False))
        for a, b in zip(chain, chain[1:]):
            edges.add((min(a, b), max(a, b)))
        if len(chain) > 2:
            edges.add((min(chain[0], chain[-1]), max(chain[0], chain[-1])))
        for vert, lab in zip(chain, motif):
            labels[vert] = lab

    def _sample_complete(self, cls: int, n: int, rng: np.random.Generator) -> Graph:
        labels = rng.choice(
            self.num_labels, size=n, p=self._class_label_distribution(cls)
        ).astype(np.int64)
        # Stamp one motif's label multiset (structure is complete anyway,
        # so the only class signal is label composition).  Like the sparse
        # case, the motif's class identity is noisy.
        motif_cls = (
            cls
            if rng.random() < self.motif_strength
            else int(rng.integers(0, self.num_classes))
        )
        motif = self._class_motif(motif_cls, 0)
        take = min(len(motif), n)
        pos = rng.choice(n, size=take, replace=False)
        for vert, lab in zip(pos, motif[:take]):
            labels[int(vert)] = lab
        edges = [(i, j) for i in range(n) for j in range(i + 1, n)]
        return Graph(n, edges, labels)


def molecule_dataset(
    generator: MoleculeGenerator,
    n_graphs: int,
    seed: int | np.random.Generator | None = 0,
) -> tuple[list[Graph], np.ndarray]:
    """Balanced dataset of ``n_graphs`` molecules across the classes."""
    check_positive("n_graphs", n_graphs)
    rngs = spawn_rngs(seed, n_graphs)
    graphs = []
    labels = np.array(
        [i % generator.num_classes for i in range(n_graphs)], dtype=np.int64
    )
    for cls, rng in zip(labels, rngs):
        graphs.append(generator.sample(int(cls), rng))
    return graphs, labels
