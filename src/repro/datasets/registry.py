"""Registry of the paper's 15 benchmark datasets (Table 1).

Every dataset is generated synthetically (no network access — see
DESIGN.md) with statistics matched to Table 1, scaled by ``scale`` in
graph count and, for the two largest-graph datasets (SYNTHIE, COLLAB),
shrunk in vertex count so the CNN input tensor stays CPU-friendly.  Each
generator embeds learnable class structure appropriate to its domain.

``make_dataset("PTC_MR")`` is the single entry point; ``PAPER_STATS``
exposes the Table 1 reference numbers for the comparison bench.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.datasets.base import DatasetStatistics, GraphDataset
from repro.datasets.communities import BrainNetworkGenerator, SynthieGenerator
from repro.datasets.ego import EgoNetworkGenerator
from repro.datasets.molecules import MoleculeGenerator
from repro.graph.graph import Graph
from repro.utils.rng import as_rng

__all__ = [
    "DATASET_NAMES",
    "PAPER_STATS",
    "EXTRA_STATS",
    "DatasetSpec",
    "dataset_spec",
    "sample_graph",
    "make_dataset",
    "degree_labeled",
]


@dataclass(frozen=True)
class _PaperRow:
    size: int
    num_classes: int
    avg_nodes: float
    avg_edges: float
    num_labels: int | None  # None = "N/A" in Table 1


#: Table 1 of the paper, verbatim.
PAPER_STATS: dict[str, _PaperRow] = {
    "SYNTHIE": _PaperRow(400, 4, 95.00, 172.93, None),
    "KKI": _PaperRow(83, 2, 26.96, 48.42, 190),
    "BZR_MD": _PaperRow(306, 2, 21.30, 225.06, 8),
    "COX2_MD": _PaperRow(303, 2, 26.28, 335.12, 7),
    "DHFR": _PaperRow(467, 2, 42.43, 44.54, 9),
    "NCI1": _PaperRow(4110, 2, 17.93, 19.79, 37),
    "PTC_MM": _PaperRow(336, 2, 13.97, 14.32, 20),
    "PTC_MR": _PaperRow(344, 2, 14.29, 14.69, 18),
    "PTC_FM": _PaperRow(349, 2, 14.11, 14.48, 18),
    "PTC_FR": _PaperRow(351, 2, 14.56, 15.00, 19),
    "ENZYMES": _PaperRow(600, 6, 32.63, 62.14, 3),
    "PROTEINS": _PaperRow(1113, 2, 39.06, 72.82, 3),
    "IMDB-BINARY": _PaperRow(1000, 2, 19.77, 96.53, None),
    "IMDB-MULTI": _PaperRow(1500, 3, 13.00, 65.94, None),
    "COLLAB": _PaperRow(5000, 3, 74.49, 2457.78, None),
}

DATASET_NAMES = tuple(PAPER_STATS)

#: Classic benchmarks accepted by :func:`make_dataset` beyond the paper's
#: Table 1 (kept out of ``DATASET_NAMES`` so the Table 1 bench surface is
#: exactly the paper's 15 rows).  MUTAG statistics are the standard TU
#: reference numbers.
EXTRA_STATS: dict[str, _PaperRow] = {
    "MUTAG": _PaperRow(188, 2, 17.93, 19.79, 7),
}

#: Vertex-count shrink factors for datasets whose graphs would make the
#: CNN tensors too large on CPU.  Documented in DESIGN.md / EXPERIMENTS.md.
_NODE_SHRINK = {"SYNTHIE": 0.45, "COLLAB": 0.45}

_MIN_GRAPHS = 40


def degree_labeled(graphs: list[Graph]) -> list[Graph]:
    """Replace vertex labels with vertex degrees (the paper's policy for
    datasets without vertex labels)."""
    return [g.with_labels(g.degrees().tolist()) for g in graphs]


def _scaled_size(name: str, scale: float) -> int:
    stats = PAPER_STATS.get(name) or EXTRA_STATS[name]
    return max(_MIN_GRAPHS, int(round(stats.size * scale)))


@dataclass(frozen=True)
class DatasetSpec:
    """Everything needed to generate any single graph of a dataset.

    ``generator.sample(cls, rng)`` must be stateless across calls (all
    registry generators are: their only mutable-looking state — the
    SYNTHIE seed atlas, the KKI community map — is fixed at
    construction), so graph ``i`` of a dataset can be produced on its
    own from its per-index seed without touching graphs ``0..i-1``.
    This is what makes ``make_dataset(..., stream=True)`` bitwise-equal
    to the materialized path.
    """

    name: str
    num_classes: int
    has_vertex_labels: bool
    generator: object


def dataset_spec(name: str) -> DatasetSpec:
    """Construct the generation spec for a benchmark dataset."""
    if name not in PAPER_STATS and name not in EXTRA_STATS:
        raise ValueError(
            f"unknown dataset {name!r}; choose from "
            f"{DATASET_NAMES + tuple(EXTRA_STATS)}"
        )
    return _SPECS[name]()


def graph_seeds(seed: int | None, n_graphs: int) -> np.ndarray:
    """Per-graph generation seeds: one int64 block from the root stream.

    Exactly the draw :func:`repro.utils.rng.spawn_rngs` performs, so a
    consumer holding only ``seeds[i]`` reconstructs the identical
    per-graph generator the eager builders used.
    """
    return as_rng(seed).integers(0, 2**63 - 1, size=n_graphs, dtype=np.int64)


def sample_graph(spec: DatasetSpec, index: int, seed_value: int) -> Graph:
    """Generate graph ``index`` of a dataset from its per-index seed.

    Applies the degree-labeling policy for datasets without vertex
    labels, matching what :func:`make_dataset` does for the full list.
    """
    cls = index % spec.num_classes
    graph = spec.generator.sample(int(cls), np.random.default_rng(int(seed_value)))
    if not spec.has_vertex_labels:
        graph = graph.with_labels(graph.degrees().tolist())
    return graph


def make_dataset(
    name: str, scale: float = 0.15, seed: int | None = 0, stream: bool = False
):
    """Generate a benchmark dataset by name.

    Parameters
    ----------
    name:
        One of :data:`DATASET_NAMES`.
    scale:
        Fraction of the paper's graph count to generate (minimum 40).
    seed:
        Generation seed; the same (name, scale, seed) triple always
        produces the identical dataset.
    stream:
        When True, return a
        :class:`~repro.datasets.streaming.StreamingGraphDataset` — a
        lazy view holding only the per-graph seed block (8 bytes per
        graph) that generates graphs on demand.  Its ``materialize()``
        is bitwise-identical to the eager result for the same
        ``(name, scale, seed)`` triple, at any scale factor.
    """
    spec = dataset_spec(name)
    if scale <= 0:
        raise ValueError(f"scale must be > 0, got {scale}")
    n_graphs = _scaled_size(name, scale)
    seeds = graph_seeds(seed, n_graphs)
    metadata = {"scale": scale, "seed": seed}
    if stream:
        from repro.datasets.streaming import StreamingGraphDataset

        return StreamingGraphDataset(
            name=name, spec=spec, seeds=seeds, metadata=metadata
        )
    graphs = [sample_graph(spec, i, int(s)) for i, s in enumerate(seeds)]
    y = np.array([i % spec.num_classes for i in range(n_graphs)], dtype=np.int64)
    return GraphDataset(
        name=name,
        graphs=graphs,
        y=y,
        has_vertex_labels=spec.has_vertex_labels,
        metadata=metadata,
    )


def paper_statistics(name: str) -> DatasetStatistics:
    """Table 1 reference row as a :class:`DatasetStatistics`."""
    row = PAPER_STATS[name]
    return DatasetStatistics(
        name=name,
        size=row.size,
        num_classes=row.num_classes,
        avg_nodes=row.avg_nodes,
        avg_edges=row.avg_edges,
        num_labels=row.num_labels if row.num_labels is not None else 0,
    )


# ----------------------------------------------------------------------
# Per-dataset spec factories: () -> DatasetSpec
# ----------------------------------------------------------------------

def _build_synthie() -> DatasetSpec:
    nodes = max(12, int(PAPER_STATS["SYNTHIE"].avg_nodes * _NODE_SHRINK["SYNTHIE"]))
    gen = SynthieGenerator(seed_nodes=nodes, atlas_seed=1234)
    return DatasetSpec(
        name="SYNTHIE",
        num_classes=gen.NUM_CLASSES,
        has_vertex_labels=False,
        generator=gen,
    )


def _build_kki() -> DatasetSpec:
    gen = BrainNetworkGenerator(atlas_size=190, regions_per_subject=27.0)
    return DatasetSpec(
        name="KKI",
        num_classes=gen.NUM_CLASSES,
        has_vertex_labels=True,
        generator=gen,
    )


def _molecule_builder(
    name: str,
    avg_nodes: float,
    num_labels: int,
    num_classes: int = 2,
    complete: bool = False,
    ring_rate: float = 0.8,
    extra_edge_rate: float = 0.0,
    motif_strength: float = 0.7,
    label_tilt: float = 0.35,
):
    def build() -> DatasetSpec:
        gen = MoleculeGenerator(
            avg_nodes=avg_nodes,
            num_labels=num_labels,
            num_classes=num_classes,
            complete=complete,
            ring_rate=ring_rate,
            extra_edge_rate=extra_edge_rate,
            motif_strength=motif_strength,
            label_tilt=label_tilt,
        )
        return DatasetSpec(
            name=name,
            num_classes=num_classes,
            has_vertex_labels=True,
            generator=gen,
        )

    return build


def _ego_builder(name: str, profiles, avg_nodes: float):
    def build() -> DatasetSpec:
        gen = EgoNetworkGenerator(class_profiles=profiles, avg_nodes=avg_nodes)
        return DatasetSpec(
            name=name,
            num_classes=gen.num_classes,
            has_vertex_labels=False,
            generator=gen,
        )

    return build


_SPECS = {
    "SYNTHIE": _build_synthie,
    "KKI": _build_kki,
    "BZR_MD": _molecule_builder(
        "BZR_MD", 21.3, 8, complete=True, motif_strength=0.25, label_tilt=0.02
    ),
    "COX2_MD": _molecule_builder(
        "COX2_MD", 26.3, 7, complete=True, motif_strength=0.28, label_tilt=0.02
    ),
    "DHFR": _molecule_builder(
        "DHFR", 42.4, 9, ring_rate=0.25, motif_strength=0.62, label_tilt=0.05
    ),
    "NCI1": _molecule_builder(
        "NCI1", 17.9, 37, ring_rate=0.4, motif_strength=0.70, label_tilt=0.15
    ),
    "PTC_MM": _molecule_builder(
        "PTC_MM", 14.0, 20, ring_rate=0.15, motif_strength=0.36, label_tilt=0.10
    ),
    "PTC_MR": _molecule_builder(
        "PTC_MR", 14.3, 18, ring_rate=0.15, motif_strength=0.33, label_tilt=0.09
    ),
    "PTC_FM": _molecule_builder(
        "PTC_FM", 14.1, 18, ring_rate=0.15, motif_strength=0.34, label_tilt=0.09
    ),
    "PTC_FR": _molecule_builder(
        "PTC_FR", 14.6, 19, ring_rate=0.15, motif_strength=0.36, label_tilt=0.10
    ),
    "ENZYMES": _molecule_builder(
        "ENZYMES", 32.6, 3, num_classes=6, ring_rate=0.5, extra_edge_rate=0.78,
        motif_strength=0.65, label_tilt=0.3,
    ),
    "PROTEINS": _molecule_builder(
        "PROTEINS", 39.1, 3, ring_rate=0.5, extra_edge_rate=0.72,
        motif_strength=0.52, label_tilt=0.12,
    ),
    # IMDB: Action = few large ensembles; Romance = more small casts.
    "IMDB-BINARY": _ego_builder(
        "IMDB-BINARY", [(2.2, 9.5, 0.11), (3.3, 7.0, 0.13)], avg_nodes=19.8
    ),
    "IMDB-MULTI": _ego_builder(
        "IMDB-MULTI",
        [(1.7, 7.5, 0.10), (2.4, 5.5, 0.12), (2.0, 6.5, 0.11)],
        avg_nodes=13.0,
    ),
    # COLLAB: High-Energy (huge collaborations), Condensed Matter (small
    # teams), Astro (medium) — shrunk vertex counts (see _NODE_SHRINK).
    "COLLAB": _ego_builder(
        "COLLAB",
        [(2.2, 20.0, 0.30), (7.0, 6.0, 0.20), (4.0, 11.0, 0.25)],
        avg_nodes=74.5 * _NODE_SHRINK["COLLAB"],
    ),
    # Extra (non-Table-1) benchmark: nitroaromatic mutagenicity.
    "MUTAG": _molecule_builder(
        "MUTAG", 17.9, 7, ring_rate=0.6, motif_strength=0.65, label_tilt=0.15
    ),
}
