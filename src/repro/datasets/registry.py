"""Registry of the paper's 15 benchmark datasets (Table 1).

Every dataset is generated synthetically (no network access — see
DESIGN.md) with statistics matched to Table 1, scaled by ``scale`` in
graph count and, for the two largest-graph datasets (SYNTHIE, COLLAB),
shrunk in vertex count so the CNN input tensor stays CPU-friendly.  Each
generator embeds learnable class structure appropriate to its domain.

``make_dataset("PTC_MR")`` is the single entry point; ``PAPER_STATS``
exposes the Table 1 reference numbers for the comparison bench.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.datasets.base import DatasetStatistics, GraphDataset
from repro.datasets.communities import (
    BrainNetworkGenerator,
    SynthieGenerator,
    community_dataset,
)
from repro.datasets.ego import EgoNetworkGenerator, ego_dataset
from repro.datasets.molecules import MoleculeGenerator, molecule_dataset
from repro.graph.graph import Graph
from repro.utils.rng import as_rng

__all__ = [
    "DATASET_NAMES",
    "PAPER_STATS",
    "EXTRA_STATS",
    "make_dataset",
    "degree_labeled",
]


@dataclass(frozen=True)
class _PaperRow:
    size: int
    num_classes: int
    avg_nodes: float
    avg_edges: float
    num_labels: int | None  # None = "N/A" in Table 1


#: Table 1 of the paper, verbatim.
PAPER_STATS: dict[str, _PaperRow] = {
    "SYNTHIE": _PaperRow(400, 4, 95.00, 172.93, None),
    "KKI": _PaperRow(83, 2, 26.96, 48.42, 190),
    "BZR_MD": _PaperRow(306, 2, 21.30, 225.06, 8),
    "COX2_MD": _PaperRow(303, 2, 26.28, 335.12, 7),
    "DHFR": _PaperRow(467, 2, 42.43, 44.54, 9),
    "NCI1": _PaperRow(4110, 2, 17.93, 19.79, 37),
    "PTC_MM": _PaperRow(336, 2, 13.97, 14.32, 20),
    "PTC_MR": _PaperRow(344, 2, 14.29, 14.69, 18),
    "PTC_FM": _PaperRow(349, 2, 14.11, 14.48, 18),
    "PTC_FR": _PaperRow(351, 2, 14.56, 15.00, 19),
    "ENZYMES": _PaperRow(600, 6, 32.63, 62.14, 3),
    "PROTEINS": _PaperRow(1113, 2, 39.06, 72.82, 3),
    "IMDB-BINARY": _PaperRow(1000, 2, 19.77, 96.53, None),
    "IMDB-MULTI": _PaperRow(1500, 3, 13.00, 65.94, None),
    "COLLAB": _PaperRow(5000, 3, 74.49, 2457.78, None),
}

DATASET_NAMES = tuple(PAPER_STATS)

#: Classic benchmarks accepted by :func:`make_dataset` beyond the paper's
#: Table 1 (kept out of ``DATASET_NAMES`` so the Table 1 bench surface is
#: exactly the paper's 15 rows).  MUTAG statistics are the standard TU
#: reference numbers.
EXTRA_STATS: dict[str, _PaperRow] = {
    "MUTAG": _PaperRow(188, 2, 17.93, 19.79, 7),
}

#: Vertex-count shrink factors for datasets whose graphs would make the
#: CNN tensors too large on CPU.  Documented in DESIGN.md / EXPERIMENTS.md.
_NODE_SHRINK = {"SYNTHIE": 0.45, "COLLAB": 0.45}

_MIN_GRAPHS = 40


def degree_labeled(graphs: list[Graph]) -> list[Graph]:
    """Replace vertex labels with vertex degrees (the paper's policy for
    datasets without vertex labels)."""
    return [g.with_labels(g.degrees().tolist()) for g in graphs]


def _scaled_size(name: str, scale: float) -> int:
    stats = PAPER_STATS.get(name) or EXTRA_STATS[name]
    return max(_MIN_GRAPHS, int(round(stats.size * scale)))


def make_dataset(
    name: str, scale: float = 0.15, seed: int | None = 0
) -> GraphDataset:
    """Generate a benchmark dataset by name.

    Parameters
    ----------
    name:
        One of :data:`DATASET_NAMES`.
    scale:
        Fraction of the paper's graph count to generate (minimum 40).
    seed:
        Generation seed; the same (name, scale, seed) triple always
        produces the identical dataset.
    """
    if name not in PAPER_STATS and name not in EXTRA_STATS:
        raise ValueError(
            f"unknown dataset {name!r}; choose from "
            f"{DATASET_NAMES + tuple(EXTRA_STATS)}"
        )
    if scale <= 0:
        raise ValueError(f"scale must be > 0, got {scale}")
    n_graphs = _scaled_size(name, scale)
    rng = as_rng(seed)
    builder = _BUILDERS[name]
    graphs, y, has_labels = builder(n_graphs, rng)
    if not has_labels:
        graphs = degree_labeled(graphs)
    return GraphDataset(
        name=name,
        graphs=graphs,
        y=y,
        has_vertex_labels=has_labels,
        metadata={"scale": scale, "seed": seed},
    )


def paper_statistics(name: str) -> DatasetStatistics:
    """Table 1 reference row as a :class:`DatasetStatistics`."""
    row = PAPER_STATS[name]
    return DatasetStatistics(
        name=name,
        size=row.size,
        num_classes=row.num_classes,
        avg_nodes=row.avg_nodes,
        avg_edges=row.avg_edges,
        num_labels=row.num_labels if row.num_labels is not None else 0,
    )


# ----------------------------------------------------------------------
# Per-dataset builders: (n_graphs, rng) -> (graphs, y, has_vertex_labels)
# ----------------------------------------------------------------------

def _build_synthie(n_graphs: int, rng: np.random.Generator):
    nodes = max(12, int(PAPER_STATS["SYNTHIE"].avg_nodes * _NODE_SHRINK["SYNTHIE"]))
    gen = SynthieGenerator(seed_nodes=nodes, atlas_seed=1234)
    graphs, y = community_dataset(gen, n_graphs, rng)
    return graphs, y, False


def _build_kki(n_graphs: int, rng: np.random.Generator):
    gen = BrainNetworkGenerator(atlas_size=190, regions_per_subject=27.0)
    graphs, y = community_dataset(gen, n_graphs, rng)
    return graphs, y, True


def _molecule_builder(
    avg_nodes: float,
    num_labels: int,
    num_classes: int = 2,
    complete: bool = False,
    ring_rate: float = 0.8,
    extra_edge_rate: float = 0.0,
    motif_strength: float = 0.7,
    label_tilt: float = 0.35,
):
    def build(n_graphs: int, rng: np.random.Generator):
        gen = MoleculeGenerator(
            avg_nodes=avg_nodes,
            num_labels=num_labels,
            num_classes=num_classes,
            complete=complete,
            ring_rate=ring_rate,
            extra_edge_rate=extra_edge_rate,
            motif_strength=motif_strength,
            label_tilt=label_tilt,
        )
        graphs, y = molecule_dataset(gen, n_graphs, rng)
        return graphs, y, True

    return build


def _ego_builder(profiles, avg_nodes: float):
    def build(n_graphs: int, rng: np.random.Generator):
        gen = EgoNetworkGenerator(class_profiles=profiles, avg_nodes=avg_nodes)
        graphs, y = ego_dataset(gen, n_graphs, rng)
        return graphs, y, False

    return build


_BUILDERS = {
    "SYNTHIE": _build_synthie,
    "KKI": _build_kki,
    "BZR_MD": _molecule_builder(
        21.3, 8, complete=True, motif_strength=0.25, label_tilt=0.02
    ),
    "COX2_MD": _molecule_builder(
        26.3, 7, complete=True, motif_strength=0.28, label_tilt=0.02
    ),
    "DHFR": _molecule_builder(
        42.4, 9, ring_rate=0.25, motif_strength=0.62, label_tilt=0.05
    ),
    "NCI1": _molecule_builder(
        17.9, 37, ring_rate=0.4, motif_strength=0.70, label_tilt=0.15
    ),
    "PTC_MM": _molecule_builder(
        14.0, 20, ring_rate=0.15, motif_strength=0.36, label_tilt=0.10
    ),
    "PTC_MR": _molecule_builder(
        14.3, 18, ring_rate=0.15, motif_strength=0.33, label_tilt=0.09
    ),
    "PTC_FM": _molecule_builder(
        14.1, 18, ring_rate=0.15, motif_strength=0.34, label_tilt=0.09
    ),
    "PTC_FR": _molecule_builder(
        14.6, 19, ring_rate=0.15, motif_strength=0.36, label_tilt=0.10
    ),
    "ENZYMES": _molecule_builder(
        32.6, 3, num_classes=6, ring_rate=0.5, extra_edge_rate=0.78,
        motif_strength=0.65, label_tilt=0.3,
    ),
    "PROTEINS": _molecule_builder(
        39.1, 3, ring_rate=0.5, extra_edge_rate=0.72, motif_strength=0.52,
        label_tilt=0.12,
    ),
    # IMDB: Action = few large ensembles; Romance = more small casts.
    "IMDB-BINARY": _ego_builder(
        [(2.2, 9.5, 0.11), (3.3, 7.0, 0.13)], avg_nodes=19.8
    ),
    "IMDB-MULTI": _ego_builder(
        [(1.7, 7.5, 0.10), (2.4, 5.5, 0.12), (2.0, 6.5, 0.11)], avg_nodes=13.0
    ),
    # COLLAB: High-Energy (huge collaborations), Condensed Matter (small
    # teams), Astro (medium) — shrunk vertex counts (see _NODE_SHRINK).
    "COLLAB": _ego_builder(
        [(2.2, 20.0, 0.30), (7.0, 6.0, 0.20), (4.0, 11.0, 0.25)],
        avg_nodes=74.5 * _NODE_SHRINK["COLLAB"],
    ),
    # Extra (non-Table-1) benchmark: nitroaromatic mutagenicity.
    "MUTAG": _molecule_builder(
        17.9, 7, ring_rate=0.6, motif_strength=0.65, label_tilt=0.15
    ),
}
