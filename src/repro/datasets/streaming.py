"""Lazy, index-addressable view of a synthetic benchmark dataset.

``make_dataset(name, scale, seed, stream=True)`` returns a
:class:`StreamingGraphDataset` instead of materializing every graph.
The only per-dataset state it holds is the per-graph seed block (one
``int64`` per graph — 8 bytes) drawn exactly as the eager builders draw
it, so graph ``i`` is regenerated on demand from ``seeds[i]`` and the
stateless dataset generator, and is **bitwise-identical** to graph ``i``
of the materialized dataset for the same ``(name, scale, seed)`` triple.
That identity is what lets the streaming pipeline (``repro.stream``)
promise bitwise streamed-vs-materialized training parity at any scale
factor — see ``docs/STREAMING.md`` and
``tests/equivalence/test_stream_equiv.py``.

Shard iteration (:meth:`StreamingGraphDataset.iter_shards`) yields
contiguous :class:`GraphShard` windows; only one shard of graphs exists
in memory at a time unless the caller keeps references.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from repro.datasets.base import DatasetStatistics, GraphDataset
from repro.datasets.registry import DatasetSpec, sample_graph
from repro.graph.graph import Graph
from repro.utils.validation import check_positive

__all__ = ["GraphShard", "StreamingGraphDataset"]


@dataclass
class GraphShard:
    """One contiguous window ``[start, stop)`` of a streamed dataset."""

    start: int
    stop: int
    graphs: list[Graph]
    y: np.ndarray

    def __len__(self) -> int:
        return self.stop - self.start

    @property
    def indices(self) -> np.ndarray:
        """Global graph indices covered by this shard."""
        return np.arange(self.start, self.stop, dtype=np.int64)


@dataclass
class StreamingGraphDataset:
    """A dataset that generates its graphs on demand.

    Attributes
    ----------
    name:
        Benchmark name (e.g. "PTC_MR").
    spec:
        The :class:`~repro.datasets.registry.DatasetSpec` (stateless
        generator + class/label policy).
    seeds:
        ``(n,)`` int64 per-graph generation seeds.
    metadata:
        The same ``{"scale": ..., "seed": ...}`` dict the materialized
        dataset carries.
    """

    name: str
    spec: DatasetSpec
    seeds: np.ndarray
    metadata: dict = field(default_factory=dict)

    def __post_init__(self) -> None:
        self.seeds = np.asarray(self.seeds, dtype=np.int64)

    # -- sizing ---------------------------------------------------------
    def __len__(self) -> int:
        return int(self.seeds.size)

    @property
    def num_classes(self) -> int:
        return self.spec.num_classes

    @property
    def has_vertex_labels(self) -> bool:
        return self.spec.has_vertex_labels

    # -- labels (cheap: no graph generation needed) ---------------------
    def label(self, index: int) -> int:
        """Class label of graph ``index`` (labels are ``i % C``)."""
        return int(index % self.spec.num_classes)

    def labels(self) -> np.ndarray:
        """The full ``(n,)`` int64 label vector, without generating graphs.

        Bitwise-identical to the materialized dataset's ``y``.
        """
        return np.array(
            [i % self.spec.num_classes for i in range(len(self))], dtype=np.int64
        )

    # -- graphs ---------------------------------------------------------
    def graph(self, index: int) -> Graph:
        """Generate graph ``index`` (identical to the materialized one)."""
        n = len(self)
        if not -n <= index < n:
            raise IndexError(f"graph index {index} out of range for {n} graphs")
        index = index % n
        return sample_graph(self.spec, index, int(self.seeds[index]))

    def iter_graphs(self):
        """Yield every graph in order, one at a time."""
        for index in range(len(self)):
            yield self.graph(index)

    def __iter__(self):
        return self.iter_graphs()

    # -- shards ---------------------------------------------------------
    def num_shards(self, shard_size: int) -> int:
        check_positive("shard_size", shard_size)
        return -(-len(self) // shard_size)

    def shard(self, start: int, stop: int) -> GraphShard:
        """Materialize the window ``[start, stop)`` as a :class:`GraphShard`."""
        if not 0 <= start <= stop <= len(self):
            raise IndexError(
                f"shard [{start}, {stop}) out of range for {len(self)} graphs"
            )
        graphs = [self.graph(i) for i in range(start, stop)]
        y = np.array(
            [i % self.spec.num_classes for i in range(start, stop)], dtype=np.int64
        )
        return GraphShard(start=start, stop=stop, graphs=graphs, y=y)

    def iter_shards(self, shard_size: int):
        """Yield contiguous :class:`GraphShard` windows of ``shard_size``."""
        check_positive("shard_size", shard_size)
        for start in range(0, len(self), shard_size):
            yield self.shard(start, min(start + shard_size, len(self)))

    # -- conversions ----------------------------------------------------
    def materialize(self) -> GraphDataset:
        """The full eager dataset — bitwise-equal to
        ``make_dataset(name, scale, seed, stream=False)``."""
        shard = self.shard(0, len(self))
        return GraphDataset(
            name=self.name,
            graphs=shard.graphs,
            y=shard.y,
            has_vertex_labels=self.spec.has_vertex_labels,
            metadata=dict(self.metadata),
        )

    def statistics(self, shard_size: int = 256) -> DatasetStatistics:
        """Table 1 statistics in one bounded-memory streaming pass.

        Matches :meth:`repro.datasets.base.GraphDataset.statistics`
        exactly (same float64 mean over per-graph values)."""
        total = len(self)
        sizes = np.empty(total, dtype=np.float64)
        edges = np.empty(total, dtype=np.float64)
        labels: set[int] = set()
        for shard in self.iter_shards(shard_size):
            for offset, g in enumerate(shard.graphs):
                sizes[shard.start + offset] = g.n
                edges[shard.start + offset] = g.num_edges
                labels.update(int(l) for l in g.labels)
        y = self.labels()
        return DatasetStatistics(
            name=self.name,
            size=total,
            num_classes=int(np.unique(y).size),
            avg_nodes=float(sizes.mean()) if sizes.size else 0.0,
            avg_edges=float(edges.mean()) if edges.size else 0.0,
            num_labels=len(labels),
        )

    def __repr__(self) -> str:
        return (
            f"StreamingGraphDataset({self.name!r}, n={len(self)}, "
            f"classes={self.spec.num_classes})"
        )
