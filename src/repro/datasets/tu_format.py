"""Reading and writing the TU graph-benchmark file format.

The paper evaluates on datasets from the TU Dortmund collection
(https://chrsmrrs.github.io/datasets/).  The offline reproduction
generates synthetic stand-ins, but downstream users with the real files
can load them directly through :func:`load_tu_dataset` and run every
experiment unchanged; :func:`save_tu_dataset` writes our synthetic
datasets in the same format for interop with other graph-learning
libraries.

Format (all files inside one directory, prefix ``DS``):

* ``DS_A.txt``               — one ``row, col`` pair per (directed) edge,
  vertex ids 1-based and global across all graphs;
* ``DS_graph_indicator.txt`` — line ``i``: graph id (1-based) of global
  vertex ``i``;
* ``DS_graph_labels.txt``    — line ``g``: class label of graph ``g``;
* ``DS_node_labels.txt``     — optional; line ``i``: label of vertex ``i``.
"""

from __future__ import annotations

from pathlib import Path

import numpy as np

from repro.datasets.base import GraphDataset
from repro.graph.graph import Graph

__all__ = ["load_tu_dataset", "save_tu_dataset"]


def load_tu_dataset(directory: str | Path, name: str | None = None) -> GraphDataset:
    """Load a TU-format dataset from ``directory``.

    ``name`` defaults to the directory's own name and selects the file
    prefix (``<name>_A.txt`` etc.).
    """
    directory = Path(directory)
    if name is None:
        name = directory.name
    prefix = directory / name

    adjacency_path = Path(f"{prefix}_A.txt")
    indicator_path = Path(f"{prefix}_graph_indicator.txt")
    graph_labels_path = Path(f"{prefix}_graph_labels.txt")
    node_labels_path = Path(f"{prefix}_node_labels.txt")
    for required in (adjacency_path, indicator_path, graph_labels_path):
        if not required.exists():
            raise FileNotFoundError(f"missing TU file: {required}")

    indicator = np.loadtxt(indicator_path, dtype=np.int64, ndmin=1)
    graph_labels = np.loadtxt(graph_labels_path, dtype=np.int64, ndmin=1)
    n_graphs = int(indicator.max())
    if graph_labels.size != n_graphs:
        raise ValueError(
            f"{graph_labels.size} graph labels but indicator names "
            f"{n_graphs} graphs"
        )

    # Map global vertex id -> (graph index, local vertex id).
    total_vertices = indicator.size
    local_id = np.zeros(total_vertices, dtype=np.int64)
    sizes = np.zeros(n_graphs, dtype=np.int64)
    for global_v, graph_id in enumerate(indicator):
        g = int(graph_id) - 1
        local_id[global_v] = sizes[g]
        sizes[g] += 1

    has_node_labels = node_labels_path.exists()
    if has_node_labels:
        raw_node_labels = np.loadtxt(node_labels_path, dtype=np.int64, ndmin=1)
        if raw_node_labels.ndim > 1:  # some dumps have multiple columns
            raw_node_labels = raw_node_labels[:, 0]
        if raw_node_labels.size != total_vertices:
            raise ValueError("node label count mismatches vertex count")
        # Labels must be non-negative for Graph; shift if necessary.
        shift = min(0, int(raw_node_labels.min()))
        raw_node_labels = raw_node_labels - shift
    else:
        raw_node_labels = np.zeros(total_vertices, dtype=np.int64)

    edge_sets: list[set[tuple[int, int]]] = [set() for _ in range(n_graphs)]
    if adjacency_path.stat().st_size > 0:
        pairs = np.loadtxt(adjacency_path, dtype=np.int64, delimiter=",", ndmin=2)
        for row, col in pairs:
            u, v = int(row) - 1, int(col) - 1
            gu, gv = int(indicator[u]) - 1, int(indicator[v]) - 1
            if gu != gv:
                raise ValueError(
                    f"edge ({row}, {col}) crosses graphs {gu + 1} and {gv + 1}"
                )
            if u == v:
                continue  # drop self-loops, as the benchmark loaders do
            a, b = int(local_id[u]), int(local_id[v])
            edge_sets[gu].add((min(a, b), max(a, b)))

    graphs = []
    cursor = 0
    starts = np.zeros(n_graphs, dtype=np.int64)
    for g in range(n_graphs):
        starts[g] = cursor
        cursor += sizes[g]
    for g in range(n_graphs):
        labels = raw_node_labels[starts[g] : starts[g] + sizes[g]]
        graphs.append(Graph(int(sizes[g]), sorted(edge_sets[g]), labels))

    return GraphDataset(
        name=name,
        graphs=graphs,
        y=graph_labels,
        has_vertex_labels=has_node_labels,
        metadata={"source": str(directory)},
    )


def save_tu_dataset(dataset: GraphDataset, directory: str | Path) -> None:
    """Write ``dataset`` in TU format under ``directory`` (created)."""
    directory = Path(directory)
    directory.mkdir(parents=True, exist_ok=True)
    prefix = directory / dataset.name

    edges_lines = []
    indicator_lines = []
    node_label_lines = []
    offset = 0
    for gi, g in enumerate(dataset.graphs):
        for v in range(g.n):
            indicator_lines.append(str(gi + 1))
            node_label_lines.append(str(int(g.labels[v])))
        for u, v in g.edges:
            # TU format lists both directions of every undirected edge.
            edges_lines.append(f"{offset + int(u) + 1}, {offset + int(v) + 1}")
            edges_lines.append(f"{offset + int(v) + 1}, {offset + int(u) + 1}")
        offset += g.n

    Path(f"{prefix}_A.txt").write_text("\n".join(edges_lines) + "\n" if edges_lines else "")
    Path(f"{prefix}_graph_indicator.txt").write_text("\n".join(indicator_lines) + "\n")
    Path(f"{prefix}_graph_labels.txt").write_text(
        "\n".join(str(int(c)) for c in dataset.y) + "\n"
    )
    Path(f"{prefix}_node_labels.txt").write_text("\n".join(node_label_lines) + "\n")
