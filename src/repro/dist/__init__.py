"""repro.dist — sharded feature store + distributed CV over socket workers.

The distributed runtime runs the paper's evaluation protocols across
worker *processes* that talk a checksummed socket protocol
(:mod:`repro.utils.wire`) instead of sharing memory through ``fork``:

* each :class:`DistWorker` owns one contiguous shard of the run's
  streaming dataset and serves its local feature-map cache as a KV
  tensor store to its peers;
* the :class:`DistCoordinator` schedules CV folds onto workers with
  heartbeat liveness, reassigns folds off dead workers, and degrades to
  serial execution when the fleet is gone — mirroring
  :mod:`repro.parallel`'s crash semantics;
* the :mod:`repro.resilience` journal is the commit log: folds complete
  exactly once (atomic link-published claims), and a rerun after a crash recomputes
  zero finished folds.

Everything is loopback-testable on one machine, but the protocol is
host-agnostic: workers are addressed by ``host:port`` and reconstruct
all state from run specs — nothing is fork-inherited.  Results are
bitwise-equal to :func:`repro.eval.protocol.evaluate_kernel_svm` /
``evaluate_neural_model`` (``tests/dist/`` locks this down).

See ``docs/DISTRIBUTED.md`` for the architecture tour.
"""

from repro.dist.client import (
    DistError,
    RemoteCacheClient,
    WorkerClient,
    WorkerRejected,
)
from repro.dist.coordinator import DistCoordinator, DistReport, run_spec
from repro.dist.store import shard_graphs, sharded_gram, warm_shard_counts
from repro.dist.worker import DistWorker

__all__ = [
    "DistError",
    "WorkerRejected",
    "WorkerClient",
    "RemoteCacheClient",
    "DistCoordinator",
    "DistReport",
    "run_spec",
    "DistWorker",
    "shard_graphs",
    "sharded_gram",
    "warm_shard_counts",
]
