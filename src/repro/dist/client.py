"""Client sides of the dist protocol: job connections and the KV tier.

:class:`WorkerClient` is the coordinator's handle on one worker — a
lazily-connected, lock-serialized request/reply socket.  Long-running
requests (``run_fold``) use :meth:`request_with_keepalive`, which polls
the reply with a short socket timeout and invokes a tick callback on
every timeout — the coordinator refreshes its journal fold claim there,
so a claim's heartbeat stays fresh exactly as long as the fold is truly
in flight.

:class:`RemoteCacheClient` is the peer-to-peer KV fetcher that plugs
into :class:`repro.cache.FeatureMapCache` as its ``remote`` tier: a
local miss turns into ``kv_get`` requests against the peers that might
hold the key.  Peer order rotates by key hash so load spreads; a dead or
misbehaving peer is skipped (and its connection dropped for reconnect),
never raised — the cache contract is that a miss is always an option.
"""

from __future__ import annotations

import socket
import threading

from repro import obs
from repro.dist import protocol
from repro.utils.wire import WireError

__all__ = ["DistError", "WorkerRejected", "WorkerClient", "RemoteCacheClient"]

#: Default per-request timeout for short control-plane ops (seconds).
DEFAULT_TIMEOUT_S = 30.0

#: Keepalive tick period while waiting on a long request (seconds).
KEEPALIVE_TICK_S = 0.5


class DistError(RuntimeError):
    """A dist request failed at the transport level (retryable)."""


class WorkerRejected(DistError):
    """The worker replied ``ok: false`` — a deterministic error.

    Carries the worker-side traceback.  The coordinator treats this
    like :class:`repro.parallel.FoldError`: surfaced, never retried —
    the same inputs would fail the same way anywhere.
    """


class WorkerClient:
    """One request/reply connection to a dist worker.

    Thread-safe: a lock serializes request/reply pairs, so the
    coordinator's dispatcher and tests can share a client.  ``close()``
    drops the socket; the next request reconnects.
    """

    def __init__(
        self, host: str, port: int, timeout_s: float = DEFAULT_TIMEOUT_S
    ) -> None:
        self.host = host
        self.port = int(port)
        self.timeout_s = float(timeout_s)
        self._sock: socket.socket | None = None
        self._lock = threading.Lock()

    @property
    def address(self) -> str:
        return f"{self.host}:{self.port}"

    def _connect(self) -> socket.socket:
        if self._sock is None:
            sock = socket.create_connection(
                (self.host, self.port), timeout=self.timeout_s
            )
            sock.setsockopt(socket.IPPROTO_TCP, socket.TCP_NODELAY, 1)
            self._sock = sock
        return self._sock

    def close(self) -> None:
        with self._lock:
            self._close_locked()

    def _close_locked(self) -> None:
        if self._sock is not None:
            try:
                self._sock.close()
            except OSError:
                pass
            self._sock = None

    def _roundtrip(self, header, arrays, allow_pickle, tick):
        sock = self._connect()
        sent = protocol.send_message(sock, header, arrays)
        obs.counter("dist_bytes_sent_total").inc(sent)
        if tick is None:
            sock.settimeout(self.timeout_s)
            reply = protocol.recv_message(sock, allow_pickle=allow_pickle)
        else:
            # Short poll timeout + on_timeout hook: the frame buffer
            # survives ticks, so a slow reply is never torn by the poll.
            sock.settimeout(KEEPALIVE_TICK_S)
            reply = protocol.recv_message(
                sock, allow_pickle=allow_pickle, on_timeout=tick
            )
        if reply is None:
            raise DistError(f"worker {self.address} closed the connection")
        return reply

    def request(
        self,
        header: dict,
        arrays=None,
        *,
        allow_pickle: bool = False,
        tick=None,
    ) -> tuple[dict, dict]:
        """Send one request, await the reply ``(header, arrays)``.

        Raises :class:`DistError` on transport failure or when the
        worker reports ``ok: false``; the socket is dropped on transport
        errors so the next request starts clean.
        """
        with self._lock:
            try:
                reply_header, reply_arrays = self._roundtrip(
                    header, arrays, allow_pickle, tick
                )
            except DistError:
                self._close_locked()
                raise
            except (OSError, WireError) as exc:
                self._close_locked()
                raise DistError(
                    f"worker {self.address} request {header.get('op')!r} "
                    f"failed: {exc}"
                ) from exc
        if not reply_header.get("ok"):
            raise WorkerRejected(
                f"worker {self.address} rejected {header.get('op')!r}: "
                f"{reply_header.get('error', 'unknown error')}"
            )
        return reply_header, reply_arrays

    def request_with_keepalive(
        self, header: dict, arrays=None, *, tick, allow_pickle: bool = False
    ) -> tuple[dict, dict]:
        """:meth:`request` that calls ``tick()`` every poll interval.

        ``tick`` runs in the requesting thread roughly every
        ``KEEPALIVE_TICK_S`` seconds until the reply lands; a ``tick``
        that raises aborts the wait (the coordinator uses this to bail
        out when the heartbeat monitor declares the worker dead).
        """
        return self.request(
            header, arrays, allow_pickle=allow_pickle, tick=tick
        )

    def ping(self) -> dict:
        header, _ = self.request({"op": protocol.OP_PING})
        return header

    def shutdown(self) -> None:
        """Ask the worker to exit its accept loop (best effort)."""
        try:
            self.request({"op": protocol.OP_SHUTDOWN})
        except DistError:
            pass
        self.close()

    def __repr__(self) -> str:
        return f"WorkerClient({self.address})"


class RemoteCacheClient:
    """``fetch(key, namespace)`` against peer KV servers.

    The object a worker installs as its cache's ``remote`` tier.  Peers
    are tried in an order rotated by the key hash (cheap load
    spreading); the first hit wins.  All failures — refused connection,
    timeout, torn frame, worker-side error — skip to the next peer and
    ultimately return ``None``: a remote problem is a cache miss, never
    an exception into feature extraction.
    """

    def __init__(
        self, peers: list[tuple[str, int]], timeout_s: float = 2.0
    ) -> None:
        self.peers = [(host, int(port)) for host, port in peers]
        self._clients = {
            peer: WorkerClient(peer[0], peer[1], timeout_s=timeout_s)
            for peer in self.peers
        }

    def fetch(self, key: str, namespace: str = ""):
        if not self.peers:
            return None
        rotation = int(key[:8], 16) % len(self.peers) if key else 0
        for offset in range(len(self.peers)):
            peer = self.peers[(rotation + offset) % len(self.peers)]
            try:
                header, arrays = self._clients[peer].request(
                    {"op": protocol.OP_KV_GET, "key": key, "namespace": namespace},
                    allow_pickle=True,
                )
            except DistError:
                obs.counter("dist_kv_peer_errors_total").inc()
                continue
            if header.get("hit"):
                obs.counter("dist_kv_fetches_total").inc()
                return arrays
        return None

    def close(self) -> None:
        for client in self._clients.values():
            client.close()

    def __repr__(self) -> str:
        return f"RemoteCacheClient({[f'{h}:{p}' for h, p in self.peers]})"
