"""Coordinator: schedules CV folds across socket workers, exactly once.

The coordinator is the distributed counterpart of
:func:`repro.eval.protocol.evaluate_kernel_svm` /
``evaluate_neural_model`` — same payloads (splits + per-fold seeds
spawned up front from one rng), same journal ``run_config`` (so run
keys are identical and a serial journal resumes a distributed run and
vice versa), same outcome reduction.  Only the executor differs, and
every fold result is bitwise what the serial executor produces.

Scheduling and failure semantics mirror :mod:`repro.parallel`:

* one dispatcher thread per worker pulls folds off a shared queue;
* a heartbeat monitor pings every worker on a dedicated connection;
  consecutive misses mark the worker dead and sever its job connection
  (which unblocks a dispatcher mid-wait);
* a fold in flight on a dead worker is requeued — bounded by
  ``max_fold_retries`` per fold, like the pool's crash requeue;
* folds whose retries are exhausted, or left over when every worker is
  dead, run serially in the coordinator via
  :func:`repro.parallel.run_folds` with ``backend="serial"`` — graceful
  degradation, never a lost fold;
* a worker *rejecting* a fold (``ok: false`` — a deterministic error)
  aborts the run like :class:`repro.parallel.FoldError`; retrying a
  deterministic failure elsewhere would only fail again.

Exactly-once completion rides on :mod:`repro.resilience.journal`: with a
``checkpoint_dir``, finished folds are journaled the moment their
result arrives (crash-safe commit log; a rerun recomputes zero finished
folds), and each fold is *claimed* (atomic link-published claim + heartbeat lease,
:class:`~repro.resilience.journal.FoldClaims`) before dispatch, so two
coordinators sharing a checkpoint directory can never double-run one.
"""

from __future__ import annotations

import os
import queue
import threading
from dataclasses import dataclass, field
from pathlib import Path

from repro import obs
from repro.cache import dataset_fingerprint, stable_hash
from repro.dist import protocol
from repro.dist.client import DistError, WorkerClient, WorkerRejected
from repro.eval.protocol import (
    CVResult,
    _kernel_fold,
    _neural_fold,
    kernel_cv_result,
    kernel_fold_payloads,
    kernel_run_config,
    neural_cv_result,
    neural_fold_payloads,
    neural_run_config,
)
from repro.kernels.base import normalize_gram
from repro.parallel import run_folds
from repro.resilience.journal import DEFAULT_CLAIM_TTL_S, FoldJournal
from repro.svm.svc import DEFAULT_C_GRID

__all__ = ["DistReport", "DistCoordinator", "run_spec"]


def run_spec(
    model: str,
    dataset: str,
    *,
    scale: float = 0.1,
    dataset_seed: int | None = 0,
    n_splits: int = 10,
    seed: int | None = 0,
    epochs: int = 15,
    c_grid=DEFAULT_C_GRID,
    normalize: bool = True,
) -> dict:
    """Build the JSON run spec the coordinator and workers share."""
    return {
        "model": model,
        "dataset": {"name": dataset, "scale": scale, "seed": dataset_seed},
        "n_splits": int(n_splits),
        "seed": seed,
        "epochs": int(epochs),
        "c_grid": [float(c) for c in c_grid],
        "normalize": bool(normalize),
    }


@dataclass
class DistReport:
    """A distributed CV outcome plus its scheduling diagnostics."""

    result: CVResult
    run_key: str
    dispatched: int = 0
    completed_remote: int = 0
    completed_from_journal: int = 0
    reassignments: int = 0
    worker_deaths: int = 0
    degraded_folds: list = field(default_factory=list)
    folds_by_worker: dict = field(default_factory=dict)


class _WorkerSlot:
    """Coordinator-side state for one worker."""

    def __init__(self, host: str, port: int) -> None:
        self.host = host
        self.port = int(port)
        self.job = WorkerClient(host, port)
        self.heart = WorkerClient(host, port, timeout_s=5.0)
        self.worker_id = f"{host}:{port}"
        self.dead = threading.Event()
        self.misses = 0

    def mark_dead(self) -> None:
        """Declare the worker dead and sever both connections.

        Closing the job socket makes a dispatcher blocked in a
        keepalive wait fail over immediately instead of waiting out a
        timeout.
        """
        self.dead.set()
        self.job.close()
        self.heart.close()


class DistCoordinator:
    """Schedule one evaluation's folds across registered workers."""

    def __init__(
        self,
        workers: list[tuple[str, int]],
        *,
        heartbeat_interval_s: float = 0.5,
        heartbeat_misses: int = 3,
        max_fold_retries: int = 2,
        claim_ttl_s: float = DEFAULT_CLAIM_TTL_S,
    ) -> None:
        if not workers:
            raise ValueError("need at least one worker address")
        self.slots = [_WorkerSlot(host, port) for host, port in workers]
        self.heartbeat_interval_s = float(heartbeat_interval_s)
        self.heartbeat_misses = int(heartbeat_misses)
        self.max_fold_retries = int(max_fold_retries)
        self.claim_ttl_s = float(claim_ttl_s)

    # -- registration ----------------------------------------------------
    def _register(self) -> None:
        """Validate the fleet: reachable, one shard each, one shard count.

        Unreachable workers are marked dead up front (the run degrades);
        inconsistent shard geometry is a deployment error and raises.
        """
        geometry: list[tuple[str, int, int]] = []
        for slot in self.slots:
            try:
                header, _ = slot.job.request({"op": protocol.OP_INFO})
            except DistError:
                slot.mark_dead()
                obs.counter("dist_worker_deaths_total").inc()
                continue
            slot.worker_id = str(header.get("worker_id", slot.worker_id))
            geometry.append(
                (
                    slot.worker_id,
                    int(header["shard_index"]),
                    int(header["num_shards"]),
                )
            )
        live = [s for s in self.slots if not s.dead.is_set()]
        if not live:
            return
        counts = {num for _, _, num in geometry}
        shards = [index for _, index, _ in geometry]
        if len(counts) != 1 or len(set(shards)) != len(shards):
            raise ValueError(
                f"inconsistent worker shard geometry: {geometry} "
                "(all workers must share num_shards and own distinct shards)"
            )

    # -- warm ------------------------------------------------------------
    def _warm(self, spec: dict) -> None:
        """Hand every live worker the run spec and its peer list."""
        peers_of = {
            slot: [
                [other.host, other.port]
                for other in self.slots
                if other is not slot and not other.dead.is_set()
            ]
            for slot in self.slots
        }

        def warm_one(slot: _WorkerSlot) -> None:
            try:
                slot.job.request(
                    {
                        "op": protocol.OP_WARM,
                        "run": spec,
                        "peers": peers_of[slot],
                    }
                )
            except WorkerRejected:
                raise
            except DistError:
                self._kill_slot(slot)

        threads = [
            threading.Thread(target=warm_one, args=(slot,), daemon=True)
            for slot in self.slots
            if not slot.dead.is_set()
        ]
        with obs.span("dist_warm", workers=len(threads)):
            for t in threads:
                t.start()
            for t in threads:
                t.join()

    def _kill_slot(self, slot: _WorkerSlot) -> None:
        if not slot.dead.is_set():
            slot.mark_dead()
            obs.counter("dist_worker_deaths_total").inc()
            obs.event("dist_worker_death", worker=slot.worker_id)

    # -- heartbeats ------------------------------------------------------
    def _heartbeat_loop(self, stop: threading.Event) -> None:
        while not stop.wait(self.heartbeat_interval_s):
            for slot in self.slots:
                if slot.dead.is_set():
                    continue
                try:
                    slot.heart.ping()
                except DistError:
                    slot.misses += 1
                    obs.counter("dist_heartbeat_failures_total").inc()
                    if slot.misses >= self.heartbeat_misses:
                        self._kill_slot(slot)
                else:
                    slot.misses = 0
                    obs.counter("dist_heartbeats_total").inc()

    # -- the run ---------------------------------------------------------
    def run(
        self,
        spec: dict,
        *,
        checkpoint_dir: str | os.PathLike | None = None,
        resume: bool = True,
    ) -> DistReport:
        """Execute one CV evaluation distributedly; see module docstring."""
        kernel = protocol.kernel_for(spec["model"])
        stream = protocol.dataset_from_spec(spec["dataset"])
        y = stream.labels()
        n_splits = int(spec["n_splits"])
        seed = spec["seed"]
        # The journal run_config must hash identically to the serial
        # protocols' — dataset fingerprint needs the materialized graphs.
        dataset = stream.materialize()
        if kernel is not None:
            name = kernel.name
            config = kernel_run_config(
                kernel,
                dataset_fingerprint(dataset.graphs),
                y,
                n_splits,
                seed,
                tuple(spec.get("c_grid", DEFAULT_C_GRID)),
                bool(spec.get("normalize", True)),
            )
            payloads = kernel_fold_payloads(y, n_splits, seed)
        else:
            name = spec["model"]
            config = neural_run_config(
                name, dataset_fingerprint(dataset.graphs), y, n_splits, seed
            )
            payloads = neural_fold_payloads(y, n_splits, seed)
        run_key = stable_hash(config)

        journal = claims = None
        completed: dict[int, dict] = {}
        if checkpoint_dir is not None:
            journal = FoldJournal(
                Path(checkpoint_dir) / run_key / "folds.jsonl"
            )
            claims = journal.claims(
                owner=f"coordinator-{os.getpid()}", ttl_s=self.claim_ttl_s
            )
            if resume:
                completed = {
                    fold: result
                    for fold, result in journal.load().items()
                    if 0 <= fold < len(payloads)
                }
                if completed:
                    obs.event(
                        "dist_resume", run_key=run_key, folds=sorted(completed)
                    )
            else:
                journal.reset()

        report = DistReport(result=None, run_key=run_key)  # filled below
        report.completed_from_journal = len(completed)
        with obs.span(
            "dist_cv",
            model=spec["model"],
            folds=n_splits,
            workers=len(self.slots),
        ):
            self._register()
            self._warm(spec)
            outcomes = self._schedule(
                spec, run_key, payloads, completed, journal, claims, report
            )
            leftover = [f for f in range(len(payloads)) if f not in outcomes]
            if leftover:
                self._degrade(
                    leftover, payloads, kernel, spec, dataset, y,
                    journal, claims, outcomes, report,
                )
        report.worker_deaths = sum(
            1 for slot in self.slots if slot.dead.is_set()
        )
        ordered = [outcomes[fold] for fold in range(len(payloads))]
        if kernel is not None:
            report.result = kernel_cv_result(name, ordered)
        else:
            report.result = neural_cv_result(name, ordered)
        return report

    # -- scheduling ------------------------------------------------------
    def _schedule(
        self, spec, run_key, payloads, completed, journal, claims, report
    ) -> dict[int, dict]:
        capture = obs.enabled()
        outcomes: dict[int, dict] = dict(completed)
        retries: dict[int, int] = {}
        pending: queue.Queue = queue.Queue()
        for fold in range(len(payloads)):
            if fold not in outcomes:
                pending.put(fold)
        outstanding = {f for f in range(len(payloads)) if f not in outcomes}
        lock = threading.Lock()
        done = threading.Event()
        abort: list[BaseException] = []
        if not outstanding:
            done.set()
            return outcomes

        def finish(fold: int, result: dict, slot: _WorkerSlot) -> None:
            with lock:
                if fold not in outstanding:
                    return  # someone else (journal/steal) finished it
                if journal is not None:
                    journal.record(fold, result)
                if claims is not None:
                    claims.release(fold)
                outcomes[fold] = result
                outstanding.discard(fold)
                report.completed_remote += 1
                report.folds_by_worker.setdefault(slot.worker_id, []).append(fold)
                if not outstanding:
                    done.set()
            obs.counter("dist_jobs_completed_total").inc()

        def give_up(fold: int) -> None:
            """Retries exhausted (or no workers left): leave for serial."""
            with lock:
                if fold in outstanding and fold not in report.degraded_folds:
                    report.degraded_folds.append(fold)
                # Count degraded folds as schedulable-no-more: the
                # distributed phase must not wait for them.
                outstanding.discard(fold)
                if not outstanding:
                    done.set()

        def requeue(fold: int, slot: _WorkerSlot) -> None:
            retries[fold] = retries.get(fold, 0) + 1
            report.reassignments += 1
            obs.counter("dist_jobs_requeued_total").inc()
            live = any(not s.dead.is_set() for s in self.slots)
            if retries[fold] <= self.max_fold_retries and live:
                pending.put(fold)
            else:
                give_up(fold)

        def dispatch(slot: _WorkerSlot, fold: int) -> None:
            payload = payloads[fold]
            header = {
                "op": protocol.OP_RUN_FOLD,
                "run_key": run_key,
                "run": spec,
                "fold": fold,
                "fold_seed": payload[3] if len(payload) > 3 else None,
                "capture": capture,
            }
            arrays = {"train_idx": payload[1], "test_idx": payload[2]}

            def tick() -> None:
                if slot.dead.is_set():
                    raise DistError(f"worker {slot.worker_id} declared dead")
                if claims is not None:
                    claims.refresh(fold)

            with obs.span("dist_fold", fold=fold, worker=slot.worker_id):
                reply, _ = slot.job.request_with_keepalive(
                    header, arrays, tick=tick
                )
            if capture:
                worker_obs = reply.get("worker_obs") or {}
                with lock:
                    obs.merge_worker(worker_obs)
            finish(fold, reply["result"], slot)

        def dispatcher(slot: _WorkerSlot) -> None:
            while not done.is_set() and not slot.dead.is_set():
                try:
                    fold = pending.get(timeout=0.1)
                except queue.Empty:
                    continue
                with lock:
                    if fold not in outstanding:
                        continue
                if claims is not None and not claims.claim(fold):
                    # Another owner holds it (a concurrent coordinator).
                    # If it finished meanwhile, adopt the journaled
                    # result; otherwise back off and retry later.
                    adopted = journal.load().get(fold) if journal else None
                    if adopted is not None:
                        with lock:
                            if fold in outstanding:
                                outcomes[fold] = adopted
                                outstanding.discard(fold)
                                if not outstanding:
                                    done.set()
                        continue
                    pending.put(fold)
                    done.wait(self.claim_ttl_s / 10.0)
                    continue
                report.dispatched += 1
                obs.counter("dist_jobs_dispatched_total").inc()
                try:
                    dispatch(slot, fold)
                except WorkerRejected as exc:
                    # Deterministic worker-side failure: abort the run
                    # (mirrors FoldError — retrying cannot help).
                    if claims is not None:
                        claims.release(fold)
                    abort.append(exc)
                    done.set()
                except DistError:
                    if claims is not None:
                        claims.release(fold)
                    self._kill_slot(slot)
                    requeue(fold, slot)

        stop_heart = threading.Event()
        heart = threading.Thread(
            target=self._heartbeat_loop, args=(stop_heart,), daemon=True
        )
        heart.start()
        threads = [
            threading.Thread(target=dispatcher, args=(slot,), daemon=True)
            for slot in self.slots
            if not slot.dead.is_set()
        ]
        for t in threads:
            t.start()
        try:
            while not done.is_set():
                if all(not t.is_alive() for t in threads):
                    break  # every dispatcher exited (all workers dead)
                done.wait(0.1)
        finally:
            done.set()  # stop any dispatcher still polling the queue
            stop_heart.set()
            for t in threads:
                t.join(timeout=5.0)
            heart.join(timeout=5.0)
        if abort:
            raise abort[0]
        # Anything still queued (all workers died) degrades to serial.
        with lock:
            for fold in list(outstanding):
                if fold not in report.degraded_folds:
                    report.degraded_folds.append(fold)
        return outcomes

    # -- degradation -----------------------------------------------------
    def _degrade(
        self, leftover, payloads, kernel, spec, dataset, y,
        journal, claims, outcomes, report,
    ) -> None:
        """Run the unfinished folds serially in this process.

        Mirrors the fork pool's retry-exhausted path: same fold bodies,
        same payload seeds, ``backend="serial"`` so no pool is spawned.
        The local context is rebuilt from the materialized dataset —
        bitwise what any worker computed.
        """
        leftover = sorted(leftover)
        obs.counter("dist_degradations_total").inc()
        obs.event("dist_degraded", folds=leftover)
        if kernel is not None:
            gram = kernel.gram(dataset.graphs)
            if spec.get("normalize", True):
                gram = normalize_gram(gram)
            context = (gram, y, tuple(spec.get("c_grid", DEFAULT_C_GRID)))
            fold_fn = _kernel_fold
        else:
            factory = protocol.model_factory_for(
                spec["model"], int(spec.get("epochs", 15))
            )
            context = (factory, dataset.graphs, y)
            fold_fn = _neural_fold

        def on_result(pos: int, result: dict) -> None:
            fold = leftover[pos]
            if journal is not None:
                journal.record(fold, result)
            if claims is not None:
                claims.release(fold)
            outcomes[fold] = result

        run_folds(
            fold_fn,
            [payloads[fold] for fold in leftover],
            context=context,
            backend="serial",
            on_result=on_result,
        )

    # -- teardown --------------------------------------------------------
    def close(self) -> None:
        for slot in self.slots:
            slot.job.close()
            slot.heart.close()

    def shutdown_workers(self) -> None:
        """Ask every live worker process to exit (best effort)."""
        for slot in self.slots:
            if not slot.dead.is_set():
                slot.job.shutdown()

    def __enter__(self) -> "DistCoordinator":
        return self

    def __exit__(self, *exc) -> None:
        self.close()
