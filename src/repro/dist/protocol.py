"""The dist request/reply protocol and the run-spec registry.

One connection carries a sequence of frames (:mod:`repro.utils.wire`);
each frame is a :func:`~repro.utils.wire.pack_message` payload — a JSON
header plus named tensors.  Requests carry ``{"op": <OP_*>, ...}``;
replies carry ``{"ok": bool, ...}`` and, on failure, an ``"error"``
string (the worker's exception text — a protocol error never kills a
connection silently).

Operations
----------
``ping``
    Liveness probe; echoes the worker's id.  The coordinator's
    heartbeat monitor sends these on a dedicated connection.
``info``
    Worker identity + shard assignment + cache stats (diagnostics, and
    the coordinator's registration handshake).
``warm``
    Hands the worker a run spec and its peer list: the worker builds its
    :class:`~repro.datasets.streaming.StreamingGraphDataset` view,
    plugs a :class:`~repro.dist.client.RemoteCacheClient` into its local
    cache as the remote tier, and (for kernel runs) precomputes its own
    shard's vertex counts into the cache — the state every later
    ``run_fold`` builds on.
``kv_get`` / ``kv_put``
    The KV tensor interface: payloads of the local
    :class:`~repro.cache.FeatureMapCache` addressed by the existing
    content-addressed keys (``counts``/``vfm``/``enc`` namespaces).
    ``kv_get`` answers from the *local* tiers only (``local_only=True``)
    so two workers that both miss can never recurse into each other.
``run_fold``
    Execute one CV fold — the exact :func:`repro.eval.protocol._kernel_fold`
    / ``_neural_fold`` body, fault points included — and return its
    result dict plus captured obs/cache deltas.
``shutdown``
    Stop the worker's accept loop after replying.

Run specs
---------
A *run spec* is a JSON dict that lets any worker reconstruct the full
evaluation context from nothing but the message — no fork-inherited
state, which is what keeps the protocol host-agnostic:

``{"protocol": "kernel"|"neural", "model": <registry name>,
"dataset": {"name", "scale", "seed"}, "n_splits": int, "seed": int,
"epochs": int (neural), "c_grid": [floats] (kernel),
"normalize": bool (kernel)}``

``kernel_for`` / ``model_factory_for`` are the canonical model
registries (the CLI's ``--model`` choices delegate here), so a spec
names a model the same way on every host and build.
"""

from __future__ import annotations

from repro.utils.wire import pack_message, recv_frame, send_frame, unpack_message

__all__ = [
    "OP_PING",
    "OP_INFO",
    "OP_WARM",
    "OP_KV_GET",
    "OP_KV_PUT",
    "OP_RUN_FOLD",
    "OP_SHUTDOWN",
    "KERNEL_MODELS",
    "NEURAL_MODELS",
    "kernel_for",
    "model_factory_for",
    "dataset_from_spec",
    "send_message",
    "recv_message",
]

OP_PING = "ping"
OP_INFO = "info"
OP_WARM = "warm"
OP_KV_GET = "kv_get"
OP_KV_PUT = "kv_put"
OP_RUN_FOLD = "run_fold"
OP_SHUTDOWN = "shutdown"

#: Kernel-protocol model names (the CLI's ``*-svm`` choices).
KERNEL_MODELS = ("wl-svm", "sp-svm", "gk-svm")

#: Neural-protocol model names (the CLI's neural choices).
NEURAL_MODELS = (
    "deepmap-wl",
    "deepmap-sp",
    "deepmap-gk",
    "gin",
    "gcn",
    "gat",
    "dgcnn",
    "dcnn",
    "ngf",
    "patchysan",
)


def kernel_for(model: str):
    """The kernel instance a model name denotes, or ``None`` if neural.

    The canonical registry: the CLI and every dist worker construct the
    identical kernel (same hyperparameters, same cache keys, same
    journal run keys) from the same name.
    """
    from repro.kernels import (
        GraphletKernel,
        ShortestPathKernel,
        WeisfeilerLehmanKernel,
    )

    kernels = {
        "wl-svm": lambda: WeisfeilerLehmanKernel(3),
        "sp-svm": lambda: ShortestPathKernel(),
        "gk-svm": lambda: GraphletKernel(k=4, samples=10, seed=0),
    }
    make = kernels.get(model)
    return make() if make is not None else None


def model_factory_for(model: str, epochs: int):
    """The neural ``factory(fold_seed)`` a model name denotes, or ``None``."""
    from repro.baselines import (
        DCNNClassifier,
        DGCNNClassifier,
        GATClassifier,
        GCNClassifier,
        GINClassifier,
        NGFClassifier,
        PatchySanClassifier,
    )
    from repro.core import deepmap_gk, deepmap_sp, deepmap_wl

    neural = {
        "deepmap-wl": lambda f: deepmap_wl(h=3, r=5, epochs=epochs, seed=f),
        "deepmap-sp": lambda f: deepmap_sp(r=5, epochs=epochs, seed=f),
        "deepmap-gk": lambda f: deepmap_gk(k=4, samples=10, r=5, epochs=epochs, seed=f),
        "gin": lambda f: GINClassifier(epochs=epochs, seed=f),
        "gcn": lambda f: GCNClassifier(epochs=epochs, seed=f),
        "gat": lambda f: GATClassifier(epochs=epochs, seed=f),
        "dgcnn": lambda f: DGCNNClassifier(epochs=epochs, seed=f),
        "dcnn": lambda f: DCNNClassifier(epochs=epochs, seed=f),
        "ngf": lambda f: NGFClassifier(epochs=epochs, seed=f),
        "patchysan": lambda f: PatchySanClassifier(epochs=epochs, seed=f),
    }
    return neural.get(model)


def dataset_from_spec(spec: dict):
    """The :class:`StreamingGraphDataset` a run spec's dataset denotes.

    ``(name, scale, seed)`` fully determines the dataset (generation is
    deterministic), so every worker and the coordinator reconstruct the
    byte-identical seed block independently.
    """
    from repro.datasets import make_dataset

    return make_dataset(
        spec["name"],
        scale=float(spec["scale"]),
        seed=spec["seed"],
        stream=True,
    )


def send_message(sock, header: dict, arrays=None) -> int:
    """Send one protocol message; returns wire bytes written."""
    return send_frame(sock, pack_message(header, arrays))


def recv_message(sock, *, allow_pickle: bool = False, on_timeout=None):
    """Receive one protocol message; ``None`` on clean peer close.

    ``on_timeout`` is forwarded to :func:`repro.utils.wire.recv_frame`:
    socket timeouts become callback ticks with the partial frame buffer
    preserved (the coordinator's claim-heartbeat hook).
    """
    payload = recv_frame(sock, on_timeout=on_timeout)
    if payload is None:
        return None
    return unpack_message(payload, allow_pickle=allow_pickle)
