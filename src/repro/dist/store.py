"""Partitioned feature store: shard-local warming + sharded gram assembly.

Each dist worker owns one contiguous partition of a
:class:`~repro.datasets.streaming.StreamingGraphDataset`
(:func:`repro.stream.partition_bounds`), regenerates its graphs from
their 8-byte seeds, and publishes the expensive per-shard artifact — the
vertex feature counts of the run's extractor — into its local
:class:`~repro.cache.FeatureMapCache` under the *unchanged*
content-addressed ``counts`` key.  Because every worker derives the same
partition bounds from ``(n, num_shards)``, the key a worker warms is
byte-for-byte the key any peer computes when it needs that shard: a
remote fetch is a plain cache ``get`` that fell through to the KV
protocol.

:func:`sharded_gram` is the consumer: it assembles the full gram matrix
from per-shard counts (local tiers first, then peers via the cache's
remote tier, then recompute) and is **bitwise-equal** to
``kernel.gram(all_graphs)`` because every repo extractor is
batch-independent — a graph's vertex counts do not depend on which batch
it was extracted in (WL colors are content-derived splitmix64 codes, GK
samples from a content-derived RNG, SP distances are per-graph) — and
the frozen vocabulary sorts its keys, so it is insensitive to the order
counts were merged in.  ``tests/dist/test_store.py`` pins this parity
for all three extractors.
"""

from __future__ import annotations

import numpy as np

from repro import obs
from repro.cache import FeatureMapCache
from repro.datasets.streaming import StreamingGraphDataset
from repro.features.vertex_maps import cached_vertex_counts
from repro.features.vocabulary import FeatureVocabulary
from repro.kernels.base import ExplicitFeatureKernel
from repro.stream import partition_bounds

__all__ = ["shard_graphs", "warm_shard_counts", "sharded_gram"]


def shard_graphs(
    stream: StreamingGraphDataset, shard_index: int, num_shards: int
) -> list:
    """Regenerate the graphs of one contiguous partition."""
    start, stop = partition_bounds(len(stream), num_shards, shard_index)
    return stream.shard(start, stop).graphs


def warm_shard_counts(
    extractor,
    stream: StreamingGraphDataset,
    shard_index: int,
    num_shards: int,
    cache: FeatureMapCache,
) -> int:
    """Extract (and cache) the vertex counts of one shard; returns its size.

    After this, the shard's ``counts`` key answers locally — including
    to peers asking over the KV protocol.
    """
    graphs = shard_graphs(stream, shard_index, num_shards)
    with obs.span(
        "dist_warm_shard", shard=shard_index, shards=num_shards, graphs=len(graphs)
    ):
        if graphs:
            cached_vertex_counts(extractor, graphs, cache=cache)
    obs.counter("dist_shards_warmed_total").inc()
    return len(graphs)


def sharded_gram(
    kernel,
    stream: StreamingGraphDataset,
    num_shards: int,
    cache: FeatureMapCache | None,
) -> np.ndarray:
    """The full gram matrix, assembled from per-shard vertex counts.

    For :class:`ExplicitFeatureKernel` subclasses (GK, SP, WL — the
    paper's three feature maps) each shard's counts come from the cache
    (memory → disk → remote peer → recompute), are concatenated in shard
    order, and feed the exact single-GEMM assembly ``kernel.gram`` uses;
    batch-independent extraction plus the sorted frozen vocabulary make
    the result bitwise-equal to ``kernel.gram(stream.materialize().graphs)``.
    Implicit kernels have no per-shard decomposition — they fall back to
    materializing the dataset.
    """
    if not isinstance(kernel, ExplicitFeatureKernel):
        return kernel.gram(stream.materialize().graphs)
    with obs.span("dist_gram", kernel=kernel.name, shards=num_shards):
        counts: list = []
        for shard_index in range(num_shards):
            graphs = shard_graphs(stream, shard_index, num_shards)
            if not graphs:
                continue
            counts.extend(
                cached_vertex_counts(kernel.extractor, graphs, cache=cache)
            )
        vocab = FeatureVocabulary()
        for vertex_counts in counts:
            for counter in vertex_counts:
                vocab.add_all(counter.keys())
        vocab.freeze()
        phi = np.stack(
            [
                m.sum(axis=0) if m.size else np.zeros(vocab.size)
                for m in (vocab.vectorize_rows(vc) for vc in counts)
            ]
        )
        return kernel._assemble_gram(phi)
