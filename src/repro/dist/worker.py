"""The dist worker: shard owner, KV server, and fold executor.

A worker is one process (or, in tests, one thread group) that

* owns a contiguous shard ``index/num_shards`` of the run's
  :class:`~repro.datasets.streaming.StreamingGraphDataset` — handed to
  it as numbers, reconstructed locally from the dataset spec
  (host-agnostic: nothing is fork-inherited);
* serves its local :class:`~repro.cache.FeatureMapCache` over the KV
  ops (``kv_get`` answers from the local tiers only, so peer lookups
  can never recurse);
* executes ``run_fold`` jobs with the *exact* fold bodies the serial
  protocols use (:func:`repro.eval.protocol._kernel_fold` /
  ``_neural_fold``) — same seeds in, same floats out, and the same
  ``fold`` fault point, so an injected ``kill`` takes the whole worker
  process down mid-fold exactly like a fork-pool worker death.

Connections are handled by one thread each; folds are serialized by a
lock (a worker advertises one fold at a time — scheduling is the
coordinator's job).  Per-run evaluation context (gram matrix or
materialized graphs) is built once on first use and keyed by the
coordinator's journal ``run_key``.

Observability crosses the socket the same way it crosses the fork
boundary: when a ``run_fold`` request asks for capture, the worker
records into a fresh in-process obs context and ships the finished span
trees / metrics / events back in the reply header
(:func:`repro.obs.capture_worker` → coordinator-side
:func:`repro.obs.merge_worker`), plus the fold's cache-stats delta.
"""

from __future__ import annotations

import socket
import threading
import traceback

from repro import obs
from repro.cache import FeatureMapCache
from repro.dist import protocol
from repro.dist.client import RemoteCacheClient
from repro.dist.store import sharded_gram, warm_shard_counts
from repro.eval.protocol import _kernel_fold, _neural_fold
from repro.kernels.base import normalize_gram
from repro.obs.events import jsonable
from repro.svm.svc import DEFAULT_C_GRID
from repro.utils.wire import WireError

__all__ = ["DistWorker"]


class DistWorker:
    """One shard-owning socket worker (see module docstring).

    Parameters
    ----------
    host / port:
        Bind address; ``port=0`` picks an ephemeral port (read it back
        from :attr:`port` after :meth:`start`).
    shard_index / num_shards:
        This worker's contiguous partition of every run's dataset.  All
        workers of a deployment must share ``num_shards`` — that is what
        makes their ``counts`` cache keys line up for peer fetches.
    cache:
        The local :class:`FeatureMapCache`; defaults to a memory-only
        cache.  ``warm`` installs the peer KV client as its remote tier.
    worker_id:
        Stable identifier reported in ``ping``/``info`` (defaults to
        ``shard<index>``).
    """

    def __init__(
        self,
        host: str = "127.0.0.1",
        port: int = 0,
        *,
        shard_index: int = 0,
        num_shards: int = 1,
        cache: FeatureMapCache | None = None,
        worker_id: str | None = None,
    ) -> None:
        if not 0 <= shard_index < num_shards:
            raise ValueError(
                f"shard_index {shard_index} out of range for {num_shards} shards"
            )
        self.host = host
        self.port = int(port)
        self.shard_index = int(shard_index)
        self.num_shards = int(num_shards)
        self.cache = cache if cache is not None else FeatureMapCache()
        self.worker_id = worker_id or f"shard{shard_index}"
        self._server: socket.socket | None = None
        self._accept_thread: threading.Thread | None = None
        self._stop = threading.Event()
        self._fold_lock = threading.Lock()
        self._runs: dict[str, dict] = {}
        self._runs_lock = threading.Lock()
        self._remote: RemoteCacheClient | None = None
        self.folds_executed = 0

    # -- lifecycle -------------------------------------------------------
    def start(self) -> tuple[str, int]:
        """Bind, listen, and serve in background threads."""
        server = socket.socket(socket.AF_INET, socket.SOCK_STREAM)
        server.setsockopt(socket.SOL_SOCKET, socket.SO_REUSEADDR, 1)
        server.bind((self.host, self.port))
        server.listen(32)
        server.settimeout(0.2)  # poll the stop flag between accepts
        self.port = server.getsockname()[1]
        self._server = server
        self._accept_thread = threading.Thread(
            target=self._accept_loop, name=f"dist-worker-{self.worker_id}",
            daemon=True,
        )
        self._accept_thread.start()
        return self.host, self.port

    def serve_forever(self) -> None:
        """Block until :meth:`stop` (or a ``shutdown`` op) is called."""
        if self._server is None:
            self.start()
        self._stop.wait()

    def stop(self) -> None:
        self._stop.set()
        if self._server is not None:
            try:
                self._server.close()
            except OSError:
                pass
        if self._remote is not None:
            self._remote.close()
            self._remote = None

    def __enter__(self) -> "DistWorker":
        self.start()
        return self

    def __exit__(self, *exc) -> None:
        self.stop()

    # -- accept / dispatch ----------------------------------------------
    def _accept_loop(self) -> None:
        assert self._server is not None
        while not self._stop.is_set():
            try:
                conn, _addr = self._server.accept()
            except TimeoutError:
                continue
            except OSError:
                break  # server socket closed
            conn.setsockopt(socket.IPPROTO_TCP, socket.TCP_NODELAY, 1)
            threading.Thread(
                target=self._serve_connection, args=(conn,), daemon=True
            ).start()

    def _serve_connection(self, conn: socket.socket) -> None:
        try:
            while not self._stop.is_set():
                try:
                    message = protocol.recv_message(conn, allow_pickle=True)
                except (WireError, OSError):
                    break  # torn frame / reset peer: drop the connection
                if message is None:
                    break  # clean peer close
                header, arrays = message
                obs.counter("dist_requests_total").inc()
                if not self._dispatch(conn, header, arrays):
                    break
        finally:
            try:
                conn.close()
            except OSError:
                pass

    def _dispatch(self, conn, header: dict, arrays: dict) -> bool:
        """Handle one request; False ends the connection (shutdown).

        Ordinary failures become ``ok: false`` replies; an injected
        :class:`~repro.resilience.faults.InjectedFault` (``BaseException``)
        deliberately escapes — the connection dies without a reply, the
        coordinator sees a broken worker, exactly like a pool crash.
        """
        op = header.get("op")
        try:
            reply_header, reply_arrays = self._handle(op, header, arrays)
        except Exception:
            reply_header, reply_arrays = (
                {"ok": False, "error": traceback.format_exc()},
                None,
            )
        try:
            sent = protocol.send_message(conn, reply_header, reply_arrays)
            obs.counter("dist_bytes_sent_total").inc(sent)
        except OSError:
            return False
        if op == protocol.OP_SHUTDOWN and reply_header.get("ok"):
            self.stop()
            return False
        return True

    def _handle(self, op, header, arrays):
        if op == protocol.OP_PING:
            return {"ok": True, "worker_id": self.worker_id}, None
        if op == protocol.OP_INFO:
            return (
                {
                    "ok": True,
                    "worker_id": self.worker_id,
                    "shard_index": self.shard_index,
                    "num_shards": self.num_shards,
                    "folds_executed": self.folds_executed,
                    "cache_stats": self.cache.stats.as_dict(),
                },
                None,
            )
        if op == protocol.OP_SHUTDOWN:
            return {"ok": True}, None
        if op == protocol.OP_KV_GET:
            return self._kv_get(header)
        if op == protocol.OP_KV_PUT:
            key = str(header["key"])
            self.cache.put(key, arrays, namespace=header.get("namespace", ""))
            return {"ok": True}, None
        if op == protocol.OP_WARM:
            return self._warm(header)
        if op == protocol.OP_RUN_FOLD:
            return self._run_fold(header, arrays)
        return {"ok": False, "error": f"unknown op {op!r}"}, None

    # -- KV --------------------------------------------------------------
    def _kv_get(self, header):
        key = str(header["key"])
        namespace = header.get("namespace", "")
        # local_only: a miss here must answer "no", not ask *our* peers —
        # two empty caches would otherwise ping-pong forever.
        payload = self.cache.get(key, namespace=namespace, local_only=True)
        obs.counter("dist_kv_requests_total").inc()
        if payload is None:
            return {"ok": True, "hit": False}, None
        return {"ok": True, "hit": True}, dict(payload)

    # -- warm ------------------------------------------------------------
    def _warm(self, header):
        run = header["run"]
        peers = [
            (str(host), int(port)) for host, port in header.get("peers", [])
        ]
        if self._remote is not None:
            self._remote.close()
        self._remote = RemoteCacheClient(peers) if peers else None
        self.cache.remote = self._remote
        warmed = 0
        kernel = protocol.kernel_for(run["model"])
        if kernel is not None:
            stream = protocol.dataset_from_spec(run["dataset"])
            warmed = warm_shard_counts(
                kernel.extractor,
                stream,
                self.shard_index,
                self.num_shards,
                self.cache,
            )
        return {"ok": True, "worker_id": self.worker_id, "warmed": warmed}, None

    # -- folds -----------------------------------------------------------
    def _context(self, run_key: str, run: dict):
        """The evaluation context for a run (built once, then reused)."""
        with self._runs_lock:
            entry = self._runs.get(run_key)
            if entry is not None:
                return entry
            stream = protocol.dataset_from_spec(run["dataset"])
            kernel = protocol.kernel_for(run["model"])
            if kernel is not None:
                gram = sharded_gram(
                    kernel, stream, self.num_shards, self.cache
                )
                if run.get("normalize", True):
                    gram = normalize_gram(gram)
                context = (
                    gram,
                    stream.labels(),
                    tuple(run.get("c_grid", DEFAULT_C_GRID)),
                )
                entry = {"fold_fn": _kernel_fold, "context": context}
            else:
                factory = protocol.model_factory_for(
                    run["model"], int(run.get("epochs", 15))
                )
                if factory is None:
                    raise ValueError(f"unknown model {run['model']!r}")
                dataset = stream.materialize()
                entry = {
                    "fold_fn": _neural_fold,
                    "context": (factory, dataset.graphs, dataset.y),
                }
            self._runs[run_key] = entry
            return entry

    def _run_fold(self, header, arrays):
        run_key = str(header["run_key"])
        fold = int(header["fold"])
        capture = bool(header.get("capture", False))
        entry = self._context(run_key, header["run"])
        train_idx = arrays["train_idx"]
        test_idx = arrays["test_idx"]
        if "fold_seed" in header and header["fold_seed"] is not None:
            payload = (fold, train_idx, test_idx, int(header["fold_seed"]))
        else:
            payload = (fold, train_idx, test_idx)
        with self._fold_lock:
            stats_before = self.cache.stats.as_dict()
            if not capture:
                with obs.span("dist_fold_exec", fold=fold, worker=self.worker_id):
                    result = entry["fold_fn"](entry["context"], payload)
                worker_obs = {}
            else:
                # Record this fold into a fresh obs context and ship it
                # back — the coordinator grafts it under its own span
                # tree, mirroring the fork-pool capture protocol.
                obs.disable()
                obs.reset()
                obs.enable()
                try:
                    result = entry["fold_fn"](entry["context"], payload)
                    worker_obs = obs.capture_worker()
                finally:
                    obs.disable()
                    obs.reset()
            self.folds_executed += 1
        obs.counter("dist_folds_executed_total").inc()
        worker_obs["cache_stats"] = self.cache.stats.diff(stats_before)
        # jsonable(): numpy scalars → floats, exactly what the journal
        # applies — a wire round trip is as lossless as a journal one.
        return (
            {
                "ok": True,
                "fold": fold,
                "worker_id": self.worker_id,
                "result": jsonable(result),
                "worker_obs": jsonable(worker_obs),
            },
            None,
        )

    def __repr__(self) -> str:
        return (
            f"DistWorker({self.worker_id} @ {self.host}:{self.port}, "
            f"shard {self.shard_index}/{self.num_shards})"
        )
