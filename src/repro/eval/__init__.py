"""Evaluation harness: splits, metrics, and the paper's CV protocols."""

from repro.eval.metrics import (
    accuracy,
    classification_report,
    confusion_matrix,
    mcnemar_test,
    mean_std,
    precision_recall_f1,
)
from repro.eval.curves import parameter_sweep, training_curves
from repro.eval.protocol import CVResult, evaluate_kernel_svm, evaluate_neural_model
from repro.eval.splits import stratified_kfold, train_test_split

__all__ = [
    "accuracy",
    "confusion_matrix",
    "mean_std",
    "precision_recall_f1",
    "classification_report",
    "mcnemar_test",
    "stratified_kfold",
    "train_test_split",
    "CVResult",
    "evaluate_kernel_svm",
    "evaluate_neural_model",
    "training_curves",
    "parameter_sweep",
]
