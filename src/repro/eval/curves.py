"""Learning-curve and parameter-sweep utilities.

Library-level versions of what the Figure 5/6/7 benches do, so users can
produce the paper's diagnostic plots for their own datasets:

* :func:`training_curves` — per-epoch training-accuracy curves for a set
  of neural models (Figs. 6 and 7);
* :func:`parameter_sweep` — CV accuracy as a function of one estimator
  parameter (Fig. 5's receptive-field sweep).
"""

from __future__ import annotations

from collections.abc import Callable, Mapping

from repro.datasets.base import GraphDataset
from repro.eval.protocol import CVResult, evaluate_neural_model

__all__ = ["training_curves", "parameter_sweep"]


def training_curves(
    model_factories: Mapping[str, Callable[[], object]],
    dataset: GraphDataset,
) -> dict[str, list[float]]:
    """Fit each model on the full dataset; return train-accuracy curves.

    ``model_factories`` maps display names to zero-argument factories of
    estimators exposing ``fit(graphs, y)`` and ``history_``.
    """
    curves: dict[str, list[float]] = {}
    for name, factory in model_factories.items():
        model = factory()
        model.fit(dataset.graphs, dataset.y)
        curves[name] = list(model.history_.train_accuracy)
    return curves


def parameter_sweep(
    model_factory: Callable[..., object],
    parameter: str,
    values: list,
    dataset: GraphDataset,
    n_splits: int = 3,
    seed: int | None = 0,
) -> dict[object, CVResult]:
    """Cross-validate ``model_factory(fold, **{parameter: v})`` per value.

    ``model_factory(fold_seed, **kwargs)`` must return a fresh estimator;
    the sweep passes one keyword (``parameter``) from ``values``.
    Returns ``{value: CVResult}`` in input order.
    """
    results: dict[object, CVResult] = {}
    for value in values:
        results[value] = evaluate_neural_model(
            lambda fold, v=value: model_factory(fold, **{parameter: v}),
            dataset,
            n_splits=n_splits,
            seed=seed,
            name=f"{parameter}={value}",
        )
    return results
