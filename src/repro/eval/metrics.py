"""Classification metrics."""

from __future__ import annotations

import numpy as np

from repro.utils.validation import check_labels

__all__ = [
    "accuracy",
    "confusion_matrix",
    "mean_std",
    "precision_recall_f1",
    "classification_report",
    "mcnemar_test",
]


def accuracy(y_true: np.ndarray | list, y_pred: np.ndarray | list) -> float:
    """Fraction of matching labels."""
    y_true = check_labels(y_true)
    y_pred = check_labels(y_pred)
    if y_true.shape != y_pred.shape:
        raise ValueError(f"shape mismatch: {y_true.shape} vs {y_pred.shape}")
    return float(np.mean(y_true == y_pred))


def confusion_matrix(
    y_true: np.ndarray | list, y_pred: np.ndarray | list
) -> tuple[np.ndarray, np.ndarray]:
    """``(classes, matrix)`` with ``matrix[i, j]`` = count(true=i, pred=j)."""
    y_true = check_labels(y_true)
    y_pred = check_labels(y_pred)
    classes = np.unique(np.concatenate([y_true, y_pred]))
    index = {int(c): i for i, c in enumerate(classes)}
    mat = np.zeros((classes.size, classes.size), dtype=np.int64)
    for t, p in zip(y_true, y_pred):
        mat[index[int(t)], index[int(p)]] += 1
    return classes, mat


def precision_recall_f1(
    y_true: np.ndarray | list, y_pred: np.ndarray | list
) -> dict[int, tuple[float, float, float]]:
    """Per-class (precision, recall, F1).

    Undefined ratios (no predicted / no true samples of a class) are
    reported as 0.0, the usual convention.
    """
    classes, mat = confusion_matrix(y_true, y_pred)
    out: dict[int, tuple[float, float, float]] = {}
    for i, cls in enumerate(classes):
        tp = float(mat[i, i])
        predicted = float(mat[:, i].sum())
        actual = float(mat[i, :].sum())
        precision = tp / predicted if predicted > 0 else 0.0
        recall = tp / actual if actual > 0 else 0.0
        f1 = (
            2 * precision * recall / (precision + recall)
            if precision + recall > 0
            else 0.0
        )
        out[int(cls)] = (precision, recall, f1)
    return out


def classification_report(
    y_true: np.ndarray | list, y_pred: np.ndarray | list
) -> str:
    """Human-readable per-class report (precision/recall/F1/support)."""
    y_true_arr = check_labels(y_true)
    scores = precision_recall_f1(y_true_arr, y_pred)
    lines = [f"{'class':>8s} {'prec':>7s} {'recall':>7s} {'f1':>7s} {'n':>6s}"]
    for cls, (p, r, f1) in sorted(scores.items()):
        support = int((y_true_arr == cls).sum())
        lines.append(f"{cls:>8d} {p:>7.3f} {r:>7.3f} {f1:>7.3f} {support:>6d}")
    lines.append(f"accuracy: {accuracy(y_true, y_pred):.3f}")
    return "\n".join(lines)


def mcnemar_test(
    y_true: np.ndarray | list,
    pred_a: np.ndarray | list,
    pred_b: np.ndarray | list,
) -> tuple[float, float]:
    """McNemar's test with continuity correction for paired classifiers.

    Returns ``(statistic, p_value)`` for the null hypothesis that models
    A and B have the same error rate on the shared test set.  Used to
    decide whether a Table 2/3 accuracy gap is meaningful.
    """
    from scipy.stats import chi2

    y_true = check_labels(y_true)
    pred_a = check_labels(pred_a)
    pred_b = check_labels(pred_b)
    if not (y_true.shape == pred_a.shape == pred_b.shape):
        raise ValueError("all three label vectors must share a shape")
    a_right = pred_a == y_true
    b_right = pred_b == y_true
    only_a = int(np.sum(a_right & ~b_right))
    only_b = int(np.sum(~a_right & b_right))
    if only_a + only_b == 0:
        return 0.0, 1.0
    stat = (abs(only_a - only_b) - 1.0) ** 2 / (only_a + only_b)
    p_value = float(chi2.sf(stat, df=1))
    return float(stat), p_value


def mean_std(values: list[float] | np.ndarray) -> tuple[float, float]:
    """Mean and (population) standard deviation, the paper's report format."""
    arr = np.asarray(values, dtype=np.float64)
    if arr.size == 0:
        raise ValueError("need at least one value")
    return float(arr.mean()), float(arr.std())
