"""The paper's evaluation protocols (Section 5.1).

* Graph kernels: gram matrix over the whole dataset, 10-fold CV with a
  binary C-SVM whose ``C`` is "independently tuned from {1, 10, 100,
  1000} using the training data from that fold".
* Neural models (DeepMap and the GNN baselines): 10-fold CV; "following
  GIN, the number of epochs is set as the one that has the best
  cross-validation accuracy averaged over the ten folds" — every fold
  records a per-epoch held-out accuracy curve, curves are averaged, the
  best epoch is selected once, and the reported score is mean +- std of
  the fold accuracies at that epoch.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from repro import obs
from repro.datasets.base import GraphDataset
from repro.eval.metrics import mean_std
from repro.eval.splits import stratified_kfold
from repro.kernels.base import GraphKernel, normalize_gram
from repro.svm.svc import DEFAULT_C_GRID, KernelSVC, select_c
from repro.utils.rng import as_rng
from repro.utils.timing import Timer

__all__ = ["CVResult", "evaluate_kernel_svm", "evaluate_neural_model"]


@dataclass
class CVResult:
    """Cross-validation outcome in the paper's reporting format."""

    name: str
    fold_accuracies: list[float]
    best_epoch: int | None = None
    extra: dict = field(default_factory=dict)

    @property
    def mean(self) -> float:
        return mean_std(self.fold_accuracies)[0]

    @property
    def std(self) -> float:
        return mean_std(self.fold_accuracies)[1]

    def formatted(self) -> str:
        """``54.53+-6.16`` percent, as the paper's tables print it."""
        return f"{100 * self.mean:.2f}+-{100 * self.std:.2f}"

    def __repr__(self) -> str:
        return f"CVResult({self.name}: {self.formatted()})"


def evaluate_kernel_svm(
    kernel: GraphKernel,
    dataset: GraphDataset,
    n_splits: int = 10,
    seed: int | None = 0,
    c_grid: tuple[float, ...] = DEFAULT_C_GRID,
    normalize: bool = True,
) -> CVResult:
    """Kernel + C-SVM cross-validation (the paper's kernel protocol)."""
    with obs.span("cv", protocol="kernel-svm", model=kernel.name, folds=n_splits):
        with obs.span("gram", kernel=kernel.name, graphs=len(dataset)):
            gram = kernel.gram(dataset.graphs)
        if normalize:
            gram = normalize_gram(gram)
        rng = as_rng(seed)
        splits = stratified_kfold(dataset.y, n_splits=n_splits, seed=rng)
        accuracies: list[float] = []
        chosen_cs: list[float] = []
        fold_seconds: list[float] = []
        for fold, (train_idx, test_idx) in enumerate(splits):
            with obs.span("fold", fold=fold), Timer() as timer:
                k_tr = gram[np.ix_(train_idx, train_idx)]
                c = select_c(k_tr, dataset.y[train_idx], grid=c_grid, seed=rng)
                chosen_cs.append(c)
                model = KernelSVC(c=c).fit(k_tr, dataset.y[train_idx])
                k_te = gram[np.ix_(test_idx, train_idx)]
                accuracies.append(model.score(k_te, dataset.y[test_idx]))
            fold_seconds.append(timer.elapsed)
    return CVResult(
        name=kernel.name,
        fold_accuracies=accuracies,
        extra={"selected_c": chosen_cs, "fold_seconds": fold_seconds},
    )


def evaluate_neural_model(
    model_factory,
    dataset: GraphDataset,
    n_splits: int = 10,
    seed: int | None = 0,
    name: str | None = None,
) -> CVResult:
    """Neural-model cross-validation with GIN-style epoch selection.

    ``model_factory(fold_seed)`` must return a fresh estimator exposing
    ``fit(graphs, y, validation=(graphs, y))`` and a ``history_`` with
    ``val_accuracy`` per epoch.
    """
    rng = as_rng(seed)
    splits = stratified_kfold(dataset.y, n_splits=n_splits, seed=rng)
    val_curves: list[np.ndarray] = []
    fold_seconds: list[float] = []
    with obs.span("cv", protocol="neural", model=name or "?", folds=n_splits):
        for fold, (train_idx, test_idx) in enumerate(splits):
            with obs.span("fold", fold=fold), Timer() as timer:
                model = model_factory(fold)
                train_graphs = [dataset.graphs[i] for i in train_idx]
                test_graphs = [dataset.graphs[i] for i in test_idx]
                model.fit(
                    train_graphs,
                    dataset.y[train_idx],
                    validation=(test_graphs, dataset.y[test_idx]),
                )
                val_curves.append(np.asarray(model.history_.val_accuracy))
            fold_seconds.append(timer.elapsed)
    curves = np.stack(val_curves)  # (folds, epochs)
    best_epoch = int(np.argmax(curves.mean(axis=0)))
    accuracies = curves[:, best_epoch].tolist()
    return CVResult(
        name=name or type(model).__name__,
        fold_accuracies=accuracies,
        best_epoch=best_epoch,
        extra={
            "mean_curve": curves.mean(axis=0).tolist(),
            "fold_val_curves": curves.tolist(),
            "fold_seconds": fold_seconds,
        },
    )
