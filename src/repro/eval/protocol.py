"""The paper's evaluation protocols (Section 5.1).

* Graph kernels: gram matrix over the whole dataset, 10-fold CV with a
  binary C-SVM whose ``C`` is "independently tuned from {1, 10, 100,
  1000} using the training data from that fold".
* Neural models (DeepMap and the GNN baselines): 10-fold CV; "following
  GIN, the number of epochs is set as the one that has the best
  cross-validation accuracy averaged over the ten folds" — every fold
  records a per-epoch held-out accuracy curve, curves are averaged, the
  best epoch is selected once, and the reported score is mean +- std of
  the fold accuracies at that epoch.

Both protocols run their folds through :func:`repro.parallel.run_folds`:
``workers=1`` (the default) is a plain sequential loop, ``workers=N``
fans the folds out over a fork pool, and ``workers=None`` defers to the
``REPRO_WORKERS`` environment variable.  Every fold draws from its own
seed spawned up front, so serial and parallel runs are bitwise
identical (``tests/parallel/test_parity.py``).

Crash recovery: passing ``checkpoint_dir`` journals every finished fold
(as JSON, under a content-addressed run key covering the protocol
configuration and the dataset) the moment it completes; re-running the
same evaluation after a crash skips the journaled folds and recomputes
only the missing ones.  JSON float round-trips are exact, so a resumed
``CVResult`` is bitwise-equal to an uninterrupted one
(``tests/resilience/test_protocol_resume.py``).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from pathlib import Path

import numpy as np

from repro import obs
from repro.cache import dataset_fingerprint, stable_hash
from repro.datasets.base import GraphDataset
from repro.eval.metrics import mean_std
from repro.eval.splits import stratified_kfold
from repro.kernels.base import GraphKernel, normalize_gram
from repro.parallel import run_folds
from repro.resilience import faults
from repro.resilience.journal import FoldJournal
from repro.svm.svc import DEFAULT_C_GRID, KernelSVC, select_c
from repro.utils.rng import as_rng
from repro.utils.timing import Timer

__all__ = [
    "CVResult",
    "evaluate_kernel_svm",
    "evaluate_neural_model",
    "kernel_fold_payloads",
    "neural_fold_payloads",
    "kernel_run_config",
    "neural_run_config",
    "kernel_cv_result",
    "neural_cv_result",
]


@dataclass
class CVResult:
    """Cross-validation outcome in the paper's reporting format."""

    name: str
    fold_accuracies: list[float]
    best_epoch: int | None = None
    extra: dict = field(default_factory=dict)

    @property
    def mean(self) -> float:
        return mean_std(self.fold_accuracies)[0]

    @property
    def std(self) -> float:
        return mean_std(self.fold_accuracies)[1]

    def formatted(self) -> str:
        """``54.53+-6.16`` percent, as the paper's tables print it."""
        return f"{100 * self.mean:.2f}+-{100 * self.std:.2f}"

    def __repr__(self) -> str:
        return f"CVResult({self.name}: {self.formatted()})"


def _config_fingerprint(obj, _depth: int = 0):
    """Content digest of an arbitrary configuration object.

    Plain values hash directly; objects hash as class + public attributes
    (recursively, so a kernel holding an extractor instance still changes
    its digest when any nested hyperparameter changes).
    """
    try:
        return stable_hash(obj)
    except TypeError:
        if _depth > 4:
            return type(obj).__qualname__
        params = {
            key: _config_fingerprint(value, _depth + 1)
            for key, value in getattr(obj, "__dict__", {}).items()
            if not key.startswith("_") and not key.endswith("_")
        }
        payload = {"class": type(obj).__qualname__, "params": params}
        # Mirror repro.cache.extractor_fingerprint: a declared algorithm
        # version (e.g. the WL color-scheme generation) rotates journal
        # run keys, so a resumed run never mixes folds computed under
        # different output schemes of the "same" configuration.
        version = getattr(type(obj), "CACHE_VERSION", None)
        if version is not None:
            payload["algo"] = version
        return stable_hash(payload)


def _journaled_folds(
    fold_fn, payloads, *, context, workers, checkpoint_dir, resume, run_config
):
    """Run folds through :func:`run_folds`, journaling completions.

    With ``checkpoint_dir`` set, finished folds are appended to
    ``<checkpoint_dir>/<run_key>/folds.jsonl`` the moment they complete
    (via the executor's ``on_result`` hook, so a later fold crashing the
    process cannot lose them); journaled folds of a previous run are
    skipped when ``resume`` is true, or discarded when false.  The run
    key is a content hash of ``run_config``, so a changed kernel, seed,
    grid, or dataset never resumes from a stale journal.
    """
    if checkpoint_dir is None:
        return run_folds(fold_fn, payloads, context=context, workers=workers)
    run_key = stable_hash(run_config)
    journal = FoldJournal(Path(checkpoint_dir) / run_key / "folds.jsonl")
    completed = {}
    if resume:
        completed = {
            fold: result
            for fold, result in journal.load().items()
            if 0 <= fold < len(payloads)
        }
        if completed:
            obs.event(
                "protocol_resume", run_key=run_key, folds=sorted(completed)
            )
    else:
        journal.reset()
    pending = [
        (fold, payload)
        for fold, payload in enumerate(payloads)
        if fold not in completed
    ]
    pending_folds = [fold for fold, _ in pending]
    outcomes = run_folds(
        fold_fn,
        [payload for _, payload in pending],
        context=context,
        workers=workers,
        on_result=lambda pos, result: journal.record(pending_folds[pos], result),
    )
    by_fold = dict(completed)
    by_fold.update(zip(pending_folds, outcomes))
    return [by_fold[fold] for fold in range(len(payloads))]


# ----------------------------------------------------------------------
# Shared protocol pieces
#
# The distributed coordinator (repro.dist) runs the *same* protocols with
# folds farmed out over sockets.  Everything that defines a run — the
# per-fold payloads (splits + spawned seeds), the journal run_config, and
# the outcome→CVResult reduction — is factored here so serial, fork-pool,
# and distributed execution agree bitwise *and* share journal run keys
# (a serial run's journal resumes a distributed one and vice versa).
# ----------------------------------------------------------------------

def kernel_fold_payloads(y, n_splits: int, seed) -> list[tuple]:
    """The kernel protocol's ``(fold, train_idx, test_idx, fold_seed)`` list.

    One rng, spawned up front: splits first, then per-fold seeds — the
    exact draw order of :func:`evaluate_kernel_svm`, which is what makes
    any executor bitwise-equal to serial.
    """
    rng = as_rng(seed)
    splits = stratified_kfold(y, n_splits=n_splits, seed=rng)
    fold_seeds = rng.integers(0, 2**31 - 1, size=n_splits)
    return [
        (fold, train_idx, test_idx, int(fold_seeds[fold]))
        for fold, (train_idx, test_idx) in enumerate(splits)
    ]


def neural_fold_payloads(y, n_splits: int, seed) -> list[tuple]:
    """The neural protocol's ``(fold, train_idx, test_idx)`` list."""
    rng = as_rng(seed)
    splits = stratified_kfold(y, n_splits=n_splits, seed=rng)
    return [
        (fold, train_idx, test_idx)
        for fold, (train_idx, test_idx) in enumerate(splits)
    ]


def kernel_run_config(
    kernel, dataset_fp: str, y, n_splits: int, seed, c_grid, normalize: bool
) -> dict:
    """The journal ``run_config`` of a kernel-SVM run (hashed to the run key)."""
    return {
        "protocol": "kernel-svm",
        "kernel": [kernel.name, _config_fingerprint(kernel)],
        "dataset": dataset_fp,
        "y": y,
        "n_splits": n_splits,
        "seed": seed,
        "c_grid": list(c_grid),
        "normalize": normalize,
    }


def neural_run_config(name: str, dataset_fp: str, y, n_splits: int, seed) -> dict:
    """The journal ``run_config`` of a neural run (hashed to the run key)."""
    return {
        "protocol": "neural",
        "model": name,
        "dataset": dataset_fp,
        "y": y,
        "n_splits": n_splits,
        "seed": seed,
    }


def kernel_cv_result(name: str, outcomes: list[dict]) -> CVResult:
    """Reduce per-fold kernel outcomes to the paper's :class:`CVResult`."""
    return CVResult(
        name=name,
        fold_accuracies=[o["accuracy"] for o in outcomes],
        extra={
            "selected_c": [o["selected_c"] for o in outcomes],
            "fold_seconds": [o["seconds"] for o in outcomes],
        },
    )


def neural_cv_result(name: str, outcomes: list[dict]) -> CVResult:
    """Reduce per-fold curves via GIN-style epoch selection."""
    curves = np.stack([o["curve"] for o in outcomes])  # (folds, epochs)
    best_epoch = int(np.argmax(curves.mean(axis=0)))
    accuracies = curves[:, best_epoch].tolist()
    return CVResult(
        name=name,
        fold_accuracies=accuracies,
        best_epoch=best_epoch,
        extra={
            "mean_curve": curves.mean(axis=0).tolist(),
            "fold_val_curves": curves.tolist(),
            "fold_seconds": [o["seconds"] for o in outcomes],
        },
    )


def _kernel_fold(context, payload):
    """One kernel-SVM fold; top-level so the fork pool can address it."""
    gram, y, c_grid = context
    fold, train_idx, test_idx, fold_seed = payload
    faults.check("fold", fold)
    with obs.span("fold", fold=fold), Timer() as timer:
        rng = as_rng(fold_seed)
        k_tr = gram[np.ix_(train_idx, train_idx)]
        c = select_c(k_tr, y[train_idx], grid=c_grid, seed=rng)
        model = KernelSVC(c=c).fit(k_tr, y[train_idx])
        k_te = gram[np.ix_(test_idx, train_idx)]
        accuracy = model.score(k_te, y[test_idx])
    return {"accuracy": accuracy, "selected_c": c, "seconds": timer.elapsed}


def evaluate_kernel_svm(
    kernel: GraphKernel,
    dataset: GraphDataset,
    n_splits: int = 10,
    seed: int | None = 0,
    c_grid: tuple[float, ...] = DEFAULT_C_GRID,
    normalize: bool = True,
    workers: int | None = None,
    checkpoint_dir: str | Path | None = None,
    resume: bool = True,
) -> CVResult:
    """Kernel + C-SVM cross-validation (the paper's kernel protocol).

    ``workers`` > 1 runs the folds concurrently (fork pool); ``None``
    defers to ``$REPRO_WORKERS``.  Results are identical either way.
    ``checkpoint_dir`` journals finished folds so a crashed run resumes
    where it stopped (``resume=False`` discards the journal instead).
    """
    with obs.span("cv", protocol="kernel-svm", model=kernel.name, folds=n_splits):
        with obs.span("gram", kernel=kernel.name, graphs=len(dataset)):
            gram = kernel.gram(dataset.graphs)
        if normalize:
            gram = normalize_gram(gram)
        payloads = kernel_fold_payloads(dataset.y, n_splits, seed)
        outcomes = _journaled_folds(
            _kernel_fold,
            payloads,
            context=(gram, dataset.y, c_grid),
            workers=workers,
            checkpoint_dir=checkpoint_dir,
            resume=resume,
            run_config=kernel_run_config(
                kernel,
                dataset_fingerprint(dataset.graphs),
                dataset.y,
                n_splits,
                seed,
                c_grid,
                normalize,
            ),
        )
    return kernel_cv_result(kernel.name, outcomes)


def _neural_fold(context, payload):
    """One neural-CV fold; top-level so the fork pool can address it.

    The factory and graph list arrive via the fork-inherited context, so
    ``model_factory`` may be any callable (lambdas included).
    """
    model_factory, graphs, y = context
    fold, train_idx, test_idx = payload
    faults.check("fold", fold)
    with obs.span("fold", fold=fold), Timer() as timer:
        model = model_factory(fold)
        train_graphs = [graphs[i] for i in train_idx]
        test_graphs = [graphs[i] for i in test_idx]
        model.fit(
            train_graphs,
            y[train_idx],
            validation=(test_graphs, y[test_idx]),
        )
        # Plain floats, not an ndarray: fold results must round-trip
        # through the JSON crash journal bitwise.
        curve = [float(v) for v in model.history_.val_accuracy]
    return {"curve": curve, "seconds": timer.elapsed}


def evaluate_neural_model(
    model_factory,
    dataset: GraphDataset,
    n_splits: int = 10,
    seed: int | None = 0,
    name: str | None = None,
    workers: int | None = None,
    checkpoint_dir: str | Path | None = None,
    resume: bool = True,
) -> CVResult:
    """Neural-model cross-validation with GIN-style epoch selection.

    ``model_factory(fold_seed)`` must return a fresh estimator exposing
    ``fit(graphs, y, validation=(graphs, y))`` and a ``history_`` with
    ``val_accuracy`` per epoch.  ``workers`` > 1 trains the folds
    concurrently (fork pool); ``None`` defers to ``$REPRO_WORKERS``.
    ``checkpoint_dir`` journals each fold's validation curve as it
    finishes so a crashed run resumes with only the missing folds; the
    run key covers ``name`` — the factory itself cannot be hashed, so
    distinct models sharing a checkpoint dir must use distinct names.
    """
    payloads = neural_fold_payloads(dataset.y, n_splits, seed)
    with obs.span("cv", protocol="neural", model=name or "?", folds=n_splits):
        outcomes = _journaled_folds(
            _neural_fold,
            payloads,
            context=(model_factory, dataset.graphs, dataset.y),
            workers=workers,
            checkpoint_dir=checkpoint_dir,
            resume=resume,
            run_config=neural_run_config(
                name or "neural",
                dataset_fingerprint(dataset.graphs),
                dataset.y,
                n_splits,
                seed,
            ),
        )
    return neural_cv_result(name or "neural", outcomes)
