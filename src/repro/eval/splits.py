"""Stratified cross-validation splits."""

from __future__ import annotations

import numpy as np

from repro.utils.rng import as_rng
from repro.utils.validation import check_labels, check_positive

__all__ = ["stratified_kfold", "train_test_split"]


def stratified_kfold(
    y: np.ndarray | list,
    n_splits: int = 10,
    seed: int | np.random.Generator | None = 0,
) -> list[tuple[np.ndarray, np.ndarray]]:
    """Stratified k-fold indices, the paper's 10-fold CV protocol.

    Each class's indices are shuffled and dealt round-robin to folds, so
    every fold's class proportions match the dataset's as closely as
    integer counts allow.

    Returns a list of ``(train_idx, test_idx)`` pairs.
    """
    y = check_labels(y)
    check_positive("n_splits", n_splits)
    if n_splits < 2:
        raise ValueError(f"n_splits must be >= 2, got {n_splits}")
    counts = np.bincount(y)
    smallest = counts[counts > 0].min()
    if smallest < n_splits:
        raise ValueError(
            f"smallest class has {smallest} samples < {n_splits} folds"
        )
    rng = as_rng(seed)
    fold_of = np.empty(y.size, dtype=np.int64)
    for cls in np.unique(y):
        idx = rng.permutation(np.nonzero(y == cls)[0])
        fold_of[idx] = np.arange(idx.size) % n_splits
    splits = []
    for fold in range(n_splits):
        test = np.nonzero(fold_of == fold)[0]
        train = np.nonzero(fold_of != fold)[0]
        splits.append((train, test))
    return splits


def train_test_split(
    y: np.ndarray | list,
    test_fraction: float = 0.2,
    seed: int | np.random.Generator | None = 0,
) -> tuple[np.ndarray, np.ndarray]:
    """Single stratified split; returns ``(train_idx, test_idx)``."""
    y = check_labels(y)
    if not 0.0 < test_fraction < 1.0:
        raise ValueError(f"test_fraction must be in (0, 1), got {test_fraction}")
    rng = as_rng(seed)
    train: list[int] = []
    test: list[int] = []
    for cls in np.unique(y):
        idx = rng.permutation(np.nonzero(y == cls)[0])
        n_test = max(1, int(round(idx.size * test_fraction)))
        n_test = min(n_test, idx.size - 1)
        test.extend(idx[:n_test].tolist())
        train.extend(idx[n_test:].tolist())
    return np.asarray(sorted(train)), np.asarray(sorted(test))
