"""Vertex and graph feature maps (paper Definitions 2 and 3)."""

from repro.features.path_patterns import PathPatternVertexFeatures
from repro.features.walks import (
    LabeledWalkVertexFeatures,
    ReturnProbabilityVertexFeatures,
)
from repro.features.vertex_maps import (
    GraphletVertexFeatures,
    OneHotLabelFeatures,
    ShortestPathVertexFeatures,
    VertexFeatureExtractor,
    WLVertexFeatures,
    cached_vertex_counts,
    extract_vertex_feature_matrices,
    graph_feature_maps,
    wl_joint_refinement,
    wl_stable_colors,
    wl_stable_colors_many,
)
from repro.features.vocabulary import FeatureVocabulary

__all__ = [
    "FeatureVocabulary",
    "VertexFeatureExtractor",
    "GraphletVertexFeatures",
    "OneHotLabelFeatures",
    "PathPatternVertexFeatures",
    "LabeledWalkVertexFeatures",
    "ReturnProbabilityVertexFeatures",
    "ShortestPathVertexFeatures",
    "WLVertexFeatures",
    "cached_vertex_counts",
    "extract_vertex_feature_matrices",
    "graph_feature_maps",
    "wl_joint_refinement",
    "wl_stable_colors",
    "wl_stable_colors_many",
]
