"""Path-pattern vertex features (the Tree++ kernel's decomposition).

Tree++ (Ye et al., TKDE 2019 — reference [8] of the paper) represents a
graph by the label sequences of root-to-node paths in a truncated BFS
tree rooted at every vertex, optionally replacing each label by a WL
color ("super paths") to compare graphs at coarser granularities.

Implemented as a :class:`VertexFeatureExtractor` so it plugs into both
the kernel machinery (:class:`repro.kernels.TreePlusPlusKernel`) and
DeepMap itself — the paper notes "DeepMap can be built on the vertex
feature maps of any substructures".
"""

from __future__ import annotations

from collections import Counter, deque

from repro.features.vertex_maps import VertexCounts, VertexFeatureExtractor, wl_stable_colors
from repro.graph.graph import Graph
from repro.utils.validation import check_positive

__all__ = ["PathPatternVertexFeatures"]


class PathPatternVertexFeatures(VertexFeatureExtractor):
    """Root-to-node path patterns from truncated BFS trees.

    Parameters
    ----------
    depth:
        BFS truncation depth ``d`` (path length <= d edges).
    super_path_h:
        0 uses raw vertex labels (the plain path-pattern kernel);
        ``h > 0`` replaces every label with the vertex's stable WL color
        at iteration ``h`` — Tree++'s super-path construction, which
        encodes a depth-``h`` subtree at every path position.
    """

    name = "treepp"

    def __init__(self, depth: int = 2, super_path_h: int = 0) -> None:
        check_positive("depth", depth)
        if super_path_h < 0:
            raise ValueError(f"super_path_h must be >= 0, got {super_path_h}")
        self.depth = depth
        self.super_path_h = super_path_h

    def extract(self, graphs: list[Graph]) -> list[VertexCounts]:
        out: list[VertexCounts] = []
        for g in graphs:
            if self.super_path_h > 0:
                colors = wl_stable_colors(g, self.super_path_h)[-1]
            else:
                colors = [int(l) for l in g.labels]
            per_vertex: VertexCounts = []
            for root in range(g.n):
                per_vertex.append(self._root_paths(g, root, colors))
            out.append(per_vertex)
        return out

    def _root_paths(self, g: Graph, root: int, colors: list[int]) -> Counter:
        """Count label sequences of root-to-node paths in the truncated
        BFS tree rooted at ``root`` (the root's own label included)."""
        counter: Counter = Counter()
        counter[("path", (colors[root],))] += 1
        visited = {root}
        # queue of (vertex, path-of-colors, depth)
        queue: deque = deque([(root, (colors[root],), 0)])
        while queue:
            v, path, depth = queue.popleft()
            if depth == self.depth:
                continue
            for u in g.neighbors(v):
                ui = int(u)
                if ui in visited:
                    continue
                visited.add(ui)
                new_path = path + (colors[ui],)
                counter[("path", new_path)] += 1
                queue.append((ui, new_path, depth + 1))
        return counter
