"""Vertex feature maps (Definition 3) for the three substructure families.

Each extractor turns a *dataset* (list of graphs) into per-vertex count
dictionaries over a shared substructure vocabulary:

* :class:`GraphletVertexFeatures`  — DeepMap-GK: for every vertex, sample
  ``q`` connected graphlets of size ``k`` rooted at it and histogram their
  canonical types.
* :class:`ShortestPathVertexFeatures` — DeepMap-SP: for every vertex ``v``,
  count shortest-path triplets ``(l(v), l(t), d(v, t))`` over all targets
  ``t``.  Summing over sources recovers the classic SP kernel feature map
  (each unordered path counted once per orientation).
* :class:`WLVertexFeatures` — DeepMap-WL: for every vertex, one count per
  WL iteration for the vertex's color at that iteration.  Color ids are
  refined *jointly across the dataset* so identical subtree patterns in
  different graphs share a feature column.  Summing over vertices recovers
  the WL subtree kernel feature map (Equation 5).

The module-level helper :func:`extract_vertex_feature_matrices` runs an
extractor, freezes the vocabulary, and returns dense per-graph matrices —
the ``X`` arrays consumed by Algorithm 1.
"""

from __future__ import annotations

import hashlib
from abc import ABC, abstractmethod
from collections import Counter

import numpy as np

from repro import obs
from repro.features.vocabulary import FeatureVocabulary
from repro.graph.graph import Graph
from repro.graph.graphlets import count_graphlets_per_vertex
from repro.graph.shortest_paths import apsp_bfs
from repro.utils.rng import derive_rng
from repro.utils.validation import check_positive

__all__ = [
    "VertexFeatureExtractor",
    "GraphletVertexFeatures",
    "ShortestPathVertexFeatures",
    "WLVertexFeatures",
    "OneHotLabelFeatures",
    "wl_stable_colors",
    "wl_stable_colors_many",
    "cached_vertex_counts",
    "extract_vertex_feature_matrices",
    "graph_feature_maps",
]

VertexCounts = list[Counter]  # one Counter per vertex


class VertexFeatureExtractor(ABC):
    """Extracts per-vertex substructure count dictionaries for a dataset."""

    #: short identifier used in reports ("gk", "sp", "wl")
    name: str = "base"

    @abstractmethod
    def extract(self, graphs: list[Graph]) -> list[VertexCounts]:
        """Per-graph list of per-vertex ``Counter`` feature dictionaries."""

    def cache_params(self) -> dict:
        """Hyperparameters identifying this extractor for cache keys.

        The default exposes every public instance attribute, which is
        exactly the constructor surface for the built-in extractors;
        custom extractors with derived state should override this to
        return only what determines their output.
        """
        return {
            key: value
            for key, value in vars(self).items()
            if not key.startswith("_") and not key.endswith("_")
        }


class GraphletVertexFeatures(VertexFeatureExtractor):
    """Rooted-graphlet sampling features (DeepMap-GK).

    Parameters
    ----------
    k:
        Graphlet size (paper: 5).
    samples:
        Rooted samples per vertex (paper: 20).
    seed:
        Seed for the sampling streams.  Each graph's stream is derived
        from ``seed`` plus the graph's *content* (structure + labels),
        so a graph samples identically wherever it appears — first or
        last in the dataset, in a CV-fold subset, or alone.  This is
        what keeps cache keys stable across fold slicing.
    """

    name = "gk"

    def __init__(self, k: int = 5, samples: int = 20, seed: int | None = 0) -> None:
        if not 1 <= k <= 5:
            raise ValueError(f"graphlet size k must be in 1..5, got {k}")
        check_positive("samples", samples)
        self.k = k
        self.samples = samples
        self.seed = seed

    def extract(self, graphs: list[Graph]) -> list[VertexCounts]:
        out: list[VertexCounts] = []
        for g in graphs:
            rng = derive_rng(
                self.seed,
                str(g.n).encode(),
                g.edges.tobytes(),
                g.labels.tobytes(),
            )
            hists = count_graphlets_per_vertex(g, self.k, self.samples, rng)
            out.append([Counter({("glet",) + key: c for key, c in h.items()}) for h in hists])
        return out


class ShortestPathVertexFeatures(VertexFeatureExtractor):
    """Shortest-path triplet features (DeepMap-SP).

    For vertex ``v`` the feature ``("sp", l(v), l(t), d)`` counts targets
    ``t`` with label ``l(t)`` at hop distance ``d >= 1``.  Unreachable
    pairs contribute nothing.  ``max_distance`` optionally truncates the
    path length (None = unbounded, as in the paper).
    """

    name = "sp"

    def __init__(self, max_distance: int | None = None) -> None:
        if max_distance is not None:
            check_positive("max_distance", max_distance)
        self.max_distance = max_distance

    def extract(self, graphs: list[Graph]) -> list[VertexCounts]:
        return [self._extract_one(g) for g in graphs]

    def _extract_one(self, g: Graph) -> VertexCounts:
        """Vectorized shortest-path triplet binning for one graph.

        The (source, target-label, distance) histogram is one
        ``np.unique`` over integer-encoded triplets instead of the
        reference's O(n^2) Python double loop; Python touches only the
        distinct triplets when materializing the ``Counter`` objects.
        """
        per_vertex: VertexCounts = [Counter() for _ in range(g.n)]
        if g.n == 0:
            return per_vertex
        dist = apsp_bfs(g)
        labels = g.labels
        valid = dist >= 1  # drops the diagonal and unreachable pairs
        if self.max_distance is not None:
            valid &= dist <= self.max_distance
        if not valid.any():
            return per_vertex
        v_idx, t_idx = np.nonzero(valid)
        d = dist[v_idx, t_idx]
        target_label = labels[t_idx]
        # Encode (v, l(t), d) triplets as single integers for one unique().
        n_labels = int(labels.max()) + 1
        n_dist = int(d.max()) + 1
        codes = (v_idx * n_labels + target_label) * n_dist + d
        uniq, counts = np.unique(codes, return_counts=True)
        d_u = uniq % n_dist
        rest = uniq // n_dist
        lt_u = rest % n_labels
        v_u = rest // n_labels
        label_list = labels.tolist()
        for v, l_t, dv, c in zip(
            v_u.tolist(), lt_u.tolist(), d_u.tolist(), counts.tolist()
        ):
            per_vertex[v][("sp", label_list[v], l_t, dv)] = c
        return per_vertex


class WLVertexFeatures(VertexFeatureExtractor):
    """Weisfeiler-Lehman subtree features (DeepMap-WL).

    Vertex ``v`` receives one count for feature ``("wl", i, color_i(v))``
    per refinement iteration ``i = 0 .. h``.  Colors are *content-stable
    64-bit codes* of the recursive (own color, sorted neighbor colors)
    signature (see :func:`wl_stable_colors_many`), so the same subtree
    pattern maps to the same feature key in every graph and every
    dataset — making the extractor inductive: features computed on a
    held-out graph align with a vocabulary built on training graphs.
    """

    name = "wl"

    #: Color-scheme token folded into :func:`repro.cache.extractor_fingerprint`.
    #: The integer radix remap produces different (partition-equivalent)
    #: color values than the original blake2b signature hashing, so cached
    #: ``counts``/``vfm`` payloads written under the old scheme must miss
    #: rather than serve stale color keys.  Bump on any color-value change.
    CACHE_VERSION = "wl-colors/mix64-v2"

    def __init__(self, h: int = 3) -> None:
        if h < 0:
            raise ValueError(f"h must be >= 0, got {h}")
        self.h = h

    def extract(self, graphs: list[Graph]) -> list[VertexCounts]:
        out: list[VertexCounts] = []
        for colorings in wl_stable_colors_many(graphs, self.h):
            # Keys are distinct across iterations (the `it` component), so
            # every count is exactly 1 and dict.fromkeys builds each
            # vertex's Counter in one C call.
            keyed = [
                [("wl", it, c) for c in colors]
                for it, colors in enumerate(colorings)
            ]
            out.append([Counter(dict.fromkeys(ks, 1)) for ks in zip(*keyed)])
        return out


class OneHotLabelFeatures(VertexFeatureExtractor):
    """Plain one-hot vertex-label features.

    Not a substructure map — this is the input PATCHY-SAN/DGCNN/GIN use.
    Provided so the Section 6 ablation can feed DeepMap's CNN the same
    impoverished input and measure what the vertex feature maps add.
    """

    name = "onehot"

    def extract(self, graphs: list[Graph]) -> list[VertexCounts]:
        out: list[VertexCounts] = []
        for g in graphs:
            out.append([Counter({("label", int(g.labels[v])): 1}) for v in range(g.n)])
        return out


def wl_stable_colors(g: Graph, h: int) -> list[list[int]]:
    """WL colors as content-stable 64-bit codes, per iteration 0..h.

    Iteration 0 uses the raw integer labels; iteration ``i`` encodes the
    (own previous color, sorted neighbor previous colors) signature as a
    64-bit integer mix (:func:`_signature_codes`).  The codes are pure
    functions of the signature — no shared dictionary, no dependence on
    the dataset a graph happens to be batched with — so they identify
    subtree patterns across graphs and across separate calls (collisions
    are negligible at 64 bits), which is what keeps the WL extractor
    inductive.
    """
    return wl_stable_colors_many([g], h)[0]


# splitmix64 finalizer constants (Steele, Lea & Flood; same avalanche mix
# used by java.util.SplittableRandom).  All arithmetic is uint64 with
# silent wraparound, which numpy guarantees for *array* operands.
_MIX_SEED = np.uint64(0x9E3779B97F4A7C15)
_MIX_M1 = np.uint64(0xBF58476D1CE4E5B9)
_MIX_M2 = np.uint64(0x94D049BB133111EB)
_SH30, _SH27, _SH31 = np.uint64(30), np.uint64(27), np.uint64(31)
_COL_TWEAK = 0xD1B54A32D192ED03  # column tag multiplier (python int, mod 2^64)


def _mix64(x: np.ndarray) -> np.ndarray:
    """splitmix64 avalanche finalizer, elementwise over uint64 arrays."""
    x = (x ^ (x >> _SH30)) * _MIX_M1
    x = (x ^ (x >> _SH27)) * _MIX_M2
    return x ^ (x >> _SH31)


def _column_tweak(position: int) -> np.uint64:
    """Position tag absorbed with signature column ``position`` (mod 2^64)."""
    return np.uint64((_COL_TWEAK * (position + 1)) & 0xFFFFFFFFFFFFFFFF)


def _signature_codes(
    degs: np.ndarray,
    colors: np.ndarray,
    sorted_nb: np.ndarray,
    seg_start: np.ndarray,
    max_deg: int,
) -> np.ndarray:
    """Content-stable 64-bit code per vertex signature.

    A vertex's signature is the sequence ``[degree, own color, sorted
    neighbor colors]``; it is absorbed element by element into a
    splitmix64 sponge (each element XOR-tagged with its position), and
    the vertex's code is the sponge state after its *own* ``degree + 2``
    elements.  Vertices still absorbing are selected with a degree mask,
    so nothing batch-wide — in particular not the maximum degree of
    whatever dataset the graph is batched with — ever enters a code: a
    vertex codes identically alone or in any batch.  That content
    stability is what makes the colors usable as vocabulary keys across
    separate ``extract`` calls (training vs held-out graphs).

    ``sorted_nb`` holds every vertex's neighbor colors sorted within its
    CSR segment (``seg_start`` offsets); only distinct *states* advance
    distinct codes, so equal signatures get equal codes by construction
    (collisions between different signatures are negligible at 64 bits).
    """
    total = colors.shape[0]
    state = np.full(total, _MIX_SEED, dtype=np.uint64)
    state = _mix64(state ^ _mix64(degs ^ _column_tweak(0)))
    state = _mix64(state ^ _mix64(colors ^ _column_tweak(1)))
    codes = state.copy()  # degree-0 vertices are complete here
    degs_i = degs.astype(np.int64)
    for k in range(max_deg):
        active = degs_i > k
        if not active.any():
            break
        gathered = sorted_nb[seg_start[active] + k]
        state_active = _mix64(state[active] ^ _mix64(gathered ^ _column_tweak(k + 2)))
        state[active] = state_active
        codes[active] = state_active
    return codes


def wl_stable_colors_many(graphs: list[Graph], h: int) -> list[list[list[int]]]:
    """Batched :func:`wl_stable_colors` over a whole dataset.

    Returns one ``[iteration][vertex]`` color table per graph, identical
    to calling :func:`wl_stable_colors` per graph (the colors are pure
    signature codes, so batching cannot couple graphs).  All vertices of
    all graphs share one flat CSR layout: per iteration, neighbor colors
    are gathered and sorted with a single lexsort, then every vertex's
    ``(degree, own color, sorted neighbors)`` signature is relabelled in
    one vectorized integer pass by the splitmix64 sponge of
    :func:`_signature_codes`.  No cryptographic hashing and no Python
    per-signature loop runs here; blake2b survives only at the
    :mod:`repro.cache` key boundary.

    .. note::
       The codes are *partition-equivalent* to — but numerically
       different from — the blake2b hashes of
       :func:`_reference_wl_stable_colors`, the pre-remap oracle kept
       for the differential harness: per iteration, two vertices share a
       code exactly when the oracle gives them equal hashes
       (``tests/equivalence/test_wl_equiv.py`` pins this).  Downstream
       gram matrices (WL subtree, WL optimal assignment) depend only on
       the partition and are bitwise-unchanged; vocabulary column
       *order* and the golden CNN fixtures changed once, explicitly,
       when the remap landed.
    """
    sizes = [g.n for g in graphs]
    total = sum(sizes)
    bounds = np.concatenate(([0], np.cumsum(sizes))).astype(np.int64)
    if total == 0:
        return [[[] for _ in range(max(h, 0) + 1)] for _ in graphs]

    # One flat CSR over the disjoint union of all graphs.
    degs = np.concatenate([g.degrees() for g in graphs])
    flat_indices = np.concatenate(
        [g.csr[1] + off for g, off in zip(graphs, bounds[:-1])]
    ).astype(np.int64)
    seg = np.repeat(np.arange(total), degs)
    seg_start = np.concatenate(([0], np.cumsum(degs)[:-1]))
    max_deg = int(degs.max()) if degs.size else 0
    degs_u = degs.astype(np.uint64)

    colors = np.concatenate([g.labels for g in graphs]).astype(np.uint64)
    iterations = [colors]
    for _ in range(h):
        gathered = colors[flat_indices]
        order = np.lexsort((gathered, seg))  # sort neighbor colors per vertex
        sorted_nb = gathered[order]
        colors = _signature_codes(degs_u, colors, sorted_nb, seg_start, max_deg)
        iterations.append(colors)
    return [
        [it[a:b].tolist() for it in iterations]
        for a, b in zip(bounds[:-1], bounds[1:])
    ]


# ----------------------------------------------------------------------
# Reference oracles (original per-vertex implementations), kept for the
# differential-equivalence harness in tests/equivalence.
# ----------------------------------------------------------------------

def _reference_wl_stable_colors(g: Graph, h: int) -> list[list[int]]:
    """Original per-vertex blake2b WL refinement (oracle for tests/equivalence).

    Since the integer radix remap, :func:`wl_stable_colors` produces
    different color *values* than this oracle; the differential tests
    assert *partition equality* per iteration instead of bitwise equality
    (two vertices — in the same or different graphs — share a remapped
    code iff they share a blake2b hash here).  Iteration 0 is still
    compared exactly (raw labels on both sides).
    """
    colors: list[int] = [int(l) for l in g.labels]
    out = [colors]
    for _ in range(h):
        new_colors = []
        for v in range(g.n):
            sig = (colors[v], tuple(sorted(colors[int(u)] for u in g.neighbors(v))))
            digest = hashlib.blake2b(repr(sig).encode(), digest_size=8).digest()
            new_colors.append(int.from_bytes(digest, "big"))
        colors = new_colors
        out.append(colors)
    return out


def _reference_sp_vertex_counts(g: Graph, max_distance: int | None) -> VertexCounts:
    """Original O(n^2) Python-loop SP triplet counting (oracle)."""
    from repro.graph.shortest_paths import _reference_apsp_bfs

    dist = _reference_apsp_bfs(g)
    labels = g.labels
    per_vertex: VertexCounts = []
    for v in range(g.n):
        counter: Counter = Counter()
        dv = dist[v]
        for t in range(g.n):
            d = int(dv[t])
            if t == v or d <= 0:
                continue
            if max_distance is not None and d > max_distance:
                continue
            counter[("sp", int(labels[v]), int(labels[t]), d)] += 1
        per_vertex.append(counter)
    return per_vertex


def wl_joint_refinement(graphs: list[Graph], h: int) -> list[list[np.ndarray]]:
    """Dataset-wide WL refinement.

    Returns ``colorings[i][g]`` = color array of graph ``g`` at iteration
    ``i`` (``0 <= i <= h``), with colors drawn from one shared alphabet per
    iteration.  Signature compression sorts the union of signatures so the
    ids are independent of both vertex order and graph order.
    """
    # Iteration 0: compress raw labels over the union alphabet.
    all_labels = sorted({int(l) for g in graphs for l in g.labels})
    base = {lab: i for i, lab in enumerate(all_labels)}
    current = [np.array([base[int(l)] for l in g.labels], dtype=np.int64) for g in graphs]
    colorings = [current]
    for _ in range(h):
        signatures: list[list[tuple]] = []
        union: set[tuple] = set()
        for g, colors in zip(graphs, current):
            sigs = []
            for v in range(g.n):
                sig = (int(colors[v]), tuple(sorted(int(colors[u]) for u in g.neighbors(v))))
                sigs.append(sig)
                union.add(sig)
            signatures.append(sigs)
        mapping = {sig: i for i, sig in enumerate(sorted(union))}
        current = [
            np.array([mapping[s] for s in sigs], dtype=np.int64) for sigs in signatures
        ]
        colorings.append(current)
    return colorings


def cached_vertex_counts(
    extractor: VertexFeatureExtractor,
    graphs: list[Graph],
    cache=None,
) -> list[VertexCounts]:
    """``extractor.extract(graphs)`` memoized through the feature-map cache.

    The key combines the dataset fingerprint (graph structure + labels,
    in order) with the extractor's class and hyperparameters, so any
    change to either recomputes.  ``cache=None`` uses the process-wide
    default (:func:`repro.cache.get_cache`); with no cache configured
    this is exactly ``extractor.extract(graphs)``.
    """
    from repro import cache as cache_mod

    cache = cache if cache is not None else cache_mod.get_cache()
    if cache is None:
        return extractor.extract(graphs)
    key = cache_mod.cache_key(
        "counts",
        cache_mod.dataset_fingerprint(graphs),
        cache_mod.extractor_fingerprint(extractor),
    )
    payload = cache.get(key, namespace="counts")
    if payload is not None:
        return list(payload["counts"][0])
    counts = extractor.extract(graphs)
    boxed = np.empty(1, dtype=object)
    boxed[0] = counts
    cache.put(key, {"counts": boxed}, namespace="counts")
    return counts


def extract_vertex_feature_matrices(
    graphs: list[Graph],
    extractor: VertexFeatureExtractor,
    cache=None,
) -> tuple[list[np.ndarray], FeatureVocabulary]:
    """Run ``extractor`` and embed every vertex in a shared dense space.

    Returns ``(matrices, vocabulary)`` where ``matrices[i]`` has shape
    ``(graphs[i].n, m)`` and ``m = len(vocabulary)``.  When a feature-map
    cache is configured (``cache`` argument or the process default) the
    dense matrices and the vocabulary are memoized by dataset content +
    extractor configuration; a warm hit skips extraction entirely and
    returns bitwise-identical arrays.
    """
    from repro import cache as cache_mod

    cache = cache if cache is not None else cache_mod.get_cache()
    key = None
    if cache is not None:
        key = cache_mod.cache_key(
            "vfm",
            cache_mod.dataset_fingerprint(graphs),
            cache_mod.extractor_fingerprint(extractor),
        )
        payload = cache.get(key, namespace="vfm")
        if payload is not None:
            matrices = [
                payload[f"matrix_{i:05d}"] for i in range(len(graphs))
            ]
            vocab = FeatureVocabulary()
            vocab.add_all(payload["vocab"][0])
            return matrices, vocab.freeze()
    with obs.span("feature_map", extractor=extractor.name, graphs=len(graphs)):
        with obs.span("extract"):
            per_graph_counts = extractor.extract(graphs)
        with obs.span("vocabulary"):
            vocab = FeatureVocabulary()
            for vertex_counts in per_graph_counts:
                for counter in vertex_counts:
                    vocab.add_all(counter.keys())
            vocab.freeze()
        with obs.span("vectorize", m=vocab.size):
            matrices = [vocab.vectorize_rows(vc) for vc in per_graph_counts]
    if cache is not None and key is not None:
        boxed = np.empty(1, dtype=object)
        boxed[0] = vocab.keys()
        payload = {f"matrix_{i:05d}": m for i, m in enumerate(matrices)}
        payload["vocab"] = boxed
        cache.put(key, payload, namespace="vfm")
    return matrices, vocab


def graph_feature_maps(
    graphs: list[Graph],
    extractor: VertexFeatureExtractor,
) -> tuple[np.ndarray, FeatureVocabulary]:
    """Graph-level feature maps via Equation 7 (sum of vertex maps).

    Returns ``(phi, vocabulary)`` with ``phi`` of shape ``(n_graphs, m)``.
    This is exactly the explicit feature map of the corresponding
    R-convolution kernel.
    """
    matrices, vocab = extract_vertex_feature_matrices(graphs, extractor)
    phi = np.stack(
        [m.sum(axis=0) if m.size else np.zeros(vocab.size) for m in matrices]
    )
    return phi, vocab
