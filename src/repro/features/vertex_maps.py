"""Vertex feature maps (Definition 3) for the three substructure families.

Each extractor turns a *dataset* (list of graphs) into per-vertex count
dictionaries over a shared substructure vocabulary:

* :class:`GraphletVertexFeatures`  — DeepMap-GK: for every vertex, sample
  ``q`` connected graphlets of size ``k`` rooted at it and histogram their
  canonical types.
* :class:`ShortestPathVertexFeatures` — DeepMap-SP: for every vertex ``v``,
  count shortest-path triplets ``(l(v), l(t), d(v, t))`` over all targets
  ``t``.  Summing over sources recovers the classic SP kernel feature map
  (each unordered path counted once per orientation).
* :class:`WLVertexFeatures` — DeepMap-WL: for every vertex, one count per
  WL iteration for the vertex's color at that iteration.  Color ids are
  refined *jointly across the dataset* so identical subtree patterns in
  different graphs share a feature column.  Summing over vertices recovers
  the WL subtree kernel feature map (Equation 5).

The module-level helper :func:`extract_vertex_feature_matrices` runs an
extractor, freezes the vocabulary, and returns dense per-graph matrices —
the ``X`` arrays consumed by Algorithm 1.
"""

from __future__ import annotations

import hashlib
from abc import ABC, abstractmethod
from collections import Counter

import numpy as np

from repro import obs
from repro.features.vocabulary import FeatureVocabulary
from repro.graph.graph import Graph
from repro.graph.graphlets import count_graphlets_per_vertex
from repro.graph.shortest_paths import apsp_bfs
from repro.utils.rng import derive_rng
from repro.utils.validation import check_positive

__all__ = [
    "VertexFeatureExtractor",
    "GraphletVertexFeatures",
    "ShortestPathVertexFeatures",
    "WLVertexFeatures",
    "OneHotLabelFeatures",
    "wl_stable_colors",
    "cached_vertex_counts",
    "extract_vertex_feature_matrices",
    "graph_feature_maps",
]

VertexCounts = list[Counter]  # one Counter per vertex


class VertexFeatureExtractor(ABC):
    """Extracts per-vertex substructure count dictionaries for a dataset."""

    #: short identifier used in reports ("gk", "sp", "wl")
    name: str = "base"

    @abstractmethod
    def extract(self, graphs: list[Graph]) -> list[VertexCounts]:
        """Per-graph list of per-vertex ``Counter`` feature dictionaries."""

    def cache_params(self) -> dict:
        """Hyperparameters identifying this extractor for cache keys.

        The default exposes every public instance attribute, which is
        exactly the constructor surface for the built-in extractors;
        custom extractors with derived state should override this to
        return only what determines their output.
        """
        return {
            key: value
            for key, value in vars(self).items()
            if not key.startswith("_") and not key.endswith("_")
        }


class GraphletVertexFeatures(VertexFeatureExtractor):
    """Rooted-graphlet sampling features (DeepMap-GK).

    Parameters
    ----------
    k:
        Graphlet size (paper: 5).
    samples:
        Rooted samples per vertex (paper: 20).
    seed:
        Seed for the sampling streams.  Each graph's stream is derived
        from ``seed`` plus the graph's *content* (structure + labels),
        so a graph samples identically wherever it appears — first or
        last in the dataset, in a CV-fold subset, or alone.  This is
        what keeps cache keys stable across fold slicing.
    """

    name = "gk"

    def __init__(self, k: int = 5, samples: int = 20, seed: int | None = 0) -> None:
        if not 1 <= k <= 5:
            raise ValueError(f"graphlet size k must be in 1..5, got {k}")
        check_positive("samples", samples)
        self.k = k
        self.samples = samples
        self.seed = seed

    def extract(self, graphs: list[Graph]) -> list[VertexCounts]:
        out: list[VertexCounts] = []
        for g in graphs:
            rng = derive_rng(
                self.seed,
                str(g.n).encode(),
                g.edges.tobytes(),
                g.labels.tobytes(),
            )
            hists = count_graphlets_per_vertex(g, self.k, self.samples, rng)
            out.append([Counter({("glet",) + key: c for key, c in h.items()}) for h in hists])
        return out


class ShortestPathVertexFeatures(VertexFeatureExtractor):
    """Shortest-path triplet features (DeepMap-SP).

    For vertex ``v`` the feature ``("sp", l(v), l(t), d)`` counts targets
    ``t`` with label ``l(t)`` at hop distance ``d >= 1``.  Unreachable
    pairs contribute nothing.  ``max_distance`` optionally truncates the
    path length (None = unbounded, as in the paper).
    """

    name = "sp"

    def __init__(self, max_distance: int | None = None) -> None:
        if max_distance is not None:
            check_positive("max_distance", max_distance)
        self.max_distance = max_distance

    def extract(self, graphs: list[Graph]) -> list[VertexCounts]:
        out: list[VertexCounts] = []
        for g in graphs:
            dist = apsp_bfs(g)
            labels = g.labels
            per_vertex: VertexCounts = []
            for v in range(g.n):
                counter: Counter = Counter()
                dv = dist[v]
                for t in range(g.n):
                    d = int(dv[t])
                    if t == v or d <= 0:
                        continue
                    if self.max_distance is not None and d > self.max_distance:
                        continue
                    counter[("sp", int(labels[v]), int(labels[t]), d)] += 1
                per_vertex.append(counter)
            out.append(per_vertex)
        return out


class WLVertexFeatures(VertexFeatureExtractor):
    """Weisfeiler-Lehman subtree features (DeepMap-WL).

    Vertex ``v`` receives one count for feature ``("wl", i, color_i(v))``
    per refinement iteration ``i = 0 .. h``.  Colors are *stable hashes*
    of the recursive (own color, sorted neighbor colors) signature, so the
    same subtree pattern maps to the same feature key in every graph and
    every dataset — making the extractor inductive: features computed on a
    held-out graph align with a vocabulary built on training graphs.
    """

    name = "wl"

    def __init__(self, h: int = 3) -> None:
        if h < 0:
            raise ValueError(f"h must be >= 0, got {h}")
        self.h = h

    def extract(self, graphs: list[Graph]) -> list[VertexCounts]:
        out: list[VertexCounts] = []
        for g in graphs:
            colorings = wl_stable_colors(g, self.h)
            per_vertex: VertexCounts = []
            for v in range(g.n):
                counter: Counter = Counter()
                for it in range(self.h + 1):
                    counter[("wl", it, colorings[it][v])] += 1
                per_vertex.append(counter)
            out.append(per_vertex)
        return out


class OneHotLabelFeatures(VertexFeatureExtractor):
    """Plain one-hot vertex-label features.

    Not a substructure map — this is the input PATCHY-SAN/DGCNN/GIN use.
    Provided so the Section 6 ablation can feed DeepMap's CNN the same
    impoverished input and measure what the vertex feature maps add.
    """

    name = "onehot"

    def extract(self, graphs: list[Graph]) -> list[VertexCounts]:
        out: list[VertexCounts] = []
        for g in graphs:
            out.append([Counter({("label", int(g.labels[v])): 1}) for v in range(g.n)])
        return out


def wl_stable_colors(g: Graph, h: int) -> list[list[int]]:
    """WL colors as stable 64-bit signature hashes, per iteration 0..h.

    Iteration 0 uses the raw integer labels; iteration ``i`` hashes the
    (own previous color, sorted neighbor previous colors) signature with
    blake2b.  Hash values identify subtree patterns across graphs without
    any shared dictionary (collisions are negligible at 64 bits).
    """
    colors: list[int] = [int(l) for l in g.labels]
    out = [colors]
    for _ in range(h):
        new_colors = []
        for v in range(g.n):
            sig = (colors[v], tuple(sorted(colors[int(u)] for u in g.neighbors(v))))
            digest = hashlib.blake2b(repr(sig).encode(), digest_size=8).digest()
            new_colors.append(int.from_bytes(digest, "big"))
        colors = new_colors
        out.append(colors)
    return out


def wl_joint_refinement(graphs: list[Graph], h: int) -> list[list[np.ndarray]]:
    """Dataset-wide WL refinement.

    Returns ``colorings[i][g]`` = color array of graph ``g`` at iteration
    ``i`` (``0 <= i <= h``), with colors drawn from one shared alphabet per
    iteration.  Signature compression sorts the union of signatures so the
    ids are independent of both vertex order and graph order.
    """
    # Iteration 0: compress raw labels over the union alphabet.
    all_labels = sorted({int(l) for g in graphs for l in g.labels})
    base = {lab: i for i, lab in enumerate(all_labels)}
    current = [np.array([base[int(l)] for l in g.labels], dtype=np.int64) for g in graphs]
    colorings = [current]
    for _ in range(h):
        signatures: list[list[tuple]] = []
        union: set[tuple] = set()
        for g, colors in zip(graphs, current):
            sigs = []
            for v in range(g.n):
                sig = (int(colors[v]), tuple(sorted(int(colors[u]) for u in g.neighbors(v))))
                sigs.append(sig)
                union.add(sig)
            signatures.append(sigs)
        mapping = {sig: i for i, sig in enumerate(sorted(union))}
        current = [
            np.array([mapping[s] for s in sigs], dtype=np.int64) for sigs in signatures
        ]
        colorings.append(current)
    return colorings


def cached_vertex_counts(
    extractor: VertexFeatureExtractor,
    graphs: list[Graph],
    cache=None,
) -> list[VertexCounts]:
    """``extractor.extract(graphs)`` memoized through the feature-map cache.

    The key combines the dataset fingerprint (graph structure + labels,
    in order) with the extractor's class and hyperparameters, so any
    change to either recomputes.  ``cache=None`` uses the process-wide
    default (:func:`repro.cache.get_cache`); with no cache configured
    this is exactly ``extractor.extract(graphs)``.
    """
    from repro import cache as cache_mod

    cache = cache if cache is not None else cache_mod.get_cache()
    if cache is None:
        return extractor.extract(graphs)
    key = cache_mod.cache_key(
        "counts",
        cache_mod.dataset_fingerprint(graphs),
        cache_mod.extractor_fingerprint(extractor),
    )
    payload = cache.get(key, namespace="counts")
    if payload is not None:
        return list(payload["counts"][0])
    counts = extractor.extract(graphs)
    boxed = np.empty(1, dtype=object)
    boxed[0] = counts
    cache.put(key, {"counts": boxed}, namespace="counts")
    return counts


def extract_vertex_feature_matrices(
    graphs: list[Graph],
    extractor: VertexFeatureExtractor,
    cache=None,
) -> tuple[list[np.ndarray], FeatureVocabulary]:
    """Run ``extractor`` and embed every vertex in a shared dense space.

    Returns ``(matrices, vocabulary)`` where ``matrices[i]`` has shape
    ``(graphs[i].n, m)`` and ``m = len(vocabulary)``.  When a feature-map
    cache is configured (``cache`` argument or the process default) the
    dense matrices and the vocabulary are memoized by dataset content +
    extractor configuration; a warm hit skips extraction entirely and
    returns bitwise-identical arrays.
    """
    from repro import cache as cache_mod

    cache = cache if cache is not None else cache_mod.get_cache()
    key = None
    if cache is not None:
        key = cache_mod.cache_key(
            "vfm",
            cache_mod.dataset_fingerprint(graphs),
            cache_mod.extractor_fingerprint(extractor),
        )
        payload = cache.get(key, namespace="vfm")
        if payload is not None:
            matrices = [
                payload[f"matrix_{i:05d}"] for i in range(len(graphs))
            ]
            vocab = FeatureVocabulary()
            vocab.add_all(payload["vocab"][0])
            return matrices, vocab.freeze()
    with obs.span("feature_map", extractor=extractor.name, graphs=len(graphs)):
        with obs.span("extract"):
            per_graph_counts = extractor.extract(graphs)
        with obs.span("vocabulary"):
            vocab = FeatureVocabulary()
            for vertex_counts in per_graph_counts:
                for counter in vertex_counts:
                    vocab.add_all(counter.keys())
            vocab.freeze()
        with obs.span("vectorize", m=vocab.size):
            matrices = [vocab.vectorize_rows(vc) for vc in per_graph_counts]
    if cache is not None and key is not None:
        boxed = np.empty(1, dtype=object)
        boxed[0] = vocab.keys()
        payload = {f"matrix_{i:05d}": m for i, m in enumerate(matrices)}
        payload["vocab"] = boxed
        cache.put(key, payload, namespace="vfm")
    return matrices, vocab


def graph_feature_maps(
    graphs: list[Graph],
    extractor: VertexFeatureExtractor,
) -> tuple[np.ndarray, FeatureVocabulary]:
    """Graph-level feature maps via Equation 7 (sum of vertex maps).

    Returns ``(phi, vocabulary)`` with ``phi`` of shape ``(n_graphs, m)``.
    This is exactly the explicit feature map of the corresponding
    R-convolution kernel.
    """
    matrices, vocab = extract_vertex_feature_matrices(graphs, extractor)
    phi = np.stack(
        [m.sum(axis=0) if m.size else np.zeros(vocab.size) for m in matrices]
    )
    return phi, vocab
