"""Feature vocabulary: hashable substructure keys -> dense column indices.

Graph kernels compare *counts of substructures*; across a dataset the set
of distinct substructures (graphlet types, shortest-path triplets, WL
colors) defines the feature space.  :class:`FeatureVocabulary` fixes the
key -> column assignment once so every graph and vertex in a dataset is
embedded in the same space — this is what makes Equation 7 of the paper
(graph map == sum of vertex maps) hold as a literal numpy identity.
"""

from __future__ import annotations

from collections.abc import Hashable, Iterable, Mapping

import numpy as np

__all__ = ["FeatureVocabulary"]


class FeatureVocabulary:
    """Bidirectional mapping between feature keys and dense column indices.

    Keys are assigned indices in sorted order at :meth:`freeze` time so the
    embedding is independent of graph order within the dataset.
    """

    def __init__(self) -> None:
        self._keys: set[Hashable] = set()
        self._index: dict[Hashable, int] | None = None

    # ------------------------------------------------------------------
    def add(self, key: Hashable) -> None:
        """Register ``key``; only allowed before :meth:`freeze`."""
        if self._index is not None:
            raise RuntimeError("vocabulary is frozen; cannot add new keys")
        self._keys.add(key)

    def add_all(self, keys: Iterable[Hashable]) -> None:
        """Register every key in ``keys``."""
        for key in keys:
            self.add(key)

    def freeze(self) -> "FeatureVocabulary":
        """Fix the key -> index assignment (sorted order). Idempotent."""
        if self._index is None:
            self._index = {k: i for i, k in enumerate(sorted(self._keys, key=repr))}
        return self

    # ------------------------------------------------------------------
    @property
    def size(self) -> int:
        """Number of features ``m`` (requires a frozen vocabulary)."""
        if self._index is None:
            raise RuntimeError("vocabulary must be frozen before use")
        return len(self._index)

    def __len__(self) -> int:
        return self.size

    def __contains__(self, key: Hashable) -> bool:
        source = self._index if self._index is not None else self._keys
        return key in source

    def index(self, key: Hashable) -> int:
        """Column index of ``key``; raises ``KeyError`` for unknown keys."""
        if self._index is None:
            raise RuntimeError("vocabulary must be frozen before use")
        return self._index[key]

    def keys(self) -> list[Hashable]:
        """All keys in column order."""
        if self._index is None:
            raise RuntimeError("vocabulary must be frozen before use")
        return sorted(self._index, key=self._index.__getitem__)

    # ------------------------------------------------------------------
    def vectorize(self, counts: Mapping[Hashable, float]) -> np.ndarray:
        """Embed one ``{key: count}`` mapping as a dense ``(m,)`` vector.

        Keys absent from the vocabulary are ignored (they correspond to
        substructures never seen at fit time — the standard convention for
        explicit-feature graph kernels applied to held-out graphs).
        """
        vec = np.zeros(self.size, dtype=np.float64)
        if self._index is None:  # pragma: no cover - guarded by .size
            raise RuntimeError("vocabulary must be frozen before use")
        for key, value in counts.items():
            col = self._index.get(key)
            if col is not None:
                vec[col] = value
        return vec

    def vectorize_rows(
        self, rows: Iterable[Mapping[Hashable, float]]
    ) -> np.ndarray:
        """Embed an iterable of count mappings as a dense ``(len, m)`` matrix."""
        rows = list(rows)
        mat = np.zeros((len(rows), self.size), dtype=np.float64)
        for i, counts in enumerate(rows):
            for key, value in counts.items():
                col = self._index.get(key) if self._index else None
                if col is not None:
                    mat[i, col] = value
        return mat
