"""Walk-based vertex features.

Walks are the fourth substructure family the paper lists alongside
graphlets, paths, and subtrees (Section 1: "walks [5], [6]").  The
random-walk kernel counts common label sequences of walks; its natural
vertex feature map assigns to each vertex the multiset of label
sequences of walks *starting* at it, so that Equation 7 reproduces the
graph-level walk count vector.

Two extractors:

* :class:`LabeledWalkVertexFeatures` — exact counts of label sequences
  of walks of length <= L (dynamic programming over the adjacency
  structure; alphabet growth bounds practical L at ~4);
* :class:`ReturnProbabilityVertexFeatures` — RetGK's structural-role
  descriptor (return probabilities over 1..S steps) discretised into
  count features so it fits the count-vector API.
"""

from __future__ import annotations

from collections import Counter

from repro.features.vertex_maps import VertexCounts, VertexFeatureExtractor
from repro.graph.graph import Graph
from repro.kernels.retgk import return_probability_features
from repro.utils.validation import check_positive

__all__ = ["LabeledWalkVertexFeatures", "ReturnProbabilityVertexFeatures"]


class LabeledWalkVertexFeatures(VertexFeatureExtractor):
    """Counts of labeled walks of length 1..L starting at each vertex.

    Feature key: ``("walk", (l_0, l_1, ..., l_k))`` — the label sequence
    along the walk (vertex revisits allowed, as in walk kernels).
    """

    name = "rwf"

    def __init__(self, length: int = 3) -> None:
        check_positive("length", length)
        self.length = length

    def extract(self, graphs: list[Graph]) -> list[VertexCounts]:
        out: list[VertexCounts] = []
        for g in graphs:
            labels = [int(l) for l in g.labels]
            per_vertex: VertexCounts = []
            for start in range(g.n):
                counter: Counter = Counter()
                # DP over walk endpoints: vertex -> {label sequence: count}.
                current: dict[int, dict[tuple, int]] = {
                    start: {(labels[start],): 1}
                }
                for _ in range(self.length):
                    nxt: dict[int, dict[tuple, int]] = {}
                    for v, sequences in current.items():
                        for u in g.neighbors(v):
                            ui = int(u)
                            bucket = nxt.setdefault(ui, {})
                            for seq, count in sequences.items():
                                key = seq + (labels[ui],)
                                bucket[key] = bucket.get(key, 0) + count
                                counter[("walk", key)] += count
                    current = nxt
                per_vertex.append(counter)
            out.append(per_vertex)
        return out


class ReturnProbabilityVertexFeatures(VertexFeatureExtractor):
    """RetGK return-probability features, discretised into count bins.

    For each step ``s`` in 1..steps, the return probability ``p_s(v)`` is
    mapped to the key ``("rp", s, floor(p_s * bins))`` — an
    isomorphism-invariant structural-role fingerprint usable by DeepMap.
    """

    name = "rpf"

    def __init__(self, steps: int = 8, bins: int = 10) -> None:
        check_positive("steps", steps)
        check_positive("bins", bins)
        self.steps = steps
        self.bins = bins

    def extract(self, graphs: list[Graph]) -> list[VertexCounts]:
        out: list[VertexCounts] = []
        for g in graphs:
            rp = return_probability_features(g, self.steps)
            per_vertex: VertexCounts = []
            for v in range(g.n):
                counter: Counter = Counter()
                for s in range(self.steps):
                    level = min(int(rp[v, s] * self.bins), self.bins - 1)
                    counter[("rp", s + 1, level)] += 1
                per_vertex.append(counter)
            out.append(per_vertex)
        return out
