"""Graph substrate: the core :class:`Graph` type plus the structural
algorithms (traversal, shortest paths, centrality, WL refinement, graphlet
machinery) that the kernels and DeepMap build on."""

from repro.graph.builders import (
    barabasi_albert,
    complete_graph,
    cycle_graph,
    disjoint_union,
    empty_graph,
    ensure_connected,
    erdos_renyi,
    grid_graph,
    path_graph,
    random_tree,
    star_graph,
    watts_strogatz,
)
from repro.graph.canonical import (
    canonical_ranking,
    wl_graph_hash,
    wl_iterations,
    wl_refine,
)
from repro.graph.centrality import (
    betweenness_centrality,
    centrality_ranking,
    closeness_centrality,
    degree_centrality,
    eigenvector_centrality,
    pagerank_centrality,
)
from repro.graph.convert import from_networkx, to_networkx
from repro.graph.graph import Graph
from repro.graph.products import (
    cartesian_product,
    direct_product,
    product_vertex_pairs,
)
from repro.graph.graphlets import (
    canonical_graphlet_code,
    count_graphlets_per_vertex,
    enumerate_graphlets,
    num_connected_graphlets,
    sample_rooted_graphlets,
)
from repro.graph.shortest_paths import UNREACHABLE, apsp_bfs, apsp_floyd_warshall
from repro.graph.traversal import (
    bfs_distances,
    bfs_distances_batch,
    bfs_layers,
    bfs_order,
    connected_components,
)

__all__ = [
    "Graph",
    "empty_graph",
    "path_graph",
    "cycle_graph",
    "complete_graph",
    "star_graph",
    "grid_graph",
    "erdos_renyi",
    "barabasi_albert",
    "watts_strogatz",
    "random_tree",
    "disjoint_union",
    "ensure_connected",
    "eigenvector_centrality",
    "degree_centrality",
    "pagerank_centrality",
    "closeness_centrality",
    "betweenness_centrality",
    "centrality_ranking",
    "bfs_order",
    "bfs_layers",
    "bfs_distances",
    "bfs_distances_batch",
    "connected_components",
    "apsp_bfs",
    "apsp_floyd_warshall",
    "UNREACHABLE",
    "wl_refine",
    "wl_iterations",
    "wl_graph_hash",
    "canonical_ranking",
    "canonical_graphlet_code",
    "enumerate_graphlets",
    "sample_rooted_graphlets",
    "count_graphlets_per_vertex",
    "num_connected_graphlets",
    "from_networkx",
    "to_networkx",
    "direct_product",
    "cartesian_product",
    "product_vertex_pairs",
]
