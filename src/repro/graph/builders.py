"""Graph construction helpers and random graph models.

These power both the unit tests and the synthetic benchmark datasets
(Erdos-Renyi graphs drive SYNTHIE; preferential attachment and small-world
models drive the social and protein datasets).
"""

from __future__ import annotations

import numpy as np

from repro.graph.graph import Graph
from repro.utils.rng import as_rng
from repro.utils.validation import check_probability

__all__ = [
    "empty_graph",
    "path_graph",
    "cycle_graph",
    "complete_graph",
    "star_graph",
    "grid_graph",
    "erdos_renyi",
    "barabasi_albert",
    "watts_strogatz",
    "random_tree",
    "disjoint_union",
    "ensure_connected",
]


def empty_graph(n: int) -> Graph:
    """Graph with ``n`` vertices and no edges."""
    return Graph(n, [])


def path_graph(n: int) -> Graph:
    """Path ``0 - 1 - ... - (n-1)``."""
    return Graph(n, [(i, i + 1) for i in range(n - 1)])


def cycle_graph(n: int) -> Graph:
    """Cycle on ``n >= 3`` vertices."""
    if n < 3:
        raise ValueError(f"cycle needs n >= 3, got {n}")
    return Graph(n, [(i, (i + 1) % n) for i in range(n)])


def complete_graph(n: int) -> Graph:
    """Complete graph ``K_n``."""
    return Graph(n, [(i, j) for i in range(n) for j in range(i + 1, n)])


def star_graph(n: int) -> Graph:
    """Star with center ``0`` and ``n - 1`` leaves."""
    if n < 1:
        raise ValueError(f"star needs n >= 1, got {n}")
    return Graph(n, [(0, i) for i in range(1, n)])


def grid_graph(rows: int, cols: int) -> Graph:
    """``rows x cols`` rectangular grid (the 'image' graph of Section 4)."""
    edges = []
    for r in range(rows):
        for c in range(cols):
            v = r * cols + c
            if c + 1 < cols:
                edges.append((v, v + 1))
            if r + 1 < rows:
                edges.append((v, v + cols))
    return Graph(rows * cols, edges)


def erdos_renyi(n: int, p: float, seed: int | np.random.Generator | None = None) -> Graph:
    """G(n, p) random graph (the SYNTHIE seed model uses p = 0.2)."""
    check_probability("p", p)
    rng = as_rng(seed)
    if n < 2:
        return empty_graph(max(n, 0))
    iu, ju = np.triu_indices(n, k=1)
    mask = rng.random(iu.size) < p
    return Graph(n, zip(iu[mask].tolist(), ju[mask].tolist()))


def barabasi_albert(n: int, m: int, seed: int | np.random.Generator | None = None) -> Graph:
    """Preferential-attachment graph: each new vertex attaches to ``m`` others."""
    if m < 1 or m >= n:
        raise ValueError(f"need 1 <= m < n, got m={m}, n={n}")
    rng = as_rng(seed)
    edges: list[tuple[int, int]] = []
    # Repeated-vertex list implements degree-proportional sampling.
    repeated: list[int] = list(range(m))
    for v in range(m, n):
        targets: set[int] = set()
        while len(targets) < m:
            if repeated:
                targets.add(int(repeated[rng.integers(0, len(repeated))]))
            else:
                targets.add(int(rng.integers(0, v)))
        for t in targets:
            edges.append((v, t))
            repeated.extend([v, t])
    return Graph(n, edges)


def watts_strogatz(
    n: int, k: int, p: float, seed: int | np.random.Generator | None = None
) -> Graph:
    """Small-world ring lattice with ``k`` nearest neighbors, rewire prob ``p``."""
    if k % 2 or k < 2 or k >= n:
        raise ValueError(f"k must be even with 2 <= k < n, got k={k}, n={n}")
    check_probability("p", p)
    rng = as_rng(seed)
    edge_set: set[tuple[int, int]] = set()
    for v in range(n):
        for offset in range(1, k // 2 + 1):
            u = (v + offset) % n
            edge_set.add((min(v, u), max(v, u)))
    edges = sorted(edge_set)
    rewired: set[tuple[int, int]] = set(edges)
    for u, v in edges:
        if rng.random() < p:
            candidates = [
                w
                for w in range(n)
                if w != u and (min(u, w), max(u, w)) not in rewired
            ]
            if candidates:
                w = int(candidates[rng.integers(0, len(candidates))])
                rewired.discard((u, v))
                rewired.add((min(u, w), max(u, w)))
    return Graph(n, sorted(rewired))


def random_tree(n: int, seed: int | np.random.Generator | None = None) -> Graph:
    """Uniform random labeled tree via a random Prufer-like attachment."""
    rng = as_rng(seed)
    if n <= 1:
        return empty_graph(max(n, 0))
    edges = [(int(rng.integers(0, v)), v) for v in range(1, n)]
    return Graph(n, edges)


def disjoint_union(graphs: list[Graph]) -> Graph:
    """Disjoint union of ``graphs`` with vertex ids shifted left-to-right."""
    offset = 0
    edges: list[tuple[int, int]] = []
    labels: list[int] = []
    for g in graphs:
        edges.extend((int(u) + offset, int(v) + offset) for u, v in g.edges)
        labels.extend(g.labels.tolist())
        offset += g.n
    return Graph(offset, edges, labels)


def ensure_connected(g: Graph, seed: int | np.random.Generator | None = None) -> Graph:
    """Add minimal random edges so ``g`` becomes connected.

    Component representatives are chained with one edge each; labels are
    preserved.  Used by dataset generators so eigenvector centrality is
    well defined on every graph.
    """
    from repro.graph.traversal import connected_components

    comps = connected_components(g)
    if len(comps) <= 1:
        return g
    rng = as_rng(seed)
    extra = []
    prev = comps[0]
    for comp in comps[1:]:
        u = int(prev[rng.integers(0, len(prev))])
        v = int(comp[rng.integers(0, len(comp))])
        extra.append((u, v))
        prev = comp
    all_edges = [tuple(map(int, e)) for e in g.edges] + extra
    return Graph(g.n, all_edges, g.labels)
