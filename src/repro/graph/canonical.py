"""Weisfeiler-Lehman color refinement and canonical vertex ranking.

Two uses in this repository:

* the WL subtree kernel and its vertex feature maps are built directly on
  :func:`wl_refine`;
* PATCHY-SAN needs a canonical (isomorphism-invariant) vertex order.  The
  original paper uses NAUTY, which is unavailable offline;
  :func:`canonical_ranking` substitutes iterated WL colors with
  deterministic tie-breaking, which is invariant under relabeling and
  discriminates all benchmark graphs (documented in DESIGN.md).
"""

from __future__ import annotations

import numpy as np

from repro.graph.graph import Graph

__all__ = ["wl_refine", "wl_iterations", "wl_graph_hash", "canonical_ranking"]


def wl_refine(g: Graph, colors: np.ndarray) -> tuple[np.ndarray, dict[tuple, int]]:
    """One round of Weisfeiler-Lehman color refinement.

    Each vertex's new color is the (old color, sorted multiset of neighbor
    colors) signature, compressed to consecutive integers in order of first
    appearance of the *sorted* signature set — making the compressed ids
    independent of vertex numbering.

    Returns the new color array and the signature -> color dictionary.
    """
    signatures: list[tuple] = []
    for v in range(g.n):
        nbr_colors = sorted(int(colors[u]) for u in g.neighbors(v))
        signatures.append((int(colors[v]), tuple(nbr_colors)))
    # Deterministic compression: sort the unique signatures so the mapping
    # does not depend on vertex order.
    mapping = {sig: i for i, sig in enumerate(sorted(set(signatures)))}
    new_colors = np.array([mapping[sig] for sig in signatures], dtype=np.int64)
    return new_colors, mapping


def wl_iterations(g: Graph, h: int) -> list[np.ndarray]:
    """Color arrays for WL iterations ``0 .. h``.

    Iteration 0 is the original vertex labels, compressed the same way so
    that label ids are dense.
    """
    if h < 0:
        raise ValueError(f"h must be >= 0, got {h}")
    base_map = {lab: i for i, lab in enumerate(sorted(set(g.labels.tolist())))}
    colors = np.array([base_map[int(l)] for l in g.labels], dtype=np.int64)
    out = [colors]
    for _ in range(h):
        colors, _ = wl_refine(g, colors)
        out.append(colors)
    return out


def wl_graph_hash(g: Graph, h: int = 3) -> tuple:
    """Isomorphism-invariant hash of ``g``: sorted color histograms per round.

    Graphs that are isomorphic always hash equal; non-isomorphic graphs may
    collide only if WL cannot distinguish them (e.g. regular graph pairs).
    """
    parts = []
    for colors in wl_iterations(g, h):
        vals, counts = np.unique(colors, return_counts=True)
        # Histogram keyed by the *multiset* structure, not color ids:
        # pair each count with the signature depth is already canonical
        # because compression sorts signatures.
        parts.append(tuple(sorted(zip(vals.tolist(), counts.tolist()))))
    return (g.n, g.num_edges, tuple(parts))


def canonical_ranking(g: Graph, h: int | None = None) -> np.ndarray:
    """Deterministic isomorphism-invariant vertex ranking (NAUTY substitute).

    Runs WL refinement until the color partition stabilises (at most
    ``h`` rounds, default ``n``) and sorts vertices by the tuple of their
    colors across all rounds, breaking remaining ties by degree.  Vertices
    that still tie are structurally equivalent up to WL, so any consistent
    order among them yields the same normalized receptive fields.

    Returns the vertex ids in canonical order (rank 0 first).
    """
    rounds = g.n if h is None else h
    history = wl_iterations(g, 0)
    colors = history[0]
    for _ in range(rounds):
        new_colors, _ = wl_refine(g, colors)
        history.append(new_colors)
        if len(np.unique(new_colors)) == len(np.unique(colors)) and np.all(
            _partition_ids(new_colors) == _partition_ids(colors)
        ):
            break
        colors = new_colors
    keys = np.stack(history, axis=1)  # (n, rounds)
    degs = g.degrees()
    sort_cols = [keys[:, i] for i in range(keys.shape[1] - 1, -1, -1)]
    order = np.lexsort(tuple(sort_cols) + (-degs,))
    return order.astype(np.int64)


def _partition_ids(colors: np.ndarray) -> np.ndarray:
    """Canonical partition representative per vertex (first index with color)."""
    first: dict[int, int] = {}
    out = np.empty_like(colors)
    for i, c in enumerate(colors.tolist()):
        first.setdefault(c, i)
        out[i] = first[c]
    return out
