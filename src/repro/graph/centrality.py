"""Vertex centrality measures.

DeepMap aligns vertices across graphs by sorting them on eigenvector
centrality (Bonacich 1987), computed by power iteration as the paper
specifies.  Degree centrality is kept as an ablation alternative
(``benchmarks/bench_ablation_ordering.py``).
"""

from __future__ import annotations

import numpy as np

from repro.graph.graph import Graph
from repro.utils.validation import check_positive

__all__ = [
    "eigenvector_centrality",
    "degree_centrality",
    "pagerank_centrality",
    "closeness_centrality",
    "betweenness_centrality",
    "centrality_ranking",
]


def eigenvector_centrality(
    g: Graph,
    max_iter: int = 200,
    tol: float = 1e-10,
) -> np.ndarray:
    """Eigenvector centrality via power iteration on the adjacency matrix.

    The returned vector is L2-normalised and non-negative.  For graphs with
    no edges every vertex receives the same score (uniform), matching the
    limit behaviour of the damped iteration below.

    Power iteration on a plain adjacency matrix fails to converge on
    bipartite components (eigenvalue multiplicity); we iterate on
    ``A + I`` instead, which shifts the spectrum away from symmetric
    plus/minus pairs without changing the principal eigenvector.
    """
    check_positive("max_iter", max_iter)
    if g.n == 0:
        return np.empty(0, dtype=np.float64)
    if g.num_edges == 0:
        return np.full(g.n, 1.0 / np.sqrt(g.n))

    x = np.full(g.n, 1.0 / np.sqrt(g.n))
    src = np.concatenate([g.edges[:, 0], g.edges[:, 1]])
    dst = np.concatenate([g.edges[:, 1], g.edges[:, 0]])
    for _ in range(max_iter):
        # y = (A + I) x via scatter-add over the symmetrised edge list.
        y = x.copy()
        np.add.at(y, src, x[dst])
        norm = np.linalg.norm(y)
        y /= norm
        if np.linalg.norm(y - x) < tol:
            x = y
            break
        x = y
    return np.abs(x)


def degree_centrality(g: Graph) -> np.ndarray:
    """Degree / (n - 1) per vertex (the classic normalised degree centrality)."""
    if g.n <= 1:
        return np.zeros(g.n, dtype=np.float64)
    return g.degrees().astype(np.float64) / (g.n - 1)


def pagerank_centrality(
    g: Graph,
    damping: float = 0.85,
    max_iter: int = 200,
    tol: float = 1e-10,
) -> np.ndarray:
    """PageRank scores via power iteration on the damped random walk.

    Dangling (degree-0) vertices distribute their mass uniformly, the
    standard convention.  Scores sum to 1.
    """
    if not 0.0 < damping < 1.0:
        raise ValueError(f"damping must be in (0, 1), got {damping}")
    if g.n == 0:
        return np.empty(0, dtype=np.float64)
    x = np.full(g.n, 1.0 / g.n)
    degrees = g.degrees().astype(np.float64)
    src = np.concatenate([g.edges[:, 0], g.edges[:, 1]])
    dst = np.concatenate([g.edges[:, 1], g.edges[:, 0]])
    dangling = degrees == 0
    safe_deg = np.where(dangling, 1.0, degrees)
    for _ in range(max_iter):
        contrib = x / safe_deg
        y = np.zeros(g.n)
        np.add.at(y, dst, contrib[src])
        y += x[dangling].sum() / g.n
        y = (1.0 - damping) / g.n + damping * y
        if np.abs(y - x).sum() < tol:
            x = y
            break
        x = y
    return x


def closeness_centrality(g: Graph) -> np.ndarray:
    """Closeness = (reachable count) / (n-1) / (mean distance), the
    Wasserman-Faust formula that handles disconnected graphs."""
    from repro.graph.traversal import bfs_distances

    if g.n <= 1:
        return np.zeros(g.n, dtype=np.float64)
    out = np.zeros(g.n, dtype=np.float64)
    for v in range(g.n):
        dist = bfs_distances(g, v)
        reachable = dist > 0
        total = dist[reachable].sum()
        k = int(reachable.sum())
        if total > 0:
            out[v] = (k / (g.n - 1)) * (k / total)
    return out


def betweenness_centrality(g: Graph, normalized: bool = True) -> np.ndarray:
    """Shortest-path betweenness via Brandes' algorithm (unweighted)."""
    from collections import deque

    bc = np.zeros(g.n, dtype=np.float64)
    for s in range(g.n):
        # Single-source shortest-path DAG.
        sigma = np.zeros(g.n)
        sigma[s] = 1.0
        dist = np.full(g.n, -1)
        dist[s] = 0
        parents: list[list[int]] = [[] for _ in range(g.n)]
        order: list[int] = []
        queue: deque[int] = deque([s])
        while queue:
            v = queue.popleft()
            order.append(v)
            for u in g.neighbors(v):
                ui = int(u)
                if dist[ui] < 0:
                    dist[ui] = dist[v] + 1
                    queue.append(ui)
                if dist[ui] == dist[v] + 1:
                    sigma[ui] += sigma[v]
                    parents[ui].append(v)
        # Dependency accumulation.
        delta = np.zeros(g.n)
        for v in reversed(order):
            for p in parents[v]:
                delta[p] += sigma[p] / sigma[v] * (1.0 + delta[v])
            if v != s:
                bc[v] += delta[v]
    bc /= 2.0  # undirected: each pair counted twice
    if normalized and g.n > 2:
        bc /= (g.n - 1) * (g.n - 2) / 2.0
    return bc


def centrality_ranking(scores: np.ndarray, descending: bool = True) -> np.ndarray:
    """Stable ranking of vertices by centrality score.

    Ties are broken by vertex id (ascending), which keeps the ordering
    deterministic; the alignment layer further refines ties with degree
    and label information to improve isomorphism invariance.
    """
    order = np.argsort(-scores if descending else scores, kind="stable")
    return order.astype(np.int64)
