"""Interop with :mod:`networkx` for visual inspection and cross-checking.

The library never depends on networkx internally; these converters exist so
users can bring their own ``networkx`` graphs and so the test-suite can
validate our centrality / shortest-path implementations against networkx.
"""

from __future__ import annotations

import networkx as nx

from repro.graph.graph import Graph

__all__ = ["to_networkx", "from_networkx"]

LABEL_KEY = "label"


def to_networkx(g: Graph) -> nx.Graph:
    """Convert to an ``nx.Graph`` with vertex labels in the ``label`` attr."""
    out = nx.Graph()
    for v in range(g.n):
        out.add_node(v, **{LABEL_KEY: int(g.labels[v])})
    out.add_edges_from((int(u), int(v)) for u, v in g.edges)
    return out


def from_networkx(nxg: nx.Graph, label_attr: str = LABEL_KEY) -> Graph:
    """Convert an ``nx.Graph`` to a :class:`Graph`.

    Node names may be arbitrary hashables; they are renumbered to
    ``0 .. n-1`` in sorted-by-insertion order.  Missing label attributes
    default to 0.
    """
    nodes = list(nxg.nodes())
    index = {node: i for i, node in enumerate(nodes)}
    labels = [int(nxg.nodes[node].get(label_attr, 0)) for node in nodes]
    edges = [(index[u], index[v]) for u, v in nxg.edges() if u != v]
    return Graph(len(nodes), edges, labels)
