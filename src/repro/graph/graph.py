"""Core immutable graph type used throughout the library.

The paper works with undirected vertex-labeled graphs
``G = (V, E, l)`` where ``l`` maps vertices to a finite label alphabet.
:class:`Graph` stores the structure in CSR (compressed sparse row) form —
one flat neighbor array plus per-vertex offsets — which makes neighbor
iteration, BFS, and degree queries allocation-free and fast, while staying
simple enough to reason about in tests.

Vertices are always the integers ``0 .. n-1``.
"""

from __future__ import annotations

from collections.abc import Iterable, Iterator

import numpy as np

__all__ = ["Graph"]


class Graph:
    """Undirected vertex-labeled graph with CSR adjacency.

    Parameters
    ----------
    num_vertices:
        Number of vertices ``n``; vertices are ``0 .. n-1``.
    edges:
        Iterable of ``(u, v)`` pairs.  Duplicates and self-loops are
        rejected (the benchmark graphs are simple graphs).
    labels:
        Optional integer label per vertex.  When omitted, every vertex
        gets label ``0``.

    Notes
    -----
    Instances are immutable: all arrays are flagged non-writeable, and the
    derived quantities (degree sequence, edge list) are computed once.
    """

    __slots__ = ("n", "_indptr", "_indices", "_labels", "_edges", "_hash")

    def __init__(
        self,
        num_vertices: int,
        edges: Iterable[tuple[int, int]],
        labels: Iterable[int] | None = None,
    ) -> None:
        if num_vertices < 0:
            raise ValueError(f"num_vertices must be >= 0, got {num_vertices}")
        self.n = int(num_vertices)

        edge_list = []
        seen: set[tuple[int, int]] = set()
        for u, v in edges:
            u, v = int(u), int(v)
            if u == v:
                raise ValueError(f"self-loop on vertex {u} is not allowed")
            if not (0 <= u < self.n and 0 <= v < self.n):
                raise ValueError(f"edge ({u}, {v}) out of range for n={self.n}")
            key = (u, v) if u < v else (v, u)
            if key in seen:
                raise ValueError(f"duplicate edge ({u}, {v})")
            seen.add(key)
            edge_list.append(key)

        self._edges = np.array(sorted(edge_list), dtype=np.int64).reshape(-1, 2)

        # Build CSR adjacency from the symmetrised edge list.
        if self._edges.size:
            both = np.concatenate([self._edges, self._edges[:, ::-1]])
            order = np.lexsort((both[:, 1], both[:, 0]))
            both = both[order]
            counts = np.bincount(both[:, 0], minlength=self.n)
            self._indices = np.ascontiguousarray(both[:, 1])
        else:
            counts = np.zeros(self.n, dtype=np.int64)
            self._indices = np.empty(0, dtype=np.int64)
        self._indptr = np.concatenate([[0], np.cumsum(counts)]).astype(np.int64)

        if labels is None:
            self._labels = np.zeros(self.n, dtype=np.int64)
        else:
            self._labels = np.asarray(list(labels), dtype=np.int64)
            if self._labels.shape != (self.n,):
                raise ValueError(
                    f"labels must have length {self.n}, got {self._labels.shape}"
                )
            if self._labels.size and self._labels.min() < 0:
                raise ValueError("labels must be non-negative integers")

        for arr in (self._indptr, self._indices, self._labels, self._edges):
            arr.flags.writeable = False
        self._hash: int | None = None

    @classmethod
    def _from_csr(
        cls,
        num_vertices: int,
        indptr: np.ndarray,
        indices: np.ndarray,
        labels: np.ndarray | None = None,
    ) -> "Graph":
        """Build a graph directly from canonical CSR arrays.

        Trusted-but-verified fast path for wire decoders: the arrays are
        checked *vectorized* — no per-edge Python loop — to be exactly
        the canonical CSR ``__init__`` would derive (monotone 0-based
        offsets, per-row strictly increasing neighbors, no self-loops,
        symmetric adjacency), then adopted as-is.  Anything else raises
        ``ValueError``.  The arrays are copied, so callers may hand in
        views over transient buffers (e.g. shared memory).

        The result is indistinguishable from ``Graph(n, edges, labels)``:
        same array contents, dtypes, equality, and hash.
        """
        n = int(num_vertices)
        if n < 0:
            raise ValueError(f"num_vertices must be >= 0, got {n}")
        indptr = np.array(indptr, dtype=np.int64, copy=True)
        indices = np.array(indices, dtype=np.int64, copy=True)
        if (
            indptr.shape != (n + 1,)
            or (indptr.size and indptr[0] != 0)
            or np.any(np.diff(indptr) < 0)
            or int(indptr[-1] if indptr.size else 0) != indices.size
        ):
            raise ValueError("indptr is not a monotone 0-based offset array")
        if indices.size:
            if indices.min() < 0 or indices.max() >= n:
                raise ValueError(f"neighbor id out of range for n={n}")
            degrees = np.diff(indptr)
            src = np.repeat(np.arange(n, dtype=np.int64), degrees)
            if np.any(src == indices):
                raise ValueError("adjacency is not canonical CSR (self-loop)")
            # Strictly increasing within each row <=> sorted, duplicate-free.
            step = np.diff(indices)
            same_row = np.ones(indices.size - 1, dtype=bool)
            starts = indptr[1:-1]
            starts = starts[(starts > 0) & (starts < indices.size)]
            same_row[starts - 1] = False
            if np.any(step[same_row] <= 0):
                raise ValueError(
                    "adjacency is not canonical CSR (rows not sorted unique)"
                )
            # Symmetry: the directed pair set must be closed under swap.
            lo = src < indices
            forward = src[lo] * n + indices[lo]
            backward = indices[~lo] * n + src[~lo]
            if forward.size != backward.size or not np.array_equal(
                forward, np.sort(backward)
            ):
                raise ValueError("adjacency is not canonical CSR (asymmetric)")
            # Rows are sorted by (src, dst), so `forward` is already the
            # lexicographically sorted u < v edge list.
            edges = np.column_stack([src[lo], indices[lo]])
        else:
            edges = np.empty((0, 2), dtype=np.int64)

        if labels is None:
            labels_arr = np.zeros(n, dtype=np.int64)
        else:
            labels_arr = np.array(labels, dtype=np.int64, copy=True)
            if labels_arr.shape != (n,):
                raise ValueError(
                    f"labels must have length {n}, got {labels_arr.shape}"
                )
            if labels_arr.size and labels_arr.min() < 0:
                raise ValueError("labels must be non-negative integers")

        return cls._adopt(n, indptr, indices, labels_arr, edges)

    @classmethod
    def _adopt(
        cls,
        n: int,
        indptr: np.ndarray,
        indices: np.ndarray,
        labels: np.ndarray,
        edges: np.ndarray,
    ) -> "Graph":
        """Adopt pre-verified canonical arrays without validation.

        Internal escape hatch for callers that have already proven —
        vectorized, possibly across a whole batch at once — that the
        arrays are exactly what ``__init__`` would derive (see
        ``_from_csr`` and the serve codec's batch decoder).  The arrays
        are adopted as-is and frozen, NOT copied: the caller must hand
        over ownership.
        """
        graph = cls.__new__(cls)
        graph.n = n
        graph._indptr = indptr
        graph._indices = indices
        graph._labels = labels
        graph._edges = edges
        for arr in (indptr, indices, labels, edges):
            arr.flags.writeable = False
        graph._hash = None
        return graph

    # ------------------------------------------------------------------
    # Basic accessors
    # ------------------------------------------------------------------
    @property
    def num_vertices(self) -> int:
        """Number of vertices ``|V|``."""
        return self.n

    @property
    def num_edges(self) -> int:
        """Number of undirected edges ``|E|``."""
        return int(self._edges.shape[0])

    @property
    def labels(self) -> np.ndarray:
        """Read-only ``(n,)`` array of vertex labels."""
        return self._labels

    @property
    def edges(self) -> np.ndarray:
        """Read-only ``(|E|, 2)`` array of edges with ``u < v``."""
        return self._edges

    def neighbors(self, v: int) -> np.ndarray:
        """Sorted read-only neighbor array of vertex ``v``."""
        return self._indices[self._indptr[v] : self._indptr[v + 1]]

    @property
    def csr(self) -> tuple[np.ndarray, np.ndarray]:
        """Read-only CSR adjacency as ``(indptr, indices)``.

        ``indices[indptr[v]:indptr[v+1]]`` is the sorted neighbor list of
        ``v`` — the flat layout the vectorized traversal and WL paths
        gather from without per-vertex Python calls.
        """
        return self._indptr, self._indices

    def degree(self, v: int) -> int:
        """Degree of vertex ``v``."""
        return int(self._indptr[v + 1] - self._indptr[v])

    def degrees(self) -> np.ndarray:
        """``(n,)`` degree sequence."""
        return np.diff(self._indptr)

    def label(self, v: int) -> int:
        """Label of vertex ``v``."""
        return int(self._labels[v])

    def has_edge(self, u: int, v: int) -> bool:
        """True iff the undirected edge ``uv`` exists."""
        nbrs = self.neighbors(u)
        pos = np.searchsorted(nbrs, v)
        return bool(pos < nbrs.size and nbrs[pos] == v)

    def vertices(self) -> range:
        """Iterator over vertex ids ``0 .. n-1``."""
        return range(self.n)

    def __iter__(self) -> Iterator[int]:
        return iter(range(self.n))

    def __len__(self) -> int:
        return self.n

    def __repr__(self) -> str:
        return f"Graph(n={self.n}, m={self.num_edges}, labels={len(set(self._labels.tolist()))})"

    # ------------------------------------------------------------------
    # Structural equality (same vertex ids, edges and labels — NOT
    # isomorphism; see repro.graph.canonical for invariant hashing).
    # ------------------------------------------------------------------
    def __eq__(self, other: object) -> bool:
        if not isinstance(other, Graph):
            return NotImplemented
        return (
            self.n == other.n
            and np.array_equal(self._edges, other._edges)
            and np.array_equal(self._labels, other._labels)
        )

    def __hash__(self) -> int:
        if self._hash is None:
            self._hash = hash(
                (self.n, self._edges.tobytes(), self._labels.tobytes())
            )
        return self._hash

    # ------------------------------------------------------------------
    # Derived structures
    # ------------------------------------------------------------------
    def adjacency_matrix(self, dtype: type = np.float64) -> np.ndarray:
        """Dense ``(n, n)`` symmetric adjacency matrix."""
        a = np.zeros((self.n, self.n), dtype=dtype)
        if self._edges.size:
            a[self._edges[:, 0], self._edges[:, 1]] = 1
            a[self._edges[:, 1], self._edges[:, 0]] = 1
        return a

    def relabel_vertices(self, permutation: np.ndarray | list[int]) -> "Graph":
        """Return an isomorphic copy with vertex ``i`` renamed ``permutation[i]``.

        ``permutation`` must be a permutation of ``0 .. n-1``.  Vertex labels
        travel with their vertices, so the result is isomorphic to ``self``.
        """
        perm = np.asarray(permutation, dtype=np.int64)
        if perm.shape != (self.n,) or not np.array_equal(np.sort(perm), np.arange(self.n)):
            raise ValueError("permutation must be a permutation of 0..n-1")
        new_labels = np.empty(self.n, dtype=np.int64)
        new_labels[perm] = self._labels
        new_edges = [(int(perm[u]), int(perm[v])) for u, v in self._edges]
        return Graph(self.n, new_edges, new_labels)

    def with_labels(self, labels: Iterable[int]) -> "Graph":
        """Return a copy of this graph with replaced vertex labels."""
        return Graph(self.n, [tuple(e) for e in self._edges], labels)

    def induced_subgraph(self, vertices: Iterable[int]) -> "Graph":
        """Subgraph induced by ``vertices`` (renumbered ``0 .. k-1``).

        The vertex order given determines the new ids; labels follow.
        """
        vs = [int(v) for v in vertices]
        if len(set(vs)) != len(vs):
            raise ValueError("vertices must be distinct")
        index = {v: i for i, v in enumerate(vs)}
        sub_edges = []
        for v in vs:
            for u in self.neighbors(v):
                if int(u) in index and v < u:
                    sub_edges.append((index[v], index[int(u)]))
        return Graph(len(vs), sub_edges, [self._labels[v] for v in vs])
