"""Graphlet enumeration, sampling, and exact canonicalisation for k <= 5.

A *graphlet* is a connected induced subgraph of size ``k`` considered up to
isomorphism (Fig. 1 of the paper shows the two connected size-3 graphlets).
The graphlet kernel (Shervashidze et al. 2009) histograms graphlet types;
DeepMap-GK additionally needs *per-vertex* graphlet counts, produced here by
sampling ``q`` graphlets rooted at each vertex (Section 5: "for each vertex,
we randomly sample 20 graphlets of size five").

Canonical forms for ``k <= 5`` are exact: the lexicographically maximal
adjacency bit-string over all ``k!`` vertex permutations (at most 120),
memoised per edge-set so repeated graphlets cost one dict lookup.
"""

from __future__ import annotations

from functools import lru_cache
from itertools import combinations, permutations

import numpy as np

from repro.graph.graph import Graph
from repro.utils.rng import as_rng
from repro.utils.validation import check_positive

__all__ = [
    "canonical_graphlet_code",
    "enumerate_graphlets",
    "sample_rooted_graphlets",
    "count_graphlets_per_vertex",
    "num_connected_graphlets",
]

#: Number of connected non-isomorphic unlabeled graphs on k vertices
#: (OEIS A001349); used for sanity checks in tests.
_CONNECTED_COUNTS = {1: 1, 2: 1, 3: 2, 4: 6, 5: 21}

_MAX_K = 5


def num_connected_graphlets(k: int) -> int:
    """Number of connected graphlet types of size ``k`` (k <= 5)."""
    if k not in _CONNECTED_COUNTS:
        raise ValueError(f"k must be in {sorted(_CONNECTED_COUNTS)}, got {k}")
    return _CONNECTED_COUNTS[k]


@lru_cache(maxsize=65536)
def _canonical_code_cached(k: int, edge_mask: int) -> int:
    """Canonical integer code for the graph on ``k`` vertices with the given
    upper-triangle edge bitmask."""
    # Decode bitmask into adjacency pairs once.
    pairs = list(combinations(range(k), 2))
    adj = [[False] * k for _ in range(k)]
    for bit, (i, j) in enumerate(pairs):
        if edge_mask >> bit & 1:
            adj[i][j] = adj[j][i] = True
    best = -1
    for perm in permutations(range(k)):
        code = 0
        for bit, (i, j) in enumerate(pairs):
            if adj[perm[i]][perm[j]]:
                code |= 1 << bit
        if code > best:
            best = code
    return best


def canonical_graphlet_code(g: Graph, vertices: list[int]) -> tuple[int, int]:
    """Canonical ``(k, code)`` of the subgraph of ``g`` induced by ``vertices``.

    ``code`` identifies the isomorphism type of the *unlabeled* induced
    subgraph; equal codes <=> isomorphic graphlets (exact for k <= 5).
    """
    k = len(vertices)
    if not 1 <= k <= _MAX_K:
        raise ValueError(f"graphlet size must be in 1..{_MAX_K}, got {k}")
    mask = 0
    for bit, (a, b) in enumerate(combinations(range(k), 2)):
        if g.has_edge(vertices[a], vertices[b]):
            mask |= 1 << bit
    return k, _canonical_code_cached(k, mask)


def enumerate_graphlets(g: Graph, k: int) -> dict[tuple[int, int], int]:
    """Exhaustively count connected graphlets of size ``k`` in ``g``.

    Returns a ``{(k, canonical_code): count}`` histogram over *connected*
    induced subgraphs.  Exponential in ``k``; intended for small graphs and
    ``k <= 4`` (the tests and the Fig. 1 demo).
    """
    if not 1 <= k <= _MAX_K:
        raise ValueError(f"k must be in 1..{_MAX_K}, got {k}")
    counts: dict[tuple[int, int], int] = {}
    for vertices in combinations(range(g.n), k):
        vs = list(vertices)
        if not _is_connected_subset(g, vs):
            continue
        key = canonical_graphlet_code(g, vs)
        counts[key] = counts.get(key, 0) + 1
    return counts


def sample_rooted_graphlets(
    g: Graph,
    root: int,
    k: int,
    q: int,
    seed: int | np.random.Generator | None = None,
) -> list[tuple[int, int]]:
    """Sample ``q`` connected graphlets of size <= ``k`` containing ``root``.

    Each sample grows a connected vertex set from ``root`` by repeatedly
    adding a uniformly random neighbor of the current set, mirroring the
    neighborhood-sampling scheme of Shervashidze et al. (2009).  If the
    root's component has fewer than ``k`` vertices the grown set saturates
    at the component, so smaller graphlet types can occur.

    Returns the list of ``(size, canonical_code)`` keys (length ``q``).
    """
    check_positive("q", q)
    if not 1 <= k <= _MAX_K:
        raise ValueError(f"k must be in 1..{_MAX_K}, got {k}")
    rng = as_rng(seed)
    samples: list[tuple[int, int]] = []
    for _ in range(q):
        current = [root]
        member = {root}
        frontier = [int(u) for u in g.neighbors(root)]
        while len(current) < k and frontier:
            pick = int(frontier.pop(rng.integers(0, len(frontier))))
            if pick in member:
                continue
            member.add(pick)
            current.append(pick)
            for u in g.neighbors(pick):
                if int(u) not in member:
                    frontier.append(int(u))
        samples.append(canonical_graphlet_code(g, current))
    return samples


def count_graphlets_per_vertex(
    g: Graph,
    k: int,
    q: int,
    seed: int | np.random.Generator | None = None,
) -> list[dict[tuple[int, int], int]]:
    """Histogram of sampled rooted graphlet types for every vertex of ``g``.

    This is the vertex feature map of DeepMap-GK before vocabulary
    alignment (Definition 3 with graphlet substructures).
    """
    rng = as_rng(seed)
    out: list[dict[tuple[int, int], int]] = []
    for v in range(g.n):
        hist: dict[tuple[int, int], int] = {}
        for key in sample_rooted_graphlets(g, v, k, q, rng):
            hist[key] = hist.get(key, 0) + 1
        out.append(hist)
    return out


def _is_connected_subset(g: Graph, vertices: list[int]) -> bool:
    """True iff the induced subgraph on ``vertices`` is connected."""
    if not vertices:
        return False
    member = set(vertices)
    stack = [vertices[0]]
    seen = {vertices[0]}
    while stack:
        v = stack.pop()
        for u in g.neighbors(v):
            ui = int(u)
            if ui in member and ui not in seen:
                seen.add(ui)
                stack.append(ui)
    return len(seen) == len(member)
