"""Graph products.

The direct (tensor) product underlies the random-walk kernel: walks in
``G1 x G2`` correspond to simultaneous label-compatible walks in both
factors, so ``K_rw(G1, G2)`` is a weighted walk count in the product —
:mod:`repro.kernels.random_walk` exploits this implicitly via matrix
products, and these explicit constructions let tests verify it directly.
The Cartesian product is included as the other standard construction.
"""

from __future__ import annotations

from repro.graph.graph import Graph

__all__ = ["direct_product", "cartesian_product", "product_vertex_pairs"]


def product_vertex_pairs(g1: Graph, g2: Graph, match_labels: bool = True) -> list[tuple[int, int]]:
    """Vertex set of the (label-compatible) product: pairs ``(u, v)``."""
    pairs = []
    for u in range(g1.n):
        for v in range(g2.n):
            if not match_labels or g1.label(u) == g2.label(v):
                pairs.append((u, v))
    return pairs


def direct_product(g1: Graph, g2: Graph, match_labels: bool = True) -> tuple[Graph, list[tuple[int, int]]]:
    """Direct (tensor) product on label-compatible vertex pairs.

    ``(u1, v1) ~ (u2, v2)`` iff ``u1 ~ u2`` in G1 *and* ``v1 ~ v2`` in G2.
    Returns the product graph (vertex labels inherited from the matched
    pair) and the pair list indexing its vertices.
    """
    pairs = product_vertex_pairs(g1, g2, match_labels)
    index = {p: i for i, p in enumerate(pairs)}
    edges = set()
    for a1, b1 in g1.edges:
        for a2, b2 in g2.edges:
            for (u1, u2) in ((int(a1), int(b1)), (int(b1), int(a1))):
                for (v1, v2) in ((int(a2), int(b2)), (int(b2), int(a2))):
                    p, q = (u1, v1), (u2, v2)
                    if p in index and q in index:
                        i, j = index[p], index[q]
                        if i != j:
                            edges.add((min(i, j), max(i, j)))
    labels = [g1.label(u) for u, _ in pairs]
    return Graph(len(pairs), sorted(edges), labels), pairs


def cartesian_product(g1: Graph, g2: Graph) -> tuple[Graph, list[tuple[int, int]]]:
    """Cartesian product: ``(u1, v1) ~ (u2, v2)`` iff one coordinate is
    equal and the other adjacent.  All vertex pairs are included."""
    pairs = product_vertex_pairs(g1, g2, match_labels=False)
    index = {p: i for i, p in enumerate(pairs)}
    edges = set()
    for u in range(g1.n):
        for a, b in g2.edges:
            i, j = index[(u, int(a))], index[(u, int(b))]
            edges.add((min(i, j), max(i, j)))
    for v in range(g2.n):
        for a, b in g1.edges:
            i, j = index[(int(a), v)], index[(int(b), v)]
            edges.add((min(i, j), max(i, j)))
    labels = [g1.label(u) for u, _ in pairs]
    return Graph(len(pairs), sorted(edges), labels), pairs
