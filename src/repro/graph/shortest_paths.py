"""All-pairs shortest path distances.

The shortest-path kernel (Borgwardt & Kriegel 2005) reduces each graph to
its shortest-path distance matrix.  The paper cites Floyd-Warshall
(O(n^3)); for the unweighted benchmark graphs batched BFS gives identical
results faster, so both are provided and cross-checked in tests.

:func:`apsp_bfs` runs all sources at once through
:func:`repro.graph.traversal.bfs_distances_batch` (level-synchronous
frontier-matrix expansion); the original one-Python-BFS-per-vertex loop
is preserved as :func:`_reference_apsp_bfs` for the equivalence harness.
"""

from __future__ import annotations

import numpy as np

from repro.graph.graph import Graph
from repro.graph.traversal import bfs_distances_batch, _reference_bfs_distances

__all__ = ["apsp_bfs", "apsp_floyd_warshall", "UNREACHABLE"]

#: Sentinel distance for unreachable vertex pairs.
UNREACHABLE = -1


def apsp_bfs(g: Graph) -> np.ndarray:
    """All-pairs hop distances via batched multi-source BFS.

    Returns an ``(n, n)`` integer matrix with ``UNREACHABLE`` (-1) marking
    disconnected pairs and zeros on the diagonal.
    """
    return bfs_distances_batch(g)


def apsp_floyd_warshall(g: Graph) -> np.ndarray:
    """All-pairs hop distances via Floyd-Warshall (reference implementation)."""
    inf = np.iinfo(np.int64).max // 4
    dist = np.full((g.n, g.n), inf, dtype=np.int64)
    np.fill_diagonal(dist, 0)
    for u, v in g.edges:
        dist[u, v] = 1
        dist[v, u] = 1
    for k in range(g.n):
        # Vectorised relaxation over all (i, j) through k.
        via_k = dist[:, k : k + 1] + dist[k : k + 1, :]
        np.minimum(dist, via_k, out=dist)
    dist[dist >= inf // 2] = UNREACHABLE
    return dist


def _reference_apsp_bfs(g: Graph) -> np.ndarray:
    """Original per-source Python-queue APSP (oracle for tests/equivalence)."""
    dist = np.empty((g.n, g.n), dtype=np.int64)
    for v in range(g.n):
        dist[v] = _reference_bfs_distances(g, v)
    return dist
