"""Breadth-first traversal primitives.

DeepMap's receptive fields (Algorithm 1, lines 15-19) expand a BFS frontier
hop by hop; :func:`bfs_layers` yields the hop structure that
``repro.core.receptive_field`` consumes.
"""

from __future__ import annotations

from collections import deque
from collections.abc import Iterator

import numpy as np

from repro.graph.graph import Graph

__all__ = ["bfs_order", "bfs_layers", "bfs_distances", "connected_components"]


def bfs_order(g: Graph, source: int) -> list[int]:
    """Vertices reachable from ``source`` in BFS visitation order."""
    return [v for layer in bfs_layers(g, source) for v in layer]


def bfs_layers(g: Graph, source: int) -> Iterator[list[int]]:
    """Yield BFS layers ``[source], one-hop, two-hop, ...`` from ``source``.

    Within a layer, vertices appear in ascending id order (deterministic);
    callers re-rank layers by centrality as the paper prescribes.
    """
    if not 0 <= source < g.n:
        raise ValueError(f"source {source} out of range for n={g.n}")
    visited = np.zeros(g.n, dtype=bool)
    visited[source] = True
    frontier = [source]
    while frontier:
        yield frontier
        nxt: list[int] = []
        for v in frontier:
            for u in g.neighbors(v):
                if not visited[u]:
                    visited[u] = True
                    nxt.append(int(u))
        frontier = sorted(nxt)


def bfs_distances(g: Graph, source: int) -> np.ndarray:
    """Hop distance from ``source`` to every vertex (-1 if unreachable)."""
    dist = np.full(g.n, -1, dtype=np.int64)
    dist[source] = 0
    queue: deque[int] = deque([source])
    while queue:
        v = queue.popleft()
        for u in g.neighbors(v):
            if dist[u] < 0:
                dist[u] = dist[v] + 1
                queue.append(int(u))
    return dist


def connected_components(g: Graph) -> list[list[int]]:
    """Connected components as sorted vertex lists, ordered by least vertex."""
    seen = np.zeros(g.n, dtype=bool)
    comps: list[list[int]] = []
    for start in range(g.n):
        if seen[start]:
            continue
        comp = []
        queue: deque[int] = deque([start])
        seen[start] = True
        while queue:
            v = queue.popleft()
            comp.append(v)
            for u in g.neighbors(v):
                if not seen[u]:
                    seen[u] = True
                    queue.append(int(u))
        comps.append(sorted(comp))
    return comps
