"""Breadth-first traversal primitives.

DeepMap's receptive fields (Algorithm 1, lines 15-19) expand a BFS frontier
hop by hop; :func:`bfs_layers` yields the hop structure that
``repro.core.receptive_field`` consumes.

The public functions are vectorized: frontiers are numpy arrays expanded
by ragged CSR gathers (:func:`bfs_layers`, :func:`bfs_distances`) or, for
all sources at once, by level-synchronous adjacency-matrix products
(:func:`bfs_distances_batch`).  The original queue-based implementations
are preserved as ``_reference_*`` oracles; ``tests/equivalence`` asserts
the vectorized paths match them bitwise.
"""

from __future__ import annotations

from collections import deque
from collections.abc import Iterator

import numpy as np

from repro.graph.graph import Graph

__all__ = [
    "bfs_order",
    "bfs_layers",
    "bfs_distances",
    "bfs_distances_batch",
    "connected_components",
]

#: Above this vertex count the dense (n, n) frontier matmul of
#: :func:`bfs_distances_batch` stops paying for itself; fall back to one
#: vectorized CSR sweep per source.
_DENSE_BATCH_MAX_N = 512


def _frontier_neighbors(
    indptr: np.ndarray, indices: np.ndarray, frontier: np.ndarray
) -> np.ndarray:
    """Concatenated neighbor ids of every vertex in ``frontier`` (ragged gather)."""
    starts = indptr[frontier]
    counts = indptr[frontier + 1] - starts
    total = int(counts.sum())
    if total == 0:
        return np.empty(0, dtype=indices.dtype)
    # Flat positions starts[i] + (0 .. counts[i]-1) for every frontier vertex.
    base = np.repeat(starts - np.concatenate(([0], np.cumsum(counts)[:-1])), counts)
    return indices[base + np.arange(total)]


def bfs_order(g: Graph, source: int) -> list[int]:
    """Vertices reachable from ``source`` in BFS visitation order."""
    return [v for layer in bfs_layers(g, source) for v in layer]


def bfs_layers(g: Graph, source: int) -> Iterator[list[int]]:
    """Yield BFS layers ``[source], one-hop, two-hop, ...`` from ``source``.

    Within a layer, vertices appear in ascending id order (deterministic);
    callers re-rank layers by centrality as the paper prescribes.
    """
    if not 0 <= source < g.n:
        raise ValueError(f"source {source} out of range for n={g.n}")
    indptr, indices = g.csr
    visited = np.zeros(g.n, dtype=bool)
    visited[source] = True
    frontier = np.array([source], dtype=np.int64)
    while frontier.size:
        yield frontier.tolist()
        nbrs = _frontier_neighbors(indptr, indices, frontier)
        nbrs = nbrs[~visited[nbrs]]
        frontier = np.unique(nbrs)
        visited[frontier] = True


def bfs_distances(g: Graph, source: int) -> np.ndarray:
    """Hop distance from ``source`` to every vertex (-1 if unreachable)."""
    if not 0 <= source < g.n:
        raise ValueError(f"source {source} out of range for n={g.n}")
    indptr, indices = g.csr
    dist = np.full(g.n, -1, dtype=np.int64)
    dist[source] = 0
    frontier = np.array([source], dtype=np.int64)
    d = 0
    while frontier.size:
        d += 1
        nbrs = _frontier_neighbors(indptr, indices, frontier)
        nbrs = nbrs[dist[nbrs] < 0]
        frontier = np.unique(nbrs)
        dist[frontier] = d
    return dist


def bfs_distances_batch(g: Graph, sources: np.ndarray | None = None) -> np.ndarray:
    """Hop distances from many sources at once.

    Returns an ``(s, n)`` integer matrix (``s = len(sources)``, all
    vertices when ``sources`` is ``None``) with -1 marking unreachable
    pairs.  Small graphs run one level-synchronous expansion for *all*
    sources simultaneously — each BFS level is a single dense
    frontier-matrix x adjacency-matrix product — which is what makes
    batched receptive-field assembly and APSP fast at benchmark scale.
    Large graphs fall back to one CSR frontier sweep per source.
    """
    n = g.n
    if sources is None:
        src = np.arange(n, dtype=np.int64)
    else:
        src = np.asarray(sources, dtype=np.int64)
        if src.size and (src.min() < 0 or src.max() >= n):
            raise ValueError(f"sources out of range for n={n}")
    s = src.shape[0]
    if n == 0 or s == 0:
        return np.full((s, n), -1, dtype=np.int64)
    if n > _DENSE_BATCH_MAX_N:
        return np.stack([bfs_distances(g, int(v)) for v in src])
    adj = g.adjacency_matrix(dtype=np.float64)
    dist = np.full((s, n), -1, dtype=np.int64)
    dist[np.arange(s), src] = 0
    visited = np.zeros((s, n), dtype=bool)
    visited[np.arange(s), src] = True
    frontier = visited.copy()
    d = 0
    while True:
        d += 1
        reached = (frontier.astype(np.float64) @ adj) > 0.0
        new = reached & ~visited
        if not new.any():
            break
        dist[new] = d
        visited |= new
        frontier = new
    return dist


def connected_components(g: Graph) -> list[list[int]]:
    """Connected components as sorted vertex lists, ordered by least vertex."""
    seen = np.zeros(g.n, dtype=bool)
    comps: list[list[int]] = []
    for start in range(g.n):
        if seen[start]:
            continue
        comp = []
        queue: deque[int] = deque([start])
        seen[start] = True
        while queue:
            v = queue.popleft()
            comp.append(v)
            for u in g.neighbors(v):
                if not seen[u]:
                    seen[u] = True
                    queue.append(int(u))
        comps.append(sorted(comp))
    return comps


# ----------------------------------------------------------------------
# Reference oracles (original queue-based implementations), kept for the
# differential-equivalence harness in tests/equivalence.
# ----------------------------------------------------------------------

def _reference_bfs_layers(g: Graph, source: int) -> Iterator[list[int]]:
    """Original per-vertex BFS layer generator (oracle)."""
    if not 0 <= source < g.n:
        raise ValueError(f"source {source} out of range for n={g.n}")
    visited = np.zeros(g.n, dtype=bool)
    visited[source] = True
    frontier = [source]
    while frontier:
        yield frontier
        nxt: list[int] = []
        for v in frontier:
            for u in g.neighbors(v):
                if not visited[u]:
                    visited[u] = True
                    nxt.append(int(u))
        frontier = sorted(nxt)


def _reference_bfs_distances(g: Graph, source: int) -> np.ndarray:
    """Original queue-based single-source distances (oracle)."""
    dist = np.full(g.n, -1, dtype=np.int64)
    dist[source] = 0
    queue: deque[int] = deque([source])
    while queue:
        v = queue.popleft()
        for u in g.neighbors(v):
            if dist[u] < 0:
                dist[u] = dist[v] + 1
                queue.append(int(u))
    return dist
