"""Graph kernels: the three R-convolution kernels DeepMap builds on
(GK, SP, WL) plus the comparison kernels of Table 3 (RetGK, DGK, GNTK)
and the random-walk kernels discussed in Section 6."""

from repro.kernels.base import (
    ExplicitFeatureKernel,
    GraphKernel,
    normalize_gram,
    validate_gram,
)
from repro.kernels.deep_graph_kernel import DeepGraphKernel, SkipGramEmbedding
from repro.kernels.gntk import GraphNeuralTangentKernel
from repro.kernels.graphlet import ExhaustiveGraphletKernel, GraphletKernel
from repro.kernels.optimal_assignment import WLOptimalAssignmentKernel
from repro.kernels.random_walk import HighOrderRandomWalkKernel, RandomWalkKernel
from repro.kernels.tree_pp import TreePlusPlusKernel
from repro.kernels.retgk import ReturnProbabilityKernel, return_probability_features
from repro.kernels.shortest_path import ShortestPathKernel
from repro.kernels.weisfeiler_lehman import WeisfeilerLehmanKernel

__all__ = [
    "GraphKernel",
    "ExplicitFeatureKernel",
    "normalize_gram",
    "validate_gram",
    "GraphletKernel",
    "ExhaustiveGraphletKernel",
    "ShortestPathKernel",
    "WeisfeilerLehmanKernel",
    "RandomWalkKernel",
    "HighOrderRandomWalkKernel",
    "ReturnProbabilityKernel",
    "return_probability_features",
    "DeepGraphKernel",
    "SkipGramEmbedding",
    "GraphNeuralTangentKernel",
    "TreePlusPlusKernel",
    "WLOptimalAssignmentKernel",
]
