"""Graph kernel base classes and gram-matrix utilities.

Two kernel families appear in the paper's evaluation:

* *explicit-feature* R-convolution kernels (GK, SP, WL) whose gram matrix
  is a dot product of count vectors — :class:`ExplicitFeatureKernel`;
* *implicit* kernels (random walk, RetGK, GNTK, DGK) that define the gram
  matrix pairwise — they subclass :class:`GraphKernel` directly.

Both produce a symmetric positive-semidefinite gram matrix over a list of
graphs; SVM training then indexes rows/columns per cross-validation fold.
"""

from __future__ import annotations

from abc import ABC, abstractmethod

import numpy as np

from repro.features.vertex_maps import VertexFeatureExtractor, graph_feature_maps
from repro.graph.graph import Graph

__all__ = ["GraphKernel", "ExplicitFeatureKernel", "normalize_gram", "validate_gram"]


class GraphKernel(ABC):
    """A positive-semidefinite similarity function on graphs."""

    #: identifier used in benchmark reports
    name: str = "kernel"

    @abstractmethod
    def gram(self, graphs: list[Graph]) -> np.ndarray:
        """Symmetric ``(n, n)`` gram matrix over ``graphs``."""

    def normalized_gram(self, graphs: list[Graph]) -> np.ndarray:
        """Gram matrix with unit diagonal (cosine normalisation)."""
        return normalize_gram(self.gram(graphs))


class ExplicitFeatureKernel(GraphKernel):
    """Kernel defined by an explicit substructure count feature map.

    ``K(G_i, G_j) = <phi(G_i), phi(G_j)>`` with ``phi`` from Equation 1 /
    Equation 7 (sum of the vertex feature maps of the wrapped extractor).
    """

    def __init__(self, extractor: VertexFeatureExtractor) -> None:
        self.extractor = extractor
        self.name = extractor.name

    def feature_map(self, graphs: list[Graph]) -> np.ndarray:
        """Explicit ``(n_graphs, m)`` feature-map matrix."""
        phi, _ = graph_feature_maps(graphs, self.extractor)
        return phi

    def gram(self, graphs: list[Graph]) -> np.ndarray:
        """One GEMM over the stacked per-graph feature rows.

        Bitwise-equal to the per-pair assembly of :meth:`_reference_gram`
        because every ``phi`` entry is an integer-valued substructure
        count: all products and partial sums stay below 2^53, where
        float64 arithmetic is exact under any association order, so BLAS
        blocking cannot drift (pinned in
        ``tests/equivalence/test_gram_equiv.py``).
        """
        return self._assemble_gram(self.feature_map(graphs))

    def _reference_gram(self, graphs: list[Graph]) -> np.ndarray:
        """Per-pair gram assembly (oracle for tests/equivalence)."""
        return self._reference_assemble_gram(self.feature_map(graphs))

    @staticmethod
    def _assemble_gram(phi: np.ndarray) -> np.ndarray:
        """The assembly step alone: one GEMM over stacked feature rows."""
        return phi @ phi.T

    @staticmethod
    def _reference_assemble_gram(phi: np.ndarray) -> np.ndarray:
        """Original assembly: one Python-loop dot product per (i, j)
        pair — the oracle the benchmark's ``gram_assembly`` stage times
        the GEMM against (feature extraction, common to both, excluded)."""
        n = phi.shape[0]
        k = np.zeros((n, n), dtype=np.float64)
        for i in range(n):
            for j in range(i, n):
                k[i, j] = k[j, i] = float(np.dot(phi[i], phi[j]))
        return k


def normalize_gram(k: np.ndarray, eps: float = 1e-12) -> np.ndarray:
    """Cosine-normalise a gram matrix: ``K'_ij = K_ij / sqrt(K_ii K_jj)``.

    Rows/columns with (near-)zero self-similarity are left zero except for
    a unit diagonal, so the result is still PSD with unit diagonal.
    """
    k = np.asarray(k, dtype=np.float64)
    if k.ndim != 2 or k.shape[0] != k.shape[1]:
        raise ValueError(f"gram matrix must be square, got shape {k.shape}")
    diag = np.diag(k).copy()
    safe = np.where(diag > eps, diag, 1.0)
    scale = 1.0 / np.sqrt(safe)
    out = k * scale[:, None] * scale[None, :]
    zero = diag <= eps
    if zero.any():
        out[zero, :] = 0.0
        out[:, zero] = 0.0
    np.fill_diagonal(out, 1.0)
    return out


def validate_gram(k: np.ndarray, tol: float = 1e-8) -> None:
    """Raise ``ValueError`` if ``k`` is not symmetric PSD within ``tol``.

    Used by tests and by the SVM layer in strict mode
    (``KernelSVC(validate=True)`` runs it on every training gram slice).
    """
    if not np.allclose(k, k.T, atol=tol):
        raise ValueError("gram matrix is not symmetric")
    eigvals = np.linalg.eigvalsh((k + k.T) / 2.0)
    if eigvals.size and eigvals.min() < -tol * max(1.0, abs(eigvals.max())):
        raise ValueError(f"gram matrix is not PSD (min eigenvalue {eigvals.min():g})")
