"""DGK — Deep Graph Kernels (Yanardag & Vishwanathan, KDD 2015).

DGK replaces the identity substructure-similarity matrix of an
R-convolution kernel with ``M = E E^T`` where ``E`` holds latent
substructure embeddings learned with language-model techniques:

    K(G1, G2) = phi(G1) M phi(G2)^T = <phi(G1) E, phi(G2) E>

Because ``M`` factors, we compute the PSD gram matrix directly from the
projected features ``phi E``.

The embedding model is a from-scratch skip-gram with negative sampling
(no gensim offline): the "corpus" contains one sentence per graph listing
its substructure words (WL colors across iterations, per vertex), and
words co-occurring within a sentence window are trained to be similar —
mirroring DGK's corpus construction for deep WL kernels.
"""

from __future__ import annotations

import numpy as np

from repro.features.vertex_maps import (
    VertexFeatureExtractor,
    WLVertexFeatures,
    graph_feature_maps,
)
from repro.graph.graph import Graph
from repro.kernels.base import GraphKernel
from repro.utils.rng import as_rng
from repro.utils.validation import check_positive

__all__ = ["DeepGraphKernel", "SkipGramEmbedding"]


class SkipGramEmbedding:
    """Skip-gram with negative sampling over integer-token sentences.

    A minimal word2vec: for each (center, context) pair drawn from a
    sliding window, maximise ``sigma(e_c . o_x)`` against ``k`` negative
    samples drawn from the unigram distribution raised to 3/4.
    """

    def __init__(
        self,
        dim: int = 16,
        window: int = 5,
        negatives: int = 5,
        epochs: int = 3,
        lr: float = 0.05,
        seed: int | None = 0,
    ) -> None:
        check_positive("dim", dim)
        check_positive("window", window)
        check_positive("negatives", negatives)
        check_positive("epochs", epochs)
        check_positive("lr", lr)
        self.dim = dim
        self.window = window
        self.negatives = negatives
        self.epochs = epochs
        self.lr = lr
        self.seed = seed

    def fit(self, sentences: list[list[int]], vocab_size: int) -> np.ndarray:
        """Train and return the ``(vocab_size, dim)`` input embedding matrix."""
        rng = as_rng(self.seed)
        scale = 1.0 / self.dim
        e_in = rng.uniform(-scale, scale, size=(vocab_size, self.dim))
        e_out = np.zeros((vocab_size, self.dim))

        counts = np.bincount(
            np.concatenate([np.asarray(s, dtype=np.int64) for s in sentences if s])
            if any(sentences)
            else np.zeros(0, dtype=np.int64),
            minlength=vocab_size,
        ).astype(np.float64)
        noise = counts**0.75
        total = noise.sum()
        noise = noise / total if total > 0 else np.full(vocab_size, 1.0 / vocab_size)

        for _ in range(self.epochs):
            order = rng.permutation(len(sentences))
            for si in order:
                sentence = sentences[si]
                for pos, center in enumerate(sentence):
                    lo = max(0, pos - self.window)
                    hi = min(len(sentence), pos + self.window + 1)
                    for ctx_pos in range(lo, hi):
                        if ctx_pos == pos:
                            continue
                        self._update(
                            e_in, e_out, center, sentence[ctx_pos], noise, rng
                        )
        return e_in

    def _update(
        self,
        e_in: np.ndarray,
        e_out: np.ndarray,
        center: int,
        context: int,
        noise: np.ndarray,
        rng: np.random.Generator,
    ) -> None:
        negs = rng.choice(noise.size, size=self.negatives, p=noise)
        targets = np.concatenate([[context], negs])
        labels = np.zeros(targets.size)
        labels[0] = 1.0
        v = e_in[center]
        u = e_out[targets]
        scores = 1.0 / (1.0 + np.exp(-np.clip(u @ v, -35.0, 35.0)))
        grad = (scores - labels)[:, None]
        e_in[center] -= self.lr * (grad * u).sum(axis=0)
        e_out[targets] -= self.lr * grad * v[None, :]


class DeepGraphKernel(GraphKernel):
    """Deep WL kernel: substructure embeddings modulate the base kernel.

    Parameters
    ----------
    extractor:
        Vertex feature extractor whose keys become the vocabulary
        (default: WL subtrees with h=2, the paper's strongest DGK variant).
    embedding:
        The skip-gram trainer; pass a configured
        :class:`SkipGramEmbedding` to tune dims/epochs.
    """

    name = "dgk"

    def __init__(
        self,
        extractor: VertexFeatureExtractor | None = None,
        embedding: SkipGramEmbedding | None = None,
    ) -> None:
        self.extractor = extractor if extractor is not None else WLVertexFeatures(h=2)
        self.embedding = embedding if embedding is not None else SkipGramEmbedding()

    def gram(self, graphs: list[Graph]) -> np.ndarray:
        phi, vocab = graph_feature_maps(graphs, self.extractor)
        sentences = self._sentences(graphs, vocab)
        e = self.embedding.fit(sentences, vocab.size)
        projected = phi @ e
        return projected @ projected.T

    def _sentences(self, graphs: list[Graph], vocab) -> list[list[int]]:
        """One sentence per graph: its substructure tokens in vertex order."""
        per_graph_counts = self.extractor.extract(graphs)
        sentences: list[list[int]] = []
        for vertex_counts in per_graph_counts:
            sentence: list[int] = []
            for counter in vertex_counts:
                for key, count in sorted(counter.items(), key=lambda kv: repr(kv[0])):
                    if key in vocab:
                        sentence.extend([vocab.index(key)] * int(count))
            sentences.append(sentence)
        return sentences
