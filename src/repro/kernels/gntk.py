"""GNTK — Graph Neural Tangent Kernel (Du et al., NeurIPS 2019).

The GNTK is the kernel induced by an infinitely wide GNN trained by
gradient descent.  For a pair of graphs it is computed by a closed-form
recursion over two matrices indexed by vertex pairs ``(u in G1, v in G2)``:

* ``sigma`` — the GP covariance of the network's activations;
* ``theta`` — the tangent kernel accumulated across layers.

Each *block* performs a neighborhood-aggregation step

    sigma <- c_u * c_v * sum_{u' in N(u) U {u}} sum_{v' in N(v) U {v}} sigma[u', v']

(with ``c_u = 1 / (deg(u) + 1)`` scaling) followed by ``R`` infinitely wide
ReLU MLP layers, each applying the arc-cosine kernel recursion.  The final
graph kernel is the sum over all vertex pairs (sum readout).

Diagonal ``sigma`` terms for (G, G) pairs are precomputed per graph so the
pairwise recursion only tracks the cross matrix.
"""

from __future__ import annotations

import numpy as np

from repro.graph.graph import Graph
from repro.kernels.base import GraphKernel
from repro.utils.validation import check_positive

__all__ = ["GraphNeuralTangentKernel"]


def _aggregate(mat: np.ndarray, agg1: np.ndarray, agg2: np.ndarray) -> np.ndarray:
    """Neighborhood aggregation of a (n1, n2) pair matrix on both sides."""
    return agg1 @ mat @ agg2.T


def _relu_recursion(
    sigma: np.ndarray, diag1: np.ndarray, diag2: np.ndarray
) -> tuple[np.ndarray, np.ndarray]:
    """One infinite-width ReLU layer: new sigma and its derivative kernel.

    Uses the arc-cosine kernel of degree 1:
        sigma' = (s / 2pi) * (sin t + (pi - t) cos t),  cos t = sigma / s
        dot    = (pi - t) / (2 pi)
    with ``s = sqrt(diag1 diag2)``.
    """
    norms = np.sqrt(np.outer(np.maximum(diag1, 1e-12), np.maximum(diag2, 1e-12)))
    cos = np.clip(sigma / norms, -1.0, 1.0)
    theta = np.arccos(cos)
    new_sigma = norms * (np.sin(theta) + (np.pi - theta) * cos) / (2.0 * np.pi)
    dot = (np.pi - theta) / (2.0 * np.pi)
    return new_sigma, dot


class GraphNeuralTangentKernel(GraphKernel):
    """GNTK with ``blocks`` aggregation blocks of ``mlp_layers`` ReLU layers.

    Parameters
    ----------
    blocks:
        Number of aggregation blocks (GNN depth); paper tunes in {1..3}.
    mlp_layers:
        Infinite-width MLP layers per block (paper: 1..3).
    scale_by_degree:
        Use ``c_u = 1/(deg+1)`` scaling (True, the paper's "degree
        normalisation") or plain sums (False).
    """

    name = "gntk"

    def __init__(
        self,
        blocks: int = 2,
        mlp_layers: int = 2,
        scale_by_degree: bool = True,
    ) -> None:
        check_positive("blocks", blocks)
        check_positive("mlp_layers", mlp_layers)
        self.blocks = blocks
        self.mlp_layers = mlp_layers
        self.scale_by_degree = scale_by_degree

    # ------------------------------------------------------------------
    def _agg_matrix(self, g: Graph) -> np.ndarray:
        """(A + I) with optional 1/(deg+1) row scaling."""
        a = g.adjacency_matrix() + np.eye(g.n)
        if self.scale_by_degree:
            a = a / a.sum(axis=1, keepdims=True)
        return a

    def _init_sigma(self, g1: Graph, g2: Graph) -> np.ndarray:
        """sigma_0[u, v] = <h_u, h_v> for one-hot label features."""
        return (g1.labels[:, None] == g2.labels[None, :]).astype(np.float64)

    def _diagonals(self, g: Graph) -> list[np.ndarray]:
        """Per-layer diagonal sigma values for the (g, g) pair.

        Returns a flat list with one ``(n,)`` diagonal per ReLU layer, in
        the order the pairwise recursion consumes them.
        """
        agg = self._agg_matrix(g)
        sigma = self._init_sigma(g, g)
        diags: list[np.ndarray] = []
        for _ in range(self.blocks):
            sigma = _aggregate(sigma, agg, agg)
            for _ in range(self.mlp_layers):
                d = np.diag(sigma).copy()
                diags.append(d)
                sigma, _ = _relu_recursion(sigma, d, d)
        return diags

    def _pair(
        self,
        g1: Graph,
        g2: Graph,
        agg1: np.ndarray,
        agg2: np.ndarray,
        diags1: list[np.ndarray],
        diags2: list[np.ndarray],
    ) -> float:
        sigma = self._init_sigma(g1, g2)
        theta = sigma.copy()
        layer = 0
        for _ in range(self.blocks):
            sigma = _aggregate(sigma, agg1, agg2)
            theta = _aggregate(theta, agg1, agg2)
            for _ in range(self.mlp_layers):
                new_sigma, dot = _relu_recursion(sigma, diags1[layer], diags2[layer])
                theta = theta * dot + new_sigma
                sigma = new_sigma
                layer += 1
        return float(theta.sum())

    def gram(self, graphs: list[Graph]) -> np.ndarray:
        aggs = [self._agg_matrix(g) for g in graphs]
        diags = [self._diagonals(g) for g in graphs]
        n = len(graphs)
        k = np.zeros((n, n), dtype=np.float64)
        for i in range(n):
            for j in range(i, n):
                k[i, j] = k[j, i] = self._pair(
                    graphs[i], graphs[j], aggs[i], aggs[j], diags[i], diags[j]
                )
        return k
