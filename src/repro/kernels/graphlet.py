"""Graphlet kernel (GK) — Shervashidze et al., AISTATS 2009.

Decomposes graphs into connected size-``k`` graphlets; the paper's variant
samples a fixed number of rooted graphlets per vertex (Section 5: 20
samples of size 5), and we reuse exactly those vertex feature maps so that
DeepMap-GK and the GK baseline see the same substructure statistics.

An exhaustive (non-sampled) variant is provided for small graphs and for
testing the sampler's consistency.
"""

from __future__ import annotations

import numpy as np

from repro.features.vertex_maps import GraphletVertexFeatures
from repro.graph.graph import Graph
from repro.graph.graphlets import enumerate_graphlets
from repro.kernels.base import ExplicitFeatureKernel, GraphKernel

__all__ = ["GraphletKernel", "ExhaustiveGraphletKernel"]


class GraphletKernel(ExplicitFeatureKernel):
    """Sampled graphlet kernel.

    Parameters
    ----------
    k:
        Graphlet size, 3..5 (paper selects from {3, 4, 5}).
    samples:
        Rooted samples per vertex (paper: 20).
    seed:
        Sampling seed (fixed by default for reproducible gram matrices).
    """

    def __init__(self, k: int = 5, samples: int = 20, seed: int | None = 0) -> None:
        super().__init__(GraphletVertexFeatures(k=k, samples=samples, seed=seed))
        self.name = "gk"


class ExhaustiveGraphletKernel(GraphKernel):
    """Exact graphlet kernel by exhaustive enumeration (small graphs only)."""

    name = "gk-exact"

    def __init__(self, k: int = 3) -> None:
        if not 1 <= k <= 5:
            raise ValueError(f"k must be in 1..5, got {k}")
        self.k = k

    def feature_map(self, graphs: list[Graph]) -> np.ndarray:
        histograms = [enumerate_graphlets(g, self.k) for g in graphs]
        keys = sorted({key for h in histograms for key in h})
        index = {key: i for i, key in enumerate(keys)}
        phi = np.zeros((len(graphs), len(keys)), dtype=np.float64)
        for row, hist in enumerate(histograms):
            for key, count in hist.items():
                phi[row, index[key]] = count
        return phi

    def gram(self, graphs: list[Graph]) -> np.ndarray:
        phi = self.feature_map(graphs)
        return phi @ phi.T
