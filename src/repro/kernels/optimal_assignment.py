"""WL optimal assignment kernel (Kriege, Giscard & Wilson, NeurIPS 2016).

Reference [21] of the paper: the optimal assignment between two graphs'
vertices under the WL color hierarchy has a closed form — the histogram
intersection of color counts summed over all refinement iterations:

    K(G1, G2) = sum_{i=0..h} sum_{color c} min(n_c^i(G1), n_c^i(G2))

The min (histogram-intersection) kernel is positive semidefinite, and
because the colors form a hierarchy (iteration i+1 refines iteration i),
this value equals the optimal vertex assignment score.

Colors come from :func:`repro.features.wl_stable_colors`, whose stable
hashes align identical subtree patterns across graphs with no shared
dictionary.
"""

from __future__ import annotations

from collections import Counter

import numpy as np

from repro.features.vertex_maps import wl_stable_colors
from repro.graph.graph import Graph
from repro.kernels.base import GraphKernel

__all__ = ["WLOptimalAssignmentKernel"]


class WLOptimalAssignmentKernel(GraphKernel):
    """Histogram-intersection WL kernel (valid optimal assignment)."""

    name = "wl-oa"

    def __init__(self, h: int = 3) -> None:
        if h < 0:
            raise ValueError(f"h must be >= 0, got {h}")
        self.h = h

    def _histograms(self, g: Graph) -> list[Counter]:
        return [Counter(colors) for colors in wl_stable_colors(g, self.h)]

    def gram(self, graphs: list[Graph]) -> np.ndarray:
        histograms = [self._histograms(g) for g in graphs]
        n = len(graphs)
        k = np.zeros((n, n), dtype=np.float64)
        for i in range(n):
            for j in range(i, n):
                total = 0.0
                for hi, hj in zip(histograms[i], histograms[j]):
                    small, large = (hi, hj) if len(hi) <= len(hj) else (hj, hi)
                    total += sum(
                        min(count, large[color])
                        for color, count in small.items()
                        if color in large
                    )
                k[i, j] = k[j, i] = total
        return k
