"""WL optimal assignment kernel (Kriege, Giscard & Wilson, NeurIPS 2016).

Reference [21] of the paper: the optimal assignment between two graphs'
vertices under the WL color hierarchy has a closed form — the histogram
intersection of color counts summed over all refinement iterations:

    K(G1, G2) = sum_{i=0..h} sum_{color c} min(n_c^i(G1), n_c^i(G2))

The min (histogram-intersection) kernel is positive semidefinite, and
because the colors form a hierarchy (iteration i+1 refines iteration i),
this value equals the optimal vertex assignment score.

Colors come from :func:`repro.features.wl_stable_colors`, whose stable
hashes align identical subtree patterns across graphs with no shared
dictionary.
"""

from __future__ import annotations

from collections import Counter

import numpy as np

from repro.features.vertex_maps import wl_stable_colors, wl_stable_colors_many
from repro.graph.graph import Graph
from repro.kernels.base import GraphKernel

__all__ = ["WLOptimalAssignmentKernel"]


class WLOptimalAssignmentKernel(GraphKernel):
    """Histogram-intersection WL kernel (valid optimal assignment).

    The gram value depends only on the *partition* each WL iteration
    induces (which vertices share a color, within and across graphs),
    never on the numeric color values — so it is bitwise-invariant under
    color-scheme changes such as the blake2b → splitmix64 radix remap of
    :func:`repro.features.wl_stable_colors_many`
    (``tests/equivalence/test_gram_equiv.py`` pins the values).
    """

    name = "wl-oa"

    #: Upper bound on ``rows x graphs x colors`` int64 elements held live
    #: by one chunk of the vectorized histogram intersection (~32 MiB).
    _CHUNK_ELEMENTS = 4_000_000

    def __init__(self, h: int = 3) -> None:
        if h < 0:
            raise ValueError(f"h must be >= 0, got {h}")
        self.h = h

    def _histograms(self, g: Graph) -> list[Counter]:
        return [Counter(colors) for colors in wl_stable_colors(g, self.h)]

    def gram(self, graphs: list[Graph]) -> np.ndarray:
        """Vectorized count-matrix assembly.

        Per iteration, one ``np.unique`` over the dataset's flat colors
        builds a ``(n_graphs, n_colors)`` integer count matrix; the
        histogram intersection collapses to
        ``min(a, b) = (a + b - |a - b|) / 2`` summed over colors, i.e.
        row-sum broadcasts minus a pairwise L1 distance, computed in row
        chunks.  All arithmetic is exact (integer counts, halved even
        integers), so the result is *bitwise* equal to the per-pair
        Counter assembly kept as :meth:`_reference_gram`.
        """
        n = len(graphs)
        k = np.zeros((n, n), dtype=np.float64)
        if n == 0:
            return k
        tables = wl_stable_colors_many(graphs, self.h)
        sizes = np.asarray([g.n for g in graphs], dtype=np.int64)
        gid = np.repeat(np.arange(n), sizes)
        for it in range(self.h + 1):
            flat = np.asarray(
                [c for table in tables for c in table[it]], dtype=np.uint64
            )
            if flat.size == 0:
                continue
            _, codes = np.unique(flat, return_inverse=True)
            codes = codes.ravel()
            n_colors = int(codes.max()) + 1
            counts = np.bincount(
                gid * n_colors + codes, minlength=n * n_colors
            ).reshape(n, n_colors)
            totals = counts.sum(axis=1)  # == sizes (one color per vertex)
            chunk = max(1, self._CHUNK_ELEMENTS // max(1, n * n_colors))
            for lo in range(0, n, chunk):
                hi = min(lo + chunk, n)
                l1 = np.abs(counts[lo:hi, None, :] - counts[None, :, :]).sum(axis=2)
                k[lo:hi] += 0.5 * (totals[lo:hi, None] + totals[None, :] - l1)
        return k

    def _reference_gram(self, graphs: list[Graph]) -> np.ndarray:
        """Original per-pair Counter assembly (oracle for tests/equivalence)."""
        histograms = [self._histograms(g) for g in graphs]
        n = len(graphs)
        k = np.zeros((n, n), dtype=np.float64)
        for i in range(n):
            for j in range(i, n):
                total = 0.0
                for hi, hj in zip(histograms[i], histograms[j]):
                    small, large = (hi, hj) if len(hi) <= len(hj) else (hj, hi)
                    total += sum(
                        min(count, large[color])
                        for color, count in small.items()
                        if color in large
                    )
                k[i, j] = k[j, i] = total
        return k
