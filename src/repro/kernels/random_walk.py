"""Label-aware random walk kernel (direct-product formulation).

Section 6 of the paper discusses random walk kernels (Gaertner et al. 2003;
Kashima et al. 2003) as the canonical example of an R-convolution kernel
that only sees first-order transitions.  We implement the ``p``-step
geometric direct-product kernel:

    K(G1, G2) = sum_{t=0..p} lambda^t  1^T  W_x^t  1

where ``W_x`` is the adjacency matrix of the direct-product graph on
label-compatible vertex pairs.  Computed by iterated matrix-vector
products, so each pair costs ``O(p * e1 * e2 / n)`` without materialising
``W_x^t``.

The higher-order extension the paper proposes as future work is also
provided: :class:`HighOrderRandomWalkKernel` walks on the ``s``-step
transition matrix ``P^s`` instead of ``P``, capturing multi-hop
interactions in a single walk step.
"""

from __future__ import annotations

import numpy as np

from repro.graph.graph import Graph
from repro.kernels.base import GraphKernel
from repro.utils.validation import check_positive

__all__ = ["RandomWalkKernel", "HighOrderRandomWalkKernel"]


class RandomWalkKernel(GraphKernel):
    """Geometric ``p``-step random walk kernel with label matching.

    Parameters
    ----------
    steps:
        Number of walk steps ``p`` (finite truncation of the geometric
        series; walks of length 0..p are counted).
    decay:
        Geometric decay ``lambda``; must keep the series bounded, the
        truncated sum is always finite so any positive value is accepted.
    """

    name = "rw"

    def __init__(self, steps: int = 4, decay: float = 0.1) -> None:
        check_positive("steps", steps)
        check_positive("decay", decay)
        self.steps = steps
        self.decay = decay

    def _pair(self, g1: Graph, g2: Graph) -> float:
        # Compatibility matrix C[u, v] = 1 iff labels match.
        compat = (g1.labels[:, None] == g2.labels[None, :]).astype(np.float64)
        if not compat.any():
            return 0.0
        a1 = g1.adjacency_matrix()
        a2 = g2.adjacency_matrix()
        # State x[u, v]: weight mass on product vertex (u, v).
        x = compat.copy()
        total = x.sum()  # t = 0 term
        factor = 1.0
        for _ in range(self.steps):
            # One product-graph step: x <- (A1 x A2) masked to compatible pairs.
            x = (a1 @ x @ a2) * compat
            factor *= self.decay
            total += factor * x.sum()
        return float(total)

    def gram(self, graphs: list[Graph]) -> np.ndarray:
        n = len(graphs)
        k = np.zeros((n, n), dtype=np.float64)
        for i in range(n):
            for j in range(i, n):
                k[i, j] = k[j, i] = self._pair(graphs[i], graphs[j])
        return k


class HighOrderRandomWalkKernel(RandomWalkKernel):
    """Random walk kernel on the ``order``-step transition structure.

    Replaces each graph's adjacency with the row-normalised ``order``-th
    transition matrix ``P^order`` (thresholded back to a weighted dense
    matrix), so a single walk step spans ``order`` hops — the "high-order
    transition matrix" extension sketched in Section 6.
    """

    name = "rw-ho"

    def __init__(self, steps: int = 4, decay: float = 0.1, order: int = 2) -> None:
        super().__init__(steps=steps, decay=decay)
        check_positive("order", order)
        self.order = order

    def _transition_power(self, g: Graph) -> np.ndarray:
        a = g.adjacency_matrix()
        deg = a.sum(axis=1)
        deg[deg == 0] = 1.0
        p = a / deg[:, None]
        return np.linalg.matrix_power(p, self.order)

    def _pair(self, g1: Graph, g2: Graph) -> float:
        compat = (g1.labels[:, None] == g2.labels[None, :]).astype(np.float64)
        if not compat.any():
            return 0.0
        p1 = self._transition_power(g1)
        p2 = self._transition_power(g2)
        x = compat.copy()
        total = x.sum()
        factor = 1.0
        for _ in range(self.steps):
            x = (p1 @ x @ p2.T) * compat
            factor *= self.decay
            total += factor * x.sum()
        return float(total)
