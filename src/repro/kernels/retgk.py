"""RetGK — graph kernels from return probabilities of random walks
(Zhang et al., NeurIPS 2018).

Each vertex ``v`` is described by its *return probability feature* (RPF)

    rp(v) = [ (P^1)_{vv}, (P^2)_{vv}, ..., (P^S)_{vv} ]

where ``P = D^{-1} A`` is the random-walk transition matrix.  The RPF is an
isomorphism-invariant structural role descriptor.  Graphs are compared by
the (label-aware) maximum mean discrepancy embedding with an RBF kernel on
RPF vectors:

    K(G1, G2) = (1 / (n1 * n2)) * sum_{u in G1} sum_{v in G2}
                delta(l(u), l(v)) * exp(-gamma * ||rp(u) - rp(v)||^2)

This is the RetGK-I variant of the paper restricted to discrete vertex
labels, which is what the benchmark datasets provide.
"""

from __future__ import annotations

import numpy as np

from repro.graph.graph import Graph
from repro.kernels.base import GraphKernel
from repro.utils.validation import check_positive

__all__ = ["ReturnProbabilityKernel", "return_probability_features"]


def return_probability_features(g: Graph, steps: int) -> np.ndarray:
    """``(n, steps)`` matrix of return probabilities for walks of 1..steps."""
    check_positive("steps", steps)
    a = g.adjacency_matrix()
    deg = a.sum(axis=1)
    deg[deg == 0] = 1.0
    p = a / deg[:, None]
    out = np.empty((g.n, steps), dtype=np.float64)
    power = np.eye(g.n)
    for s in range(steps):
        power = power @ p
        out[:, s] = np.diag(power)
    return out


class ReturnProbabilityKernel(GraphKernel):
    """RetGK-I with discrete labels and an RBF kernel on RPF vectors.

    Parameters
    ----------
    steps:
        Random-walk horizon ``S`` (paper uses 50; smaller horizons retain
        nearly all signal on the benchmark graph sizes).
    gamma:
        RBF bandwidth; ``None`` selects the median heuristic over all
        pairwise RPF distances in the dataset.
    use_labels:
        If True (default), only label-matching vertex pairs contribute.
    """

    name = "retgk"

    def __init__(
        self,
        steps: int = 16,
        gamma: float | None = None,
        use_labels: bool = True,
    ) -> None:
        check_positive("steps", steps)
        if gamma is not None:
            check_positive("gamma", gamma)
        self.steps = steps
        self.gamma = gamma
        self.use_labels = use_labels

    #: Row-block budget (vertices) for the stacked-GEMM gram assembly.
    _BLOCK_VERTICES = 1024

    def gram(self, graphs: list[Graph]) -> np.ndarray:
        """Stacked-GEMM gram assembly.

        All RPF matrices are vstacked into one ``(total_vertices, steps)``
        matrix; squared distances come from one GEMM per row block
        (``_BLOCK_VERTICES`` rows at a time, bounding memory), and the
        per-pair double sums collapse to two ``np.add.reduceat`` segment
        reductions over the graph boundaries.  The result is symmetrized
        explicitly (``(B + B^T) / 2``) because blocked BLAS products are
        not exactly symmetric.

        Values match :meth:`_reference_gram` to ulp precision only: BLAS
        reassociates the GEMM and ``reduceat`` reassociates the sums, and
        ``exp`` amplifies those last-bit differences.  The documented
        bound (``tests/equivalence/test_gram_equiv.py``) is
        ``rtol=1e-9``.
        """
        feats = [return_probability_features(g, self.steps) for g in graphs]
        gamma = self.gamma if self.gamma is not None else self._median_gamma(feats)
        n = len(graphs)
        k = np.zeros((n, n), dtype=np.float64)
        nonempty = [i for i in range(n) if graphs[i].n > 0]
        if not nonempty:
            return k
        sizes = np.asarray([graphs[i].n for i in nonempty], dtype=np.int64)
        stacked = np.concatenate([feats[i] for i in nonempty], axis=0)
        labels = np.concatenate([graphs[i].labels for i in nonempty])
        starts = np.concatenate(([0], np.cumsum(sizes)[:-1]))
        sq_norms = (stacked**2).sum(axis=1)
        block = np.empty((len(nonempty), len(nonempty)), dtype=np.float64)
        gi_lo = 0
        while gi_lo < len(nonempty):
            # Grow the row block graph by graph up to the vertex budget
            # (always at least one graph, so oversized graphs still fit).
            gi_hi = gi_lo + 1
            while (
                gi_hi < len(nonempty)
                and starts[gi_hi] + sizes[gi_hi] - starts[gi_lo]
                <= self._BLOCK_VERTICES
            ):
                gi_hi += 1
            lo = int(starts[gi_lo])
            hi = int(starts[gi_hi - 1] + sizes[gi_hi - 1])
            sq = (
                sq_norms[lo:hi, None]
                + sq_norms[None, :]
                - 2.0 * (stacked[lo:hi] @ stacked.T)
            )
            rbf = np.exp(-gamma * np.maximum(sq, 0.0))
            if self.use_labels:
                rbf *= labels[lo:hi, None] == labels[None, :]
            # Collapse vertex rows/columns to graph blocks: one segment
            # sum over columns, one over the block's own row segments.
            cols = np.add.reduceat(rbf, starts, axis=1)  # (hi - lo, G)
            block[gi_lo:gi_hi] = np.add.reduceat(cols, starts[gi_lo:gi_hi] - lo, axis=0)
            gi_lo = gi_hi
        block /= sizes[:, None] * sizes[None, :]
        k[np.ix_(nonempty, nonempty)] = 0.5 * (block + block.T)
        return k

    def _reference_gram(self, graphs: list[Graph]) -> np.ndarray:
        """Original per-pair assembly (oracle for tests/equivalence)."""
        feats = [return_probability_features(g, self.steps) for g in graphs]
        gamma = self.gamma if self.gamma is not None else self._median_gamma(feats)
        n = len(graphs)
        k = np.zeros((n, n), dtype=np.float64)
        for i in range(n):
            for j in range(i, n):
                k[i, j] = k[j, i] = self._pair(
                    graphs[i], feats[i], graphs[j], feats[j], gamma
                )
        return k

    def _pair(
        self,
        g1: Graph,
        f1: np.ndarray,
        g2: Graph,
        f2: np.ndarray,
        gamma: float,
    ) -> float:
        if g1.n == 0 or g2.n == 0:
            return 0.0
        sq = (
            (f1**2).sum(axis=1)[:, None]
            + (f2**2).sum(axis=1)[None, :]
            - 2.0 * f1 @ f2.T
        )
        rbf = np.exp(-gamma * np.maximum(sq, 0.0))
        if self.use_labels:
            rbf = rbf * (g1.labels[:, None] == g2.labels[None, :])
        return float(rbf.sum() / (g1.n * g2.n))

    @staticmethod
    def _median_gamma(feats: list[np.ndarray]) -> float:
        """Median-heuristic bandwidth over a subsample of RPF vectors."""
        stacked = np.concatenate([f for f in feats if f.size], axis=0)
        if stacked.shape[0] > 512:
            idx = np.linspace(0, stacked.shape[0] - 1, 512).astype(int)
            stacked = stacked[idx]
        diffs = stacked[:, None, :] - stacked[None, :, :]
        sq = (diffs**2).sum(axis=-1)
        med = np.median(sq[np.triu_indices_from(sq, k=1)]) if sq.shape[0] > 1 else 1.0
        return 1.0 / max(float(med), 1e-8)
