"""Shortest-path kernel (SP) — Borgwardt & Kriegel, ICDM 2005.

Counts pairs of shortest paths with equal (source label, sink label,
length) triplets.  Built on the same vertex feature maps DeepMap-SP uses,
so Equation 7 ties the two implementations together: the SP gram matrix is
the dot product of summed vertex maps.
"""

from __future__ import annotations

from repro.features.vertex_maps import ShortestPathVertexFeatures
from repro.kernels.base import ExplicitFeatureKernel

__all__ = ["ShortestPathKernel"]


class ShortestPathKernel(ExplicitFeatureKernel):
    """Shortest-path triplet kernel.

    Parameters
    ----------
    max_distance:
        Optional truncation of path lengths; ``None`` (default) matches
        the paper.  Each unordered shortest path is counted once per
        orientation, which scales the classic SP kernel by a constant
        factor of 4 and therefore leaves the normalised kernel and the
        SVM decision boundary unchanged.
    """

    def __init__(self, max_distance: int | None = None) -> None:
        super().__init__(ShortestPathVertexFeatures(max_distance=max_distance))
        self.name = "sp"
