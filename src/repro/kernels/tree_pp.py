"""Tree++ — truncated-BFS-tree path-pattern kernel (Ye et al. 2019).

Reference [8] of the paper: compares graphs at multiple granularities by
summing path-pattern kernels over increasing super-path orders.  The
order-0 component counts raw label paths; order-``k`` components replace
labels with WL colors of depth ``k``, so a single path position encodes
a whole subtree.
"""

from __future__ import annotations

import numpy as np

from repro.features.path_patterns import PathPatternVertexFeatures
from repro.features.vertex_maps import graph_feature_maps
from repro.graph.graph import Graph
from repro.kernels.base import GraphKernel
from repro.utils.validation import check_positive

__all__ = ["TreePlusPlusKernel"]


class TreePlusPlusKernel(GraphKernel):
    """Multi-granularity path-pattern kernel.

    ``K = sum_{k=0..max_order} <phi_k(G1), phi_k(G2)>`` where ``phi_k``
    counts super paths of order ``k``.  A sum of explicit-feature kernels
    is PSD.

    Parameters
    ----------
    depth:
        BFS truncation depth of each path-pattern component (paper uses
        up to 6).
    max_order:
        Largest super-path order ``k`` (0 = plain path patterns).
    """

    name = "treepp"

    def __init__(self, depth: int = 2, max_order: int = 2) -> None:
        check_positive("depth", depth)
        if max_order < 0:
            raise ValueError(f"max_order must be >= 0, got {max_order}")
        self.depth = depth
        self.max_order = max_order

    def gram(self, graphs: list[Graph]) -> np.ndarray:
        total = np.zeros((len(graphs), len(graphs)), dtype=np.float64)
        for order in range(self.max_order + 1):
            extractor = PathPatternVertexFeatures(
                depth=self.depth, super_path_h=order
            )
            phi, _ = graph_feature_maps(graphs, extractor)
            total += phi @ phi.T
        return total
