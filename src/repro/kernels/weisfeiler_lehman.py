"""Weisfeiler-Lehman subtree kernel (WL) — Shervashidze et al., JMLR 2011.

Counts common compressed labels across ``h`` rounds of WL color
refinement, run jointly over the dataset so colors align across graphs.
The feature map is the concatenation over iterations (Equation 5), which
is exactly the vertex-map sum produced by
:class:`repro.features.WLVertexFeatures`.

The extractor relabels the whole dataset through the batched array path
(:func:`repro.features.wl_stable_colors_many`): neighbor colors are
gathered and sorted over one flat CSR layout and each distinct signature
is hashed once per dataset, so the kernel's cost is dominated by the
final Gram product rather than per-vertex Python loops.
"""

from __future__ import annotations

from repro.features.vertex_maps import WLVertexFeatures
from repro.kernels.base import ExplicitFeatureKernel

__all__ = ["WeisfeilerLehmanKernel"]


class WeisfeilerLehmanKernel(ExplicitFeatureKernel):
    """WL subtree kernel with ``h`` refinement iterations (paper: 0..5)."""

    def __init__(self, h: int = 3) -> None:
        super().__init__(WLVertexFeatures(h=h))
        self.name = "wl"
        self.h = h
