"""From-scratch numpy neural-network framework (TensorFlow/Keras substitute).

Layers cache activations on ``forward`` and implement exact gradients on
``backward``; the trainer reproduces the paper's optimisation protocol
(RMSprop, plateau decay, mini-batches).
"""

from repro.nn.activations import ReLU, Sigmoid, Tanh
from repro.nn.batchnorm import BatchNorm
from repro.nn.callbacks import (
    CheckpointCallback,
    EarlyStopping,
    clip_gradients,
    global_grad_norm,
)
from repro.nn.conv1d import Conv1D
from repro.nn.dense import Dense
from repro.nn.dropout import Dropout
from repro.nn.initializers import glorot_uniform, he_normal, zeros
from repro.nn.losses import SoftmaxCrossEntropy, softmax
from repro.nn.model import (
    History,
    Trainer,
    predict_labels,
    predict_logits,
    predict_proba,
)
from repro.nn.module import Layer, Network, Parameter, Sequential
from repro.nn.optimizers import SGD, Adam, Optimizer, RMSprop
from repro.nn.pooling import (
    Flatten,
    GlobalMaxPool1D,
    MaskedSumPool1D,
    MaxPool1D,
    MeanPool1D,
    SumPool1D,
)
from repro.nn.schedulers import ReduceLROnPlateau

__all__ = [
    "Parameter",
    "Layer",
    "Network",
    "Sequential",
    "Dense",
    "Conv1D",
    "ReLU",
    "Tanh",
    "Sigmoid",
    "Dropout",
    "BatchNorm",
    "EarlyStopping",
    "CheckpointCallback",
    "clip_gradients",
    "global_grad_norm",
    "SumPool1D",
    "MeanPool1D",
    "MaxPool1D",
    "GlobalMaxPool1D",
    "MaskedSumPool1D",
    "Flatten",
    "SoftmaxCrossEntropy",
    "softmax",
    "glorot_uniform",
    "he_normal",
    "zeros",
    "Optimizer",
    "SGD",
    "RMSprop",
    "Adam",
    "ReduceLROnPlateau",
    "History",
    "Trainer",
    "predict_logits",
    "predict_labels",
    "predict_proba",
]
