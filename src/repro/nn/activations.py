"""Element-wise activation layers."""

from __future__ import annotations

import numpy as np

from repro.nn.module import Layer

__all__ = ["ReLU", "Tanh", "Sigmoid"]


class ReLU(Layer):
    """Rectified linear unit: ``max(x, 0)``."""

    def __init__(self) -> None:
        self._mask: np.ndarray | None = None

    def forward(self, x: np.ndarray, training: bool = False) -> np.ndarray:
        self._mask = x > 0
        return np.where(self._mask, x, 0.0)

    def backward(self, grad: np.ndarray) -> np.ndarray:
        assert self._mask is not None
        return np.where(self._mask, grad, 0.0)


class Tanh(Layer):
    """Hyperbolic tangent (DGCNN's graph-convolution nonlinearity)."""

    def __init__(self) -> None:
        self._out: np.ndarray | None = None

    def forward(self, x: np.ndarray, training: bool = False) -> np.ndarray:
        self._out = np.tanh(x)
        return self._out

    def backward(self, grad: np.ndarray) -> np.ndarray:
        assert self._out is not None
        return grad * (1.0 - self._out**2)


class Sigmoid(Layer):
    """Logistic sigmoid."""

    def __init__(self) -> None:
        self._out: np.ndarray | None = None

    def forward(self, x: np.ndarray, training: bool = False) -> np.ndarray:
        self._out = 1.0 / (1.0 + np.exp(-np.clip(x, -500, 500)))
        return self._out

    def backward(self, grad: np.ndarray) -> np.ndarray:
        assert self._out is not None
        return grad * self._out * (1.0 - self._out)
