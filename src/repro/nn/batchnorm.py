"""Batch normalisation.

The original GIN stacks BatchNorm after every MLP; providing it makes
the GIN baseline configurable to its paper-faithful form and is a
standard tool users expect from the framework.
"""

from __future__ import annotations

import numpy as np

from repro.nn.module import Layer, Parameter
from repro.utils.validation import check_positive

__all__ = ["BatchNorm"]


class BatchNorm(Layer):
    """Normalise the last axis over all leading (batch) axes.

    Training uses batch statistics and updates exponential running
    estimates; inference uses the running estimates — identical semantics
    to Keras/PyTorch BatchNorm1d for ``(B, F)`` and ``(B, L, F)`` inputs.
    """

    def __init__(
        self, num_features: int, momentum: float = 0.9, eps: float = 1e-5
    ) -> None:
        check_positive("num_features", num_features)
        check_positive("eps", eps)
        self.gamma = Parameter(np.ones(num_features), name="bn.gamma")
        self.beta = Parameter(np.zeros(num_features), name="bn.beta")
        self.momentum = momentum
        self.eps = eps
        self.running_mean = np.zeros(num_features)
        self.running_var = np.ones(num_features)
        self._cache: tuple | None = None

    def forward(self, x: np.ndarray, training: bool = False) -> np.ndarray:
        if x.shape[-1] != self.gamma.value.size:
            raise ValueError(
                f"expected {self.gamma.value.size} features, got {x.shape[-1]}"
            )
        axes = tuple(range(x.ndim - 1))
        if training:
            mean = x.mean(axis=axes)
            var = x.var(axis=axes)
            self.running_mean = (
                self.momentum * self.running_mean + (1 - self.momentum) * mean
            )
            self.running_var = (
                self.momentum * self.running_var + (1 - self.momentum) * var
            )
        else:
            mean, var = self.running_mean, self.running_var
        std = np.sqrt(var + self.eps)
        x_hat = (x - mean) / std
        self._cache = (x_hat, std, axes, training)
        return self.gamma.value * x_hat + self.beta.value

    def backward(self, grad: np.ndarray) -> np.ndarray:
        assert self._cache is not None
        x_hat, std, axes, training = self._cache
        self.gamma.grad += (grad * x_hat).sum(axis=axes)
        self.beta.grad += grad.sum(axis=axes)
        dx_hat = grad * self.gamma.value
        if not training:
            return dx_hat / std
        # Batch-statistics backward (mean/var depend on x).
        m = np.prod([x_hat.shape[a] for a in axes])
        return (
            dx_hat - dx_hat.mean(axis=axes) - x_hat * (dx_hat * x_hat).mean(axis=axes)
        ) / std

    def parameters(self) -> list[Parameter]:
        return [self.gamma, self.beta]

    def state(self) -> dict:
        # Running statistics are buffers, not Parameters; inference after
        # a resume is only identical if they travel with the checkpoint.
        return {
            "running_mean": self.running_mean.copy(),
            "running_var": self.running_var.copy(),
        }

    def load_state(self, state: dict) -> None:
        self.running_mean = np.asarray(state["running_mean"], dtype=np.float64).copy()
        self.running_var = np.asarray(state["running_var"], dtype=np.float64).copy()
