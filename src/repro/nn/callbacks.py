"""Training callbacks: early stopping, checkpointing, gradient clipping."""

from __future__ import annotations

import numpy as np

from repro.nn.module import Parameter
from repro.utils.validation import check_positive

__all__ = [
    "EarlyStopping",
    "CheckpointCallback",
    "clip_gradients",
    "global_grad_norm",
]


class EarlyStopping:
    """Stop training when a monitored value stops improving.

    Used through ``Trainer(..., early_stopping=EarlyStopping(...))``;
    monitors the epoch loss by default or validation accuracy when
    ``monitor="val_accuracy"``.
    """

    def __init__(
        self,
        patience: int = 10,
        min_delta: float = 1e-4,
        monitor: str = "loss",
    ) -> None:
        check_positive("patience", patience)
        if monitor not in ("loss", "val_accuracy"):
            raise ValueError(f"unknown monitor {monitor!r}")
        self.patience = patience
        self.min_delta = min_delta
        self.monitor = monitor
        self._best: float | None = None
        self._bad = 0

    def should_stop(self, history) -> bool:
        """Record the latest epoch; True when patience is exhausted."""
        series = history.loss if self.monitor == "loss" else history.val_accuracy
        if not series:
            return False
        value = series[-1]
        improving = (
            self._best is None
            or (self.monitor == "loss" and value < self._best - self.min_delta)
            or (self.monitor == "val_accuracy" and value > self._best + self.min_delta)
        )
        if improving:
            self._best = value
            self._bad = 0
            return False
        self._bad += 1
        return self._bad >= self.patience

    def state_dict(self) -> dict:
        """Patience-tracking state for checkpoint/resume."""
        return {
            "best": None if self._best is None else float(self._best),
            "bad": int(self._bad),
        }

    def load_state_dict(self, state: dict) -> None:
        """Restore a :meth:`state_dict` export."""
        best = state["best"]
        self._best = None if best is None else float(best)
        self._bad = int(state["bad"])


class CheckpointCallback:
    """Saves the trainer's full state every ``every`` epochs.

    Used through ``Trainer(...).fit(..., checkpoint=CheckpointCallback(
    manager))``; ``manager`` is any object with a ``save(step, state)``
    method — normally a
    :class:`repro.resilience.checkpoint.CheckpointManager`, whose
    snapshots ``Trainer.fit(resume_from=...)`` can restart from with
    bitwise-identical results.
    """

    def __init__(self, manager, every: int = 1) -> None:
        check_positive("every", every)
        if not hasattr(manager, "save"):
            raise TypeError("manager must expose save(step, state)")
        self.manager = manager
        self.every = every

    def __call__(self, epoch: int, state: dict):
        """Invoked by the trainer at each epoch boundary with its state."""
        if (epoch + 1) % self.every:
            return None
        return self.manager.save(epoch, state)


def global_grad_norm(params: list[Parameter]) -> float:
    """Global L2 norm of all parameter gradients."""
    return float(np.sqrt(sum(float((p.grad**2).sum()) for p in params)))


def clip_gradients(params: list[Parameter], max_norm: float) -> float:
    """Scale all gradients so their global L2 norm is at most ``max_norm``.

    Returns the pre-clip norm; the :class:`~repro.nn.model.Trainer`
    records it per epoch in ``History.grad_norm`` so exploding-gradient
    runs are diagnosable.
    """
    check_positive("max_norm", max_norm)
    total = global_grad_norm(params)
    if total > max_norm and total > 0:
        scale = max_norm / total
        for p in params:
            p.grad *= scale
    return total
