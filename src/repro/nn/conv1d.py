"""One-dimensional convolution over vertex sequences.

DeepMap's first layer slides a width-``r`` kernel with stride ``r`` over
the concatenated receptive fields, exactly like PATCHY-SAN's field-aligned
convolution; the later layers use width-1 kernels (per-position mixing).
Implemented with an im2col gather so forward and backward are single
matrix multiplications.

Both DeepMap configurations (``stride == kernel_size == r`` and the
width-1 layers) have non-overlapping windows, so the im2col "gather" is a
zero-copy reshape and the backward scatter is a single vectorized
fancy-index add — no ``np.add.at`` (which dispatches per element) on the
hot path.  The original gather/scatter implementation is preserved as
:func:`_reference_conv1d_forward` / :func:`_reference_conv1d_backward`;
``tests/equivalence`` pins the fast paths to it bitwise and
finite-difference-checks the gradients.
"""

from __future__ import annotations

import numpy as np

from repro.nn.initializers import glorot_uniform, zeros
from repro.nn.module import Layer, Parameter
from repro.utils.rng import as_rng
from repro.utils.validation import check_positive

__all__ = ["Conv1D"]


class Conv1D(Layer):
    """1-D convolution on ``(batch, length, channels)`` inputs.

    Parameters
    ----------
    in_channels, out_channels:
        Channel widths.
    kernel_size:
        Window width.
    stride:
        Step between windows.  DeepMap layer 1 uses ``stride ==
        kernel_size == r`` so each output position sees exactly one
        receptive field.
    use_bias:
        Disable so all-zero windows (dummy vertices) produce all-zero
        outputs.
    """

    def __init__(
        self,
        in_channels: int,
        out_channels: int,
        kernel_size: int,
        stride: int = 1,
        use_bias: bool = True,
        rng: np.random.Generator | int | None = None,
    ) -> None:
        check_positive("in_channels", in_channels)
        check_positive("out_channels", out_channels)
        check_positive("kernel_size", kernel_size)
        check_positive("stride", stride)
        rng = as_rng(rng)
        fan_in = kernel_size * in_channels
        self.kernel_size = kernel_size
        self.stride = stride
        self.in_channels = in_channels
        self.out_channels = out_channels
        self.weight = Parameter(
            glorot_uniform((fan_in, out_channels), fan_in, out_channels, rng),
            name="conv1d.weight",
        )
        self.bias = (
            Parameter(zeros((out_channels,)), name="conv1d.bias") if use_bias else None
        )
        self._cols: np.ndarray | None = None
        self._idx: np.ndarray | None = None
        self._in_shape: tuple[int, ...] | None = None

    def output_length(self, length: int) -> int:
        """Number of output positions for an input of ``length``."""
        if length < self.kernel_size:
            raise ValueError(
                f"input length {length} shorter than kernel {self.kernel_size}"
            )
        return (length - self.kernel_size) // self.stride + 1

    def forward(self, x: np.ndarray, training: bool = False) -> np.ndarray:
        if x.ndim != 3 or x.shape[2] != self.in_channels:
            raise ValueError(
                f"expected (batch, length, {self.in_channels}), got {x.shape}"
            )
        batch, length, _ = x.shape
        l_out = self.output_length(length)
        # Both branches pin C order before the GEMM: BLAS dispatches
        # differently on strided operands, and a layout-dependent 1-ulp
        # drift would break the bitwise fast-vs-oracle equivalence.
        if self.stride == self.kernel_size and l_out * self.kernel_size == length:
            # Non-overlapping windows tiling the input: im2col is a reshape.
            cols = np.ascontiguousarray(x.reshape(batch, l_out, -1))
            idx = None
        else:
            starts = np.arange(l_out) * self.stride
            idx = starts[:, None] + np.arange(self.kernel_size)[None, :]
            # (batch, l_out, kernel, channels) -> (batch, l_out, kernel*channels)
            cols = np.ascontiguousarray(x[:, idx, :].reshape(batch, l_out, -1))
        self._cols = cols
        self._idx = idx
        self._in_shape = x.shape
        out = cols @ self.weight.value
        if self.bias is not None:
            out = out + self.bias.value
        return out

    def backward(self, grad: np.ndarray) -> np.ndarray:
        assert self._cols is not None
        assert self._in_shape is not None
        batch, length, channels = self._in_shape
        cols2 = self._cols.reshape(-1, self._cols.shape[-1])
        grad2 = grad.reshape(-1, grad.shape[-1])
        self.weight.grad += cols2.T @ grad2
        if self.bias is not None:
            self.bias.grad += grad2.sum(axis=0)
        dcols = grad @ self.weight.value.T
        dx = np.zeros(self._in_shape, dtype=np.float64)
        l_out = grad.shape[1]
        if self._idx is None:
            # Windows tile the input exactly: scatter is one dense add.
            dx += dcols.reshape(self._in_shape)
        elif self.stride >= self.kernel_size:
            # Disjoint windows (possibly with gaps): every input position
            # receives at most one window gradient, so a fancy-index add
            # (unique indices) replaces the per-element np.add.at.
            dx[:, self._idx.ravel(), :] += dcols.reshape(
                batch, l_out * self.kernel_size, channels
            )
        else:
            # Overlapping windows: duplicate indices require add.at.
            np.add.at(
                dx,
                (slice(None), self._idx, slice(None)),
                dcols.reshape(batch, l_out, self.kernel_size, channels),
            )
        return dx

    def parameters(self) -> list[Parameter]:
        return [self.weight] + ([self.bias] if self.bias is not None else [])


# ----------------------------------------------------------------------
# Reference oracles (original gather + add.at implementation), kept for
# the differential-equivalence harness in tests/equivalence.
# ----------------------------------------------------------------------

def _conv1d_im2col(
    x: np.ndarray, kernel_size: int, stride: int
) -> tuple[np.ndarray, np.ndarray]:
    batch, length, _ = x.shape
    l_out = (length - kernel_size) // stride + 1
    starts = np.arange(l_out) * stride
    idx = starts[:, None] + np.arange(kernel_size)[None, :]
    # Pin C order: for some shapes numpy satisfies this reshape with
    # strides instead of a copy, and BLAS results differ at the last ulp
    # between layouts — the oracle must feed the GEMM the same layout
    # the fast paths do or bitwise comparison is ill-posed.
    return np.ascontiguousarray(x[:, idx, :].reshape(batch, l_out, -1)), idx


def _reference_conv1d_forward(
    x: np.ndarray,
    weight: np.ndarray,
    bias: np.ndarray | None,
    kernel_size: int,
    stride: int,
) -> np.ndarray:
    """Original fancy-index im2col forward (oracle)."""
    cols, _ = _conv1d_im2col(x, kernel_size, stride)
    out = cols @ weight
    if bias is not None:
        out = out + bias
    return out


def _reference_conv1d_backward(
    x: np.ndarray,
    weight: np.ndarray,
    grad: np.ndarray,
    kernel_size: int,
    stride: int,
    with_bias: bool = True,
) -> tuple[np.ndarray, np.ndarray, np.ndarray | None]:
    """Original ``np.add.at`` scatter backward (oracle).

    Returns ``(dx, dweight, dbias)`` for one backward pass from zeroed
    gradients (``dbias`` is ``None`` when ``with_bias`` is false).
    """
    batch, length, channels = x.shape
    cols, idx = _conv1d_im2col(x, kernel_size, stride)
    cols2 = cols.reshape(-1, cols.shape[-1])
    grad2 = grad.reshape(-1, grad.shape[-1])
    dweight = cols2.T @ grad2
    dbias = grad2.sum(axis=0) if with_bias else None
    dcols = (grad @ weight.T).reshape(batch, -1, kernel_size, channels)
    dx = np.zeros(x.shape, dtype=np.float64)
    np.add.at(dx, (slice(None), idx, slice(None)), dcols)
    return dx, dweight, dbias
