"""Fully-connected layer."""

from __future__ import annotations

import numpy as np

from repro.nn.initializers import glorot_uniform, zeros
from repro.nn.module import Layer, Parameter
from repro.utils.rng import as_rng
from repro.utils.validation import check_positive

__all__ = ["Dense"]


class Dense(Layer):
    """Affine map on the last axis: ``y = x W + b``.

    Accepts inputs of any rank >= 2; the leading axes are treated as batch
    dimensions (so the same layer applies per-vertex or per-graph).

    Parameters
    ----------
    in_features, out_features:
        Input/output width.
    use_bias:
        Disable for layers that must map zero vectors to zero vectors
        (dummy-vertex propagation, see ``repro.core.architecture``).
    rng:
        Initialisation seed/generator.
    """

    def __init__(
        self,
        in_features: int,
        out_features: int,
        use_bias: bool = True,
        rng: np.random.Generator | int | None = None,
    ) -> None:
        check_positive("in_features", in_features)
        check_positive("out_features", out_features)
        rng = as_rng(rng)
        self.weight = Parameter(
            glorot_uniform((in_features, out_features), in_features, out_features, rng),
            name="dense.weight",
        )
        self.bias = Parameter(zeros((out_features,)), name="dense.bias") if use_bias else None
        self._x: np.ndarray | None = None

    def forward(self, x: np.ndarray, training: bool = False) -> np.ndarray:
        self._x = x
        if not training and x.ndim == 2:
            # Inference must be *batch-composition invariant*: BLAS picks a
            # different GEMM reduction order for narrow outputs depending on
            # the number of rows, so `x @ W` on a fused serving batch would
            # differ in the last bits from the same rows run alone.  One
            # GEMM per sample (a 3D matmul) fixes the summation order per
            # row regardless of batch size.  Training keeps the single
            # fused GEMM: it never mixes batch compositions.
            out = np.matmul(x[:, None, :], self.weight.value)[:, 0, :]
        else:
            out = x @ self.weight.value
        if self.bias is not None:
            out = out + self.bias.value
        return out

    def backward(self, grad: np.ndarray) -> np.ndarray:
        assert self._x is not None, "forward must run before backward"
        x = self._x
        # Collapse leading axes to accumulate parameter gradients.
        x2 = x.reshape(-1, x.shape[-1])
        g2 = grad.reshape(-1, grad.shape[-1])
        self.weight.grad += x2.T @ g2
        if self.bias is not None:
            self.bias.grad += g2.sum(axis=0)
        return grad @ self.weight.value.T

    def parameters(self) -> list[Parameter]:
        return [self.weight] + ([self.bias] if self.bias is not None else [])
