"""Inverted dropout."""

from __future__ import annotations

import numpy as np

from repro.nn.module import Layer
from repro.utils.rng import as_rng
from repro.utils.validation import check_probability

__all__ = ["Dropout"]


class Dropout(Layer):
    """Randomly zero a fraction ``rate`` of activations during training.

    Uses inverted scaling (surviving units divided by the keep
    probability) so inference needs no rescaling — identical to Keras.
    The paper's architecture uses rate 0.5 before the softmax layer.
    """

    def __init__(self, rate: float = 0.5, rng: np.random.Generator | int | None = None) -> None:
        check_probability("rate", rate)
        if rate >= 1.0:
            raise ValueError("dropout rate must be < 1")
        self.rate = rate
        self._rng = as_rng(rng)
        self._mask: np.ndarray | None = None

    def forward(self, x: np.ndarray, training: bool = False) -> np.ndarray:
        if not training or self.rate == 0.0:
            self._mask = None
            return x
        keep = 1.0 - self.rate
        self._mask = (self._rng.random(x.shape) < keep) / keep
        return x * self._mask

    def backward(self, grad: np.ndarray) -> np.ndarray:
        if self._mask is None:
            return grad
        return grad * self._mask

    def state(self) -> dict:
        # The generator's position in its stream: without it, a resumed
        # run would draw different masks and diverge from the
        # uninterrupted run.
        return {"rng": self._rng.bit_generator.state}

    def load_state(self, state: dict) -> None:
        self._rng.bit_generator.state = state["rng"]
