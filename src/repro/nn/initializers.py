"""Weight initialisation schemes."""

from __future__ import annotations

import numpy as np

from repro.utils.rng import as_rng

__all__ = ["glorot_uniform", "he_normal", "zeros"]


def glorot_uniform(
    shape: tuple[int, ...],
    fan_in: int,
    fan_out: int,
    rng: np.random.Generator | int | None = None,
) -> np.ndarray:
    """Glorot/Xavier uniform: U(-limit, limit), limit = sqrt(6/(fan_in+fan_out)).

    Keras's default initializer — used for every dense and conv kernel so
    the architecture matches the paper's Keras implementation.
    """
    rng = as_rng(rng)
    limit = np.sqrt(6.0 / (fan_in + fan_out))
    return rng.uniform(-limit, limit, size=shape)


def he_normal(
    shape: tuple[int, ...],
    fan_in: int,
    rng: np.random.Generator | int | None = None,
) -> np.ndarray:
    """He normal: N(0, sqrt(2/fan_in)) — for ReLU-heavy stacks."""
    rng = as_rng(rng)
    return rng.normal(0.0, np.sqrt(2.0 / fan_in), size=shape)


def zeros(shape: tuple[int, ...]) -> np.ndarray:
    """All-zero initialisation (biases)."""
    return np.zeros(shape, dtype=np.float64)
