"""Loss functions."""

from __future__ import annotations

import numpy as np

__all__ = ["SoftmaxCrossEntropy", "softmax"]


def softmax(logits: np.ndarray) -> np.ndarray:
    """Numerically stable softmax over the last axis."""
    shifted = logits - logits.max(axis=-1, keepdims=True)
    exp = np.exp(shifted)
    return exp / exp.sum(axis=-1, keepdims=True)


class SoftmaxCrossEntropy:
    """Mean softmax cross-entropy with integer class targets.

    ``forward(logits, y)`` returns the scalar loss; ``backward()`` returns
    the gradient w.r.t. the logits (already averaged over the batch).
    """

    def __init__(self) -> None:
        self._probs: np.ndarray | None = None
        self._y: np.ndarray | None = None

    def forward(self, logits: np.ndarray, y: np.ndarray) -> float:
        if logits.ndim != 2:
            raise ValueError(f"logits must be (batch, classes), got {logits.shape}")
        y = np.asarray(y, dtype=np.int64)
        if y.shape != (logits.shape[0],):
            raise ValueError(f"targets shape {y.shape} mismatches batch {logits.shape[0]}")
        if y.min() < 0 or y.max() >= logits.shape[1]:
            raise ValueError("target class out of range")
        probs = softmax(logits)
        self._probs = probs
        self._y = y
        picked = probs[np.arange(y.size), y]
        return float(-np.mean(np.log(np.maximum(picked, 1e-12))))

    def backward(self) -> np.ndarray:
        assert self._probs is not None and self._y is not None
        grad = self._probs.copy()
        grad[np.arange(self._y.size), self._y] -= 1.0
        return grad / self._y.size
