"""Mini-batch training loop with the paper's protocol.

The trainer implements exactly the optimisation recipe of Section 5.1:
RMSprop (lr 0.01), learning-rate halving after 5 epochs without loss
improvement, batch size from {32, 256}, and per-epoch metric history so
the GIN-style epoch-selection protocol (and the Fig. 6/7 representational
power curves) can be computed afterwards.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from repro import obs
from repro.nn.callbacks import CheckpointCallback, clip_gradients, global_grad_norm
from repro.nn.losses import SoftmaxCrossEntropy, softmax
from repro.obs.telemetry import TelemetryCallback
from repro.nn.module import Network
from repro.nn.optimizers import Optimizer, RMSprop
from repro.nn.schedulers import ReduceLROnPlateau
from repro.resilience import faults
from repro.utils.rng import as_rng
from repro.utils.validation import check_labels, check_positive

__all__ = [
    "History",
    "Trainer",
    "predict_logits",
    "predict_labels",
    "predict_proba",
]

Inputs = np.ndarray | tuple[np.ndarray, ...]
# An input may also be any object exposing ``shape`` and
# ``take_rows(idx)`` — the streaming pipeline's duck-typed row source
# (repro.stream.StreamEncodedInputs).  ``take_rows`` must return exactly
# what fancy-indexing the materialized array would, so the training loop
# below is bitwise-oblivious to which one it was given.

#: Seconds between resource samples while training on streamed inputs
#: (<= 0 disables the background sampler; epoch-boundary samples remain).
STREAM_RESOURCE_INTERVAL_ENV = "REPRO_STREAM_RESOURCE_INTERVAL_S"


@dataclass
class History:
    """Per-epoch training record.

    ``grad_norm`` holds the *pre-clip* global gradient norm — the mean
    over the epoch's batches when clipping is enabled, otherwise the norm
    of the epoch's final batch — so exploding-gradient runs are visible
    even though clipping keeps the applied updates bounded.
    """

    loss: list[float] = field(default_factory=list)
    train_accuracy: list[float] = field(default_factory=list)
    val_accuracy: list[float] = field(default_factory=list)
    lr: list[float] = field(default_factory=list)
    grad_norm: list[float] = field(default_factory=list)

    def best_epoch(self, by: str = "val_accuracy") -> int:
        """Index of the best epoch under the chosen metric."""
        series = getattr(self, by)
        if not series:
            raise ValueError(f"history has no {by} entries")
        return int(np.argmax(series))

    def state_dict(self) -> dict:
        """Per-epoch series as plain lists (checkpoint payload)."""
        return {
            "loss": list(self.loss),
            "train_accuracy": list(self.train_accuracy),
            "val_accuracy": list(self.val_accuracy),
            "lr": list(self.lr),
            "grad_norm": list(self.grad_norm),
        }

    @classmethod
    def from_state(cls, state: dict) -> "History":
        """Rebuild a history from a :meth:`state_dict` export."""
        return cls(**{key: list(values) for key, values in state.items()})


def _as_tuple(inputs: Inputs) -> tuple[np.ndarray, ...]:
    return inputs if isinstance(inputs, tuple) else (inputs,)


def _take(inputs: Inputs, idx: np.ndarray) -> Inputs:
    parts = tuple(
        a.take_rows(idx) if hasattr(a, "take_rows") else a[idx]
        for a in _as_tuple(inputs)
    )
    return parts if isinstance(inputs, tuple) else parts[0]


def _num_rows(inputs: Inputs) -> int:
    return _as_tuple(inputs)[0].shape[0]


def _is_streamed(inputs: Inputs) -> bool:
    return any(hasattr(a, "take_rows") for a in _as_tuple(inputs))


class Trainer:
    """Trains a :class:`Network` for classification.

    Parameters
    ----------
    optimizer_factory:
        Callable building the optimizer from the parameter list; defaults
        to the paper's RMSprop(lr=0.01).
    batch_size:
        Mini-batch size (paper: selected from {32, 256}).
    epochs:
        Training epochs.
    plateau_patience / plateau_factor:
        Learning-rate decay on loss plateau (paper: 5 epochs / 0.5).
    early_stopping:
        Optional :class:`~repro.nn.callbacks.EarlyStopping`; checked
        after every epoch.  Off by default because the paper's
        epoch-selection protocol needs fixed-length histories.
    max_grad_norm:
        Optional global gradient-norm clip applied before each update.
    seed:
        Shuffling seed.
    """

    def __init__(
        self,
        optimizer_factory=None,
        batch_size: int = 32,
        epochs: int = 50,
        plateau_patience: int = 5,
        plateau_factor: float = 0.5,
        early_stopping=None,
        max_grad_norm: float | None = None,
        seed: int | None = 0,
    ) -> None:
        check_positive("batch_size", batch_size)
        check_positive("epochs", epochs)
        if max_grad_norm is not None:
            check_positive("max_grad_norm", max_grad_norm)
        self.optimizer_factory = optimizer_factory or (
            lambda params: RMSprop(params, lr=0.01)
        )
        self.batch_size = batch_size
        self.epochs = epochs
        self.plateau_patience = plateau_patience
        self.plateau_factor = plateau_factor
        self.early_stopping = early_stopping
        self.max_grad_norm = max_grad_norm
        self.seed = seed

    def fit(
        self,
        network: Network,
        inputs: Inputs,
        y: np.ndarray,
        validation: tuple[Inputs, np.ndarray] | None = None,
        epoch_callback=None,
        checkpoint=None,
        resume_from=None,
    ) -> History:
        """Train ``network``; returns the per-epoch :class:`History`.

        ``validation`` adds a per-epoch validation accuracy (used by the
        GIN-style epoch selection).  ``epoch_callback(epoch, history)``
        runs after every epoch (used by the representational-power bench).

        ``checkpoint`` is a
        :class:`~repro.nn.callbacks.CheckpointCallback` (or a bare
        ``CheckpointManager``, snapshotted every epoch): at each epoch
        boundary the full training state — weights, optimizer slots,
        scheduler/early-stopping counters, shuffle and dropout RNG
        streams, metric history — is written atomically.  ``resume_from``
        (a checkpoint file, a checkpoint directory, or a manager)
        restores such a snapshot and continues from the next epoch; the
        resumed run's weights and history are bitwise-identical to an
        uninterrupted one (``tests/resilience/`` proves this at every
        injection point).
        """
        y = check_labels(y)
        n = _num_rows(inputs)
        if y.size != n:
            raise ValueError(f"{n} inputs but {y.size} labels")
        rng = as_rng(self.seed)
        optimizer: Optimizer = self.optimizer_factory(network.parameters())
        scheduler = ReduceLROnPlateau(
            optimizer, factor=self.plateau_factor, patience=self.plateau_patience
        )
        loss_fn = SoftmaxCrossEntropy()
        history = History()
        telemetry = TelemetryCallback()
        checkpoint_cb = _as_checkpoint_callback(checkpoint)

        start_epoch = 0
        if resume_from is not None:
            step, state = _load_resume_state(resume_from)
            network.load_state_dict(state["network"])
            optimizer.load_state_dict(state["optimizer"])
            scheduler.load_state_dict(state["scheduler"])
            if self.early_stopping is not None and state.get("early_stopping"):
                self.early_stopping.load_state_dict(state["early_stopping"])
            rng.bit_generator.state = state["rng"]
            history = History.from_state(state["history"])
            start_epoch = step + 1
            obs.counter("trainer_resumes_total").inc()
            obs.event("trainer_resume", start_epoch=start_epoch)

        # Streamed inputs: watch peak RSS while the epoch is consumed as
        # a stream — the background sampler covers long epochs, the
        # epoch-boundary publish guarantees the gauges move even when
        # the sampler is disabled.  Materialized runs skip all of it.
        streamed = _is_streamed(inputs)
        sampler = None
        if streamed:
            import os

            from repro.obs.resources import ResourceSampler, publish_resources

            interval = float(
                os.environ.get(STREAM_RESOURCE_INTERVAL_ENV, "1.0") or 0.0
            )
            sampler = ResourceSampler(
                interval_s=interval, extra=getattr(inputs, "gauges", None)
            ).start()

        try:
            for epoch in range(start_epoch, self.epochs):
                order = rng.permutation(n)
                epoch_loss = 0.0
                correct = 0
                batch_norms: list[float] = []
                for start in range(0, n, self.batch_size):
                    idx = order[start : start + self.batch_size]
                    batch_x = _take(inputs, idx)
                    batch_y = y[idx]
                    logits = network.forward(batch_x, training=True)
                    loss = loss_fn.forward(logits, batch_y)
                    network.zero_grad()
                    network.backward(loss_fn.backward())
                    if self.max_grad_norm is not None:
                        batch_norms.append(
                            clip_gradients(network.parameters(), self.max_grad_norm)
                        )
                    optimizer.step()
                    epoch_loss += loss * idx.size
                    correct += int((logits.argmax(axis=1) == batch_y).sum())
                epoch_loss /= n
                history.loss.append(epoch_loss)
                history.train_accuracy.append(correct / n)
                history.lr.append(optimizer.lr)
                # Pre-clip gradient norm: batch mean under clipping, else the
                # final batch's norm (the gradients are still in place).
                if batch_norms:
                    history.grad_norm.append(float(np.mean(batch_norms)))
                else:
                    history.grad_norm.append(global_grad_norm(network.parameters()))
                if validation is not None:
                    val_x, val_y = validation
                    val_pred = predict_labels(network, val_x, self.batch_size)
                    history.val_accuracy.append(
                        float(np.mean(val_pred == check_labels(val_y)))
                    )
                scheduler.step(epoch_loss)
                # lr is passed explicitly: the telemetry event reports the
                # rate *after* any ReduceLROnPlateau decay.
                telemetry(epoch, history, lr=optimizer.lr)
                if streamed:
                    publish_resources()
                if epoch_callback is not None:
                    epoch_callback(epoch, history)
                # The stop decision is made *before* the checkpoint so the
                # early-stopping counters inside the snapshot are exactly
                # those of an uninterrupted run at this boundary.
                stop = self.early_stopping is not None and self.early_stopping.should_stop(
                    history
                )
                if checkpoint_cb is not None:
                    checkpoint_cb(
                        epoch,
                        self._snapshot(
                            epoch, network, optimizer, scheduler, rng, history
                        ),
                    )
                faults.check("epoch", epoch)
                if stop:
                    break
        finally:
            if sampler is not None:
                sampler.stop()
                publish_resources()
        return history

    def _snapshot(
        self, epoch, network, optimizer, scheduler, rng, history
    ) -> dict:
        """Full training state at the end of ``epoch`` (for checkpoints)."""
        return {
            "epoch": int(epoch),
            "network": network.state_dict(),
            "optimizer": optimizer.state_dict(),
            "scheduler": scheduler.state_dict(),
            "early_stopping": (
                self.early_stopping.state_dict()
                if self.early_stopping is not None
                else None
            ),
            "rng": rng.bit_generator.state,
            "history": history.state_dict(),
        }


def _as_checkpoint_callback(checkpoint) -> CheckpointCallback | None:
    """Accept a CheckpointCallback, a manager, or None."""
    if checkpoint is None or isinstance(checkpoint, CheckpointCallback):
        return checkpoint
    return CheckpointCallback(checkpoint)


def _load_resume_state(resume_from) -> tuple[int, dict]:
    """Resolve ``resume_from`` (manager / directory / file) to (step, state)."""
    import os

    from repro.resilience.checkpoint import CheckpointManager, load_checkpoint

    if hasattr(resume_from, "load_latest"):
        loaded = resume_from.load_latest()
    elif os.path.isdir(resume_from):
        loaded = CheckpointManager(resume_from).load_latest()
    else:
        loaded = load_checkpoint(resume_from)
    if loaded is None:
        raise FileNotFoundError(
            f"no usable checkpoint to resume from in {resume_from!r}"
        )
    return loaded


def predict_logits(
    network: Network, inputs: Inputs, batch_size: int = 256
) -> np.ndarray:
    """Forward pass in inference mode, batched."""
    n = _num_rows(inputs)
    outputs = []
    for start in range(0, n, batch_size):
        idx = np.arange(start, min(start + batch_size, n))
        outputs.append(network.forward(_take(inputs, idx), training=False))
    return np.concatenate(outputs, axis=0)


def predict_labels(
    network: Network, inputs: Inputs, batch_size: int = 256
) -> np.ndarray:
    """Predicted class indices."""
    return predict_logits(network, inputs, batch_size).argmax(axis=1)


def predict_proba(
    network: Network, inputs: Inputs, batch_size: int = 256
) -> np.ndarray:
    """Predicted class probabilities."""
    return softmax(predict_logits(network, inputs, batch_size))
