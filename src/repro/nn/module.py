"""Core abstractions of the from-scratch neural-network framework.

The paper trains its CNN with Keras on TensorFlow; offline we provide a
minimal but complete numpy framework with the same ingredients: layers
with exact backpropagation, RMSprop with learning-rate decay on plateau,
softmax cross-entropy, dropout, and mini-batch training.

Design:

* :class:`Parameter` couples a value array with its gradient accumulator.
* :class:`Layer` is the unit of computation: ``forward`` caches whatever
  ``backward`` needs; ``backward`` receives the upstream gradient and
  returns the input gradient while accumulating parameter gradients.
* :class:`Network` is anything with ``forward``/``backward``/``parameters``;
  :class:`Sequential` chains layers, and the GNN baselines implement their
  own ``Network`` subclasses for architectures with masks and branching.

All gradients are verified against central finite differences in
``tests/nn/test_gradients.py``.
"""

from __future__ import annotations

from abc import ABC, abstractmethod

import numpy as np

__all__ = ["Parameter", "Layer", "Network", "Sequential"]


class Parameter:
    """A trainable array and its gradient."""

    __slots__ = ("value", "grad", "name")

    def __init__(self, value: np.ndarray, name: str = "param") -> None:
        self.value = np.asarray(value, dtype=np.float64)
        self.grad = np.zeros_like(self.value)
        self.name = name

    @property
    def shape(self) -> tuple[int, ...]:
        return self.value.shape

    def zero_grad(self) -> None:
        self.grad.fill(0.0)

    def __repr__(self) -> str:
        return f"Parameter({self.name}, shape={self.value.shape})"


class Layer(ABC):
    """One differentiable computation step."""

    @abstractmethod
    def forward(self, x: np.ndarray, training: bool = False) -> np.ndarray:
        """Compute outputs, caching what ``backward`` needs."""

    @abstractmethod
    def backward(self, grad: np.ndarray) -> np.ndarray:
        """Propagate ``d loss / d output`` to ``d loss / d input``,
        accumulating parameter gradients along the way."""

    def parameters(self) -> list[Parameter]:
        """Trainable parameters of this layer (default: none)."""
        return []


class Network(ABC):
    """A trainable model: forward, backward, parameters."""

    @abstractmethod
    def forward(self, x, training: bool = False) -> np.ndarray:
        """Compute logits for a batch."""

    @abstractmethod
    def backward(self, grad: np.ndarray) -> None:
        """Backpropagate the logits gradient through the whole model."""

    @abstractmethod
    def parameters(self) -> list[Parameter]:
        """All trainable parameters."""

    def zero_grad(self) -> None:
        for p in self.parameters():
            p.zero_grad()

    def num_parameters(self) -> int:
        """Total scalar parameter count."""
        return int(sum(p.value.size for p in self.parameters()))


class Sequential(Network):
    """A plain chain of layers operating on a single array."""

    def __init__(self, layers: list[Layer]) -> None:
        self.layers = list(layers)

    def forward(self, x: np.ndarray, training: bool = False) -> np.ndarray:
        for layer in self.layers:
            x = layer.forward(x, training=training)
        return x

    def backward(self, grad: np.ndarray) -> None:
        for layer in reversed(self.layers):
            grad = layer.backward(grad)

    def parameters(self) -> list[Parameter]:
        return [p for layer in self.layers for p in layer.parameters()]
