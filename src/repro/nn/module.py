"""Core abstractions of the from-scratch neural-network framework.

The paper trains its CNN with Keras on TensorFlow; offline we provide a
minimal but complete numpy framework with the same ingredients: layers
with exact backpropagation, RMSprop with learning-rate decay on plateau,
softmax cross-entropy, dropout, and mini-batch training.

Design:

* :class:`Parameter` couples a value array with its gradient accumulator.
* :class:`Layer` is the unit of computation: ``forward`` caches whatever
  ``backward`` needs; ``backward`` receives the upstream gradient and
  returns the input gradient while accumulating parameter gradients.
* :class:`Network` is anything with ``forward``/``backward``/``parameters``;
  :class:`Sequential` chains layers, and the GNN baselines implement their
  own ``Network`` subclasses for architectures with masks and branching.

All gradients are verified against central finite differences in
``tests/nn/test_gradients.py``.
"""

from __future__ import annotations

from abc import ABC, abstractmethod

import numpy as np

__all__ = ["Parameter", "Layer", "Network", "Sequential"]


class Parameter:
    """A trainable array and its gradient."""

    __slots__ = ("value", "grad", "name")

    def __init__(self, value: np.ndarray, name: str = "param") -> None:
        self.value = np.asarray(value, dtype=np.float64)
        self.grad = np.zeros_like(self.value)
        self.name = name

    @property
    def shape(self) -> tuple[int, ...]:
        return self.value.shape

    def zero_grad(self) -> None:
        self.grad.fill(0.0)

    def __repr__(self) -> str:
        return f"Parameter({self.name}, shape={self.value.shape})"


class Layer(ABC):
    """One differentiable computation step."""

    @abstractmethod
    def forward(self, x: np.ndarray, training: bool = False) -> np.ndarray:
        """Compute outputs, caching what ``backward`` needs."""

    @abstractmethod
    def backward(self, grad: np.ndarray) -> np.ndarray:
        """Propagate ``d loss / d output`` to ``d loss / d input``,
        accumulating parameter gradients along the way."""

    def parameters(self) -> list[Parameter]:
        """Trainable parameters of this layer (default: none)."""
        return []

    def state(self) -> dict:
        """Non-parameter state a bitwise resume needs (default: none).

        Layers with internal buffers or RNG streams — BatchNorm running
        statistics, Dropout's mask generator — override this so a
        checkpointed training run can continue exactly where it stopped.
        """
        return {}

    def load_state(self, state: dict) -> None:
        """Restore what :meth:`state` exported (default: nothing)."""


class Network(ABC):
    """A trainable model: forward, backward, parameters."""

    @abstractmethod
    def forward(self, x, training: bool = False) -> np.ndarray:
        """Compute logits for a batch."""

    @abstractmethod
    def backward(self, grad: np.ndarray) -> None:
        """Backpropagate the logits gradient through the whole model."""

    @abstractmethod
    def parameters(self) -> list[Parameter]:
        """All trainable parameters."""

    def zero_grad(self) -> None:
        for p in self.parameters():
            p.zero_grad()

    def num_parameters(self) -> int:
        """Total scalar parameter count."""
        return int(sum(p.value.size for p in self.parameters()))

    def state_dict(self) -> dict:
        """Model state for checkpointing: parameter values (+ layer state).

        The base implementation covers any network through
        ``parameters()``; :class:`Sequential` extends it with per-layer
        non-parameter state (running stats, dropout RNG streams).
        """
        return {"params": [p.value.copy() for p in self.parameters()]}

    def load_state_dict(self, state: dict) -> None:
        """Restore a :meth:`state_dict` export in place."""
        values = list(state["params"])
        params = self.parameters()
        if len(values) != len(params):
            raise ValueError(
                f"state has {len(values)} parameters, network has {len(params)}"
            )
        for p, v in zip(params, values):
            v = np.asarray(v, dtype=p.value.dtype)
            if v.shape != p.value.shape:
                raise ValueError(
                    f"parameter {p.name}: state shape {v.shape} does not "
                    f"match {p.value.shape}"
                )
            p.value[...] = v


class Sequential(Network):
    """A plain chain of layers operating on a single array."""

    def __init__(self, layers: list[Layer]) -> None:
        self.layers = list(layers)

    def forward(self, x: np.ndarray, training: bool = False) -> np.ndarray:
        for layer in self.layers:
            x = layer.forward(x, training=training)
        return x

    def backward(self, grad: np.ndarray) -> None:
        for layer in reversed(self.layers):
            grad = layer.backward(grad)

    def parameters(self) -> list[Parameter]:
        return [p for layer in self.layers for p in layer.parameters()]

    def state_dict(self) -> dict:
        state = super().state_dict()
        state["layers"] = [layer.state() for layer in self.layers]
        return state

    def load_state_dict(self, state: dict) -> None:
        super().load_state_dict(state)
        layer_states = state.get("layers")
        if layer_states is None:
            return
        if len(layer_states) != len(self.layers):
            raise ValueError(
                f"state has {len(layer_states)} layers, network has "
                f"{len(self.layers)}"
            )
        for layer, layer_state in zip(self.layers, layer_states):
            layer.load_state(layer_state)
