"""Gradient-descent optimizers.

The paper trains with "the RMSPROP optimizer with initial learning rate
0.01" and halves the rate after five epochs without loss improvement —
:class:`RMSprop` here matches Keras's update rule, and the plateau
scheduler lives in :mod:`repro.nn.schedulers`.
"""

from __future__ import annotations

from abc import ABC, abstractmethod

import numpy as np

from repro.nn.module import Parameter
from repro.utils.validation import check_positive, check_probability

__all__ = ["Optimizer", "SGD", "RMSprop", "Adam"]


class Optimizer(ABC):
    """Updates a fixed set of parameters from their accumulated gradients.

    ``weight_decay`` adds L2 regularisation ``wd * p`` to every gradient
    before the update rule (decoupled from the loss function, applied
    identically by all optimizers here).
    """

    def __init__(
        self, params: list[Parameter], lr: float, weight_decay: float = 0.0
    ) -> None:
        check_positive("lr", lr)
        if weight_decay < 0:
            raise ValueError(f"weight_decay must be >= 0, got {weight_decay}")
        self.params = list(params)
        self.lr = lr
        self.weight_decay = weight_decay

    def _decay(self) -> None:
        if self.weight_decay:
            for p in self.params:
                p.grad += self.weight_decay * p.value

    @abstractmethod
    def step(self) -> None:
        """Apply one update from the current gradients."""

    def zero_grad(self) -> None:
        for p in self.params:
            p.zero_grad()

    # -- checkpointing --------------------------------------------------
    def _slot_state(self) -> dict:
        """Subclass hook: per-parameter accumulator arrays and counters."""
        return {}

    def _load_slots(self, slots: dict) -> None:
        """Subclass hook: restore what :meth:`_slot_state` exported."""

    def state_dict(self) -> dict:
        """Everything needed to resume stepping bitwise-identically.

        The parameter *values* are not included — they belong to the
        network's own state — only the optimizer's hyperstate and slots.
        """
        return {
            "kind": type(self).__name__,
            "lr": float(self.lr),
            "weight_decay": float(self.weight_decay),
            "slots": self._slot_state(),
        }

    def load_state_dict(self, state: dict) -> None:
        """Restore a :meth:`state_dict` export into this optimizer."""
        kind = state.get("kind")
        if kind != type(self).__name__:
            raise ValueError(
                f"optimizer state is for {kind!r}, not {type(self).__name__!r}"
            )
        self.lr = float(state["lr"])
        self.weight_decay = float(state["weight_decay"])
        self._load_slots(state.get("slots", {}))

    def _restore_arrays(self, target: list[np.ndarray], source) -> None:
        """Copy a list of exported slot arrays into ``target`` in place."""
        source = list(source)
        if len(source) != len(target):
            raise ValueError(
                f"{len(source)} slot arrays for {len(target)} parameters"
            )
        for dst, src in zip(target, source):
            src = np.asarray(src, dtype=dst.dtype)
            if src.shape != dst.shape:
                raise ValueError(
                    f"slot shape {src.shape} does not match parameter {dst.shape}"
                )
            dst[...] = src


class SGD(Optimizer):
    """Stochastic gradient descent with classical momentum."""

    def __init__(
        self,
        params: list[Parameter],
        lr: float = 0.01,
        momentum: float = 0.0,
        weight_decay: float = 0.0,
    ) -> None:
        super().__init__(params, lr, weight_decay)
        check_probability("momentum", momentum)
        self.momentum = momentum
        self._velocity = [np.zeros_like(p.value) for p in self.params]

    def step(self) -> None:
        self._decay()
        for p, v in zip(self.params, self._velocity):
            v *= self.momentum
            v -= self.lr * p.grad
            p.value += v

    def _slot_state(self) -> dict:
        return {"velocity": [v.copy() for v in self._velocity]}

    def _load_slots(self, slots: dict) -> None:
        self._restore_arrays(self._velocity, slots["velocity"])


class RMSprop(Optimizer):
    """Keras-style RMSprop: ``a = rho a + (1-rho) g^2; p -= lr g / (sqrt(a)+eps)``."""

    def __init__(
        self,
        params: list[Parameter],
        lr: float = 0.01,
        rho: float = 0.9,
        eps: float = 1e-7,
        weight_decay: float = 0.0,
    ) -> None:
        super().__init__(params, lr, weight_decay)
        check_probability("rho", rho)
        check_positive("eps", eps)
        self.rho = rho
        self.eps = eps
        self._accum = [np.zeros_like(p.value) for p in self.params]

    def step(self) -> None:
        self._decay()
        for p, a in zip(self.params, self._accum):
            a *= self.rho
            a += (1.0 - self.rho) * p.grad**2
            p.value -= self.lr * p.grad / (np.sqrt(a) + self.eps)

    def _slot_state(self) -> dict:
        return {"accum": [a.copy() for a in self._accum]}

    def _load_slots(self, slots: dict) -> None:
        self._restore_arrays(self._accum, slots["accum"])


class Adam(Optimizer):
    """Adam (Kingma & Ba 2015) with bias correction."""

    def __init__(
        self,
        params: list[Parameter],
        lr: float = 0.001,
        beta1: float = 0.9,
        beta2: float = 0.999,
        eps: float = 1e-8,
        weight_decay: float = 0.0,
    ) -> None:
        super().__init__(params, lr, weight_decay)
        check_probability("beta1", beta1)
        check_probability("beta2", beta2)
        check_positive("eps", eps)
        self.beta1 = beta1
        self.beta2 = beta2
        self.eps = eps
        self._m = [np.zeros_like(p.value) for p in self.params]
        self._v = [np.zeros_like(p.value) for p in self.params]
        self._t = 0

    def step(self) -> None:
        self._decay()
        self._t += 1
        correction1 = 1.0 - self.beta1**self._t
        correction2 = 1.0 - self.beta2**self._t
        for p, m, v in zip(self.params, self._m, self._v):
            m *= self.beta1
            m += (1.0 - self.beta1) * p.grad
            v *= self.beta2
            v += (1.0 - self.beta2) * p.grad**2
            m_hat = m / correction1
            v_hat = v / correction2
            p.value -= self.lr * m_hat / (np.sqrt(v_hat) + self.eps)

    def _slot_state(self) -> dict:
        return {
            "m": [m.copy() for m in self._m],
            "v": [v.copy() for v in self._v],
            "t": int(self._t),
        }

    def _load_slots(self, slots: dict) -> None:
        self._restore_arrays(self._m, slots["m"])
        self._restore_arrays(self._v, slots["v"])
        self._t = int(slots["t"])
