"""Pooling / readout layers.

DeepMap's readout is a summation over the vertex axis (Equation 7 as a
layer); a concatenation readout is provided for the Section 6 ablation,
and masked mean pooling serves the GNN baselines.
"""

from __future__ import annotations

import numpy as np

from repro.nn.module import Layer

__all__ = [
    "SumPool1D",
    "MeanPool1D",
    "MaxPool1D",
    "GlobalMaxPool1D",
    "Flatten",
    "MaskedSumPool1D",
]


class SumPool1D(Layer):
    """Sum over the length axis: ``(B, L, C) -> (B, C)``.

    The paper's summation layer: with bias-free convolutions upstream,
    dummy-vertex positions are exactly zero and contribute nothing.
    """

    def __init__(self) -> None:
        self._length: int | None = None

    def forward(self, x: np.ndarray, training: bool = False) -> np.ndarray:
        self._length = x.shape[1]
        return x.sum(axis=1)

    def backward(self, grad: np.ndarray) -> np.ndarray:
        assert self._length is not None
        return np.repeat(grad[:, None, :], self._length, axis=1)


class MeanPool1D(Layer):
    """Mean over the length axis: ``(B, L, C) -> (B, C)``."""

    def __init__(self) -> None:
        self._length: int | None = None

    def forward(self, x: np.ndarray, training: bool = False) -> np.ndarray:
        self._length = x.shape[1]
        return x.mean(axis=1)

    def backward(self, grad: np.ndarray) -> np.ndarray:
        assert self._length is not None
        return np.repeat(grad[:, None, :] / self._length, self._length, axis=1)


class MaxPool1D(Layer):
    """Windowed max over the length axis: ``(B, L, C) -> (B, L', C)``.

    DGCNN's original head uses MaxPool between its 1-D convolutions;
    provided for paper-faithful configurations.
    """

    def __init__(self, pool_size: int = 2, stride: int | None = None) -> None:
        if pool_size < 1:
            raise ValueError(f"pool_size must be >= 1, got {pool_size}")
        self.pool_size = pool_size
        self.stride = stride if stride is not None else pool_size
        self._argmax: np.ndarray | None = None
        self._in_shape: tuple[int, ...] | None = None
        self._idx: np.ndarray | None = None

    def forward(self, x: np.ndarray, training: bool = False) -> np.ndarray:
        batch, length, channels = x.shape
        if length < self.pool_size:
            raise ValueError(
                f"input length {length} shorter than pool {self.pool_size}"
            )
        l_out = (length - self.pool_size) // self.stride + 1
        starts = np.arange(l_out) * self.stride
        idx = starts[:, None] + np.arange(self.pool_size)[None, :]
        windows = x[:, idx, :]  # (B, L', P, C)
        arg = windows.argmax(axis=2)  # (B, L', C)
        out = np.take_along_axis(windows, arg[:, :, None, :], axis=2)[:, :, 0, :]
        self._argmax = arg
        self._idx = idx
        self._in_shape = x.shape
        return out

    def backward(self, grad: np.ndarray) -> np.ndarray:
        assert self._argmax is not None and self._in_shape is not None
        assert self._idx is not None
        dx = np.zeros(self._in_shape, dtype=np.float64)
        batch, l_out, channels = grad.shape
        # Map window-local argmax back to absolute positions.
        absolute = self._idx[np.arange(l_out)[:, None, None], self._argmax.transpose(1, 0, 2)]
        # absolute shape: (L', B, C) -> transpose to (B, L', C)
        absolute = absolute.transpose(1, 0, 2)
        b_idx = np.arange(batch)[:, None, None]
        c_idx = np.arange(channels)[None, None, :]
        np.add.at(dx, (b_idx, absolute, c_idx), grad)
        return dx


class GlobalMaxPool1D(Layer):
    """Max over the whole length axis: ``(B, L, C) -> (B, C)``."""

    def __init__(self) -> None:
        self._argmax: np.ndarray | None = None
        self._in_shape: tuple[int, ...] | None = None

    def forward(self, x: np.ndarray, training: bool = False) -> np.ndarray:
        self._argmax = x.argmax(axis=1)  # (B, C)
        self._in_shape = x.shape
        return x.max(axis=1)

    def backward(self, grad: np.ndarray) -> np.ndarray:
        assert self._argmax is not None and self._in_shape is not None
        dx = np.zeros(self._in_shape, dtype=np.float64)
        batch, _, channels = self._in_shape
        b_idx = np.arange(batch)[:, None]
        c_idx = np.arange(channels)[None, :]
        dx[b_idx, self._argmax, c_idx] = grad
        return dx


class Flatten(Layer):
    """Concatenate all non-batch axes: ``(B, ...) -> (B, prod(...))``.

    The concatenation readout of the Section 6 discussion ("a possible
    alternative is to use a concatenation layer").
    """

    def __init__(self) -> None:
        self._shape: tuple[int, ...] | None = None

    def forward(self, x: np.ndarray, training: bool = False) -> np.ndarray:
        self._shape = x.shape
        return x.reshape(x.shape[0], -1)

    def backward(self, grad: np.ndarray) -> np.ndarray:
        assert self._shape is not None
        return grad.reshape(self._shape)


class MaskedSumPool1D(Layer):
    """Sum over the length axis with an explicit validity mask.

    The mask must be set (per batch) before ``forward``; baseline models
    that pad graphs to a common vertex count use this to exclude padding
    even when upstream layers carry biases.
    """

    def __init__(self) -> None:
        self.mask: np.ndarray | None = None  # (B, L) of {0, 1}
        self._length: int | None = None

    def set_mask(self, mask: np.ndarray) -> None:
        self.mask = np.asarray(mask, dtype=np.float64)

    def forward(self, x: np.ndarray, training: bool = False) -> np.ndarray:
        if self.mask is None:
            raise RuntimeError("set_mask must be called before forward")
        if self.mask.shape != x.shape[:2]:
            raise ValueError(
                f"mask shape {self.mask.shape} does not match input {x.shape[:2]}"
            )
        self._length = x.shape[1]
        return (x * self.mask[:, :, None]).sum(axis=1)

    def backward(self, grad: np.ndarray) -> np.ndarray:
        assert self.mask is not None and self._length is not None
        return grad[:, None, :] * self.mask[:, :, None]
