"""Learning-rate schedules."""

from __future__ import annotations

from repro.nn.optimizers import Optimizer
from repro.utils.validation import check_positive, check_probability

__all__ = ["ReduceLROnPlateau"]


class ReduceLROnPlateau:
    """Halve the learning rate when the monitored loss stops improving.

    Matches the paper's protocol: "decay the learning rate by 0.5 if the
    number of epochs with no improvement in the loss reaches five."
    """

    def __init__(
        self,
        optimizer: Optimizer,
        factor: float = 0.5,
        patience: int = 5,
        min_lr: float = 1e-6,
        threshold: float = 1e-4,
    ) -> None:
        check_probability("factor", factor)
        check_positive("patience", patience)
        self.optimizer = optimizer
        self.factor = factor
        self.patience = patience
        self.min_lr = min_lr
        self.threshold = threshold
        self._best = float("inf")
        self._bad_epochs = 0

    def step(self, loss: float) -> bool:
        """Record an epoch loss; returns True if the rate was reduced."""
        if loss < self._best - self.threshold:
            self._best = loss
            self._bad_epochs = 0
            return False
        self._bad_epochs += 1
        if self._bad_epochs >= self.patience:
            new_lr = max(self.optimizer.lr * self.factor, self.min_lr)
            reduced = new_lr < self.optimizer.lr
            self.optimizer.lr = new_lr
            self._bad_epochs = 0
            return reduced
        return False

    def state_dict(self) -> dict:
        """Plateau-tracking state (the lr itself lives in the optimizer)."""
        return {"best": float(self._best), "bad_epochs": int(self._bad_epochs)}

    def load_state_dict(self, state: dict) -> None:
        """Restore a :meth:`state_dict` export."""
        self._best = float(state["best"])
        self._bad_epochs = int(state["bad_epochs"])
