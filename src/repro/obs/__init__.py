"""`repro.obs` — structured tracing, metrics, and run telemetry.

One process-global observability context, **disabled by default**: every
entry point (``span``, ``event``, ``counter`` …) first checks a single
module flag, and while disabled returns shared no-op objects, so
instrumented library code pays essentially nothing (see
``benchmarks/bench_obs_overhead.py``).

Typical use::

    from repro import obs

    obs.enable(jsonl_path="run.jsonl")      # or obs.enable() for in-memory
    with obs.span("encode", graphs=128):
        ...
    obs.event("epoch", epoch=0, loss=0.71)
    obs.counter("graphs_encoded_total").inc(128)
    print(obs.render_profile())             # aggregated stage-timing tree
    obs.disable()                           # flushes + closes the sink

``repro train --profile --log-json run.jsonl`` drives exactly this, and
``repro report run.jsonl`` rebuilds the same summary offline
(:mod:`repro.obs.report`).  The event schema and metric names are
documented in ``docs/OBSERVABILITY.md``.
"""

from __future__ import annotations

import logging

from repro.obs.events import EventLog, LoggingBridge, jsonable
from repro.obs.instruments import count_calls, timed
from repro.obs.metrics import (
    DEFAULT_BUCKETS,
    NULL_METRIC,
    Counter,
    Gauge,
    Histogram,
    MetricsRegistry,
    escape_help,
    escape_label_value,
)
from repro.obs.reqtrace import (
    TRACE_HEADER,
    TraceStore,
    build_waterfall,
    format_waterfall,
    new_trace_id,
    valid_trace_id,
)
from repro.obs.resources import (
    ResourceSampler,
    merge_worker_sample,
    publish_resources,
    sample_resources,
)
from repro.obs.slo import SloConfig, SloMonitor
from repro.obs.telemetry import TelemetryCallback
from repro.obs.trace import NULL_SPAN, Span, Tracer, format_span_tree, span_rows
from repro.utils.timing import Timer

__all__ = [
    # lifecycle
    "enable",
    "disable",
    "enabled",
    "reset",
    # tracing
    "span",
    "current_path",
    "current_attr",
    "render_profile",
    "get_tracer",
    "Span",
    "Tracer",
    "NULL_SPAN",
    "format_span_tree",
    "span_rows",
    # events
    "event",
    "meta",
    "get_event_log",
    "bridge_logging",
    "EventLog",
    "LoggingBridge",
    "jsonable",
    # metrics
    "counter",
    "gauge",
    "histogram",
    "get_metrics",
    "flush_metrics",
    "MetricsRegistry",
    "Counter",
    "Gauge",
    "Histogram",
    "NULL_METRIC",
    "DEFAULT_BUCKETS",
    "escape_help",
    "escape_label_value",
    # request tracing
    "TRACE_HEADER",
    "TraceStore",
    "new_trace_id",
    "valid_trace_id",
    "build_waterfall",
    "format_waterfall",
    # SLO monitoring
    "SloConfig",
    "SloMonitor",
    # resource telemetry
    "ResourceSampler",
    "sample_resources",
    "publish_resources",
    "merge_worker_sample",
    # worker-process merging
    "capture_worker",
    "merge_worker",
    # helpers
    "timed",
    "count_calls",
    "TelemetryCallback",
    "Timer",
]

_enabled = False
_log = EventLog()
_metrics = MetricsRegistry(enabled=False)


def _on_span_close(sp: Span) -> None:
    _log.emit(
        "span",
        sp.name,
        path=sp.path,
        duration_s=sp.duration,
        attrs=dict(sp.attrs, **({"error": sp.error} if sp.error else {})),
    )
    _metrics.histogram("span_seconds").observe(sp.duration)


_tracer = Tracer(on_close=_on_span_close)
_bridge: LoggingBridge | None = None


# ----------------------------------------------------------------------
# Lifecycle
# ----------------------------------------------------------------------

def enable(jsonl_path=None, capacity: int | None = None) -> None:
    """Turn observability on (idempotent).

    Parameters
    ----------
    jsonl_path:
        Optional path; when given, every record is also streamed to this
        file as JSON lines (truncating it first).
    capacity:
        Optional new ring-buffer capacity for the in-memory event log.
    """
    global _enabled, _log
    if capacity is not None and capacity != _log.capacity:
        _log = EventLog(capacity=capacity)
    if jsonl_path is not None:
        _log.open_jsonl(jsonl_path)
    _metrics.enabled = True
    _enabled = True


def disable() -> None:
    """Turn observability off and close any JSONL sink (idempotent).

    Recorded spans, events and metric values are kept for inspection
    until :func:`reset`.
    """
    global _enabled
    _enabled = False
    _metrics.enabled = False
    _log.close()


def enabled() -> bool:
    """Whether instrumentation is currently recording."""
    return _enabled


def reset() -> None:
    """Drop all recorded spans, events, and metrics (state flag unchanged)."""
    _tracer.reset()
    _log.clear()
    _metrics.clear()


# ----------------------------------------------------------------------
# Tracing
# ----------------------------------------------------------------------

def span(name: str, **attrs):
    """Context manager timing one pipeline stage; no-op while disabled."""
    if not _enabled:
        return NULL_SPAN
    return _tracer.span(name, **attrs)


def current_path() -> str:
    """Slash-joined path of the innermost open span ("" outside spans)."""
    if not _enabled:
        return ""
    return _tracer.current_path()


def current_attr(key: str):
    """Innermost open-span attribute value for ``key`` (None if unset)."""
    if not _enabled:
        return None
    return _tracer.current_attr(key)


def render_profile() -> str:
    """Aggregated stage-timing tree of every span recorded so far."""
    return _tracer.render()


def get_tracer() -> Tracer:
    return _tracer


# ----------------------------------------------------------------------
# Events
# ----------------------------------------------------------------------

def event(name: str, **attrs) -> dict | None:
    """Record a structured event (tagged with the current span path)."""
    if not _enabled:
        return None
    return _log.emit("event", name, path=_tracer.current_path(), attrs=attrs)


def meta(name: str, **attrs) -> dict | None:
    """Record a ``kind="meta"`` record (run headers, snapshots)."""
    if not _enabled:
        return None
    return _log.emit("meta", name, attrs=attrs)


def get_event_log() -> EventLog:
    return _log


def bridge_logging(logger: str = "repro", level: int = logging.INFO) -> LoggingBridge:
    """Forward stdlib-logging records on ``logger`` into the event log.

    Returns the installed handler (repeated calls reinstall it once).
    """
    global _bridge
    target = logging.getLogger(logger)
    if _bridge is not None:
        target.removeHandler(_bridge)
    _bridge = LoggingBridge(_log, level=level)
    target.addHandler(_bridge)
    return _bridge


# ----------------------------------------------------------------------
# Worker-process observability merging
# ----------------------------------------------------------------------

def capture_worker() -> dict:
    """Snapshot everything this (worker) process recorded, for shipping.

    Returns a picklable payload of finished span trees, the metrics
    snapshot, and non-span events (per-epoch telemetry etc.); the parent
    process folds it back in with :func:`merge_worker`.
    """
    return {
        "spans": [root.to_dict() for root in _tracer.roots],
        "metrics": _metrics.snapshot(),
        "events": [
            {"name": r["name"], "path": r["path"], "attrs": r.get("attrs", {})}
            for r in _log.records(kind="event")
        ],
        "resources": sample_resources(),
    }


def merge_worker(payload: dict | None) -> None:
    """Merge a :func:`capture_worker` payload from a worker process.

    Span trees are grafted under the currently open span (re-emitting
    span records and ``span_seconds`` observations exactly as a local
    run would), metrics are folded in additively, and events are
    re-emitted with their paths re-rooted.  No-op while disabled.
    """
    if not _enabled or not payload:
        return
    for tree in payload.get("spans", ()):
        _tracer.graft(tree)
    metrics = dict(payload.get("metrics") or {})
    # Grafted spans already re-observed their durations via on_close.
    metrics.pop("span_seconds", None)
    # Worker resource gauges would clobber the parent's own readings
    # under gauge last-write-wins; they merge via merge_worker_sample
    # instead (peaks fold in as a max across workers).
    for name in [m for m in metrics if m.startswith("resource_")]:
        metrics.pop(name)
    _metrics.merge(metrics)
    merge_worker_sample(payload.get("resources"))
    prefix = _tracer.current_path()
    for record in payload.get("events", ()):
        path = record.get("path", "")
        full = f"{prefix}/{path}" if prefix and path else (path or prefix)
        _log.emit("event", record["name"], path=full, attrs=record.get("attrs", {}))


# ----------------------------------------------------------------------
# Metrics
# ----------------------------------------------------------------------

def counter(name: str) -> Counter:
    return _metrics.counter(name)


def gauge(name: str) -> Gauge:
    return _metrics.gauge(name)


def histogram(name: str, edges: tuple[float, ...] = DEFAULT_BUCKETS) -> Histogram:
    return _metrics.histogram(name, edges)


def get_metrics() -> MetricsRegistry:
    return _metrics


def flush_metrics() -> dict | None:
    """Emit the current metrics snapshot as a ``meta`` record."""
    if not _enabled:
        return None
    return _log.emit("meta", "metrics", attrs=_metrics.snapshot())
