"""Structured event log: in-memory ring buffer + optional JSONL sink.

Every observable occurrence in a run — a closed trace span, a training
epoch, a stdlib ``logging`` record — is one flat JSON-serialisable
*record*::

    {"ts": <unix seconds>, "kind": "event"|"span"|"log"|"meta",
     "name": <str>, "path": <slash-joined span path or "">,
     "attrs": {...}, ...}

Span records additionally carry ``duration_s``.  Records are appended to
a bounded in-memory ring (for tests and interactive inspection) and, when
a sink is attached, written as one JSON object per line — the format
``repro report`` consumes.  The schema is documented in
``docs/OBSERVABILITY.md``.
"""

from __future__ import annotations

import json
import logging
import threading
import time
from collections import deque
from pathlib import Path

__all__ = ["EventLog", "LoggingBridge", "jsonable"]

_SCALARS = (str, int, float, bool, type(None))


def jsonable(value):
    """Best-effort conversion of ``value`` to a JSON-serialisable object.

    Numpy scalars/arrays are converted via ``.item()``/``.tolist()``;
    mappings and sequences recurse; anything else falls back to ``repr``.
    """
    if isinstance(value, _SCALARS):
        return value
    if hasattr(value, "item") and getattr(value, "ndim", None) == 0:
        return value.item()  # numpy scalar
    if hasattr(value, "tolist"):
        return value.tolist()  # numpy array
    if isinstance(value, dict):
        return {str(k): jsonable(v) for k, v in value.items()}
    if isinstance(value, (list, tuple, set, frozenset)):
        return [jsonable(v) for v in value]
    return repr(value)


class EventLog:
    """Bounded ring buffer of records with an optional JSONL sink.

    Thread-safe: ``emit`` may be called from any thread.  The ring keeps
    the most recent ``capacity`` records regardless of whether a sink is
    attached, so short runs are fully inspectable in memory.
    """

    def __init__(self, capacity: int = 4096) -> None:
        if capacity <= 0:
            raise ValueError(f"capacity must be > 0, got {capacity}")
        self.capacity = capacity
        self._ring: deque[dict] = deque(maxlen=capacity)
        self._lock = threading.Lock()
        self._sink = None
        self.sink_path: Path | None = None

    # -- sink management ------------------------------------------------
    def open_jsonl(self, path) -> "EventLog":
        """Attach a JSONL file sink (truncates ``path``)."""
        if not str(path):
            raise ValueError("JSONL sink path must be a non-empty file path")
        self.close()
        self.sink_path = Path(path)
        self._sink = self.sink_path.open("w", encoding="utf-8")
        return self

    def close(self) -> None:
        """Flush and detach the sink (ring content is kept)."""
        with self._lock:
            if self._sink is not None:
                self._sink.close()
                self._sink = None
                self.sink_path = None

    # -- recording ------------------------------------------------------
    def emit(self, kind: str, name: str, path: str = "", **fields) -> dict:
        """Record one event; returns the stored record."""
        record = {"ts": time.time(), "kind": kind, "name": name, "path": path}
        for key, value in fields.items():
            record[key] = jsonable(value)
        with self._lock:
            self._ring.append(record)
            if self._sink is not None:
                self._sink.write(json.dumps(record) + "\n")
                self._sink.flush()
        return record

    # -- inspection -----------------------------------------------------
    def records(self, kind: str | None = None, name: str | None = None) -> list[dict]:
        """Snapshot of the ring, optionally filtered by kind and name."""
        with self._lock:
            out = list(self._ring)
        if kind is not None:
            out = [r for r in out if r["kind"] == kind]
        if name is not None:
            out = [r for r in out if r["name"] == name]
        return out

    def clear(self) -> None:
        with self._lock:
            self._ring.clear()

    def __len__(self) -> int:
        return len(self._ring)


class LoggingBridge(logging.Handler):
    """stdlib ``logging`` handler forwarding records into an :class:`EventLog`.

    Install with :func:`repro.obs.bridge_logging`; every record on the
    bridged logger becomes a ``kind="log"`` event, so warnings raised deep
    inside the pipeline land in the same JSONL stream as spans and
    telemetry.
    """

    def __init__(self, log: EventLog, level: int = logging.INFO) -> None:
        super().__init__(level=level)
        self._log = log

    def emit(self, record: logging.LogRecord) -> None:  # pragma: no branch
        try:
            self._log.emit(
                "log",
                record.name,
                attrs={"level": record.levelname, "message": record.getMessage()},
            )
        except Exception:  # pragma: no cover - never break the host app
            self.handleError(record)
