"""Decorator helpers for instrumenting hot paths.

``@timed`` wraps a callable in a trace span; ``@count_calls`` bumps a
registry counter per invocation.  Both consult the process-global
observability switch *at call time*, so decorating a function costs one
flag check per call while observability is disabled.
"""

from __future__ import annotations

import functools

__all__ = ["timed", "count_calls"]


def timed(name: str | None = None, **attrs):
    """Decorator: run the function inside a span (default: its ``__qualname__``).

    Usable bare (``@timed``) or configured (``@timed("stage", k=3)``).
    """
    if callable(name):  # bare @timed
        return timed()(name)

    def decorate(fn):
        span_name = name or fn.__qualname__

        @functools.wraps(fn)
        def wrapper(*args, **kwargs):
            from repro import obs

            if not obs.enabled():
                return fn(*args, **kwargs)
            with obs.span(span_name, **attrs):
                return fn(*args, **kwargs)

        return wrapper

    return decorate


def count_calls(name: str | None = None):
    """Decorator: increment counter ``<name>_calls_total`` per invocation."""
    if callable(name):  # bare @count_calls
        return count_calls()(name)

    def decorate(fn):
        counter_name = f"{name or fn.__qualname__}_calls_total"

        @functools.wraps(fn)
        def wrapper(*args, **kwargs):
            from repro import obs

            obs.counter(counter_name).inc()
            return fn(*args, **kwargs)

        return wrapper

    return decorate
