"""Process-global metrics: counters, gauges, fixed-bucket histograms.

A :class:`MetricsRegistry` is a named collection of instruments with a
deterministic :meth:`~MetricsRegistry.snapshot`, a :meth:`~MetricsRegistry.reset`
and a plain-text Prometheus-style dump (:meth:`~MetricsRegistry.to_promtext`).
A disabled registry hands out a shared null instrument whose operations
are no-ops, so instrumented code pays only a dict lookup when
observability is off.

Metric names use ``snake_case`` with a unit suffix where meaningful
(``_total`` for counters, ``_seconds`` for durations); the names emitted
by the built-in instrumentation are listed in ``docs/OBSERVABILITY.md``.
"""

from __future__ import annotations

import bisect
import threading

__all__ = [
    "Counter",
    "Gauge",
    "Histogram",
    "MetricsRegistry",
    "NULL_METRIC",
    "DEFAULT_BUCKETS",
    "escape_help",
    "escape_label_value",
]


def escape_label_value(value) -> str:
    """Escape a label value per the Prometheus text exposition format.

    Backslash, double quote, and newline must be escaped inside the
    quoted label value; everything else passes through verbatim.
    """
    return (
        str(value)
        .replace("\\", "\\\\")
        .replace('"', '\\"')
        .replace("\n", "\\n")
    )


def escape_help(text: str) -> str:
    """Escape ``# HELP`` text (backslash and newline only, per the spec)."""
    return str(text).replace("\\", "\\\\").replace("\n", "\\n")

#: Default histogram edges (seconds-flavoured, log-spaced).  ``observe``
#: places a value in the first bucket whose upper edge is >= the value
#: (``le`` semantics); values above the last edge go to the overflow.
DEFAULT_BUCKETS = (0.001, 0.01, 0.1, 1.0, 10.0, 60.0)


class Counter:
    """Monotonically increasing value."""

    __slots__ = ("value",)
    kind = "counter"

    def __init__(self) -> None:
        self.value = 0.0

    def inc(self, amount: float = 1.0) -> None:
        if amount < 0:
            raise ValueError(f"counter increment must be >= 0, got {amount}")
        self.value += amount

    def snapshot(self) -> dict:
        return {"type": "counter", "value": self.value}

    def reset(self) -> None:
        self.value = 0.0


class Gauge:
    """Last-write-wins value."""

    __slots__ = ("value",)
    kind = "gauge"

    def __init__(self) -> None:
        self.value = 0.0

    def set(self, value: float) -> None:
        self.value = float(value)

    def inc(self, amount: float = 1.0) -> None:
        self.value += amount

    def snapshot(self) -> dict:
        return {"type": "gauge", "value": self.value}

    def reset(self) -> None:
        self.value = 0.0


class Histogram:
    """Fixed-bucket histogram with ``le`` (value <= edge) semantics.

    ``counts`` has ``len(edges) + 1`` entries; the last is the overflow
    bucket for values above every edge.
    """

    __slots__ = ("edges", "counts", "sum", "count")
    kind = "histogram"

    def __init__(self, edges: tuple[float, ...] = DEFAULT_BUCKETS) -> None:
        edges = tuple(float(e) for e in edges)
        if not edges or list(edges) != sorted(edges) or len(set(edges)) != len(edges):
            raise ValueError(f"bucket edges must be strictly increasing, got {edges}")
        self.edges = edges
        self.counts = [0] * (len(edges) + 1)
        self.sum = 0.0
        self.count = 0

    def observe(self, value: float) -> None:
        value = float(value)
        self.counts[bisect.bisect_left(self.edges, value)] += 1
        self.sum += value
        self.count += 1

    @property
    def mean(self) -> float:
        return self.sum / self.count if self.count else 0.0

    def snapshot(self) -> dict:
        return {
            "type": "histogram",
            "edges": list(self.edges),
            "counts": list(self.counts),
            "sum": self.sum,
            "count": self.count,
        }

    def reset(self) -> None:
        self.counts = [0] * (len(self.edges) + 1)
        self.sum = 0.0
        self.count = 0


class _NullMetric:
    """Shared no-op instrument returned by a disabled registry."""

    __slots__ = ()

    #: Reads against a disabled instrument see a zero value.
    value = 0.0

    def inc(self, amount: float = 1.0) -> None:
        pass

    def set(self, value: float) -> None:
        pass

    def observe(self, value: float) -> None:
        pass


NULL_METRIC = _NullMetric()


class MetricsRegistry:
    """Named, get-or-create collection of metric instruments.

    The snapshot is a plain dict keyed by metric name in sorted order, so
    two registries that saw the same observations — in any order — produce
    identical snapshots (counters and gauges compare exactly for integer
    observations; histograms always compare exactly on bucket counts).
    """

    def __init__(self, enabled: bool = True) -> None:
        self.enabled = enabled
        self._metrics: dict[str, Counter | Gauge | Histogram] = {}
        self._help: dict[str, str] = {}
        self._lock = threading.Lock()

    def describe(self, name: str, help_text: str) -> None:
        """Attach ``# HELP`` text to ``name`` for the promtext export.

        Safe to call before or after the metric is registered, and while
        the registry is disabled (descriptions survive enable/reset).
        """
        with self._lock:
            self._help[name] = str(help_text)

    def help_text(self, name: str) -> str | None:
        return self._help.get(name)

    # -- get-or-create --------------------------------------------------
    def _get(self, name: str, factory, cls):
        if not self.enabled:
            return NULL_METRIC
        with self._lock:
            metric = self._metrics.get(name)
            if metric is None:
                metric = self._metrics[name] = factory()
            elif not isinstance(metric, cls):
                raise ValueError(
                    f"metric {name!r} already registered as {metric.kind}"
                )
            return metric

    def counter(self, name: str) -> Counter:
        return self._get(name, Counter, Counter)

    def gauge(self, name: str) -> Gauge:
        return self._get(name, Gauge, Gauge)

    def histogram(
        self, name: str, edges: tuple[float, ...] = DEFAULT_BUCKETS
    ) -> Histogram:
        return self._get(name, lambda: Histogram(edges), Histogram)

    # -- lifecycle ------------------------------------------------------
    def snapshot(self) -> dict[str, dict]:
        """Deterministic (name-sorted) state of every registered metric."""
        with self._lock:
            return {name: self._metrics[name].snapshot() for name in sorted(self._metrics)}

    def merge(self, snapshot: dict[str, dict]) -> None:
        """Fold another registry's :meth:`snapshot` into this one.

        Counters and histogram buckets add; gauges take the incoming
        value (last write wins, matching their local semantics).  Used
        to merge metrics recorded in worker processes back into the
        parent.  A histogram with different bucket edges is rejected —
        silently mixing bucket layouts would corrupt both.
        """
        if not self.enabled:
            return
        for name, snap in snapshot.items():
            kind = snap.get("type")
            if kind == "counter":
                self.counter(name).inc(snap["value"])
            elif kind == "gauge":
                self.gauge(name).set(snap["value"])
            elif kind == "histogram":
                edges = tuple(snap["edges"])
                hist = self.histogram(name, edges)
                if hist.edges != edges:
                    raise ValueError(
                        f"histogram {name!r} bucket edges differ: "
                        f"{hist.edges} vs {edges}"
                    )
                hist.counts = [
                    a + b for a, b in zip(hist.counts, snap["counts"])
                ]
                hist.sum += snap["sum"]
                hist.count += snap["count"]
            else:
                raise ValueError(f"unknown metric type {kind!r} for {name!r}")

    def reset(self) -> None:
        """Zero every registered metric (registrations are kept)."""
        with self._lock:
            for metric in self._metrics.values():
                metric.reset()

    def clear(self) -> None:
        """Drop every registration."""
        with self._lock:
            self._metrics.clear()

    def __len__(self) -> int:
        return len(self._metrics)

    # -- text exposition ------------------------------------------------
    def to_promtext(self) -> str:
        """Prometheus text-exposition dump of the current state.

        Emits ``# HELP`` (when :meth:`describe` registered text) and
        ``# TYPE`` per metric family; label values are escaped per the
        exposition format (``\\``, ``"``, newline).
        """
        lines: list[str] = []
        for name, snap in self.snapshot().items():
            help_text = self._help.get(name)
            if help_text:
                lines.append(f"# HELP {name} {escape_help(help_text)}")
            lines.append(f"# TYPE {name} {snap['type']}")
            if snap["type"] == "histogram":
                cumulative = 0
                for edge, count in zip(snap["edges"], snap["counts"]):
                    cumulative += count
                    le = escape_label_value(f"{edge:g}")
                    lines.append(f'{name}_bucket{{le="{le}"}} {cumulative}')
                lines.append(f'{name}_bucket{{le="+Inf"}} {snap["count"]}')
                lines.append(f"{name}_sum {snap['sum']:g}")
                lines.append(f"{name}_count {snap['count']}")
            else:
                lines.append(f"{name} {snap['value']:g}")
        return "\n".join(lines) + ("\n" if lines else "")
