"""Offline run reports: rebuild a run summary from a JSONL event file.

``repro train --log-json run.jsonl`` streams every record to disk;
:func:`build_report` turns those records back into the stage-timing tree
(via the same :func:`repro.obs.trace.format_span_tree` renderer that
``--profile`` uses, so both print identical summaries) plus a per-fold
training-telemetry digest, the final metrics snapshot, and a count of
bridged log records.
"""

from __future__ import annotations

import json
from dataclasses import dataclass, field
from pathlib import Path

from repro.obs.trace import format_span_tree

__all__ = ["RunReport", "load_events", "build_report", "format_report"]


def load_events(path) -> list[dict]:
    """Parse a JSONL event file into a list of record dicts."""
    records: list[dict] = []
    text = Path(path).read_text(encoding="utf-8")
    for lineno, line in enumerate(text.splitlines(), start=1):
        line = line.strip()
        if not line:
            continue
        try:
            record = json.loads(line)
        except json.JSONDecodeError as exc:
            raise ValueError(f"{path}:{lineno}: invalid JSON record: {exc}") from exc
        if not isinstance(record, dict):
            raise ValueError(f"{path}:{lineno}: expected a JSON object")
        records.append(record)
    return records


@dataclass
class RunReport:
    """Everything :func:`format_report` needs, derived from raw records."""

    meta: dict = field(default_factory=dict)
    span_rows: list[tuple[str, float]] = field(default_factory=list)
    #: path -> ordered list of epoch-event attr dicts
    epochs: dict[str, list[dict]] = field(default_factory=dict)
    metrics: dict = field(default_factory=dict)
    log_counts: dict[str, int] = field(default_factory=dict)
    n_records: int = 0


def build_report(records: list[dict]) -> RunReport:
    """Aggregate raw JSONL records into a :class:`RunReport`."""
    report = RunReport(n_records=len(records))
    for record in records:
        kind = record.get("kind")
        if kind == "span":
            report.span_rows.append(
                (record.get("path") or record.get("name", "?"),
                 float(record.get("duration_s", 0.0)))
            )
        elif kind == "event" and record.get("name") == "epoch":
            attrs = record.get("attrs", {})
            key = record.get("path", "")
            if "fold" in attrs:
                key = f"{key} [fold {attrs['fold']}]"
            report.epochs.setdefault(key, []).append(attrs)
        elif kind == "meta" and record.get("name") == "run":
            report.meta = record.get("attrs", {})
        elif kind == "meta" and record.get("name") == "metrics":
            report.metrics = record.get("attrs", {})
        elif kind == "log":
            level = record.get("attrs", {}).get("level", "INFO")
            report.log_counts[level] = report.log_counts.get(level, 0) + 1
    return report


def _fmt(value, digits: int = 4) -> str:
    if isinstance(value, float):
        return f"{value:.{digits}f}"
    return str(value)


def _epoch_digest(events: list[dict]) -> str:
    losses = [e["loss"] for e in events if "loss" in e]
    vals = [e["val_accuracy"] for e in events if "val_accuracy" in e]
    norms = [e["grad_norm"] for e in events if "grad_norm" in e]
    parts = [f"epochs {len(events)}"]
    if losses:
        parts.append(f"final loss {_fmt(losses[-1])}")
    if vals:
        best = max(range(len(vals)), key=vals.__getitem__)
        parts.append(f"best val acc {_fmt(vals[best])} @ epoch {best}")
    if norms:
        parts.append(f"max grad norm {_fmt(max(norms), 3)}")
    lrs = [e["lr"] for e in events if "lr" in e]
    if lrs and lrs[-1] != lrs[0]:
        parts.append(f"lr {_fmt(lrs[0], 4)} -> {_fmt(lrs[-1], 4)}")
    return " | ".join(parts)


def format_report(report: RunReport) -> str:
    """Human-readable run summary (stage timings + telemetry + metrics)."""
    lines: list[str] = []
    if report.meta:
        described = ", ".join(
            f"{k}={report.meta[k]}" for k in sorted(report.meta)
        )
        lines.append(f"run: {described}")
        lines.append("")

    lines.append("== stage timings ==")
    lines.append(format_span_tree(report.span_rows))
    lines.append("")

    if report.epochs:
        lines.append("== training telemetry ==")
        for path in sorted(report.epochs):
            lines.append(path or "(no span context)")
            lines.append(f"  {_epoch_digest(report.epochs[path])}")
        lines.append("")

    if report.metrics:
        lines.append("== metrics ==")
        for name in sorted(report.metrics):
            snap = report.metrics[name]
            if snap.get("type") == "histogram":
                lines.append(
                    f"{name}: count {snap['count']}, mean "
                    f"{_fmt(snap['sum'] / snap['count'] if snap['count'] else 0.0, 4)}"
                )
            else:
                lines.append(f"{name}: {_fmt(snap.get('value', 0.0), 4)}")
        lines.append("")

    if report.log_counts:
        described = ", ".join(
            f"{level}: {report.log_counts[level]}" for level in sorted(report.log_counts)
        )
        lines.append(f"log records: {described}")
        lines.append("")

    lines.append(f"({report.n_records} records)")
    return "\n".join(lines)
