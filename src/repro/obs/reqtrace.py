"""Request-scoped tracing: trace ids, waterfalls, and the live trace store.

Every request entering the serving stack gets a *trace id* — either
minted at HTTP ingress or supplied by the client in the
``X-Repro-Trace-Id`` header — that is carried through admission, the
micro-batcher queue, the fused forward pass, and response
serialisation.  The handler decomposes the request's latency into four
child spans::

    request                      # root, attrs: trace_id, endpoint, model, status
      queue_wait                 # admission -> picked into a batch
      batch_wait                 # picked -> fused forward pass starts
      infer                      # the fused forward pass (shared with batchmates)
      serialize                  # response encoding + write

The fan-in is recorded as *span links*: the batcher's ``serve_batch``
span carries the trace ids of every request fused into it (and each
request span carries the ``batch_id``), so N request spans and 1 batch
span cross-reference without pretending a tree relationship that does
not exist.

Two consumers reconstruct waterfalls from those spans:

* the live ``GET /v1/traces/<id>`` endpoint reads this module's
  :class:`TraceStore` (a bounded ring of recently finished traces);
* ``repro ops trace <id> run.jsonl`` rebuilds the identical record from
  the JSONL event log via :func:`build_waterfall`.

Both render through :func:`format_waterfall`.
"""

from __future__ import annotations

import os
import re
import threading
from collections import OrderedDict

__all__ = [
    "TRACE_HEADER",
    "TraceStore",
    "build_waterfall",
    "format_waterfall",
    "list_traces",
    "new_trace_id",
    "valid_trace_id",
]

#: HTTP header carrying the trace id (request: optional, supplied by the
#: client; response: always echoed).
TRACE_HEADER = "X-Repro-Trace-Id"

#: Client-supplied ids must be hex-ish and bounded so they are safe to
#: echo into logs, JSON, and metrics labels.
_TRACE_ID_RE = re.compile(r"^[0-9a-fA-F][0-9a-fA-F-]{7,63}$")

#: Stage names that make up a request waterfall, in timeline order.
WATERFALL_STAGES = ("queue_wait", "batch_wait", "infer", "serialize")


def new_trace_id() -> str:
    """A fresh 16-hex-char trace id (64 random bits)."""
    return os.urandom(8).hex()


def valid_trace_id(value: str | None) -> bool:
    """Whether a client-supplied id is acceptable to adopt and echo."""
    return bool(value) and _TRACE_ID_RE.match(value) is not None


class TraceStore:
    """Bounded, thread-safe ring of recently finished request traces.

    Maps ``trace_id`` to one waterfall record (see
    :func:`build_waterfall` for the shape).  Oldest entries fall off
    when ``capacity`` is exceeded; re-putting an id refreshes it.
    """

    def __init__(self, capacity: int = 512) -> None:
        if capacity <= 0:
            raise ValueError(f"capacity must be > 0, got {capacity}")
        self.capacity = capacity
        self._traces: OrderedDict[str, dict] = OrderedDict()
        self._lock = threading.Lock()

    def put(self, trace_id: str, record: dict) -> None:
        with self._lock:
            self._traces.pop(trace_id, None)
            self._traces[trace_id] = record
            while len(self._traces) > self.capacity:
                self._traces.popitem(last=False)

    def get(self, trace_id: str) -> dict | None:
        with self._lock:
            return self._traces.get(trace_id)

    def ids(self) -> list[str]:
        """Stored trace ids, oldest first."""
        with self._lock:
            return list(self._traces)

    def __len__(self) -> int:
        return len(self._traces)


# ----------------------------------------------------------------------
# Offline reconstruction (repro ops trace / traces)
# ----------------------------------------------------------------------

def _request_spans(records: list[dict]) -> list[dict]:
    return [
        r
        for r in records
        if r.get("kind") == "span"
        and r.get("name") == "request"
        and (r.get("attrs") or {}).get("trace_id")
    ]


def list_traces(records: list[dict]) -> list[dict]:
    """One summary row per request span in a JSONL run, in log order."""
    rows = []
    for record in _request_spans(records):
        attrs = record.get("attrs") or {}
        rows.append(
            {
                "trace_id": attrs["trace_id"],
                "endpoint": attrs.get("endpoint", "?"),
                "model": attrs.get("model"),
                "status": attrs.get("status"),
                "batch_id": attrs.get("batch_id"),
                "duration_s": float(record.get("duration_s", 0.0)),
            }
        )
    return rows


def build_waterfall(records: list[dict], trace_id: str) -> dict | None:
    """Reconstruct one trace's waterfall record from JSONL records.

    Returns the same shape the live :class:`TraceStore` holds: the
    ``request`` span supplies the envelope (endpoint, model, status,
    batch id, total duration); its child spans — matched by
    ``trace_id`` attr and path ``request/<stage>`` — supply the staged
    timeline.  ``None`` when the id never appears.
    """
    envelope = None
    stages: list[dict] = []
    for record in records:
        if record.get("kind") != "span":
            continue
        attrs = record.get("attrs") or {}
        if attrs.get("trace_id") != trace_id:
            continue
        name = record.get("name")
        if name == "request":
            envelope = record
        elif name in WATERFALL_STAGES:
            stages.append(
                {
                    "name": name,
                    "offset_s": float(attrs.get("offset_s", 0.0)),
                    "duration_s": float(record.get("duration_s", 0.0)),
                }
            )
    if envelope is None:
        return None
    attrs = envelope.get("attrs") or {}
    stages.sort(key=lambda s: s["offset_s"])
    return {
        "trace_id": trace_id,
        "endpoint": attrs.get("endpoint", "?"),
        "model": attrs.get("model"),
        "status": attrs.get("status"),
        "batch_id": attrs.get("batch_id"),
        "ts": envelope.get("ts"),
        "duration_s": float(envelope.get("duration_s", 0.0)),
        "spans": stages,
    }


def format_waterfall(record: dict, width: int = 40) -> str:
    """ASCII waterfall of one trace record (live or reconstructed)."""
    total = max(float(record.get("duration_s") or 0.0), 1e-9)
    header = (
        f"trace {record['trace_id']}  {record.get('endpoint', '?')}"
        + (f"  model={record['model']}" if record.get("model") else "")
        + (f"  status={record['status']}" if record.get("status") is not None else "")
        + (f"  batch={record['batch_id']}" if record.get("batch_id") else "")
        + f"  total {total * 1000:.2f}ms"
    )
    lines = [header]
    spans = record.get("spans") or []
    if not spans:
        lines.append("  (no stage spans recorded)")
        return "\n".join(lines)
    name_width = max(len(s["name"]) for s in spans)
    accounted = 0.0
    for span in spans:
        offset = float(span.get("offset_s", 0.0))
        duration = float(span.get("duration_s", 0.0))
        accounted += duration
        left = min(width, int(round(width * offset / total)))
        bar = max(1, int(round(width * duration / total)))
        bar = min(bar, width - left) or 1
        lane = " " * left + "#" * bar
        lines.append(
            f"  {span['name']:<{name_width}s} |{lane:<{width}s}| "
            f"{duration * 1000:8.2f}ms @ +{offset * 1000:.2f}ms"
        )
    lines.append(
        f"  {'(accounted)':<{name_width + 2}s} {accounted * 1000:.2f}ms of "
        f"{total * 1000:.2f}ms ({100.0 * accounted / total:.1f}%)"
    )
    return "\n".join(lines)
