"""Process resource telemetry: RSS, CPU time, GC, threads.

The roadmap's streaming and serving work both need to *see* memory —
"peak-RSS tracked in obs" is an explicit acceptance criterion — so this
module turns cheap stdlib probes into metrics-registry gauges:

* :func:`sample_resources` reads one point-in-time sample (resident set
  size from ``/proc/self/statm``, peak RSS from
  ``resource.getrusage``, user+system CPU seconds, cumulative GC
  collections, live thread count) as a plain dict;
* :func:`publish_resources` mirrors a sample into ``resource_*`` gauges
  (peak RSS is kept monotone, so late samples never shrink it);
* :class:`ResourceSampler` runs both on a background thread at a fixed
  interval — the serving stack starts one per process so ``/metrics``
  always carries a fresh resident-set reading, and an optional ``extra``
  callback lets the host publish adjacent gauges (batcher queue depths)
  on the same cadence.

Fork-pool workers ship one final sample home inside the
:func:`repro.obs.capture_worker` payload; the parent merges it with
:func:`merge_worker_sample` (peaks fold in as a max across workers,
CPU seconds add), mirroring how worker metrics and cache stats already
travel.

Everything degrades gracefully: on platforms without ``/proc`` the RSS
gauge reports 0 and peak RSS falls back to ``ru_maxrss`` alone.
"""

from __future__ import annotations

import gc
import os
import threading
import time

__all__ = [
    "RESOURCE_GAUGES",
    "ResourceSampler",
    "merge_worker_sample",
    "publish_resources",
    "sample_resources",
]

#: Gauge names published by :func:`publish_resources`, with help text
#: for the Prometheus exposition (``# HELP``) lines.
RESOURCE_GAUGES = {
    "resource_rss_bytes": "Current resident set size of this process.",
    "resource_peak_rss_bytes": "High-water resident set size (monotone).",
    "resource_cpu_seconds": "Cumulative user+system CPU time consumed.",
    "resource_gc_collections_total": "Cumulative garbage collections (all generations).",
    "resource_gc_tracked_objects": "Objects currently tracked by the cyclic GC.",
    "resource_threads": "Live Python threads in this process.",
}

_PAGE_SIZE = os.sysconf("SC_PAGE_SIZE") if hasattr(os, "sysconf") else 4096


def _rss_bytes() -> int:
    """Resident set size via ``/proc/self/statm`` (0 where unavailable)."""
    try:
        with open("/proc/self/statm", "rb") as fh:
            fields = fh.read().split()
        return int(fields[1]) * _PAGE_SIZE
    except (OSError, IndexError, ValueError):
        return 0


def _peak_rss_bytes() -> int:
    """Peak RSS via ``getrusage`` (``ru_maxrss`` is KiB on Linux, bytes on macOS)."""
    try:
        import resource as _resource

        maxrss = _resource.getrusage(_resource.RUSAGE_SELF).ru_maxrss
    except (ImportError, OSError, ValueError):
        return 0
    # Heuristic: Linux reports kilobytes, Darwin bytes.  A value that is
    # already >= 1 GiB is clearly bytes; otherwise trust the platform.
    import sys

    return int(maxrss) if sys.platform == "darwin" else int(maxrss) * 1024


def _cpu_seconds() -> float:
    """User + system CPU seconds for this process."""
    try:
        import resource as _resource

        usage = _resource.getrusage(_resource.RUSAGE_SELF)
        return float(usage.ru_utime + usage.ru_stime)
    except (ImportError, OSError, ValueError):
        return float(time.process_time())


def sample_resources() -> dict:
    """One point-in-time resource sample as a JSON-safe dict.

    Every probe is a syscall or a counter read — cheap enough to call
    per epoch or per second without showing up in profiles.
    """
    collections = sum(stat.get("collections", 0) for stat in gc.get_stats())
    gen_counts = gc.get_count()
    return {
        "rss_bytes": _rss_bytes(),
        "peak_rss_bytes": _peak_rss_bytes(),
        "cpu_seconds": _cpu_seconds(),
        "gc_collections_total": collections,
        "gc_tracked_objects": int(sum(gen_counts)),
        "threads": threading.active_count(),
    }


def publish_resources(sample: dict | None = None) -> dict:
    """Mirror ``sample`` (default: a fresh one) into ``resource_*`` gauges.

    Returns the sample that was published.  ``resource_peak_rss_bytes``
    is monotone: a stale or smaller reading never lowers it.  No-op
    gauges while observability is disabled, so this is safe to call
    unconditionally from instrumented code.
    """
    from repro import obs

    if sample is None:
        sample = sample_resources()
    registry = obs.get_metrics()
    registry.gauge("resource_rss_bytes").set(sample["rss_bytes"])
    peak = registry.gauge("resource_peak_rss_bytes")
    peak.set(max(peak.value, float(sample["peak_rss_bytes"])))
    registry.gauge("resource_cpu_seconds").set(sample["cpu_seconds"])
    registry.gauge("resource_gc_collections_total").set(sample["gc_collections_total"])
    registry.gauge("resource_gc_tracked_objects").set(sample["gc_tracked_objects"])
    registry.gauge("resource_threads").set(sample["threads"])
    for name, help_text in RESOURCE_GAUGES.items():
        registry.describe(name, help_text)
    return sample


def merge_worker_sample(sample: dict | None) -> None:
    """Fold a worker process's final resource sample into parent gauges.

    ``worker_peak_rss_bytes`` keeps the max across every worker seen so
    far (the number capacity planning cares about: the fattest fold);
    ``worker_cpu_seconds_total`` accumulates.  Called by
    :func:`repro.obs.merge_worker` alongside metric/span merging.
    """
    from repro import obs

    if not sample:
        return
    registry = obs.get_metrics()
    peak = registry.gauge("worker_peak_rss_bytes")
    peak.set(max(peak.value, float(sample.get("peak_rss_bytes", 0))))
    registry.describe(
        "worker_peak_rss_bytes", "Max peak RSS over every fold worker merged so far."
    )
    cpu = float(sample.get("cpu_seconds", 0.0))
    if cpu > 0:
        registry.counter("worker_cpu_seconds_total").inc(cpu)
        registry.describe(
            "worker_cpu_seconds_total", "CPU seconds accumulated across fold workers."
        )


class ResourceSampler:
    """Background thread publishing resource gauges at a fixed interval.

    Parameters
    ----------
    interval_s:
        Seconds between samples.  Values <= 0 disable the thread
        entirely (``start`` becomes a no-op), so callers can wire the
        sampler unconditionally and let configuration decide.
    extra:
        Optional zero-argument callable returning ``{gauge_name: value}``
        published alongside each sample — the serving stack uses it for
        per-model batcher queue depths.
    """

    def __init__(self, interval_s: float = 5.0, extra=None) -> None:
        self.interval_s = float(interval_s)
        self.extra = extra
        self.samples_taken = 0
        self._stop = threading.Event()
        self._thread: threading.Thread | None = None

    # -- lifecycle ------------------------------------------------------
    def start(self) -> "ResourceSampler":
        if self.interval_s <= 0 or (self._thread is not None and self._thread.is_alive()):
            return self
        self._stop.clear()
        self.sample_once()  # gauges are live from the first scrape
        self._thread = threading.Thread(
            target=self._run, name="repro-obs-resources", daemon=True
        )
        self._thread.start()
        return self

    def stop(self, timeout: float = 2.0) -> None:
        self._stop.set()
        if self._thread is not None:
            self._thread.join(timeout=timeout)
            self._thread = None

    @property
    def running(self) -> bool:
        return self._thread is not None and self._thread.is_alive()

    def __enter__(self) -> "ResourceSampler":
        return self.start()

    def __exit__(self, *exc_info) -> None:
        self.stop()

    # -- sampling -------------------------------------------------------
    def sample_once(self) -> dict:
        """Take and publish one sample (also used by the thread body)."""
        from repro import obs

        sample = publish_resources()
        if self.extra is not None:
            registry = obs.get_metrics()
            try:
                for name, value in (self.extra() or {}).items():
                    registry.gauge(name).set(float(value))
            except Exception:  # noqa: BLE001 - telemetry must not kill the host
                obs.counter("resource_sampler_errors_total").inc()
        self.samples_taken += 1
        return sample

    def _run(self) -> None:
        while not self._stop.wait(self.interval_s):
            try:
                self.sample_once()
            except Exception:  # noqa: BLE001 - keep sampling
                from repro import obs

                obs.counter("resource_sampler_errors_total").inc()
