"""Sliding-window SLO monitoring: latency quantiles, error budget, alerts.

A serving process has two contractual numbers: how slow it may be
(latency objective, here a p95 target) and how often it may fail
(availability objective, an error-rate target whose complement is the
*error budget*).  :class:`SloMonitor` tracks both over a sliding time
window of recent requests:

* streaming p50/p95/p99 over the window (bounded memory: the window is
  capped at ``max_samples`` most-recent observations);
* error rate and *burn rate* — observed error rate divided by the
  budgeted rate, so ``burn > 1`` means the budget is being spent faster
  than it accrues;
* a breach latch with hysteresis: the status flips to ``degraded`` when
  any objective is violated (after ``min_samples`` observations, so a
  single slow request on a cold server cannot page anyone) and emits a
  structured ``slo_breach`` event (rate-limited by ``cooldown_s``);
  recovery emits ``slo_recovered``.

The monitor mirrors its state into ``slo_*`` gauges on every
observation, so ``GET /metrics`` and ``GET /healthz`` expose the same
numbers a dashboard would alert on.

Offline, :func:`build_slo_summary` replays the ``http_access`` events of
a JSONL run log through the same arithmetic (over the whole run rather
than a sliding window) — ``repro ops slo run.jsonl`` prints it.
"""

from __future__ import annotations

import threading
import time
from collections import deque
from dataclasses import asdict, dataclass

import numpy as np

__all__ = [
    "SloConfig",
    "SloMonitor",
    "build_slo_summary",
    "format_slo_summary",
]

#: Statuses that spend error budget: server-side failures and shed
#: requests.  429 counts because a shed request is still a user who got
#: no answer; 4xx client errors do not (the server behaved correctly).
ERROR_STATUSES = frozenset({429, 500, 503, 504})


def _is_error(status: int) -> bool:
    return status in ERROR_STATUSES or status >= 500


@dataclass(frozen=True)
class SloConfig:
    """Objectives and window shape for one :class:`SloMonitor`."""

    latency_p95_ms: float = 500.0
    error_rate_target: float = 0.01
    window_s: float = 60.0
    min_samples: int = 20
    cooldown_s: float = 5.0
    max_samples: int = 4096

    def __post_init__(self) -> None:
        if self.latency_p95_ms <= 0:
            raise ValueError(f"latency_p95_ms must be > 0, got {self.latency_p95_ms}")
        if not 0 < self.error_rate_target < 1:
            raise ValueError(
                f"error_rate_target must be in (0, 1), got {self.error_rate_target}"
            )
        if self.window_s <= 0:
            raise ValueError(f"window_s must be > 0, got {self.window_s}")
        if self.min_samples < 1:
            raise ValueError(f"min_samples must be >= 1, got {self.min_samples}")


class SloMonitor:
    """Tracks request outcomes against an :class:`SloConfig`.

    Thread-safe: handler threads call :meth:`observe` concurrently; the
    health endpoint calls :meth:`snapshot`.
    """

    def __init__(self, config: SloConfig | None = None, clock=time.monotonic) -> None:
        self.config = config or SloConfig()
        self._clock = clock
        #: (ts, latency_ms, is_error) most-recent-last.
        self._window: deque[tuple[float, float, bool]] = deque(
            maxlen=self.config.max_samples
        )
        self._lock = threading.Lock()
        self._degraded = False
        self._last_alert_at = -float("inf")
        self.total = 0
        self.total_errors = 0

    # -- recording ------------------------------------------------------
    def observe(self, latency_s: float, status: int) -> None:
        """Record one finished request and re-evaluate the objectives."""
        now = self._clock()
        error = _is_error(int(status))
        with self._lock:
            self._window.append((now, float(latency_s) * 1000.0, error))
            self._trim(now)
            self.total += 1
            self.total_errors += int(error)
            stats = self._stats()
        self._publish(stats)
        self._evaluate(stats, now)

    def _trim(self, now: float) -> None:
        horizon = now - self.config.window_s
        while self._window and self._window[0][0] < horizon:
            self._window.popleft()

    # -- derived state (lock held by callers of _stats) -----------------
    def _stats(self) -> dict:
        latencies = [lat for _, lat, _ in self._window]
        errors = sum(1 for _, _, err in self._window if err)
        count = len(self._window)
        if latencies:
            p50, p95, p99 = (
                float(np.percentile(latencies, q)) for q in (50, 95, 99)
            )
        else:
            p50 = p95 = p99 = 0.0
        error_rate = errors / count if count else 0.0
        return {
            "window_count": count,
            "window_errors": errors,
            "p50_ms": p50,
            "p95_ms": p95,
            "p99_ms": p99,
            "error_rate": error_rate,
            "burn_rate": error_rate / self.config.error_rate_target,
        }

    def _breaches(self, stats: dict) -> list[str]:
        if stats["window_count"] < self.config.min_samples:
            return []
        breaches = []
        if stats["p95_ms"] > self.config.latency_p95_ms:
            breaches.append(
                f"latency: p95 {stats['p95_ms']:.1f}ms > "
                f"target {self.config.latency_p95_ms:g}ms"
            )
        if stats["error_rate"] > self.config.error_rate_target:
            breaches.append(
                f"errors: rate {stats['error_rate']:.3f} > "
                f"target {self.config.error_rate_target:g} "
                f"(budget burn {stats['burn_rate']:.1f}x)"
            )
        return breaches

    def _publish(self, stats: dict) -> None:
        from repro import obs

        registry = obs.get_metrics()
        if not registry.enabled:
            return
        registry.gauge("slo_latency_p50_ms").set(stats["p50_ms"])
        registry.gauge("slo_latency_p95_ms").set(stats["p95_ms"])
        registry.gauge("slo_latency_p99_ms").set(stats["p99_ms"])
        registry.gauge("slo_error_rate").set(stats["error_rate"])
        registry.gauge("slo_burn_rate").set(stats["burn_rate"])
        registry.gauge("slo_degraded").set(1.0 if self._degraded else 0.0)
        registry.describe("slo_latency_p95_ms", "Sliding-window p95 latency.")
        registry.describe("slo_error_rate", "Sliding-window error fraction.")
        registry.describe(
            "slo_burn_rate", "Error rate over budgeted rate (>1 burns budget)."
        )
        registry.describe("slo_degraded", "1 while any SLO objective is breached.")

    def _evaluate(self, stats: dict, now: float) -> None:
        from repro import obs

        breaches = self._breaches(stats)
        with self._lock:
            was_degraded = self._degraded
            self._degraded = bool(breaches)
            alert = False
            if breaches and (
                not was_degraded
                or now - self._last_alert_at >= self.config.cooldown_s
            ):
                alert = True
                self._last_alert_at = now
        if alert:
            obs.counter("slo_alerts_total").inc()
            obs.event(
                "slo_breach",
                breaches=breaches,
                p95_ms=stats["p95_ms"],
                error_rate=stats["error_rate"],
                burn_rate=stats["burn_rate"],
                window_count=stats["window_count"],
            )
        elif was_degraded and not breaches:
            obs.event("slo_recovered", window_count=stats["window_count"])
        obs.get_metrics().gauge("slo_degraded").set(1.0 if self._degraded else 0.0)

    # -- inspection -----------------------------------------------------
    @property
    def degraded(self) -> bool:
        return self._degraded

    def status(self) -> str:
        return "degraded" if self._degraded else "ok"

    def snapshot(self) -> dict:
        """JSON-safe state for ``/healthz`` (objectives + live window)."""
        with self._lock:
            self._trim(self._clock())
            stats = self._stats()
        return {
            "status": self.status(),
            "breaches": self._breaches(stats),
            "objectives": asdict(self.config),
            "window": stats,
            "lifetime": {"requests": self.total, "errors": self.total_errors},
        }


# ----------------------------------------------------------------------
# Offline summary (repro ops slo)
# ----------------------------------------------------------------------

def build_slo_summary(records: list[dict], config: SloConfig | None = None) -> dict:
    """Evaluate a whole run's ``http_access`` events against ``config``.

    Unlike the live monitor there is no sliding window — the run file is
    the window.  Returns a dict shaped like :meth:`SloMonitor.snapshot`
    plus per-status counts.
    """
    config = config or SloConfig()
    latencies: list[float] = []
    statuses: dict[int, int] = {}
    errors = 0
    for record in records:
        if record.get("kind") != "event" or record.get("name") != "http_access":
            continue
        attrs = record.get("attrs", {})
        status = int(attrs.get("status", 0))
        statuses[status] = statuses.get(status, 0) + 1
        latencies.append(float(attrs.get("duration_ms", 0.0)))
        errors += int(_is_error(status))
    count = len(latencies)
    if latencies:
        p50, p95, p99 = (float(np.percentile(latencies, q)) for q in (50, 95, 99))
    else:
        p50 = p95 = p99 = 0.0
    error_rate = errors / count if count else 0.0
    stats = {
        "window_count": count,
        "window_errors": errors,
        "p50_ms": p50,
        "p95_ms": p95,
        "p99_ms": p99,
        "error_rate": error_rate,
        "burn_rate": error_rate / config.error_rate_target,
    }
    breaches = []
    if count >= config.min_samples:
        if p95 > config.latency_p95_ms:
            breaches.append(
                f"latency: p95 {p95:.1f}ms > target {config.latency_p95_ms:g}ms"
            )
        if error_rate > config.error_rate_target:
            breaches.append(
                f"errors: rate {error_rate:.3f} > target "
                f"{config.error_rate_target:g} (budget burn {stats['burn_rate']:.1f}x)"
            )
    return {
        "status": "degraded" if breaches else "ok",
        "breaches": breaches,
        "objectives": asdict(config),
        "window": stats,
        "statuses": {str(k): v for k, v in sorted(statuses.items())},
    }


def format_slo_summary(summary: dict) -> str:
    """Human-readable rendering of :func:`build_slo_summary` output."""
    window = summary["window"]
    objectives = summary["objectives"]
    lines = [
        f"requests: {window['window_count']}  errors: {window['window_errors']}  "
        f"error rate: {window['error_rate']:.4f} "
        f"(target {objectives['error_rate_target']:g}, "
        f"burn {window['burn_rate']:.2f}x)",
        f"latency ms: p50 {window['p50_ms']:.2f}  p95 {window['p95_ms']:.2f}  "
        f"p99 {window['p99_ms']:.2f}  (p95 target {objectives['latency_p95_ms']:g}ms)",
    ]
    statuses = summary.get("statuses")
    if statuses:
        described = "  ".join(f"{k}: {v}" for k, v in statuses.items())
        lines.append(f"status counts: {described}")
    if summary["breaches"]:
        lines.append("SLO status: DEGRADED")
        for breach in summary["breaches"]:
            lines.append(f"  - {breach}")
    else:
        lines.append("SLO status: ok")
    return "\n".join(lines)
