"""Per-epoch training telemetry.

:class:`TelemetryCallback` is invoked by :class:`repro.nn.model.Trainer`
after every epoch (and usable as a standalone ``epoch_callback``).  When
observability is enabled it emits one ``kind="event", name="epoch"``
record carrying the epoch's loss, accuracies, post-plateau learning rate
and pre-clip gradient norm, and mirrors the same quantities into the
metrics registry (gauges + a gradient-norm histogram).  Each epoch also
refreshes the process ``resource_*`` gauges and stamps the event with
the current RSS, so long training runs get a memory-growth series for
free.  Disabled, it is a no-op.
"""

from __future__ import annotations

__all__ = ["TelemetryCallback", "GRAD_NORM_BUCKETS"]

#: Histogram edges for pre-clip gradient norms — wide, log-spaced, so
#: exploding-gradient runs show up as mass in the top buckets.
GRAD_NORM_BUCKETS = (0.01, 0.1, 1.0, 10.0, 100.0, 1000.0)

#: History series mirrored into the epoch event (last entry of each).
_SERIES = ("loss", "train_accuracy", "val_accuracy", "lr", "grad_norm")


class TelemetryCallback:
    """Emit one structured ``epoch`` event per training epoch.

    Parameters
    ----------
    name:
        Event name (default ``"epoch"``).
    """

    def __init__(self, name: str = "epoch") -> None:
        self.name = name
        self.emitted = 0

    def __call__(self, epoch: int, history, **extra) -> None:
        """Record epoch ``epoch`` from ``history``'s latest entries.

        ``extra`` overrides/extends the history-derived fields — the
        Trainer passes ``lr`` explicitly so the event reflects the rate
        *after* the ReduceLROnPlateau step, not the one the epoch ran at.
        """
        from repro import obs
        from repro.obs.resources import publish_resources

        if not obs.enabled():
            return
        sample = publish_resources()
        fields: dict = {"epoch": epoch, "rss_bytes": sample["rss_bytes"]}
        fold = obs.current_attr("fold")
        if fold is not None:
            fields["fold"] = fold
        for key in _SERIES:
            series = getattr(history, key, None)
            if series:
                fields[key] = series[-1]
        fields.update(extra)
        obs.event(self.name, **fields)

        if "loss" in fields:
            obs.gauge("train_loss").set(fields["loss"])
        if "val_accuracy" in fields:
            obs.gauge("val_accuracy").set(fields["val_accuracy"])
        if "lr" in fields:
            obs.gauge("learning_rate").set(fields["lr"])
        if "grad_norm" in fields:
            obs.histogram("grad_norm", GRAD_NORM_BUCKETS).observe(fields["grad_norm"])
        obs.counter("epochs_total").inc()
        self.emitted += 1
