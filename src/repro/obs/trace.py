"""Nestable wall-clock trace spans and the profile-tree renderer.

A *span* measures one pipeline stage.  Spans nest: entering a span while
another is open makes it a child, so a cross-validation run produces a
tree like ``cv/fold/fit/train``.  On exit each span reports its
slash-joined path, duration, and attributes to the tracer's ``on_close``
hook (wired to the event log by :mod:`repro.obs`), which is how spans
reach the JSONL stream.

:func:`format_span_tree` renders ``(path, duration)`` pairs — whether
harvested live from a :class:`Tracer` or reloaded from a JSONL run file —
into the identical aggregated profile tree, so ``repro train --profile``
and ``repro report`` print the same summary.
"""

from __future__ import annotations

import threading
from time import perf_counter

__all__ = [
    "Span",
    "Tracer",
    "NULL_SPAN",
    "span_rows",
    "format_span_tree",
]


class Span:
    """One timed stage; a reentrant-unsafe, single-use context manager."""

    __slots__ = ("name", "attrs", "parent", "children", "start", "end", "error", "_tracer")

    def __init__(self, name: str, tracer: "Tracer", attrs: dict | None = None) -> None:
        self.name = name
        self.attrs = attrs or {}
        self.parent: Span | None = None
        self.children: list[Span] = []
        self.start: float | None = None
        self.end: float | None = None
        self.error: str | None = None
        self._tracer = tracer

    @property
    def duration(self) -> float:
        """Elapsed seconds (live while the span is still open)."""
        if self.start is None:
            return 0.0
        return (self.end if self.end is not None else perf_counter()) - self.start

    @property
    def path(self) -> str:
        parts = []
        node: Span | None = self
        while node is not None:
            parts.append(node.name)
            node = node.parent
        return "/".join(reversed(parts))

    def set_attr(self, key: str, value) -> None:
        self.attrs[key] = value

    def to_dict(self) -> dict:
        """Serializable snapshot of this span's subtree.

        The inverse of :meth:`Tracer.graft`: worker processes ship their
        finished span trees across the process boundary as plain dicts
        and the parent re-roots them under its own open span.
        """
        return {
            "name": self.name,
            "attrs": dict(self.attrs),
            "duration": self.duration,
            "error": self.error,
            "children": [child.to_dict() for child in self.children],
        }

    # -- context manager ------------------------------------------------
    def __enter__(self) -> "Span":
        self.parent = self._tracer.current()
        self.start = perf_counter()
        self._tracer._push(self)
        return self

    def __exit__(self, exc_type, exc, tb) -> bool:
        self.end = perf_counter()
        if exc_type is not None:
            self.error = exc_type.__name__
        self._tracer._pop(self)
        return False  # never swallow exceptions

    def __repr__(self) -> str:
        return f"Span({self.path!r}, {self.duration:.6f}s)"


class _NullSpan:
    """Shared no-op span used when observability is disabled.

    Stateless, so one instance can be open in any number of ``with``
    blocks at once.
    """

    __slots__ = ()

    def __enter__(self) -> "_NullSpan":
        return self

    def __exit__(self, exc_type, exc, tb) -> bool:
        return False

    def set_attr(self, key: str, value) -> None:
        pass


NULL_SPAN = _NullSpan()


class Tracer:
    """Collects span trees; one stack per thread, one shared root list."""

    def __init__(self, on_close=None) -> None:
        self.on_close = on_close
        self.roots: list[Span] = []
        self._local = threading.local()
        self._lock = threading.Lock()

    def _stack(self) -> list[Span]:
        stack = getattr(self._local, "stack", None)
        if stack is None:
            stack = self._local.stack = []
        return stack

    def current(self) -> Span | None:
        stack = self._stack()
        return stack[-1] if stack else None

    def current_path(self) -> str:
        node = self.current()
        return node.path if node is not None else ""

    def current_attr(self, key: str):
        """Innermost value of ``key`` among the open spans (None if unset)."""
        node = self.current()
        while node is not None:
            if key in node.attrs:
                return node.attrs[key]
            node = node.parent
        return None

    def span(self, name: str, **attrs) -> Span:
        return Span(name, self, attrs)

    # -- bookkeeping (called by Span) -----------------------------------
    def _push(self, span: Span) -> None:
        self._stack().append(span)

    def _pop(self, span: Span) -> None:
        stack = self._stack()
        # Exception safety: unwind past any children that never ran
        # __exit__ (can only happen if a generator holding a span was
        # abandoned); the closing span is always removed.
        while stack and stack[-1] is not span:
            stack.pop()
        if stack:
            stack.pop()
        if span.parent is not None:
            span.parent.children.append(span)
        else:
            with self._lock:
                self.roots.append(span)
        if self.on_close is not None:
            self.on_close(span)

    def graft(self, tree: dict, parent: Span | None = None) -> Span:
        """Attach a serialized span tree (:meth:`Span.to_dict`) to this tracer.

        ``parent`` defaults to the innermost open span, so a tree
        recorded in a worker process with a ``fold/...`` path re-roots as
        ``cv/fold/...`` when merged while the parent's ``cv`` span is
        still open.  Durations are taken from the tree (the worker's
        wall clock); children close before their parent, mirroring live
        execution, so ``on_close`` fires in the same order a local run
        would produce.
        """
        if parent is None:
            parent = self.current()
        sp = Span(str(tree["name"]), self, dict(tree.get("attrs") or {}))
        sp.parent = parent
        sp.start = 0.0
        sp.end = float(tree.get("duration") or 0.0)
        sp.error = tree.get("error")
        for child in tree.get("children", ()):
            self.graft(child, parent=sp)
        if parent is not None:
            parent.children.append(sp)
        else:
            with self._lock:
                self.roots.append(sp)
        if self.on_close is not None:
            self.on_close(sp)
        return sp

    def reset(self) -> None:
        self.roots = []
        self._local = threading.local()

    # -- harvesting -----------------------------------------------------
    def rows(self) -> list[tuple[str, float]]:
        """All finished spans as (path, duration) pairs."""
        return span_rows(self.roots)

    def render(self) -> str:
        """Aggregated profile tree of everything recorded so far."""
        return format_span_tree(self.rows())


def span_rows(roots: list[Span]) -> list[tuple[str, float]]:
    """Flatten span trees into (path, duration) pairs, parents first."""
    rows: list[tuple[str, float]] = []

    def walk(node: Span) -> None:
        rows.append((node.path, node.duration))
        for child in node.children:
            walk(child)

    for root in roots:
        walk(root)
    return rows


def _tree() -> dict:
    return {"count": 0, "total": 0.0, "children": {}}


def format_span_tree(rows: list[tuple[str, float]], indent: int = 2) -> str:
    """Render (path, duration) pairs as an aggregated profile tree.

    Spans sharing a path are merged (count x total); children are listed
    under their parent sorted by total time descending, with a percentage
    of the parent's total.  Output is deterministic given the same set of
    rows, whichever order they arrive in.
    """
    root = _tree()
    for path, duration in rows:
        node = root
        for part in path.split("/"):
            node = node["children"].setdefault(part, _tree())
        node["count"] += 1
        node["total"] += duration

    if not root["children"]:
        return "(no spans recorded)"

    def label_width(node: dict, depth: int) -> int:
        widths = [
            max(indent * depth + len(name), label_width(child, depth + 1))
            for name, child in node["children"].items()
        ]
        return max(widths, default=0)

    width = max(label_width(root, 0), 20)
    lines = [f"{'stage':<{width}s} {'calls':>6s} {'total':>10s} {'share':>7s}"]

    def emit(name: str, node: dict, depth: int, parent_total: float | None) -> None:
        label = " " * (indent * depth) + name
        share = (
            f"{100.0 * node['total'] / parent_total:6.1f}%"
            if parent_total
            else "      -"
        )
        lines.append(
            f"{label:<{width}s} {node['count']:>6d} {node['total']:>9.3f}s {share}"
        )
        ordered = sorted(
            node["children"].items(), key=lambda kv: (-kv[1]["total"], kv[0])
        )
        for child_name, child in ordered:
            emit(child_name, child, depth + 1, node["total"])

    top = sorted(root["children"].items(), key=lambda kv: (-kv[1]["total"], kv[0]))
    for name, node in top:
        emit(name, node, 0, None)
    return "\n".join(lines)
