"""Fold-parallel execution for the cross-validation protocols.

The paper's whole evaluation surface is 10-fold CV repeated over 15
datasets x 3 feature maps; the folds are embarrassingly parallel once
the shared preprocessing (gram matrix / feature maps) is done.
:func:`run_folds` maps a *top-level* function over per-fold payloads
with a ``fork`` process pool and falls back to a plain loop whenever
parallelism is unavailable or pointless, guaranteeing the two paths
produce bitwise-identical results (``tests/parallel/`` locks this
down).

Design rules that make the parallel path deterministic:

* **Explicit seeding.**  Workers never draw from inherited RNG state:
  every payload carries its own seed, spawned up front in the parent,
  so fold *k* sees the same stream whether it runs first, last, serial,
  or concurrent.
* **Inherited context, pickled payloads.**  Large shared inputs (gram
  matrix, graph lists) and non-picklable factories travel to workers by
  ``fork`` inheritance through a module global; only the small per-fold
  payloads and results cross the pipe.
* **Observability survives the boundary.**  When instrumentation is on,
  each worker records into a fresh in-process ``repro.obs`` context and
  ships its finished span trees / metric snapshots / events back with
  the result; the parent grafts them under its open ``cv`` span
  (:func:`repro.obs.merge_worker`), so ``--profile`` trees and cache
  hit/miss counters look the same as a serial run.

``REPRO_WORKERS`` sets the default worker count for every protocol
entry point that is not given an explicit ``workers=`` argument (the
CLI flag ``--workers`` wins over the environment).  ``workers <= 0``
means "all CPUs".
"""

from __future__ import annotations

import multiprocessing
import os

from repro import obs

__all__ = [
    "WORKERS_ENV",
    "resolve_workers",
    "fork_available",
    "parallelism_available",
    "run_folds",
]

#: Environment variable supplying the default worker count.
WORKERS_ENV = "REPRO_WORKERS"

#: (fn, context, capture_obs) inherited by forked workers; only ever set
#: around a Pool invocation in :func:`run_folds`.
_FORK_CONTEXT: tuple | None = None


def resolve_workers(workers: int | None = None) -> int:
    """Normalise a worker count: ``None`` -> ``$REPRO_WORKERS`` -> 1.

    ``workers <= 0`` requests one worker per CPU.
    """
    if workers is None:
        env = os.environ.get(WORKERS_ENV, "").strip()
        if env:
            try:
                workers = int(env)
            except ValueError:
                raise ValueError(
                    f"{WORKERS_ENV} must be an integer, got {env!r}"
                ) from None
        else:
            workers = 1
    workers = int(workers)
    if workers <= 0:
        workers = os.cpu_count() or 1
    return workers


def fork_available() -> bool:
    """Whether this platform supports the ``fork`` start method."""
    return "fork" in multiprocessing.get_all_start_methods()


def parallelism_available() -> bool:
    """True when a process pool can actually be created here.

    Requires ``fork`` (context inheritance) and a non-daemonic current
    process (pool workers are daemonic and may not spawn children).
    """
    return fork_available() and not multiprocessing.current_process().daemon


def _fold_entry(task):
    """Pool worker body: run one fold under an isolated obs context."""
    from repro import cache as cache_mod

    index, payload = task
    assert _FORK_CONTEXT is not None, "worker forked outside run_folds"
    fn, context, capture = _FORK_CONTEXT
    # The default cache object (if any) was inherited by fork along with
    # its stats at fork time; snapshot so only this fold's delta ships
    # back.  Disk entries written by workers land in the shared dir, but
    # their hit/miss counts would otherwise die with the process.
    cache = cache_mod.get_cache()
    stats_before = cache.stats.as_dict() if cache is not None else None
    if not capture:
        result = fn(context, payload)
        delta = cache.stats.diff(stats_before) if cache is not None else None
        return index, result, {"cache_stats": delta}
    # The fork inherited the parent's enabled obs context — including an
    # open span stack and possibly a JSONL sink.  Detach the sink (the
    # parent's copy of the file stays open; emit() flushes after every
    # write, so there is nothing buffered to duplicate) and start a
    # fresh, in-memory-only recording for this fold.
    obs.get_event_log().close()
    obs.disable()
    obs.reset()
    obs.enable()
    try:
        result = fn(context, payload)
        worker_obs = obs.capture_worker()
    finally:
        obs.disable()
        obs.reset()
    delta = cache.stats.diff(stats_before) if cache is not None else None
    worker_obs["cache_stats"] = delta
    return index, result, worker_obs


def run_folds(fn, payloads, *, context=None, workers: int | None = None) -> list:
    """Run ``fn(context, payload)`` for every payload; results in order.

    ``fn`` must be a module-level function (pickled by reference).
    ``context`` holds the shared read-only inputs; it reaches workers by
    fork inheritance, so it may contain non-picklable objects such as
    closures.  Falls back to a sequential loop when ``workers`` resolves
    to 1, there are fewer than two payloads, or the platform cannot
    fork — the fallback calls ``fn`` identically, so results match the
    pool bitwise.
    """
    payloads = list(payloads)
    workers = min(resolve_workers(workers), len(payloads) or 1)
    if workers <= 1 or not parallelism_available():
        return [fn(context, payload) for payload in payloads]

    global _FORK_CONTEXT
    capture = obs.enabled()
    previous = _FORK_CONTEXT
    _FORK_CONTEXT = (fn, context, capture)
    try:
        ctx = multiprocessing.get_context("fork")
        with ctx.Pool(processes=workers) as pool:
            outputs = pool.map(_fold_entry, list(enumerate(payloads)))
    finally:
        _FORK_CONTEXT = previous
    outputs.sort(key=lambda item: item[0])
    from repro import cache as cache_mod

    cache = cache_mod.get_cache()
    for _, _, worker_obs in outputs:
        if cache is not None and worker_obs:
            cache.stats.merge(worker_obs.get("cache_stats"))
        if capture:
            obs.merge_worker(worker_obs)
    return [result for _, result, _ in outputs]
