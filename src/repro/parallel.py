"""Fold-parallel execution for the cross-validation protocols.

The paper's whole evaluation surface is 10-fold CV repeated over 15
datasets x 3 feature maps; the folds are embarrassingly parallel once
the shared preprocessing (gram matrix / feature maps) is done.
:func:`run_folds` maps a *top-level* function over per-fold payloads
with a ``fork`` process pool and falls back to a plain loop whenever
parallelism is unavailable or pointless, guaranteeing the two paths
produce bitwise-identical results (``tests/parallel/`` locks this
down).

Design rules that make the parallel path deterministic:

* **Explicit seeding.**  Workers never draw from inherited RNG state:
  every payload carries its own seed, spawned up front in the parent,
  so fold *k* sees the same stream whether it runs first, last, serial,
  concurrent, or requeued after a crash.
* **Inherited context, pickled payloads.**  Large shared inputs (gram
  matrix, graph lists) and non-picklable factories travel to workers by
  ``fork`` inheritance through a module global; only the small per-fold
  payloads and results cross the pipe.
* **Observability survives the boundary.**  When instrumentation is on,
  each worker records into a fresh in-process ``repro.obs`` context and
  ships its finished span trees / metric snapshots / events back with
  the result; the parent grafts them under its open ``cv`` span
  (:func:`repro.obs.merge_worker`), so ``--profile`` trees and cache
  hit/miss counters look the same as a serial run.

Crash resilience (``tests/resilience/`` exercises every branch):

* A worker that raises an ordinary ``Exception`` ships the full
  traceback text back to the parent, which raises :class:`FoldError`
  with the worker's stack inline — no more opaque pickled remnants.
* A worker that *dies* (``os._exit``, OOM-kill, segfault) breaks the
  pool; the parent detects it, requeues the unfinished folds on a fresh
  pool (their payloads already carry their seeds, so retried folds stay
  deterministic), and after ``max_retries`` pool rebuilds degrades to
  running the survivors serially in the parent process.
* ``on_result(index, result)`` fires in the parent as each fold
  completes — crash-journaling hooks (``repro.resilience.journal``)
  use it to persist finished folds before a later fold can take the
  process down.

``REPRO_WORKERS`` sets the default worker count for every protocol
entry point that is not given an explicit ``workers=`` argument (the
CLI flag ``--workers`` wins over the environment).  ``workers <= 0``
means "all CPUs".
"""

from __future__ import annotations

import multiprocessing
import os
import traceback
from concurrent.futures import ProcessPoolExecutor, as_completed
from concurrent.futures.process import BrokenProcessPool
from dataclasses import dataclass

from repro import obs

__all__ = [
    "WORKERS_ENV",
    "BACKEND_ENV",
    "BACKENDS",
    "FoldError",
    "resolve_workers",
    "resolve_backend",
    "fork_available",
    "parallelism_available",
    "run_folds",
]

#: Environment variable supplying the default worker count.
WORKERS_ENV = "REPRO_WORKERS"

#: Environment variable supplying the default executor backend.
BACKEND_ENV = "REPRO_FOLD_BACKEND"

#: Recognised executor backends: ``auto`` picks the fork pool whenever
#: it is available and useful; ``fork`` insists on it (still degrading
#: serially when the platform cannot fork); ``serial`` forces the
#: in-process loop — the dist coordinator uses it for its degradation
#: path so leftover folds never recursively spawn a pool.
BACKENDS = ("auto", "fork", "serial")

#: (fn, context, capture_obs) inherited by forked workers; only ever set
#: around a pool invocation in :func:`run_folds`.
_FORK_CONTEXT: tuple | None = None

#: Set in each pool worker.  Executor workers are not daemonic, so this
#: flag (inherited by any grandchild fork) is what keeps a nested
#: :func:`run_folds` inside a fold from forking a pool of its own.
_IN_FOLD_WORKER = False


class FoldError(RuntimeError):
    """A fold function raised inside a worker process.

    The worker's full traceback text is embedded in the message (and
    kept on ``worker_traceback``), so the parent's stack trace shows
    *where in the fold* the failure happened, not just that a pickled
    exception crossed the pipe.
    """

    def __init__(self, index, worker_traceback: str) -> None:
        super().__init__(
            f"fold {index} failed in worker process:\n{worker_traceback}"
        )
        self.index = index
        self.worker_traceback = worker_traceback


@dataclass
class _WorkerFailure:
    """Picklable sentinel carrying a worker's traceback to the parent."""

    index: int
    traceback: str


def resolve_workers(workers: int | None = None) -> int:
    """Normalise a worker count: ``None`` -> ``$REPRO_WORKERS`` -> 1.

    ``workers <= 0`` requests one worker per CPU.
    """
    if workers is None:
        env = os.environ.get(WORKERS_ENV, "").strip()
        if env:
            try:
                workers = int(env)
            except ValueError:
                raise ValueError(
                    f"{WORKERS_ENV} must be an integer, got {env!r}"
                ) from None
        else:
            workers = 1
    workers = int(workers)
    if workers <= 0:
        workers = os.cpu_count() or 1
    return workers


def resolve_backend(backend: str | None = None) -> str:
    """Normalise a backend name: explicit -> ``$REPRO_FOLD_BACKEND`` -> auto."""
    if backend is None:
        backend = os.environ.get(BACKEND_ENV, "").strip() or "auto"
    backend = str(backend).lower()
    if backend not in BACKENDS:
        raise ValueError(
            f"unknown fold backend {backend!r} (expected one of {BACKENDS})"
        )
    return backend


def fork_available() -> bool:
    """Whether this platform supports the ``fork`` start method."""
    return "fork" in multiprocessing.get_all_start_methods()


def parallelism_available() -> bool:
    """True when a process pool can actually be created here.

    Requires ``fork`` (context inheritance) and not already being inside
    a fold worker (or any daemonic process): one pool per ``run_folds``
    tree is enough, and nested pools would multiply processes without
    bounds.
    """
    return (
        fork_available()
        and not _IN_FOLD_WORKER
        and not multiprocessing.current_process().daemon
    )


def _fold_entry(task):
    """Pool worker body: run one fold under an isolated obs context.

    Ordinary fold failures return a :class:`_WorkerFailure` (the parent
    re-raises them as :class:`FoldError`); only process death — or an
    injected :class:`~repro.resilience.faults.InjectedFault`, which is a
    ``BaseException`` precisely so no handler here can swallow it —
    escapes this function.
    """
    global _IN_FOLD_WORKER
    _IN_FOLD_WORKER = True
    index, payload = task
    try:
        return _fold_body(index, payload)
    except Exception:
        return _WorkerFailure(index, traceback.format_exc())


def _fold_body(index, payload):
    from repro import cache as cache_mod

    assert _FORK_CONTEXT is not None, "worker forked outside run_folds"
    fn, context, capture = _FORK_CONTEXT
    # The default cache object (if any) was inherited by fork along with
    # its stats at fork time; snapshot so only this fold's delta ships
    # back.  Disk entries written by workers land in the shared dir, but
    # their hit/miss counts would otherwise die with the process.
    cache = cache_mod.get_cache()
    stats_before = cache.stats.as_dict() if cache is not None else None
    if not capture:
        result = fn(context, payload)
        delta = cache.stats.diff(stats_before) if cache is not None else None
        return index, result, {"cache_stats": delta}
    # The fork inherited the parent's enabled obs context — including an
    # open span stack and possibly a JSONL sink.  Detach the sink (the
    # parent's copy of the file stays open; emit() flushes after every
    # write, so there is nothing buffered to duplicate) and start a
    # fresh, in-memory-only recording for this fold.
    obs.get_event_log().close()
    obs.disable()
    obs.reset()
    obs.enable()
    try:
        result = fn(context, payload)
        worker_obs = obs.capture_worker()
    finally:
        obs.disable()
        obs.reset()
    delta = cache.stats.diff(stats_before) if cache is not None else None
    worker_obs["cache_stats"] = delta
    return index, result, worker_obs


def _consume(output, results, remaining, capture, cache, on_result):
    """Fold one worker output into the parent's state."""
    if isinstance(output, _WorkerFailure):
        raise FoldError(output.index, output.traceback)
    index, result, worker_obs = output
    if cache is not None and worker_obs:
        cache.stats.merge(worker_obs.get("cache_stats"))
    if capture:
        obs.merge_worker(worker_obs)
    results[index] = result
    remaining.pop(index, None)
    if on_result is not None:
        on_result(index, result)


def run_folds(
    fn,
    payloads,
    *,
    context=None,
    workers: int | None = None,
    on_result=None,
    max_retries: int = 2,
    backend: str | None = None,
) -> list:
    """Run ``fn(context, payload)`` for every payload; results in order.

    ``fn`` must be a module-level function (pickled by reference).
    ``context`` holds the shared read-only inputs; it reaches workers by
    fork inheritance, so it may contain non-picklable objects such as
    closures.  Falls back to a sequential loop when ``workers`` resolves
    to 1, there are fewer than two payloads, or the platform cannot
    fork — the fallback calls ``fn`` identically, so results match the
    pool bitwise.

    ``backend`` selects the executor explicitly (see :data:`BACKENDS`;
    default ``auto``, overridable via ``$REPRO_FOLD_BACKEND``):
    ``serial`` forces the in-process loop regardless of worker count,
    which is how the dist coordinator's degradation path reuses this
    function without ever nesting a fork pool.

    ``on_result(index, result)`` is invoked in the parent as each fold
    finishes (completion order in the pool, payload order serially); use
    it to journal completed folds incrementally.

    If a worker process dies, the unfinished folds are requeued onto a
    fresh pool up to ``max_retries`` times; once retries are exhausted
    the remaining folds run serially in the parent.  A fold that raises
    an ordinary exception is *not* retried — the error is deterministic
    — and surfaces as :class:`FoldError` carrying the worker traceback.
    """
    payloads = list(payloads)
    backend = resolve_backend(backend)
    workers = min(resolve_workers(workers), len(payloads) or 1)
    if backend == "serial" or workers <= 1 or not parallelism_available():
        results = []
        for index, payload in enumerate(payloads):
            result = fn(context, payload)
            results.append(result)
            if on_result is not None:
                on_result(index, result)
        return results

    global _FORK_CONTEXT
    capture = obs.enabled()
    previous = _FORK_CONTEXT
    _FORK_CONTEXT = (fn, context, capture)
    from repro import cache as cache_mod

    cache = cache_mod.get_cache()
    results: dict[int, object] = {}
    remaining = dict(enumerate(payloads))
    attempts = 0
    try:
        mp_ctx = multiprocessing.get_context("fork")
        while remaining and attempts <= max_retries:
            executor = ProcessPoolExecutor(
                max_workers=min(workers, len(remaining)), mp_context=mp_ctx
            )
            try:
                futures = [
                    executor.submit(_fold_entry, (index, remaining[index]))
                    for index in sorted(remaining)
                ]
                for future in as_completed(futures):
                    _consume(
                        future.result(), results, remaining, capture, cache, on_result
                    )
            except BrokenProcessPool:
                attempts += 1
                obs.counter("fold_crashes_total").inc()
                obs.counter("fold_retries_total").inc(
                    len(remaining) if attempts <= max_retries else 0
                )
                obs.event(
                    "worker_crash",
                    remaining=sorted(remaining),
                    attempt=attempts,
                    max_retries=max_retries,
                )
            finally:
                executor.shutdown(wait=False, cancel_futures=True)
    finally:
        _FORK_CONTEXT = previous
    if remaining:
        # Retries exhausted: graceful degradation — finish the surviving
        # folds serially in the parent.  Payload seeds make the results
        # identical to what the pool would have produced.
        obs.counter("fold_degradations_total").inc()
        obs.event("parallel_degraded", folds=sorted(remaining))
        for index in sorted(remaining):
            result = fn(context, remaining[index])
            results[index] = result
            if on_result is not None:
                on_result(index, result)
    if capture:
        # Workers merged their final samples as worker_* series above;
        # refresh the parent's own resource_* gauges to the same instant
        # so a post-run snapshot pairs both sides consistently.
        from repro.obs.resources import publish_resources

        publish_resources()
    return [results[index] for index in range(len(payloads))]
