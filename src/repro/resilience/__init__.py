"""`repro.resilience` — checkpoint/resume and fault-injection robustness.

Three pieces make interrupted runs cheap instead of fatal:

* :mod:`repro.resilience.checkpoint` — atomic, versioned, checksummed
  ``.npz`` snapshots with rollback-to-last-good
  (:class:`CheckpointManager`), used by the trainer for epoch-level
  resume (``Trainer.fit(resume_from=...)``).
* :mod:`repro.resilience.journal` — the per-run fold journal that lets
  the CV protocols skip already-completed folds on restart.
* :mod:`repro.resilience.faults` — deterministic fault plans
  (``raise``/``kill``/``corrupt`` at epoch N, fold K, nth cache or
  checkpoint write) that the test suite uses to prove every recovery
  path; see ``docs/RESILIENCE.md``.

The determinism guarantee: because every stochastic component draws from
explicitly captured streams (per-fold spawned seeds, checkpointed
trainer/dropout RNG state), a run interrupted at any instrumented point
and resumed produces **bitwise-identical** weights, per-epoch metric
history, and fold accuracies to the same run left uninterrupted —
``tests/resilience/`` locks this down point by point.
"""

from repro.resilience.checkpoint import (
    FORMAT_VERSION,
    CheckpointError,
    CheckpointInfo,
    CheckpointManager,
    load_checkpoint,
    save_checkpoint,
)
from repro.resilience.faults import (
    FaultPlan,
    FaultSpec,
    InjectedFault,
    parse_plan,
)
from repro.resilience.journal import FoldClaims, FoldJournal

__all__ = [
    "FORMAT_VERSION",
    "CheckpointError",
    "CheckpointInfo",
    "CheckpointManager",
    "save_checkpoint",
    "load_checkpoint",
    "FaultPlan",
    "FaultSpec",
    "InjectedFault",
    "parse_plan",
    "FoldClaims",
    "FoldJournal",
]
