"""Atomic, versioned, self-verifying training checkpoints.

A checkpoint is one ``.npz`` file holding an arbitrary nested *state*
(dicts / lists / scalars / numpy arrays — e.g. model weights, optimizer
slots, scheduler state, RNG streams, epoch cursor, metric history):

* every numpy array in the state becomes one npz entry,
* the remaining JSON-able skeleton is stored in a ``__manifest__`` entry
  together with a format version and a content checksum over all arrays.

Writes go through ``tempfile`` + ``os.replace`` so a reader never sees a
partial file, and a death mid-write leaves the previous checkpoint
untouched.  Reads verify the version and the checksum;
:meth:`CheckpointManager.load_latest` treats a corrupt or truncated file
as disposable — it deletes it and **rolls back to the newest good
checkpoint** — so a torn write can delay a resume by one step but never
poison it.

The fault-injection point ``checkpoint_write`` (see
:mod:`repro.resilience.faults`) fires once per save: ``raise``/``kill``
simulate dying mid-write (before the atomic rename), ``corrupt``
truncates the file after the rename so the rollback path is provable.
"""

from __future__ import annotations

import json
import os
import re
import tempfile
from dataclasses import dataclass
from pathlib import Path

import numpy as np

from repro import obs
from repro.resilience import faults

# Canonical home is repro.utils.wire (shared with persistence, serve and
# the dist protocol); re-exported here because checkpoints grew it first
# and external callers import it from this module.
from repro.utils.wire import blake2b_hexdigest

__all__ = [
    "FORMAT_VERSION",
    "CheckpointError",
    "CheckpointInfo",
    "CheckpointManager",
    "save_checkpoint",
    "load_checkpoint",
    "blake2b_hexdigest",
]

FORMAT_VERSION = 1

_MANIFEST_KEY = "__manifest__"
_FILE_RE = re.compile(r"^ckpt-(\d{8})\.npz$")


class CheckpointError(RuntimeError):
    """A checkpoint file is unreadable, corrupt, or from another format."""


# ----------------------------------------------------------------------
# State <-> flat arrays + JSON skeleton
# ----------------------------------------------------------------------

def _flatten(value, arrays: dict[str, np.ndarray]):
    """Replace every ndarray leaf with a reference into ``arrays``."""
    if isinstance(value, np.ndarray):
        ref = f"a{len(arrays)}"
        arrays[ref] = value
        return {"__array__": ref}
    if isinstance(value, np.generic):
        return value.item()
    if isinstance(value, dict):
        return {str(k): _flatten(v, arrays) for k, v in value.items()}
    if isinstance(value, (list, tuple)):
        return [_flatten(v, arrays) for v in value]
    if value is None or isinstance(value, (bool, int, float, str)):
        return value
    raise TypeError(
        f"checkpoint state cannot encode {type(value).__name__!r}"
    )


def _unflatten(value, arrays: dict[str, np.ndarray]):
    if isinstance(value, dict):
        if set(value) == {"__array__"}:
            return arrays[value["__array__"]]
        return {k: _unflatten(v, arrays) for k, v in value.items()}
    if isinstance(value, list):
        return [_unflatten(v, arrays) for v in value]
    return value




def _array_chunks(arrays: dict[str, np.ndarray]):
    for name in sorted(arrays):
        arr = np.ascontiguousarray(arrays[name])
        yield name.encode()
        yield arr.dtype.str.encode()
        yield repr(arr.shape).encode()
        yield arr.tobytes()


def _checksum(arrays: dict[str, np.ndarray]) -> str:
    """Digest over array names, dtypes, shapes, and raw bytes."""
    return blake2b_hexdigest(_array_chunks(arrays))


# ----------------------------------------------------------------------
# Single-file save / load
# ----------------------------------------------------------------------

def save_checkpoint(path: str | os.PathLike, step: int, state: dict) -> Path:
    """Atomically write ``state`` to ``path`` (see module docstring)."""
    path = Path(path)
    arrays: dict[str, np.ndarray] = {}
    skeleton = _flatten(state, arrays)
    manifest = {
        "format_version": FORMAT_VERSION,
        "step": int(step),
        "state": skeleton,
        "checksum": _checksum(arrays),
    }
    payload = dict(arrays)
    payload[_MANIFEST_KEY] = np.frombuffer(
        json.dumps(manifest).encode(), dtype=np.uint8
    )
    path.parent.mkdir(parents=True, exist_ok=True)
    fd, tmp = tempfile.mkstemp(dir=path.parent, prefix=".tmp-ckpt-", suffix=".npz")
    try:
        action = faults.check("checkpoint_write", _next_write_index())
        with os.fdopen(fd, "wb") as fh:
            np.savez(fh, **payload)
        os.replace(tmp, path)
    except BaseException:
        try:
            os.unlink(tmp)
        except OSError:
            pass
        raise
    if action == "corrupt":
        # Simulate a torn write that survived the rename: keep the first
        # half of the file only.  load() must detect this and roll back.
        size = path.stat().st_size
        with open(path, "r+b") as fh:
            fh.truncate(size // 2)
    obs.counter("checkpoints_saved_total").inc()
    return path


_write_index = 0


def _next_write_index() -> int:
    """Process-wide ordinal of checkpoint writes (fault-plan coordinate)."""
    global _write_index
    index = _write_index
    _write_index += 1
    return index


def load_checkpoint(path: str | os.PathLike) -> tuple[int, dict]:
    """Read, verify, and reconstruct ``(step, state)`` from ``path``.

    Raises :class:`CheckpointError` on any defect: missing file, zip
    corruption, missing manifest, foreign format version, or a checksum
    mismatch between the manifest and the stored arrays.
    """
    path = Path(path)
    try:
        with np.load(path, allow_pickle=False) as npz:
            if _MANIFEST_KEY not in npz.files:
                raise CheckpointError(f"{path} has no checkpoint manifest")
            manifest = json.loads(bytes(npz[_MANIFEST_KEY]).decode())
            arrays = {n: npz[n] for n in npz.files if n != _MANIFEST_KEY}
    except CheckpointError:
        raise
    except Exception as exc:
        raise CheckpointError(f"unreadable checkpoint {path}: {exc}") from exc
    version = manifest.get("format_version")
    if version != FORMAT_VERSION:
        raise CheckpointError(
            f"{path} has format version {version!r}, expected {FORMAT_VERSION}"
        )
    if _checksum(arrays) != manifest.get("checksum"):
        raise CheckpointError(f"{path} failed its content checksum")
    return int(manifest["step"]), _unflatten(manifest["state"], arrays)


# ----------------------------------------------------------------------
# Directory of checkpoints
# ----------------------------------------------------------------------

@dataclass(frozen=True)
class CheckpointInfo:
    """One checkpoint file as listed by :meth:`CheckpointManager.list`."""

    path: Path
    step: int
    bytes: int


class CheckpointManager:
    """A directory of ``ckpt-<step>.npz`` files with bounded retention.

    Parameters
    ----------
    directory:
        Where checkpoints live (created on first save).
    keep:
        How many most-recent checkpoints to retain after each save
        (older ones are pruned automatically); ``None`` keeps all.
    """

    def __init__(self, directory: str | os.PathLike, keep: int | None = 3) -> None:
        if keep is not None and keep < 1:
            raise ValueError(f"keep must be >= 1, got {keep}")
        self.directory = Path(directory)
        self.keep = keep

    def _path_for(self, step: int) -> Path:
        return self.directory / f"ckpt-{step:08d}.npz"

    def list(self) -> list[CheckpointInfo]:
        """All checkpoint files, oldest first."""
        if not self.directory.exists():
            return []
        infos = []
        for path in sorted(self.directory.iterdir()):
            m = _FILE_RE.match(path.name)
            if m:
                infos.append(
                    CheckpointInfo(path=path, step=int(m.group(1)), bytes=path.stat().st_size)
                )
        return infos

    def save(self, step: int, state: dict) -> Path:
        """Write the checkpoint for ``step`` and prune old ones."""
        with obs.span("checkpoint_save", step=step):
            path = save_checkpoint(self._path_for(step), step, state)
        if self.keep is not None:
            self.prune(self.keep)
        return path

    def load_latest(self) -> tuple[int, dict] | None:
        """Newest *good* checkpoint, rolling back over corrupt files.

        Corrupt or truncated files are deleted as they are discovered;
        returns ``None`` when no loadable checkpoint exists.
        """
        for info in reversed(self.list()):
            try:
                with obs.span("checkpoint_load", step=info.step):
                    return load_checkpoint(info.path)
            except CheckpointError:
                obs.counter("checkpoint_rollbacks_total").inc()
                obs.event("checkpoint_rollback", path=str(info.path), step=info.step)
                try:
                    info.path.unlink()
                except OSError:
                    pass
        return None

    def prune(self, keep: int | None = None) -> int:
        """Delete all but the ``keep`` newest checkpoints; returns count removed."""
        keep = self.keep if keep is None else keep
        if keep is None:
            return 0
        if keep < 1:
            raise ValueError(f"keep must be >= 1, got {keep}")
        removed = 0
        for info in self.list()[:-keep]:
            try:
                info.path.unlink()
                removed += 1
            except OSError:
                pass
        # Stale temp files from interrupted writes are garbage, not state.
        if self.directory.exists():
            for tmp in self.directory.glob(".tmp-ckpt-*.npz"):
                try:
                    tmp.unlink()
                except OSError:
                    pass
        return removed

    def __repr__(self) -> str:
        return f"CheckpointManager({self.directory}, keep={self.keep})"
