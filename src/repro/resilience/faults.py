"""Deterministic fault injection for the resilience test harness.

A *fault plan* is a comma-separated list of specs, each of the form::

    <mode>@<point>:<match>[x<fires>]

* ``mode`` — ``raise`` (raise :class:`InjectedFault`), ``kill``
  (``os._exit``: an abrupt, un-catchable process death), or ``corrupt``
  (the instrumented write point damages the artifact it just produced
  and carries on).
* ``point`` — the name of an injection point; the library currently
  instruments ``epoch`` (trainer epoch boundary), ``fold`` (inside a CV
  fold, i.e. mid-fold in a worker process), ``cache_write``
  (:meth:`repro.cache.FeatureMapCache.put`), ``checkpoint_write``
  (:meth:`repro.resilience.checkpoint.CheckpointManager.save`), and
  ``prefetch_worker`` (inside the streaming pipeline's background
  producer, :class:`repro.stream.prefetch.ShardPrefetcher`, matched on
  the global shard index).
* ``match`` — the integer coordinate at which to fire (epoch number,
  fold number, nth write — whatever the point reports).
* ``fires`` — how many times the spec triggers before it is spent
  (default 1, so an interrupted-and-resumed run does not die twice).

Plans come from :func:`install` (tests) or the ``REPRO_FAULTS``
environment variable (subprocess / CLI runs).  Because a ``kill`` fault
dies *inside a worker process*, the parent's in-memory spent count never
learns about it; set ``REPRO_FAULTS_STATE`` (or pass ``state_dir=``) to
a directory and fire counts are kept in marker files shared by every
process of the run — that is what makes "kill the worker once, then the
bounded retry succeeds" deterministic.

Injection points call :func:`check`; with no plan installed the call is
a dict lookup and an early return, so production runs pay nothing.

:class:`InjectedFault` deliberately subclasses :class:`BaseException`
(like ``KeyboardInterrupt``): the library's defensive ``except
Exception`` blocks — the cache's "never crash the run" writes, the
executor's traceback capture — must not swallow an injected fault, or
the harness could not prove those paths recover from a *real* crash.
"""

from __future__ import annotations

import os
from dataclasses import dataclass
from pathlib import Path

__all__ = [
    "FAULTS_ENV",
    "FAULTS_STATE_ENV",
    "InjectedFault",
    "FaultSpec",
    "FaultPlan",
    "parse_plan",
    "install",
    "install_from_env",
    "clear",
    "active_plan",
    "check",
]

#: Environment variable carrying a fault plan (see module docstring).
FAULTS_ENV = "REPRO_FAULTS"

#: Environment variable naming a directory for cross-process fire counts.
FAULTS_STATE_ENV = "REPRO_FAULTS_STATE"

_MODES = ("raise", "kill", "corrupt")

#: Exit code used by ``kill`` faults, chosen to be recognisable in tests.
KILL_EXIT_CODE = 70


class InjectedFault(BaseException):
    """Raised by ``raise``-mode faults.

    A ``BaseException`` so that broad ``except Exception`` recovery code
    under test cannot accidentally absorb the injection itself.
    """


@dataclass(frozen=True)
class FaultSpec:
    """One parsed ``mode@point:match[xN]`` clause."""

    mode: str
    point: str
    match: int
    fires: int = 1

    @property
    def spec_id(self) -> str:
        """Stable identifier used for spent-marker files."""
        return f"{self.mode}@{self.point}:{self.match}x{self.fires}"

    def __str__(self) -> str:  # pragma: no cover - repr convenience
        return self.spec_id


class FaultPlan:
    """A set of :class:`FaultSpec` with per-spec fire accounting.

    ``state_dir`` (optional) persists fire counts as one marker file per
    spec, each fire appending one byte, so counts survive process death
    and are visible across fork boundaries.
    """

    def __init__(
        self, specs: list[FaultSpec], state_dir: str | os.PathLike | None = None
    ) -> None:
        self.specs = list(specs)
        self.state_dir = Path(state_dir) if state_dir is not None else None
        self._memory_fires: dict[str, int] = {}
        self.by_point: dict[str, list[FaultSpec]] = {}
        for spec in self.specs:
            self.by_point.setdefault(spec.point, []).append(spec)

    # -- fire accounting ------------------------------------------------
    def _marker(self, spec: FaultSpec) -> Path:
        assert self.state_dir is not None
        return self.state_dir / f"{spec.spec_id}.fired"

    def fired(self, spec: FaultSpec) -> int:
        """How many times ``spec`` has triggered so far (all processes)."""
        if self.state_dir is not None:
            try:
                return self._marker(spec).stat().st_size
            except OSError:
                return 0
        return self._memory_fires.get(spec.spec_id, 0)

    def _record_fire(self, spec: FaultSpec) -> None:
        if self.state_dir is not None:
            self.state_dir.mkdir(parents=True, exist_ok=True)
            # One appended byte per fire; append is atomic at this size
            # and the marker must hit the disk *before* the fault acts
            # (a kill fault never returns).
            with open(self._marker(spec), "ab") as fh:
                fh.write(b"x")
                fh.flush()
                os.fsync(fh.fileno())
        else:
            self._memory_fires[spec.spec_id] = self._memory_fires.get(spec.spec_id, 0) + 1

    # -- matching -------------------------------------------------------
    def trigger(self, point: str, index: int, kill_action=None) -> str | None:
        """Fire the first live spec matching ``(point, index)``, if any.

        Returns the action the caller must take: ``None`` (nothing),
        ``"corrupt"`` (damage the artifact just written), or never — a
        ``raise`` spec raises :class:`InjectedFault` and a ``kill`` spec
        terminates the process.

        ``kill_action`` substitutes for ``os._exit`` at injection points
        hosted by a *thread* rather than a process: a thread cannot die
        alone via ``os._exit`` (that would take the whole process with
        it), so thread-hosted points pass a callable that tears down
        just the worker — typically by raising a private
        ``BaseException`` the worker loop treats as silent, abrupt
        death.  The callable must not return; if it does, the process
        exits anyway so a misbehaving action can never neuter a ``kill``
        spec.
        """
        for spec in self.by_point.get(point, ()):
            if spec.match != int(index) or self.fired(spec) >= spec.fires:
                continue
            self._record_fire(spec)
            _count_injection(point, spec.mode)
            if spec.mode == "raise":
                raise InjectedFault(f"injected fault {spec.spec_id} at {point}={index}")
            if spec.mode == "kill":
                if kill_action is not None:
                    kill_action(spec)
                os._exit(KILL_EXIT_CODE)
            return "corrupt"
        return None


def parse_plan(
    text: str, state_dir: str | os.PathLike | None = None
) -> FaultPlan:
    """Parse ``"kill@fold:2x3,raise@epoch:1"`` into a :class:`FaultPlan`."""
    specs: list[FaultSpec] = []
    for clause in text.split(","):
        clause = clause.strip()
        if not clause:
            continue
        try:
            mode, rest = clause.split("@", 1)
            point, coord = rest.split(":", 1)
            if "x" in coord:
                match_s, fires_s = coord.split("x", 1)
                match, fires = int(match_s), int(fires_s)
            else:
                match, fires = int(coord), 1
        except ValueError:
            raise ValueError(
                f"bad fault spec {clause!r}; expected mode@point:match[xN]"
            ) from None
        mode = mode.strip().lower()
        if mode not in _MODES:
            raise ValueError(f"unknown fault mode {mode!r}; choose from {_MODES}")
        if fires < 1:
            raise ValueError(f"fault fire count must be >= 1, got {fires}")
        specs.append(FaultSpec(mode=mode, point=point.strip(), match=match, fires=fires))
    return FaultPlan(specs, state_dir=state_dir)


# ----------------------------------------------------------------------
# Process-wide plan
# ----------------------------------------------------------------------

_plan: FaultPlan | None = None
_env_loaded = False


def install(
    plan: FaultPlan | str, state_dir: str | os.PathLike | None = None
) -> FaultPlan:
    """Install ``plan`` (a :class:`FaultPlan` or spec string) process-wide."""
    global _plan, _env_loaded
    if isinstance(plan, str):
        plan = parse_plan(plan, state_dir=state_dir)
    elif state_dir is not None:
        plan.state_dir = Path(state_dir)
    _plan = plan
    _env_loaded = True  # an explicit install wins over the environment
    return plan


def install_from_env() -> FaultPlan | None:
    """(Re)load the plan from ``REPRO_FAULTS`` / ``REPRO_FAULTS_STATE``."""
    global _plan, _env_loaded
    _env_loaded = True
    text = os.environ.get(FAULTS_ENV, "").strip()
    if not text:
        _plan = None
        return None
    state = os.environ.get(FAULTS_STATE_ENV, "").strip() or None
    _plan = parse_plan(text, state_dir=state)
    return _plan


def clear() -> None:
    """Remove any installed plan (tests)."""
    global _plan, _env_loaded
    _plan = None
    _env_loaded = False


def active_plan() -> FaultPlan | None:
    """The currently installed plan (loading the env on first use)."""
    global _env_loaded
    if not _env_loaded:
        install_from_env()
    return _plan


def check(point: str, index: int, kill_action=None) -> str | None:
    """Injection-point hook: fire any live fault matching ``(point, index)``.

    Returns ``"corrupt"`` when the caller should damage the artifact it
    just wrote, ``None`` otherwise.  ``raise`` faults raise and ``kill``
    faults never return.  With no plan installed this is a near-free
    early return, safe to call on hot paths.  ``kill_action`` lets
    thread-hosted points substitute worker-only teardown for
    ``os._exit`` — see :meth:`FaultPlan.trigger`.
    """
    plan = active_plan()
    if plan is None or point not in plan.by_point:
        return None
    return plan.trigger(point, index, kill_action=kill_action)


def _count_injection(point: str, mode: str) -> None:
    from repro import obs

    obs.counter("faults_injected_total").inc()
    obs.event("fault_injected", point=point, mode=mode)
