"""Append-only journal of completed CV folds.

The protocol entry points (:mod:`repro.eval.protocol`) journal every
finished fold as one JSON line; on restart the journal tells them which
folds are already done, so an interrupted 10-fold run re-computes only
the missing folds.  Because every fold runs from its own up-front
spawned seed, a journaled result is bitwise what a fresh run would have
produced — resuming changes nothing but wall clock.

Robustness properties:

* Each ``record`` is a single ``write`` of one line followed by flush +
  fsync, so a crash can tear at most the final line.
* ``load`` ignores a torn / unparsable trailing line (and any line whose
  fold index is malformed) instead of failing the resume.
* The journal is keyed by a *run fingerprint* directory (see
  ``protocol.py``): a journal can only ever be replayed into the exact
  dataset/protocol configuration that wrote it.

Float values survive the JSON round trip exactly (``repr`` ↔ parse is
lossless for IEEE doubles), which is what keeps resumed accuracies
bitwise-identical to uninterrupted runs.

**Claims** (:class:`FoldClaims`) extend the journal for *concurrent*
writers: the journal records what finished, claims arbitrate who may
run a fold in the first place.  A claim is a file published with an
atomic ``os.link`` — the filesystem's own mutual exclusion, safe across
unrelated processes and (on a shared filesystem) across hosts — holding
the owner id, pid, and a heartbeat timestamp the owner refreshes while
it works.  A claim
whose heartbeat has gone stale (owner died mid-fold) is *stolen* by
renaming it aside: ``os.rename`` succeeds for exactly one stealer, so
even the takeover is single-winner.  The dist coordinator claims a fold
before dispatching it and releases on completion; two coordinators (or
a coordinator and a straggler) can therefore never double-run a fold —
the exactly-once prerequisite.
"""

from __future__ import annotations

import json
import os
import tempfile
import time
from pathlib import Path

from repro import obs
from repro.obs.events import jsonable

__all__ = ["FoldJournal", "FoldClaims", "DEFAULT_CLAIM_TTL_S"]

#: Heartbeat staleness (seconds) after which a claim may be stolen.
DEFAULT_CLAIM_TTL_S = 30.0


class FoldJournal:
    """One ``folds.jsonl`` file of ``{"fold": k, "result": {...}}`` lines."""

    def __init__(self, path: str | os.PathLike) -> None:
        self.path = Path(path)

    def load(self) -> dict[int, dict]:
        """Completed folds on disk: ``{fold_index: result_dict}``.

        Later lines for the same fold win (a retried fold re-journals);
        torn or malformed lines are skipped.
        """
        if not self.path.exists():
            return {}
        completed: dict[int, dict] = {}
        with open(self.path, "r", encoding="utf-8") as fh:
            for line in fh:
                line = line.strip()
                if not line:
                    continue
                try:
                    entry = json.loads(line)
                    fold = int(entry["fold"])
                    result = entry["result"]
                except (ValueError, KeyError, TypeError):
                    continue  # torn tail or foreign garbage: not fatal
                if isinstance(result, dict):
                    completed[fold] = result
        return completed

    def record(self, fold: int, result: dict) -> None:
        """Append one completed fold (single write + flush + fsync)."""
        self.path.parent.mkdir(parents=True, exist_ok=True)
        line = json.dumps({"fold": int(fold), "result": jsonable(result)})
        with open(self.path, "a", encoding="utf-8") as fh:
            fh.write(line + "\n")
            fh.flush()
            os.fsync(fh.fileno())
        obs.counter("folds_journaled_total").inc()

    def reset(self) -> None:
        """Forget any previous run (non-resume starts)."""
        try:
            self.path.unlink()
        except FileNotFoundError:
            pass

    def claims(
        self, owner: str, ttl_s: float = DEFAULT_CLAIM_TTL_S
    ) -> "FoldClaims":
        """A :class:`FoldClaims` arbitrating this journal's folds."""
        return FoldClaims(self.path.parent / "claims", owner, ttl_s=ttl_s)

    def __repr__(self) -> str:
        return f"FoldJournal({self.path})"


class FoldClaims:
    """Exclusive, heartbeat-leased fold ownership via linked claim files.

    One file per fold under ``directory``; the fully-written body is
    published under the claim name with ``os.link`` — the atomic acquire
    (exactly one process can create the name, whatever host or process
    tree it belongs to, and the name never exists half-written).  The file body
    is JSON — ``{"owner", "pid", "ts"}`` — and the owner rewrites it
    (tmp + ``os.replace``, atomic for readers) as its heartbeat.  When a
    contender finds an existing claim whose ``ts`` is older than
    ``ttl_s``, the owner is presumed dead: the contender renames the
    claim to a unique tombstone — a rename exactly one contender can win
    — and retries the acquire.  A live owner's refresh keeps ``ts``
    fresh, so only actually-dead owners are ever evicted.
    """

    def __init__(
        self,
        directory: str | os.PathLike,
        owner: str,
        ttl_s: float = DEFAULT_CLAIM_TTL_S,
    ) -> None:
        if ttl_s <= 0:
            raise ValueError(f"ttl_s must be > 0, got {ttl_s}")
        self.directory = Path(directory)
        self.owner = str(owner)
        self.ttl_s = float(ttl_s)
        self._steals = 0

    def _path(self, fold: int) -> Path:
        return self.directory / f"fold-{int(fold):04d}.claim"

    def _body(self) -> bytes:
        return json.dumps(
            {"owner": self.owner, "pid": os.getpid(), "ts": time.time()}
        ).encode()

    # -- acquire ---------------------------------------------------------
    def claim(self, fold: int) -> bool:
        """Try to acquire ``fold``; True iff this owner now holds it.

        The body is written (and fsynced) to a hidden temp file first and
        the claim name is published with an atomic :func:`os.link`.  The
        name therefore never exists with a partial body — a contender that
        loses the race can't misread a mid-write claim as torn/stale and
        steal it back, which would mint two winners.
        """
        path = self._path(fold)
        self.directory.mkdir(parents=True, exist_ok=True)
        fd, tmp = tempfile.mkstemp(dir=self.directory, prefix=".claim-")
        try:
            try:
                os.write(fd, self._body())
                os.fsync(fd)
            finally:
                os.close(fd)
            while True:
                try:
                    os.link(tmp, path)  # atomic: exactly one link wins
                except FileExistsError:
                    if not self._try_steal(fold):
                        obs.counter("fold_claims_contended_total").inc()
                        return False
                    continue  # stale claim evicted: retry the acquire
                obs.counter("fold_claims_acquired_total").inc()
                return True
        finally:
            try:
                os.unlink(tmp)
            except OSError:
                pass

    def _try_steal(self, fold: int) -> bool:
        """Evict a stale claim; True iff the caller should retry claiming.

        Exactly one contender's rename succeeds, so a steal never turns
        into a double-acquire; an unreadable claim file (torn write) is
        treated as stale — its writer cannot be heartbeating it.
        """
        path = self._path(fold)
        holder = self.holder(fold)
        if holder is None:
            return True  # vanished (released/stolen) meanwhile: retry
        ts = holder.get("ts")
        if isinstance(ts, (int, float)) and time.time() - ts <= self.ttl_s:
            return False  # live heartbeat: respect the claim
        tombstone = path.with_suffix(f".stale-{os.getpid()}-{self._steals}")
        self._steals += 1
        try:
            os.rename(path, tombstone)
        except OSError:
            return True  # another contender won the steal: retry acquire
        try:
            os.unlink(tombstone)
        except OSError:
            pass
        obs.counter("fold_claims_stolen_total").inc()
        return True

    # -- lease maintenance ----------------------------------------------
    def refresh(self, fold: int) -> None:
        """Re-stamp the heartbeat on a claim this owner holds."""
        path = self._path(fold)
        fd, tmp = tempfile.mkstemp(dir=self.directory, prefix=".hb-")
        try:
            os.write(fd, self._body())
            os.fsync(fd)
        finally:
            os.close(fd)
        try:
            os.replace(tmp, path)  # atomic: readers see old or new, never torn
        except OSError:
            try:
                os.unlink(tmp)
            except OSError:
                pass

    def release(self, fold: int) -> None:
        """Drop a claim (done or abandoned); missing file is fine."""
        try:
            os.unlink(self._path(fold))
        except FileNotFoundError:
            pass

    # -- introspection ---------------------------------------------------
    def holder(self, fold: int) -> dict | None:
        """The claim body for ``fold``, or ``None`` if unclaimed.

        An unreadable/torn body reports as ``{"owner": None, "ts": None}``
        rather than raising — contenders treat it as stale.
        """
        try:
            raw = self._path(fold).read_bytes()
        except OSError:
            return None
        try:
            body = json.loads(raw)
            if not isinstance(body, dict):
                raise ValueError(body)
        except ValueError:
            return {"owner": None, "pid": None, "ts": None}
        return body

    def __repr__(self) -> str:
        return f"FoldClaims({self.directory}, owner={self.owner!r})"
