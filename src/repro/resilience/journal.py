"""Append-only journal of completed CV folds.

The protocol entry points (:mod:`repro.eval.protocol`) journal every
finished fold as one JSON line; on restart the journal tells them which
folds are already done, so an interrupted 10-fold run re-computes only
the missing folds.  Because every fold runs from its own up-front
spawned seed, a journaled result is bitwise what a fresh run would have
produced — resuming changes nothing but wall clock.

Robustness properties:

* Each ``record`` is a single ``write`` of one line followed by flush +
  fsync, so a crash can tear at most the final line.
* ``load`` ignores a torn / unparsable trailing line (and any line whose
  fold index is malformed) instead of failing the resume.
* The journal is keyed by a *run fingerprint* directory (see
  ``protocol.py``): a journal can only ever be replayed into the exact
  dataset/protocol configuration that wrote it.

Float values survive the JSON round trip exactly (``repr`` ↔ parse is
lossless for IEEE doubles), which is what keeps resumed accuracies
bitwise-identical to uninterrupted runs.
"""

from __future__ import annotations

import json
import os
from pathlib import Path

from repro import obs
from repro.obs.events import jsonable

__all__ = ["FoldJournal"]


class FoldJournal:
    """One ``folds.jsonl`` file of ``{"fold": k, "result": {...}}`` lines."""

    def __init__(self, path: str | os.PathLike) -> None:
        self.path = Path(path)

    def load(self) -> dict[int, dict]:
        """Completed folds on disk: ``{fold_index: result_dict}``.

        Later lines for the same fold win (a retried fold re-journals);
        torn or malformed lines are skipped.
        """
        if not self.path.exists():
            return {}
        completed: dict[int, dict] = {}
        with open(self.path, "r", encoding="utf-8") as fh:
            for line in fh:
                line = line.strip()
                if not line:
                    continue
                try:
                    entry = json.loads(line)
                    fold = int(entry["fold"])
                    result = entry["result"]
                except (ValueError, KeyError, TypeError):
                    continue  # torn tail or foreign garbage: not fatal
                if isinstance(result, dict):
                    completed[fold] = result
        return completed

    def record(self, fold: int, result: dict) -> None:
        """Append one completed fold (single write + flush + fsync)."""
        self.path.parent.mkdir(parents=True, exist_ok=True)
        line = json.dumps({"fold": int(fold), "result": jsonable(result)})
        with open(self.path, "a", encoding="utf-8") as fh:
            fh.write(line + "\n")
            fh.flush()
            os.fsync(fh.fileno())
        obs.counter("folds_journaled_total").inc()

    def reset(self) -> None:
        """Forget any previous run (non-resume starts)."""
        try:
            self.path.unlink()
        except FileNotFoundError:
            pass

    def __repr__(self) -> str:
        return f"FoldJournal({self.path})"
