"""`repro.serve` — batched, backpressured inference serving.

The training side of the repo fits :class:`~repro.core.model.DeepMapClassifier`
models and persists them with :mod:`repro.core.persistence`; this package
turns such artifacts into a network service:

* :class:`~repro.serve.registry.ModelRegistry` — named, versioned model
  slots loaded from persistence files, warm-preloaded and hot-swappable;
* :class:`~repro.serve.batcher.MicroBatcher` — coalesces concurrent
  single-graph predict requests into one encoder/CNN forward pass
  (flush on ``max_batch`` graphs or ``max_wait_ms``, per-request
  deadlines, bounded admission queue that sheds instead of collapsing);
* :class:`~repro.serve.http.ReproServer` — a ``ThreadingHTTPServer``
  front-end (``POST /v1/predict``, ``POST /v1/predict_proba``,
  ``GET /healthz``, ``GET /metrics``, ``GET /v1/traces/<id>``) with
  end-to-end request tracing (``X-Repro-Trace-Id``), SLO monitoring
  (:mod:`repro.obs.slo`), and background resource sampling
  (:mod:`repro.obs.resources`);
* :class:`~repro.serve.client.ServeClient` and
  :func:`~repro.serve.loadgen.run_load` — a pure-python client and a
  closed/open-loop load generator reporting p50/p95/p99 latency and
  throughput.

Batching is observably correct: a batched forward pass produces
bitwise-identical probabilities to a serial in-process
``predict_proba`` on the same graphs (``tests/serve`` proves it with a
hypothesis property test), because every pipeline stage — vertex feature
extraction, centrality alignment, receptive-field assembly, and the
bias-free CNN — is per-graph independent.

Everything here is stdlib + numpy; see ``docs/SERVING.md``.
"""

from __future__ import annotations

from repro.serve.batcher import (
    BatcherStopped,
    DeadlineExceeded,
    MicroBatcher,
    RequestShed,
)
from repro.serve.client import ServeClient, ServeClientError
from repro.serve.codec import (
    CodecError,
    graph_from_json,
    graph_to_json,
    parse_predict_request,
)
from repro.serve.http import ReproServer, ServeConfig
from repro.serve.loadgen import (
    LoadResult,
    parse_promtext,
    parse_promtext_samples,
    run_load,
)
from repro.serve.registry import ModelEntry, ModelRegistry

__all__ = [
    "BatcherStopped",
    "CodecError",
    "DeadlineExceeded",
    "LoadResult",
    "MicroBatcher",
    "ModelEntry",
    "ModelRegistry",
    "ReproServer",
    "RequestShed",
    "ServeClient",
    "ServeClientError",
    "ServeConfig",
    "graph_from_json",
    "graph_to_json",
    "parse_predict_request",
    "parse_promtext",
    "parse_promtext_samples",
    "run_load",
]
