"""Dynamic micro-batching with a bounded admission queue.

The DeepMap forward pass is a dense batched matmul over fixed-size
``(w * r, m)`` tensors — exactly the shape PATCHY-SAN-style vertex
ordering buys — so ten concurrent single-graph requests cost barely more
than one when fused into a single encoder/CNN pass.  The
:class:`MicroBatcher` does that fusing:

* ``submit`` enqueues a request onto a **bounded** queue; a full queue
  sheds the request immediately (:class:`RequestShed` -> HTTP 429)
  instead of letting latency collapse for everyone;
* one or more drainer threads (``workers``, resizable at runtime via
  :meth:`MicroBatcher.resize`) pull from the shared queue, each fusing
  requests until its batch holds ``max_batch`` graphs or ``max_wait_ms``
  has passed since the oldest request in the batch arrived, whichever
  comes first;
* each request carries an optional **deadline**; requests that expire
  while queued are answered with :class:`DeadlineExceeded` (HTTP 504)
  *before* wasting a slot in the forward pass;
* :meth:`MicroBatcher.stop` **drains** before it joins: admission
  closes, but every already-admitted request whose deadline has not
  expired still runs through a fused pass and gets its real answer —
  shutdown never silently drops in-flight work.

The :class:`Autoscaler` closes the loop between the queue-depth /
p95-latency gauges and the drainer count: a deterministic ``tick()``
(testable without threads or sleeps) applies consecutive-tick
hysteresis plus a cooldown so the worker count climbs under sustained
pressure and decays when idle without flapping on oscillating load.

Correctness is non-negotiable: because every pipeline stage is per-graph
independent, the fused pass is bitwise-identical to running each request
alone (property-tested in ``tests/serve/test_batcher.py``).

Instrumentation (via :mod:`repro.obs`, no-ops while disabled):
``serve_queue_depth`` / ``serve_queue_depth_peak`` gauges,
``serve_batch_size`` / ``serve_batch_requests`` histograms,
``serve_requests_shed_total`` / ``serve_deadline_expired_total`` /
``serve_batches_total`` counters, and the ``serve_infer_seconds`` /
``serve_queue_wait_seconds`` / ``serve_batch_wait_seconds`` histograms.

Request tracing: every :class:`_Pending` is timestamped at enqueue,
batch collection, and fused-pass start/end, so the HTTP layer can
decompose a request's latency into ``queue_wait`` / ``batch_wait`` /
``infer`` spans (:meth:`MicroBatcher.submit_traced` returns the stamps).
Each fused pass gets a ``batch_id``, and its ``serve_batch`` span
carries the trace ids of the fused requests as span links — the N:1
fan-in is recorded explicitly rather than faked as a tree.
"""

from __future__ import annotations

import itertools
import queue
import threading
import time
from collections.abc import Callable, Sequence

import numpy as np

from repro import obs
from repro.graph.graph import Graph

__all__ = [
    "Autoscaler",
    "BATCH_SIZE_BUCKETS",
    "BatcherStopped",
    "DeadlineExceeded",
    "MicroBatcher",
    "RequestShed",
    "register_serve_metrics",
]

#: Process-wide batch-id stream; ids are unique per process, which is
#: the scope a trace store and a JSONL run file share.
_BATCH_IDS = itertools.count(1)

#: Bucket edges for the batch-size histograms (graphs / requests per
#: fused forward pass) — powers of two up to a deep queue drain.
BATCH_SIZE_BUCKETS = (1.0, 2.0, 4.0, 8.0, 16.0, 32.0, 64.0, 128.0)

#: Bucket edges for per-batch inference latency (seconds).
INFER_SECONDS_BUCKETS = (0.001, 0.005, 0.01, 0.05, 0.1, 0.5, 1.0, 5.0)

#: Bucket edges for per-request wait decomposition (seconds) — finer at
#: the bottom than the infer buckets because waits should be tiny.
WAIT_SECONDS_BUCKETS = (0.0005, 0.001, 0.005, 0.01, 0.05, 0.1, 0.5, 1.0, 5.0)

#: ``# HELP`` text for the serving metric surface.
_SERVE_METRIC_HELP = {
    "serve_requests_total": "Requests admitted to a batcher queue.",
    "serve_requests_shed_total": "Requests rejected because the admission queue was full (HTTP 429).",
    "serve_deadline_expired_total": "Requests whose deadline passed while queued (HTTP 504).",
    "serve_batches_total": "Fused forward passes executed.",
    "serve_infer_errors_total": "Fused forward passes that raised.",
    "serve_queue_depth": "Requests currently queued, last observation.",
    "serve_queue_depth_peak": "High-water admission-queue depth (monotone per process).",
    "serve_batch_size": "Graphs per fused forward pass.",
    "serve_batch_requests": "Requests per fused forward pass.",
    "serve_infer_seconds": "Fused forward-pass latency.",
    "serve_queue_wait_seconds": "Per-request wait from admission to batch collection.",
    "serve_batch_wait_seconds": "Per-request wait from batch collection to the fused pass.",
    "serve_batcher_workers": "Drainer threads currently running per batcher, last observation.",
    "serve_autoscale_up_total": "Autoscaler scale-up decisions applied.",
    "serve_autoscale_down_total": "Autoscaler scale-down decisions applied.",
}


def register_serve_metrics() -> None:
    """Pre-register every batching instrument at its zero state.

    Called from both :meth:`MicroBatcher.start` and server startup so a
    ``GET /metrics`` scrape sees the full serving surface (shed counter
    at 0, empty batch-size histogram, ...) before the first request —
    dashboards should never have to special-case absent series.
    """
    obs.counter("serve_requests_total")
    obs.counter("serve_requests_shed_total")
    obs.counter("serve_deadline_expired_total")
    obs.counter("serve_batches_total")
    obs.counter("serve_infer_errors_total")
    obs.gauge("serve_queue_depth")
    obs.gauge("serve_queue_depth_peak")
    obs.histogram("serve_batch_size", BATCH_SIZE_BUCKETS)
    obs.histogram("serve_batch_requests", BATCH_SIZE_BUCKETS)
    obs.histogram("serve_infer_seconds", INFER_SECONDS_BUCKETS)
    obs.histogram("serve_queue_wait_seconds", WAIT_SECONDS_BUCKETS)
    obs.histogram("serve_batch_wait_seconds", WAIT_SECONDS_BUCKETS)
    obs.gauge("serve_batcher_workers")
    obs.counter("serve_autoscale_up_total")
    obs.counter("serve_autoscale_down_total")
    registry = obs.get_metrics()
    for name, help_text in _SERVE_METRIC_HELP.items():
        registry.describe(name, help_text)


class RequestShed(RuntimeError):
    """Admission queue full; the caller should retry later (HTTP 429)."""


class DeadlineExceeded(RuntimeError):
    """The request's deadline passed before a result was ready (HTTP 504)."""


class BatcherStopped(RuntimeError):
    """The batcher was stopped while the request was in flight (HTTP 503)."""


class _Pending:
    """One submitted request waiting for its slice of a fused batch.

    The monotonic timestamps stamped along the way (enqueue, batch
    collection, fused-pass start/end) are what the tracing layer turns
    into the ``queue_wait`` / ``batch_wait`` / ``infer`` waterfall.
    """

    __slots__ = (
        "graphs",
        "enqueued_at",
        "deadline",
        "done",
        "result",
        "extra",
        "error",
        "trace_id",
        "collected_at",
        "infer_started_at",
        "infer_ended_at",
        "batch_id",
    )

    def __init__(
        self,
        graphs: Sequence[Graph],
        deadline: float | None,
        trace_id: str | None = None,
    ) -> None:
        self.graphs = list(graphs)
        self.enqueued_at = time.monotonic()
        self.deadline = deadline
        self.done = threading.Event()
        self.result: np.ndarray | None = None
        self.extra: dict | None = None
        self.error: Exception | None = None
        self.trace_id = trace_id
        self.collected_at: float | None = None
        self.infer_started_at: float | None = None
        self.infer_ended_at: float | None = None
        self.batch_id: str | None = None

    def finish(self, *, result=None, extra=None, error=None) -> None:
        """Deliver the terminal response; idempotent — first answer wins.

        Drain-on-stop means a request can race two resolvers (a drainer
        finishing its last batch vs. the stop path's leftover sweep);
        the idempotence guarantee is what makes "exactly one terminal
        response per admitted request" hold under that race.
        """
        if self.done.is_set():
            return
        self.result = result
        self.extra = extra
        self.error = error
        self.done.set()

    def timing(self) -> dict:
        """Stage boundaries for the tracing layer (None where unreached)."""
        return {
            "enqueued_at": self.enqueued_at,
            "collected_at": self.collected_at,
            "infer_started_at": self.infer_started_at,
            "infer_ended_at": self.infer_ended_at,
            "batch_id": self.batch_id,
        }


class MicroBatcher:
    """Coalesces concurrent predict requests into fused forward passes.

    Parameters
    ----------
    infer:
        ``infer(graphs) -> (proba, extra)`` running one fused forward
        pass; ``extra`` is an arbitrary per-batch metadata dict handed
        back to every request in the batch (the server puts the resolved
        model name/version/classes there so hot-swaps stay consistent
        with the weights that actually ran).
    max_batch:
        Flush threshold in *graphs* (requests may carry several).
    max_wait_ms:
        Flush threshold in milliseconds since the oldest batched
        request arrived.  ``0`` disables coalescing delay entirely.
    max_queue:
        Admission-queue bound in *requests*; beyond it ``submit`` sheds.
    workers:
        Initial drainer-thread count; resizable later via :meth:`resize`
        (the :class:`Autoscaler` does exactly that from gauge readings).
    """

    def __init__(
        self,
        infer: Callable[[list[Graph]], tuple[np.ndarray, dict]],
        *,
        max_batch: int = 32,
        max_wait_ms: float = 5.0,
        max_queue: int = 128,
        workers: int = 1,
    ) -> None:
        if max_batch < 1:
            raise ValueError(f"max_batch must be >= 1, got {max_batch}")
        if max_wait_ms < 0:
            raise ValueError(f"max_wait_ms must be >= 0, got {max_wait_ms}")
        if max_queue < 1:
            raise ValueError(f"max_queue must be >= 1, got {max_queue}")
        if workers < 1:
            raise ValueError(f"workers must be >= 1, got {workers}")
        self.infer = infer
        self.max_batch = max_batch
        self.max_wait_s = max_wait_ms / 1000.0
        self.max_queue = max_queue
        self._queue: queue.Queue[_Pending] = queue.Queue(maxsize=max_queue)
        self._stop = threading.Event()  # hard stop: drainers exit ASAP
        self._closing = threading.Event()  # graceful: drain, then exit
        self._lock = threading.Lock()
        self._threads: list[threading.Thread] = []
        self._target_workers = workers
        self._retire = 0  # drainers to retire after a shrink
        self._carries: dict[int, _Pending] = {}  # thread ident -> carry
        self._peak_depth = 0
        self._thread_ids = itertools.count(1)

    # ------------------------------------------------------------------
    # Lifecycle
    # ------------------------------------------------------------------
    def _spawn_locked(self) -> None:
        thread = threading.Thread(
            target=self._run,
            name=f"repro-serve-batcher-{next(self._thread_ids)}",
            daemon=True,
        )
        self._threads.append(thread)
        thread.start()

    def start(self) -> "MicroBatcher":
        register_serve_metrics()
        with self._lock:
            self._stop.clear()
            self._closing.clear()
            self._threads = [t for t in self._threads if t.is_alive()]
            while len(self._threads) < self._target_workers:
                self._spawn_locked()
        self._note_workers()
        return self

    def resize(self, workers: int) -> int:
        """Set the drainer count; returns the new target.

        Growing spawns threads immediately; shrinking retires drainers
        cooperatively — each surplus drainer exits at the top of its
        collect loop, never mid-batch, so no request is abandoned.
        """
        if workers < 1:
            raise ValueError(f"workers must be >= 1, got {workers}")
        with self._lock:
            self._target_workers = workers
            if self._closing.is_set() or self._stop.is_set():
                return workers
            self._threads = [t for t in self._threads if t.is_alive()]
            live = len(self._threads)
            if workers > live:
                self._retire = 0
                while len(self._threads) < workers:
                    self._spawn_locked()
            elif workers < live:
                self._retire = live - workers
        self._note_workers()
        return workers

    @property
    def workers(self) -> int:
        """Live drainer-thread count."""
        with self._lock:
            return sum(1 for t in self._threads if t.is_alive())

    def stop(self, timeout: float = 5.0) -> None:
        """Drain, then stop.

        Admission closes immediately (new ``submit`` calls raise
        :class:`BatcherStopped`), but requests already admitted are
        still batched and answered — a request only gets
        :class:`BatcherStopped` if the drain cannot complete within
        ``timeout`` seconds.  Every admitted request receives exactly
        one terminal response.
        """
        self._closing.set()
        with self._lock:
            threads = list(self._threads)
        deadline = time.monotonic() + timeout
        for thread in threads:
            thread.join(timeout=max(0.0, deadline - time.monotonic()))
        self._stop.set()  # anything still alive exits without draining
        for thread in threads:
            if thread.is_alive():
                thread.join(timeout=0.1)
        with self._lock:
            self._threads = []
            leftovers = list(self._carries.values())
            self._carries.clear()
        while True:
            try:
                leftovers.append(self._queue.get_nowait())
            except queue.Empty:
                break
        for pending in leftovers:
            # Only reached when the drain timed out; finish() idempotence
            # keeps this from double-answering drained requests.
            pending.finish(error=BatcherStopped("batcher stopped"))
        obs.gauge("serve_queue_depth").set(0)

    @property
    def running(self) -> bool:
        with self._lock:
            return any(t.is_alive() for t in self._threads)

    def depth(self) -> int:
        """Approximate queued request count (for health endpoints)."""
        with self._lock:
            carried = len(self._carries)
        return self._queue.qsize() + carried

    def _note_workers(self) -> None:
        obs.gauge("serve_batcher_workers").set(self.workers)

    # ------------------------------------------------------------------
    # Submission (called from any thread)
    # ------------------------------------------------------------------
    def submit(
        self, graphs: Sequence[Graph], timeout_s: float | None = None
    ) -> tuple[np.ndarray, dict]:
        """Block until the fused result for ``graphs`` is ready.

        Raises :class:`RequestShed` when the admission queue is full,
        :class:`DeadlineExceeded` when ``timeout_s`` elapses first, and
        :class:`BatcherStopped` when the batcher shuts down mid-flight.
        """
        proba, extra, _ = self.submit_traced(graphs, timeout_s=timeout_s)
        return proba, extra

    def submit_traced(
        self,
        graphs: Sequence[Graph],
        timeout_s: float | None = None,
        trace_id: str | None = None,
    ) -> tuple[np.ndarray, dict, dict]:
        """:meth:`submit`, plus the request's stage-boundary timestamps.

        The third element is :meth:`_Pending.timing` — monotonic stamps
        for enqueue / batch collection / fused-pass start and end plus
        the ``batch_id`` — which the HTTP layer decomposes into the
        ``queue_wait`` / ``batch_wait`` / ``infer`` trace spans.
        """
        if not graphs:
            raise ValueError("submit needs at least one graph")
        if self._closing.is_set() or self._stop.is_set() or not self.running:
            raise BatcherStopped("batcher is not running")
        deadline = None if timeout_s is None else time.monotonic() + timeout_s
        pending = _Pending(graphs, deadline, trace_id=trace_id)
        try:
            self._queue.put_nowait(pending)
        except queue.Full:
            obs.counter("serve_requests_shed_total").inc()
            raise RequestShed(
                f"admission queue full ({self.max_queue} requests)"
            ) from None
        obs.counter("serve_requests_total").inc()
        if self._closing.is_set() and not self.running:
            # Lost the race with stop(): every drainer exited between our
            # admission check and the enqueue.  Answer here — finish() is
            # idempotent, so the stop-path sweep answering too is safe.
            pending.finish(error=BatcherStopped("batcher stopped"))
        self._note_depth(self._queue.qsize())
        # Wait a little past the deadline: the worker answers expired
        # requests itself, so an on-time DeadlineExceeded still carries
        # the worker's verdict rather than racing it.
        wait = None if deadline is None else max(0.0, deadline - time.monotonic()) + 0.25
        if not pending.done.wait(timeout=wait):
            # The worker counts the expiry when it dequeues the request;
            # counting here too would double-book it.
            raise DeadlineExceeded("request timed out awaiting a batch slot")
        if pending.error is not None:
            raise pending.error
        assert pending.result is not None and pending.extra is not None
        return pending.result, pending.extra, pending.timing()

    def _note_depth(self, depth: int) -> None:
        """Publish the queue depth and keep the high-water mark current."""
        obs.gauge("serve_queue_depth").set(depth)
        if depth > self._peak_depth:
            self._peak_depth = depth
            peak = obs.gauge("serve_queue_depth_peak")
            if depth > peak.value:
                peak.set(depth)

    # ------------------------------------------------------------------
    # Workers (drainer threads; each keeps its own carry)
    # ------------------------------------------------------------------
    def _take_carry(self) -> _Pending | None:
        ident = threading.get_ident()
        with self._lock:
            return self._carries.pop(ident, None)

    def _put_carry(self, pending: _Pending) -> None:
        with self._lock:
            self._carries[threading.get_ident()] = pending

    def _next_batch(self) -> list[_Pending]:
        """Collect one batch: first request, then coalesce until a flush."""
        first = self._take_carry()
        if first is None:
            try:
                first = self._queue.get(timeout=0.05)
            except queue.Empty:
                return []
        # collected_at closes the queue_wait stage; a carried-over
        # request is re-stamped here because its batch starts now.
        first.collected_at = time.monotonic()
        batch = [first]
        total = len(first.graphs)
        flush_at = first.enqueued_at + self.max_wait_s
        if self._closing.is_set():
            flush_at = 0.0  # draining: no coalescing delay, flush fast
        while total < self.max_batch:
            remaining = flush_at - time.monotonic()
            try:
                if remaining <= 0:
                    nxt = self._queue.get_nowait()
                else:
                    nxt = self._queue.get(timeout=min(remaining, 0.01))
            except queue.Empty:
                if remaining <= 0:
                    break
                continue
            if total + len(nxt.graphs) > self.max_batch:
                self._put_carry(nxt)  # runs first in the next batch
                break
            nxt.collected_at = time.monotonic()
            batch.append(nxt)
            total += len(nxt.graphs)
        return batch

    def _should_retire(self) -> bool:
        """Cooperative shrink: one surplus drainer exits per retire token."""
        with self._lock:
            if self._retire <= 0:
                return False
            self._retire -= 1
            try:
                self._threads.remove(threading.current_thread())
            except ValueError:  # pragma: no cover - already swept
                pass
        self._note_workers()
        return True

    def _run(self) -> None:
        while not self._stop.is_set():
            if self._should_retire():
                return
            batch = self._next_batch()
            if not batch:
                if self._closing.is_set() and self.depth() == 0:
                    return  # drained: nothing queued, nothing carried
                continue
            self._note_depth(self.depth())
            now = time.monotonic()
            live: list[_Pending] = []
            for pending in batch:
                if pending.deadline is not None and now > pending.deadline:
                    obs.counter("serve_deadline_expired_total").inc()
                    pending.finish(
                        error=DeadlineExceeded("deadline passed while queued")
                    )
                else:
                    live.append(pending)
            if not live:
                continue
            graphs = [g for pending in live for g in pending.graphs]
            batch_id = f"b{next(_BATCH_IDS)}"
            # Span links: the trace ids fused into this batch.  The
            # request spans live on their handler threads; this records
            # the N:1 fan-in without faking a parent/child relation.
            links = [p.trace_id for p in live if p.trace_id]
            infer_started = time.monotonic()
            for pending in live:
                pending.batch_id = batch_id
                pending.infer_started_at = infer_started
            start = time.perf_counter()
            try:
                with obs.span(
                    "serve_batch",
                    graphs=len(graphs),
                    requests=len(live),
                    batch_id=batch_id,
                    links=links,
                ):
                    proba, extra = self.infer(graphs)
            except Exception as exc:  # noqa: BLE001 - answered per-request
                obs.counter("serve_infer_errors_total").inc()
                for pending in live:
                    pending.finish(error=exc)
                continue
            elapsed = time.perf_counter() - start
            infer_ended = time.monotonic()
            obs.counter("serve_batches_total").inc()
            obs.histogram("serve_batch_size", BATCH_SIZE_BUCKETS).observe(len(graphs))
            obs.histogram("serve_batch_requests", BATCH_SIZE_BUCKETS).observe(len(live))
            obs.histogram("serve_infer_seconds", INFER_SECONDS_BUCKETS).observe(elapsed)
            queue_waits = obs.histogram("serve_queue_wait_seconds", WAIT_SECONDS_BUCKETS)
            batch_waits = obs.histogram("serve_batch_wait_seconds", WAIT_SECONDS_BUCKETS)
            offset = 0
            for pending in live:
                pending.infer_ended_at = infer_ended
                if pending.collected_at is not None:
                    queue_waits.observe(pending.collected_at - pending.enqueued_at)
                    batch_waits.observe(infer_started - pending.collected_at)
                span = len(pending.graphs)
                pending.finish(result=proba[offset : offset + span], extra=extra)
                offset += span


class Autoscaler:
    """Gauge-driven worker scaling with hysteresis and cooldown.

    Reads queue depth and p95 latency, applies one +1/-1 step at a time
    to a ``scale_fn`` (typically :meth:`MicroBatcher.resize`, optionally
    fanned out to an :class:`~repro.serve.pool.InferencePool` too).  The
    decision logic is a pure function of injected callables plus a
    ``now_fn`` clock, so tests drive it tick by tick with fake gauges
    and a fake clock — no threads, no sleeps, no flakes.

    Scaling rules (evaluated on every :meth:`tick`):

    * **pressure** = queue depth >= ``up_queue_depth``, or p95 latency
      >= ``up_p95_ms`` (when configured);
    * ``up_ticks`` *consecutive* pressured ticks -> +1 worker (to at
      most ``max_workers``);
    * ``down_ticks`` consecutive idle ticks (depth <=
      ``down_queue_depth`` and p95 below the up threshold) -> -1 worker
      (to at least ``min_workers``);
    * any scaling step arms a ``cooldown_s`` window during which no
      further step fires, and resets both streaks — so an oscillating
      load can never flap the worker count faster than once per
      cooldown.
    """

    def __init__(
        self,
        *,
        min_workers: int = 1,
        max_workers: int = 4,
        depth_fn: Callable[[], int],
        workers_fn: Callable[[], int],
        scale_fn: Callable[[int], object],
        p95_fn: Callable[[], float] | None = None,
        up_queue_depth: int = 8,
        down_queue_depth: int = 0,
        up_p95_ms: float | None = None,
        up_ticks: int = 2,
        down_ticks: int = 5,
        cooldown_s: float = 10.0,
        now_fn: Callable[[], float] = time.monotonic,
    ) -> None:
        if min_workers < 1:
            raise ValueError(f"min_workers must be >= 1, got {min_workers}")
        if max_workers < min_workers:
            raise ValueError(
                f"max_workers ({max_workers}) must be >= min_workers ({min_workers})"
            )
        if up_ticks < 1 or down_ticks < 1:
            raise ValueError("up_ticks and down_ticks must be >= 1")
        self.min_workers = min_workers
        self.max_workers = max_workers
        self.depth_fn = depth_fn
        self.workers_fn = workers_fn
        self.scale_fn = scale_fn
        self.p95_fn = p95_fn
        self.up_queue_depth = up_queue_depth
        self.down_queue_depth = down_queue_depth
        self.up_p95_ms = up_p95_ms
        self.up_ticks = up_ticks
        self.down_ticks = down_ticks
        self.cooldown_s = cooldown_s
        self.now_fn = now_fn
        self._up_streak = 0
        self._down_streak = 0
        self._last_change: float | None = None
        self._thread: threading.Thread | None = None
        self._stop = threading.Event()

    # -- decision logic -------------------------------------------------
    def tick(self) -> int:
        """Observe gauges, maybe apply one scaling step; returns the delta."""
        depth = self.depth_fn()
        p95 = self.p95_fn() if self.p95_fn is not None else 0.0
        pressured = depth >= self.up_queue_depth or (
            self.up_p95_ms is not None and p95 >= self.up_p95_ms
        )
        idle = depth <= self.down_queue_depth and not pressured
        if pressured:
            self._up_streak += 1
            self._down_streak = 0
        elif idle:
            self._down_streak += 1
            self._up_streak = 0
        else:
            self._up_streak = 0
            self._down_streak = 0
        now = self.now_fn()
        if (
            self._last_change is not None
            and now - self._last_change < self.cooldown_s
        ):
            return 0
        workers = self.workers_fn()
        if self._up_streak >= self.up_ticks and workers < self.max_workers:
            self.scale_fn(workers + 1)
            obs.counter("serve_autoscale_up_total").inc()
            self._last_change = now
            self._up_streak = 0
            self._down_streak = 0
            return 1
        if self._down_streak >= self.down_ticks and workers > self.min_workers:
            self.scale_fn(workers - 1)
            obs.counter("serve_autoscale_down_total").inc()
            self._last_change = now
            self._up_streak = 0
            self._down_streak = 0
            return -1
        return 0

    # -- background runner ----------------------------------------------
    def start(self, interval_s: float = 1.0) -> "Autoscaler":
        """Tick periodically on a daemon thread until :meth:`stop`."""
        if self._thread is not None and self._thread.is_alive():
            return self
        self._stop.clear()

        def _loop() -> None:
            while not self._stop.wait(interval_s):
                try:
                    self.tick()
                except Exception:  # noqa: BLE001 - scaling is best-effort
                    obs.counter("serve_infer_errors_total")  # touch registry
        self._thread = threading.Thread(
            target=_loop, name="repro-serve-autoscaler", daemon=True
        )
        self._thread.start()
        return self

    def stop(self) -> None:
        self._stop.set()
        if self._thread is not None:
            self._thread.join(timeout=2.0)
            self._thread = None
