"""Dynamic micro-batching with a bounded admission queue.

The DeepMap forward pass is a dense batched matmul over fixed-size
``(w * r, m)`` tensors — exactly the shape PATCHY-SAN-style vertex
ordering buys — so ten concurrent single-graph requests cost barely more
than one when fused into a single encoder/CNN pass.  The
:class:`MicroBatcher` does that fusing:

* ``submit`` enqueues a request onto a **bounded** queue; a full queue
  sheds the request immediately (:class:`RequestShed` -> HTTP 429)
  instead of letting latency collapse for everyone;
* a single worker thread drains the queue, fusing requests until the
  batch holds ``max_batch`` graphs or ``max_wait_ms`` has passed since
  the oldest request in the batch arrived, whichever comes first;
* each request carries an optional **deadline**; requests that expire
  while queued are answered with :class:`DeadlineExceeded` (HTTP 504)
  *before* wasting a slot in the forward pass.

Correctness is non-negotiable: because every pipeline stage is per-graph
independent, the fused pass is bitwise-identical to running each request
alone (property-tested in ``tests/serve/test_batcher.py``).

Instrumentation (via :mod:`repro.obs`, no-ops while disabled):
``serve_queue_depth`` / ``serve_queue_depth_peak`` gauges,
``serve_batch_size`` / ``serve_batch_requests`` histograms,
``serve_requests_shed_total`` / ``serve_deadline_expired_total`` /
``serve_batches_total`` counters, and the ``serve_infer_seconds`` /
``serve_queue_wait_seconds`` / ``serve_batch_wait_seconds`` histograms.

Request tracing: every :class:`_Pending` is timestamped at enqueue,
batch collection, and fused-pass start/end, so the HTTP layer can
decompose a request's latency into ``queue_wait`` / ``batch_wait`` /
``infer`` spans (:meth:`MicroBatcher.submit_traced` returns the stamps).
Each fused pass gets a ``batch_id``, and its ``serve_batch`` span
carries the trace ids of the fused requests as span links — the N:1
fan-in is recorded explicitly rather than faked as a tree.
"""

from __future__ import annotations

import itertools
import queue
import threading
import time
from collections.abc import Callable, Sequence

import numpy as np

from repro import obs
from repro.graph.graph import Graph

__all__ = [
    "BATCH_SIZE_BUCKETS",
    "BatcherStopped",
    "DeadlineExceeded",
    "MicroBatcher",
    "RequestShed",
    "register_serve_metrics",
]

#: Process-wide batch-id stream; ids are unique per process, which is
#: the scope a trace store and a JSONL run file share.
_BATCH_IDS = itertools.count(1)

#: Bucket edges for the batch-size histograms (graphs / requests per
#: fused forward pass) — powers of two up to a deep queue drain.
BATCH_SIZE_BUCKETS = (1.0, 2.0, 4.0, 8.0, 16.0, 32.0, 64.0, 128.0)

#: Bucket edges for per-batch inference latency (seconds).
INFER_SECONDS_BUCKETS = (0.001, 0.005, 0.01, 0.05, 0.1, 0.5, 1.0, 5.0)

#: Bucket edges for per-request wait decomposition (seconds) — finer at
#: the bottom than the infer buckets because waits should be tiny.
WAIT_SECONDS_BUCKETS = (0.0005, 0.001, 0.005, 0.01, 0.05, 0.1, 0.5, 1.0, 5.0)

#: ``# HELP`` text for the serving metric surface.
_SERVE_METRIC_HELP = {
    "serve_requests_total": "Requests admitted to a batcher queue.",
    "serve_requests_shed_total": "Requests rejected because the admission queue was full (HTTP 429).",
    "serve_deadline_expired_total": "Requests whose deadline passed while queued (HTTP 504).",
    "serve_batches_total": "Fused forward passes executed.",
    "serve_infer_errors_total": "Fused forward passes that raised.",
    "serve_queue_depth": "Requests currently queued, last observation.",
    "serve_queue_depth_peak": "High-water admission-queue depth (monotone per process).",
    "serve_batch_size": "Graphs per fused forward pass.",
    "serve_batch_requests": "Requests per fused forward pass.",
    "serve_infer_seconds": "Fused forward-pass latency.",
    "serve_queue_wait_seconds": "Per-request wait from admission to batch collection.",
    "serve_batch_wait_seconds": "Per-request wait from batch collection to the fused pass.",
}


def register_serve_metrics() -> None:
    """Pre-register every batching instrument at its zero state.

    Called from both :meth:`MicroBatcher.start` and server startup so a
    ``GET /metrics`` scrape sees the full serving surface (shed counter
    at 0, empty batch-size histogram, ...) before the first request —
    dashboards should never have to special-case absent series.
    """
    obs.counter("serve_requests_total")
    obs.counter("serve_requests_shed_total")
    obs.counter("serve_deadline_expired_total")
    obs.counter("serve_batches_total")
    obs.counter("serve_infer_errors_total")
    obs.gauge("serve_queue_depth")
    obs.gauge("serve_queue_depth_peak")
    obs.histogram("serve_batch_size", BATCH_SIZE_BUCKETS)
    obs.histogram("serve_batch_requests", BATCH_SIZE_BUCKETS)
    obs.histogram("serve_infer_seconds", INFER_SECONDS_BUCKETS)
    obs.histogram("serve_queue_wait_seconds", WAIT_SECONDS_BUCKETS)
    obs.histogram("serve_batch_wait_seconds", WAIT_SECONDS_BUCKETS)
    registry = obs.get_metrics()
    for name, help_text in _SERVE_METRIC_HELP.items():
        registry.describe(name, help_text)


class RequestShed(RuntimeError):
    """Admission queue full; the caller should retry later (HTTP 429)."""


class DeadlineExceeded(RuntimeError):
    """The request's deadline passed before a result was ready (HTTP 504)."""


class BatcherStopped(RuntimeError):
    """The batcher was stopped while the request was in flight (HTTP 503)."""


class _Pending:
    """One submitted request waiting for its slice of a fused batch.

    The monotonic timestamps stamped along the way (enqueue, batch
    collection, fused-pass start/end) are what the tracing layer turns
    into the ``queue_wait`` / ``batch_wait`` / ``infer`` waterfall.
    """

    __slots__ = (
        "graphs",
        "enqueued_at",
        "deadline",
        "done",
        "result",
        "extra",
        "error",
        "trace_id",
        "collected_at",
        "infer_started_at",
        "infer_ended_at",
        "batch_id",
    )

    def __init__(
        self,
        graphs: Sequence[Graph],
        deadline: float | None,
        trace_id: str | None = None,
    ) -> None:
        self.graphs = list(graphs)
        self.enqueued_at = time.monotonic()
        self.deadline = deadline
        self.done = threading.Event()
        self.result: np.ndarray | None = None
        self.extra: dict | None = None
        self.error: Exception | None = None
        self.trace_id = trace_id
        self.collected_at: float | None = None
        self.infer_started_at: float | None = None
        self.infer_ended_at: float | None = None
        self.batch_id: str | None = None

    def finish(self, *, result=None, extra=None, error=None) -> None:
        self.result = result
        self.extra = extra
        self.error = error
        self.done.set()

    def timing(self) -> dict:
        """Stage boundaries for the tracing layer (None where unreached)."""
        return {
            "enqueued_at": self.enqueued_at,
            "collected_at": self.collected_at,
            "infer_started_at": self.infer_started_at,
            "infer_ended_at": self.infer_ended_at,
            "batch_id": self.batch_id,
        }


class MicroBatcher:
    """Coalesces concurrent predict requests into fused forward passes.

    Parameters
    ----------
    infer:
        ``infer(graphs) -> (proba, extra)`` running one fused forward
        pass; ``extra`` is an arbitrary per-batch metadata dict handed
        back to every request in the batch (the server puts the resolved
        model name/version/classes there so hot-swaps stay consistent
        with the weights that actually ran).
    max_batch:
        Flush threshold in *graphs* (requests may carry several).
    max_wait_ms:
        Flush threshold in milliseconds since the oldest batched
        request arrived.  ``0`` disables coalescing delay entirely.
    max_queue:
        Admission-queue bound in *requests*; beyond it ``submit`` sheds.
    """

    def __init__(
        self,
        infer: Callable[[list[Graph]], tuple[np.ndarray, dict]],
        *,
        max_batch: int = 32,
        max_wait_ms: float = 5.0,
        max_queue: int = 128,
    ) -> None:
        if max_batch < 1:
            raise ValueError(f"max_batch must be >= 1, got {max_batch}")
        if max_wait_ms < 0:
            raise ValueError(f"max_wait_ms must be >= 0, got {max_wait_ms}")
        if max_queue < 1:
            raise ValueError(f"max_queue must be >= 1, got {max_queue}")
        self.infer = infer
        self.max_batch = max_batch
        self.max_wait_s = max_wait_ms / 1000.0
        self.max_queue = max_queue
        self._queue: queue.Queue[_Pending] = queue.Queue(maxsize=max_queue)
        self._carry: _Pending | None = None
        self._stop = threading.Event()
        self._thread: threading.Thread | None = None
        self._peak_depth = 0

    # ------------------------------------------------------------------
    # Lifecycle
    # ------------------------------------------------------------------
    def start(self) -> "MicroBatcher":
        if self._thread is None or not self._thread.is_alive():
            self._stop.clear()
            register_serve_metrics()
            self._thread = threading.Thread(
                target=self._run, name="repro-serve-batcher", daemon=True
            )
            self._thread.start()
        return self

    def stop(self, timeout: float = 5.0) -> None:
        """Stop the worker; in-flight waiters get :class:`BatcherStopped`."""
        self._stop.set()
        if self._thread is not None:
            self._thread.join(timeout=timeout)
            self._thread = None
        leftovers = []
        if self._carry is not None:
            leftovers.append(self._carry)
            self._carry = None
        while True:
            try:
                leftovers.append(self._queue.get_nowait())
            except queue.Empty:
                break
        for pending in leftovers:
            pending.finish(error=BatcherStopped("batcher stopped"))
        obs.gauge("serve_queue_depth").set(0)

    @property
    def running(self) -> bool:
        return self._thread is not None and self._thread.is_alive()

    def depth(self) -> int:
        """Approximate queued request count (for health endpoints)."""
        return self._queue.qsize() + (1 if self._carry is not None else 0)

    # ------------------------------------------------------------------
    # Submission (called from any thread)
    # ------------------------------------------------------------------
    def submit(
        self, graphs: Sequence[Graph], timeout_s: float | None = None
    ) -> tuple[np.ndarray, dict]:
        """Block until the fused result for ``graphs`` is ready.

        Raises :class:`RequestShed` when the admission queue is full,
        :class:`DeadlineExceeded` when ``timeout_s`` elapses first, and
        :class:`BatcherStopped` when the batcher shuts down mid-flight.
        """
        proba, extra, _ = self.submit_traced(graphs, timeout_s=timeout_s)
        return proba, extra

    def submit_traced(
        self,
        graphs: Sequence[Graph],
        timeout_s: float | None = None,
        trace_id: str | None = None,
    ) -> tuple[np.ndarray, dict, dict]:
        """:meth:`submit`, plus the request's stage-boundary timestamps.

        The third element is :meth:`_Pending.timing` — monotonic stamps
        for enqueue / batch collection / fused-pass start and end plus
        the ``batch_id`` — which the HTTP layer decomposes into the
        ``queue_wait`` / ``batch_wait`` / ``infer`` trace spans.
        """
        if not graphs:
            raise ValueError("submit needs at least one graph")
        if not self.running:
            raise BatcherStopped("batcher is not running")
        deadline = None if timeout_s is None else time.monotonic() + timeout_s
        pending = _Pending(graphs, deadline, trace_id=trace_id)
        try:
            self._queue.put_nowait(pending)
        except queue.Full:
            obs.counter("serve_requests_shed_total").inc()
            raise RequestShed(
                f"admission queue full ({self.max_queue} requests)"
            ) from None
        obs.counter("serve_requests_total").inc()
        self._note_depth(self._queue.qsize())
        # Wait a little past the deadline: the worker answers expired
        # requests itself, so an on-time DeadlineExceeded still carries
        # the worker's verdict rather than racing it.
        wait = None if deadline is None else max(0.0, deadline - time.monotonic()) + 0.25
        if not pending.done.wait(timeout=wait):
            # The worker counts the expiry when it dequeues the request;
            # counting here too would double-book it.
            raise DeadlineExceeded("request timed out awaiting a batch slot")
        if pending.error is not None:
            raise pending.error
        assert pending.result is not None and pending.extra is not None
        return pending.result, pending.extra, pending.timing()

    def _note_depth(self, depth: int) -> None:
        """Publish the queue depth and keep the high-water mark current."""
        obs.gauge("serve_queue_depth").set(depth)
        if depth > self._peak_depth:
            self._peak_depth = depth
            peak = obs.gauge("serve_queue_depth_peak")
            if depth > peak.value:
                peak.set(depth)

    # ------------------------------------------------------------------
    # Worker (single thread)
    # ------------------------------------------------------------------
    def _next_batch(self) -> list[_Pending]:
        """Collect one batch: first request, then coalesce until a flush."""
        if self._carry is not None:
            first, self._carry = self._carry, None
        else:
            try:
                first = self._queue.get(timeout=0.05)
            except queue.Empty:
                return []
        # collected_at closes the queue_wait stage; a carried-over
        # request is re-stamped here because its batch starts now.
        first.collected_at = time.monotonic()
        batch = [first]
        total = len(first.graphs)
        flush_at = first.enqueued_at + self.max_wait_s
        while total < self.max_batch:
            remaining = flush_at - time.monotonic()
            try:
                if remaining <= 0:
                    nxt = self._queue.get_nowait()
                else:
                    nxt = self._queue.get(timeout=min(remaining, 0.01))
            except queue.Empty:
                if remaining <= 0:
                    break
                continue
            if total + len(nxt.graphs) > self.max_batch:
                self._carry = nxt  # runs first in the next batch
                break
            nxt.collected_at = time.monotonic()
            batch.append(nxt)
            total += len(nxt.graphs)
        return batch

    def _run(self) -> None:
        while not self._stop.is_set():
            batch = self._next_batch()
            if not batch:
                continue
            self._note_depth(self.depth())
            now = time.monotonic()
            live: list[_Pending] = []
            for pending in batch:
                if pending.deadline is not None and now > pending.deadline:
                    obs.counter("serve_deadline_expired_total").inc()
                    pending.finish(
                        error=DeadlineExceeded("deadline passed while queued")
                    )
                else:
                    live.append(pending)
            if not live:
                continue
            graphs = [g for pending in live for g in pending.graphs]
            batch_id = f"b{next(_BATCH_IDS)}"
            # Span links: the trace ids fused into this batch.  The
            # request spans live on their handler threads; this records
            # the N:1 fan-in without faking a parent/child relation.
            links = [p.trace_id for p in live if p.trace_id]
            infer_started = time.monotonic()
            for pending in live:
                pending.batch_id = batch_id
                pending.infer_started_at = infer_started
            start = time.perf_counter()
            try:
                with obs.span(
                    "serve_batch",
                    graphs=len(graphs),
                    requests=len(live),
                    batch_id=batch_id,
                    links=links,
                ):
                    proba, extra = self.infer(graphs)
            except Exception as exc:  # noqa: BLE001 - answered per-request
                obs.counter("serve_infer_errors_total").inc()
                for pending in live:
                    pending.finish(error=exc)
                continue
            elapsed = time.perf_counter() - start
            infer_ended = time.monotonic()
            obs.counter("serve_batches_total").inc()
            obs.histogram("serve_batch_size", BATCH_SIZE_BUCKETS).observe(len(graphs))
            obs.histogram("serve_batch_requests", BATCH_SIZE_BUCKETS).observe(len(live))
            obs.histogram("serve_infer_seconds", INFER_SECONDS_BUCKETS).observe(elapsed)
            queue_waits = obs.histogram("serve_queue_wait_seconds", WAIT_SECONDS_BUCKETS)
            batch_waits = obs.histogram("serve_batch_wait_seconds", WAIT_SECONDS_BUCKETS)
            offset = 0
            for pending in live:
                pending.infer_ended_at = infer_ended
                if pending.collected_at is not None:
                    queue_waits.observe(pending.collected_at - pending.enqueued_at)
                    batch_waits.observe(infer_started - pending.collected_at)
                span = len(pending.graphs)
                pending.finish(result=proba[offset : offset + span], extra=extra)
                offset += span
