"""Pure-python client for a :class:`~repro.serve.http.ReproServer`.

Built on :mod:`http.client` with a persistent keep-alive connection
(reconnecting transparently when the server closes it), so the load
generator is not benchmarking TCP handshakes.  One :class:`ServeClient`
belongs to one thread; spawn a client per worker.
"""

from __future__ import annotations

import http.client
import json
from urllib.parse import urlsplit

import numpy as np

from repro.graph.graph import Graph
from repro.obs.reqtrace import TRACE_HEADER
from repro.serve.codec import (
    BINARY_CONTENT_TYPE,
    decode_predict_response,
    encode_predict_request,
    graph_to_json,
)

__all__ = ["ServeClient", "ServeClientError"]


class ServeClientError(RuntimeError):
    """Non-200 response from the server; carries the HTTP status."""

    def __init__(self, status: int, message: str, retry_after: float | None = None):
        super().__init__(f"HTTP {status}: {message}")
        self.status = status
        self.retry_after = retry_after


class ServeClient:
    """Thin blocking client: ``predict``, ``predict_proba``, ``healthz``, ``metrics``.

    Every response's echoed trace id is kept in :attr:`last_trace_id`,
    so callers can correlate a prediction with its server-side waterfall
    (``client.trace(client.last_trace_id)`` or ``repro ops trace``).
    """

    def __init__(
        self, base_url: str, timeout: float = 30.0, codec: str = "json"
    ) -> None:
        parts = urlsplit(base_url if "//" in base_url else f"http://{base_url}")
        if parts.scheme not in ("", "http"):
            raise ValueError(f"only http:// URLs are supported, got {base_url!r}")
        if parts.hostname is None:
            raise ValueError(f"no host in URL {base_url!r}")
        if codec not in ("json", "binary"):
            raise ValueError(f"codec must be 'json' or 'binary', got {codec!r}")
        self.host = parts.hostname
        self.port = parts.port or 80
        self.timeout = timeout
        #: Wire codec for predict traffic: ``"json"`` (default) or
        #: ``"binary"`` (CSR tensors via ``application/x-repro-graph``;
        #: bitwise the same numbers, a fraction of the bytes).
        self.codec = codec
        self._conn: http.client.HTTPConnection | None = None
        #: Trace id echoed by the most recent response (None before any).
        self.last_trace_id: str | None = None

    # ------------------------------------------------------------------
    # Transport
    # ------------------------------------------------------------------
    def _connection(self) -> http.client.HTTPConnection:
        if self._conn is None:
            self._conn = http.client.HTTPConnection(
                self.host, self.port, timeout=self.timeout
            )
        return self._conn

    def close(self) -> None:
        if self._conn is not None:
            self._conn.close()
            self._conn = None

    def request(
        self,
        method: str,
        path: str,
        payload: dict | bytes | None = None,
        trace_id: str | None = None,
    ) -> tuple[int, dict[str, str], bytes]:
        """One round-trip; returns ``(status, headers, body)`` uninterpreted.

        A ``dict`` payload goes out as JSON; ``bytes`` are sent verbatim
        as a pre-encoded binary frame (and the binary codec is offered
        for the response via ``Accept``).

        ``trace_id`` is sent as the ``X-Repro-Trace-Id`` header (the
        server adopts valid ids instead of minting its own); the id
        echoed back is recorded in :attr:`last_trace_id`.

        Retries exactly once on a dead keep-alive connection (the server
        restarting or idling out the socket); a second failure raises.
        """
        if isinstance(payload, (bytes, bytearray)):
            # Pre-encoded binary frame: send and accept the binary codec.
            body: bytes | None = bytes(payload)
            headers = {
                "Content-Type": BINARY_CONTENT_TYPE,
                "Accept": BINARY_CONTENT_TYPE,
            }
        else:
            body = None if payload is None else json.dumps(payload).encode()
            headers = {} if body is None else {"Content-Type": "application/json"}
        if trace_id is not None:
            headers[TRACE_HEADER] = trace_id
        for attempt in (0, 1):
            conn = self._connection()
            try:
                conn.request(method, path, body=body, headers=headers)
                response = conn.getresponse()
                data = response.read()
                response_headers = {
                    k.lower(): v for k, v in response.getheaders()
                }
                echoed = response_headers.get(TRACE_HEADER.lower())
                if echoed:
                    self.last_trace_id = echoed
                return response.status, response_headers, data
            except (ConnectionError, http.client.HTTPException, OSError):
                self.close()
                if attempt:
                    raise
        raise AssertionError("unreachable")  # pragma: no cover

    def _json_request(
        self,
        method: str,
        path: str,
        payload: dict | None = None,
        trace_id: str | None = None,
    ) -> dict:
        status, headers, data = self.request(method, path, payload, trace_id=trace_id)
        try:
            parsed = json.loads(data) if data else {}
        except json.JSONDecodeError:
            parsed = {"error": data.decode(errors="replace")}
        if status != 200:
            retry_after = headers.get("retry-after")
            raise ServeClientError(
                status,
                parsed.get("error", "request failed"),
                retry_after=float(retry_after) if retry_after else None,
            )
        return parsed

    # ------------------------------------------------------------------
    # API surface
    # ------------------------------------------------------------------
    @staticmethod
    def _payload(
        graphs: list[Graph], model: str | None, timeout_ms: float | None
    ) -> dict:
        payload: dict = {"graphs": [graph_to_json(g) for g in graphs]}
        if model is not None:
            payload["model"] = model
        if timeout_ms is not None:
            payload["timeout_ms"] = timeout_ms
        return payload

    def _predict_body(
        self,
        path: str,
        graphs: list[Graph],
        model: str | None,
        timeout_ms: float | None,
        trace_id: str | None,
    ) -> dict:
        """One predict round-trip through the configured codec."""
        if self.codec == "binary":
            frame = encode_predict_request(
                graphs, model=model, timeout_ms=timeout_ms
            )
            status, headers, data = self.request(
                "POST", path, frame, trace_id=trace_id
            )
            if status != 200:
                # Errors come back as JSON regardless of the codec.
                try:
                    parsed = json.loads(data) if data else {}
                except json.JSONDecodeError:
                    parsed = {"error": data.decode(errors="replace")}
                retry_after = headers.get("retry-after")
                raise ServeClientError(
                    status,
                    parsed.get("error", "request failed"),
                    retry_after=float(retry_after) if retry_after else None,
                )
            return decode_predict_response(data)
        return self._json_request(
            "POST", path, self._payload(graphs, model, timeout_ms), trace_id=trace_id
        )

    def predict(
        self,
        graphs: list[Graph],
        model: str | None = None,
        timeout_ms: float | None = None,
        trace_id: str | None = None,
    ) -> np.ndarray:
        """Predicted class labels (``(n,)`` int array)."""
        body = self._predict_body(
            "/v1/predict", graphs, model, timeout_ms, trace_id
        )
        return np.asarray(body["labels"], dtype=np.int64)

    def predict_proba(
        self,
        graphs: list[Graph],
        model: str | None = None,
        timeout_ms: float | None = None,
        trace_id: str | None = None,
    ) -> np.ndarray:
        """Class-probability matrix (``(n, c)`` float array).

        Both codecs return the server's numbers bitwise: JSON floats
        round-trip exactly (shortest-repr encoding) and the binary codec
        carries the float64 tensor itself.
        """
        body = self._predict_body(
            "/v1/predict_proba", graphs, model, timeout_ms, trace_id
        )
        return np.asarray(body["proba"], dtype=np.float64)

    def healthz(self) -> dict:
        return self._json_request("GET", "/healthz")

    def trace(self, trace_id: str) -> dict:
        """The stored waterfall record for ``trace_id`` (404 -> error)."""
        return self._json_request("GET", f"/v1/traces/{trace_id}")

    def metrics(self) -> str:
        """Raw Prometheus text from ``GET /metrics``."""
        status, _, data = self.request("GET", "/metrics")
        if status != 200:
            raise ServeClientError(status, "metrics endpoint failed")
        return data.decode()
