"""Wire formats: JSON and binary CSR graphs <-> :class:`repro.graph.Graph`.

**JSON** (``application/json``): one graph is the JSON object
counterpart of the TU benchmark format (:mod:`repro.datasets.tu_format`)
— the same three per-graph ingredients — vertex count, undirected edge
list, optional vertex labels — keyed explicitly instead of split across
``DS_A.txt`` / ``DS_graph_indicator`` / ``DS_node_labels`` files::

    {"num_vertices": 5,
     "edges": [[0, 1], [1, 2], [1, 3], [2, 4], [3, 4]],
     "labels": [1, 4, 3, 3, 2]}          # optional; defaults to all zeros

Vertex ids are 0-based (the in-memory convention) rather than the TU
files' 1-based global ids; each undirected edge appears once.  A predict
request wraps a list of such graphs::

    {"graphs": [...], "model": "default", "timeout_ms": 2000}

``model`` and ``timeout_ms`` are optional.

**Binary CSR** (``application/x-repro-graph``): a whole batch of graphs
ships as four flat int64 tensors — the disjoint-union CSR form every
encoder hot path already consumes (:attr:`repro.graph.Graph.csr`) —
wrapped in the checksummed :func:`repro.utils.wire.seal` envelope with a
:func:`~repro.utils.wire.pack_message` payload (JSON header + raw
little/native-endian array segments, no pickle)::

    seal(pack_message(
        {"kind": "predict_request", "model": ..., "timeout_ms": ...},
        {"num_vertices": (G,),   # vertices per graph
         "indptr":       (sum n_i + G,),   # per-graph CSR offsets, concatenated
         "indices":      (sum deg_i,),     # per-graph neighbor ids, concatenated
         "labels":       (sum n_i,)}))     # per-graph vertex labels, concatenated

Responses use the same envelope (``kind: "predict_response"`` /
``"predict_proba_response"``) carrying ``labels`` (int64) or ``proba``
(float64) as a raw tensor, so a binary response is *bitwise* the
server-side numpy result — exactly what the JSON path guarantees via
shortest-repr float round-tripping, proven equal in
``tests/serve/test_differential.py``.

Decoding is strict: the CSR arrays must be the canonical form
:class:`~repro.graph.Graph` itself produces (sorted neighbor lists,
symmetric adjacency, no self-loops).  All parse errors — JSON or binary,
including torn/corrupt envelopes — raise :class:`CodecError` (a
``ValueError``) whose message is safe to return in a 400 response; a
malformed frame can never crash a batcher or pool worker.
"""

from __future__ import annotations

import json
from typing import Any

import numpy as np

from repro.graph.graph import Graph
from repro.utils import wire

__all__ = [
    "BINARY_CONTENT_TYPE",
    "CodecError",
    "JSON_CONTENT_TYPE",
    "arrays_to_graphs",
    "decode_predict_response",
    "encode_predict_request",
    "encode_predict_response",
    "graph_from_json",
    "graph_to_json",
    "graphs_to_arrays",
    "parse_predict_request",
    "parse_predict_request_binary",
]

#: Content type negotiating the binary CSR wire format.
BINARY_CONTENT_TYPE = "application/x-repro-graph"

#: Content type of the default JSON wire format.
JSON_CONTENT_TYPE = "application/json"

#: Size ceiling for one binary request body (64 MiB): a hostile length
#: field must not make the server allocate unboundedly.
MAX_BINARY_REQUEST = 64 << 20

#: Per-request graph-count ceiling: a single oversized request must not
#: be able to monopolise the batcher (requests larger than ``max_batch``
#: still run, but as their own batch).
MAX_GRAPHS_PER_REQUEST = 1024


class CodecError(ValueError):
    """Malformed request payload; the message is client-safe."""


def graph_from_json(obj: Any) -> Graph:
    """Build a :class:`Graph` from its JSON-object form (validated)."""
    if not isinstance(obj, dict):
        raise CodecError(f"graph must be an object, got {type(obj).__name__}")
    unknown = set(obj) - {"num_vertices", "edges", "labels"}
    if unknown:
        raise CodecError(f"unknown graph fields: {sorted(unknown)}")
    try:
        n = int(obj["num_vertices"])
    except KeyError:
        raise CodecError("graph is missing 'num_vertices'") from None
    except (TypeError, ValueError):
        raise CodecError("'num_vertices' must be an integer") from None
    edges = obj.get("edges", [])
    if not isinstance(edges, list):
        raise CodecError("'edges' must be a list of [u, v] pairs")
    pairs: list[tuple[int, int]] = []
    for i, edge in enumerate(edges):
        if not isinstance(edge, (list, tuple)) or len(edge) != 2:
            raise CodecError(f"edge {i} must be a [u, v] pair")
        try:
            pairs.append((int(edge[0]), int(edge[1])))
        except (TypeError, ValueError):
            raise CodecError(f"edge {i} endpoints must be integers") from None
    labels = obj.get("labels")
    if labels is not None:
        if not isinstance(labels, list):
            raise CodecError("'labels' must be a list of integers")
        try:
            labels = [int(v) for v in labels]
        except (TypeError, ValueError):
            raise CodecError("'labels' must be a list of integers") from None
    try:
        return Graph(n, pairs, labels)
    except ValueError as exc:  # out-of-range edge, self-loop, bad labels...
        raise CodecError(f"invalid graph: {exc}") from None


def graph_to_json(graph: Graph) -> dict:
    """JSON-object form of ``graph`` (inverse of :func:`graph_from_json`)."""
    return {
        "num_vertices": graph.n,
        "edges": [[int(u), int(v)] for u, v in graph.edges],
        "labels": [int(label) for label in graph.labels],
    }


def parse_predict_request(
    body: bytes,
) -> tuple[list[Graph], str | None, float | None]:
    """Parse a predict request body.

    Returns ``(graphs, model_name, timeout_s)`` where ``model_name`` and
    ``timeout_s`` are ``None`` when the request leaves them to the
    server's defaults.
    """
    try:
        payload = json.loads(body)
    except (UnicodeDecodeError, json.JSONDecodeError) as exc:
        raise CodecError(f"request body is not valid JSON: {exc}") from None
    if not isinstance(payload, dict):
        raise CodecError("request body must be a JSON object")
    unknown = set(payload) - {"graphs", "model", "timeout_ms"}
    if unknown:
        raise CodecError(f"unknown request fields: {sorted(unknown)}")
    raw_graphs = payload.get("graphs")
    if not isinstance(raw_graphs, list) or not raw_graphs:
        raise CodecError("'graphs' must be a non-empty list")
    if len(raw_graphs) > MAX_GRAPHS_PER_REQUEST:
        raise CodecError(
            f"too many graphs in one request "
            f"({len(raw_graphs)} > {MAX_GRAPHS_PER_REQUEST})"
        )
    graphs = [graph_from_json(g) for g in raw_graphs]
    model = payload.get("model")
    if model is not None and not isinstance(model, str):
        raise CodecError("'model' must be a string")
    timeout_s: float | None = None
    timeout_ms = payload.get("timeout_ms")
    if timeout_ms is not None:
        try:
            timeout_s = float(timeout_ms) / 1000.0
        except (TypeError, ValueError):
            raise CodecError("'timeout_ms' must be a number") from None
        if timeout_s <= 0:
            raise CodecError("'timeout_ms' must be > 0")
    return graphs, model, timeout_s


# ----------------------------------------------------------------------
# Binary CSR batch form (shared by the wire codec and the pool handoff)
# ----------------------------------------------------------------------

def graphs_to_arrays(graphs: list[Graph]) -> dict[str, np.ndarray]:
    """Flatten a batch of graphs into four int64 CSR tensors.

    The inverse of :func:`arrays_to_graphs`.  Per-graph ``indptr``
    arrays (each ``n_i + 1`` long) are concatenated as-is — offsets stay
    graph-local, which keeps every segment independently verifiable and
    the split trivially vectorized.
    """
    num_vertices = np.array([g.n for g in graphs], dtype=np.int64)
    indptrs, indices, labels = [], [], []
    for g in graphs:
        indptr, index = g.csr
        indptrs.append(indptr)
        indices.append(index)
        labels.append(g.labels)
    empty = np.empty(0, dtype=np.int64)
    return {
        "num_vertices": num_vertices,
        "indptr": np.concatenate(indptrs) if indptrs else empty,
        "indices": np.concatenate(indices) if indices else empty,
        "labels": np.concatenate(labels) if labels else empty,
    }


def _as_i64(arrays: dict, name: str) -> np.ndarray:
    try:
        arr = arrays[name]
    except KeyError:
        raise CodecError(f"binary request is missing array {name!r}") from None
    arr = np.asarray(arr)
    if arr.ndim != 1 or not np.issubdtype(arr.dtype, np.integer):
        raise CodecError(f"array {name!r} must be a 1-D integer tensor")
    return arr.astype(np.int64, copy=False)


def arrays_to_graphs(arrays: dict[str, np.ndarray]) -> list[Graph]:
    """Rebuild the graph batch a :func:`graphs_to_arrays` dict describes.

    Strictly validated: segment lengths must agree with ``num_vertices``,
    every ``indptr`` must be a monotone 0-based offset array, and the
    adjacency must be the canonical CSR :class:`Graph` itself produces —
    anything else raises :class:`CodecError` (HTTP 400), so a malformed
    or adversarial payload can never crash an inference worker or decode
    into a graph that would not round-trip.
    """
    sizes = _as_i64(arrays, "num_vertices")
    indptr_flat = _as_i64(arrays, "indptr")
    indices_flat = _as_i64(arrays, "indices")
    labels_flat = _as_i64(arrays, "labels")
    unknown = set(arrays) - {"num_vertices", "indptr", "indices", "labels"}
    if unknown:
        raise CodecError(f"unknown binary request arrays: {sorted(unknown)}")
    if sizes.size > MAX_GRAPHS_PER_REQUEST:
        raise CodecError(
            f"too many graphs in one request "
            f"({sizes.size} > {MAX_GRAPHS_PER_REQUEST})"
        )
    if sizes.size and sizes.min() < 0:
        raise CodecError("'num_vertices' entries must be >= 0")
    if indptr_flat.size != int(sizes.sum()) + sizes.size:
        raise CodecError("'indptr' length disagrees with 'num_vertices'")
    if labels_flat.size != int(sizes.sum()):
        raise CodecError("'labels' length disagrees with 'num_vertices'")

    # Everything below is validated over the *flattened batch* — one
    # vectorized pass per invariant instead of a numpy-call cascade per
    # graph — then the per-graph segments are adopted wholesale.  The
    # invariants are exactly the ones ``Graph.__init__`` derives, so a
    # decoded graph is indistinguishable from one built edge by edge.
    num_graphs = sizes.size
    ptr_starts = np.concatenate([[0], np.cumsum(sizes + 1)])
    lab_starts = np.concatenate([[0], np.cumsum(sizes)])

    def _graph_of_vertex(pos: int) -> int:
        return int(np.searchsorted(lab_starts, pos, side="right")) - 1

    # Offsets: each segment starts at 0 and never steps backwards.
    if num_graphs and np.any(indptr_flat[ptr_starts[:-1]] != 0):
        k = int(np.nonzero(indptr_flat[ptr_starts[:-1]] != 0)[0][0])
        raise CodecError(
            f"graph {k}: 'indptr' is not a monotone 0-based offset array"
        )
    steps = np.diff(indptr_flat)
    seg_boundary = np.zeros(max(steps.size, 0), dtype=bool)
    inner = ptr_starts[1:-1]
    seg_boundary[inner - 1] = True
    degrees = steps[~seg_boundary]  # per-vertex degrees, all graphs
    if np.any(degrees < 0):
        k = _graph_of_vertex(int(np.nonzero(degrees < 0)[0][0]))
        raise CodecError(
            f"graph {k}: 'indptr' is not a monotone 0-based offset array"
        )
    # Neighbor-array extents per graph (last offset of each segment).
    deg_totals = indptr_flat[ptr_starts[1:] - 1] if num_graphs else sizes
    promised = np.cumsum(deg_totals)
    if num_graphs and promised[-1] > indices_flat.size:
        k = int(np.searchsorted(promised, indices_flat.size, side="right"))
        raise CodecError(f"graph {k}: 'indices' is shorter than 'indptr' promises")
    total_edges = int(promised[-1]) if num_graphs else 0
    if total_edges != indices_flat.size:
        raise CodecError(
            f"{indices_flat.size - total_edges} trailing 'indices' entries"
        )
    idx_starts = np.concatenate([[0], promised])

    edge_gid = np.repeat(np.arange(num_graphs, dtype=np.int64), deg_totals)
    if indices_flat.size:
        bad = (indices_flat < 0) | (indices_flat >= sizes[edge_gid])
        if np.any(bad):
            pos = int(np.nonzero(bad)[0][0])
            k = int(edge_gid[pos])
            raise CodecError(
                f"graph {k}: neighbor id out of range for n={int(sizes[k])}"
            )
    # Graph-local source vertex of every directed edge.
    local_ids = np.arange(int(sizes.sum()), dtype=np.int64) - np.repeat(
        lab_starts[:-1], sizes
    )
    src = np.repeat(local_ids, degrees)
    loops = src == indices_flat
    if np.any(loops):
        k = int(edge_gid[int(np.nonzero(loops)[0][0])])
        raise CodecError(
            f"graph {k}: adjacency is not canonical CSR (self-loop)"
        )
    # Strictly increasing within each row <=> sorted and duplicate-free.
    if indices_flat.size > 1:
        row_starts = np.cumsum(degrees)[:-1]
        same_row = np.ones(indices_flat.size - 1, dtype=bool)
        row_starts = row_starts[(row_starts > 0) & (row_starts < indices_flat.size)]
        same_row[row_starts - 1] = False
        unsorted = same_row & (np.diff(indices_flat) <= 0)
        if np.any(unsorted):
            k = int(edge_gid[int(np.nonzero(unsorted)[0][0])])
            raise CodecError(
                f"graph {k}: adjacency is not canonical CSR (rows not sorted unique)"
            )
    # Symmetry: the directed pair set must be closed under swap.  Pairs
    # compare as composite int64 keys (gid, u, v); if a pathological
    # batch would overflow the key space, fall back to per-graph checks.
    lo = src < indices_flat
    n_max = int(sizes.max()) if num_graphs else 0
    if n_max and num_graphs * n_max * n_max < 2**62:
        forward = (edge_gid[lo] * n_max + src[lo]) * n_max + indices_flat[lo]
        hi = ~lo
        backward = (edge_gid[hi] * n_max + indices_flat[hi]) * n_max + src[hi]
        # Rows sorted by (gid, src, dst) make `forward` already sorted.
        symmetric = forward.size == backward.size and np.array_equal(
            forward, np.sort(backward)
        )
        if not symmetric:
            fwd_count = np.bincount(edge_gid[lo], minlength=num_graphs)
            bwd_count = np.bincount(edge_gid[hi], minlength=num_graphs)
            uneven = np.nonzero(fwd_count != bwd_count)[0]
            if uneven.size:
                k = int(uneven[0])
            else:
                diff = np.nonzero(forward != np.sort(backward))[0]
                k = int(forward[diff[0]] // (n_max * n_max))
            raise CodecError(
                f"graph {k}: adjacency is not canonical CSR (asymmetric)"
            )
    elif n_max:
        for k in range(num_graphs):
            try:
                Graph._from_csr(
                    int(sizes[k]),
                    indptr_flat[ptr_starts[k] : ptr_starts[k + 1]],
                    indices_flat[idx_starts[k] : idx_starts[k + 1]],
                    labels_flat[lab_starts[k] : lab_starts[k + 1]],
                )
            except ValueError as exc:
                raise CodecError(f"graph {k}: invalid graph: {exc}") from None
    if labels_flat.size and labels_flat.min() < 0:
        k = _graph_of_vertex(int(np.nonzero(labels_flat < 0)[0][0]))
        raise CodecError(
            f"graph {k}: invalid graph: labels must be non-negative integers"
        )

    # All invariants hold: adopt per-graph copies of every segment.  The
    # copies matter — the flats may be views over a transient buffer
    # (shared memory) that the caller unmaps right after decode.
    edges_flat = np.column_stack([src[lo], indices_flat[lo]])
    edge_counts = np.bincount(edge_gid[lo], minlength=num_graphs)
    edge_starts = np.concatenate([[0], np.cumsum(edge_counts)])
    graphs: list[Graph] = []
    for k, n in enumerate(sizes.tolist()):
        graphs.append(
            Graph._adopt(
                n,
                indptr_flat[ptr_starts[k] : ptr_starts[k + 1]].copy(),
                indices_flat[idx_starts[k] : idx_starts[k + 1]].copy(),
                labels_flat[lab_starts[k] : lab_starts[k + 1]].copy(),
                edges_flat[edge_starts[k] : edge_starts[k + 1]].copy(),
            )
        )
    return graphs


# ----------------------------------------------------------------------
# Binary envelope encode/decode
# ----------------------------------------------------------------------

def _open_binary(body: bytes, expected_kind: str) -> tuple[dict, dict[str, np.ndarray]]:
    """Unseal + unpack one binary body; every failure is a CodecError."""
    try:
        header, arrays = wire.unpack_message(
            wire.unseal(body, max_bytes=MAX_BINARY_REQUEST)
        )
    except wire.WireError as exc:
        raise CodecError(f"bad binary frame: {exc}") from None
    kind = header.get("kind")
    if kind != expected_kind:
        raise CodecError(
            f"binary frame kind {kind!r} (expected {expected_kind!r})"
        )
    return header, arrays


def encode_predict_request(
    graphs: list[Graph],
    model: str | None = None,
    timeout_ms: float | None = None,
) -> bytes:
    """Encode a predict request in the binary CSR wire format."""
    header: dict = {"kind": "predict_request"}
    if model is not None:
        header["model"] = model
    if timeout_ms is not None:
        header["timeout_ms"] = timeout_ms
    return wire.seal(wire.pack_message(header, graphs_to_arrays(graphs)))


def parse_predict_request_binary(
    body: bytes,
) -> tuple[list[Graph], str | None, float | None]:
    """Binary counterpart of :func:`parse_predict_request`.

    Same return contract — ``(graphs, model_name, timeout_s)`` — so the
    HTTP layer treats the two codecs identically past the parse.
    """
    header, arrays = _open_binary(body, "predict_request")
    unknown = set(header) - {"kind", "model", "timeout_ms"}
    if unknown:
        raise CodecError(f"unknown binary request fields: {sorted(unknown)}")
    model = header.get("model")
    if model is not None and not isinstance(model, str):
        raise CodecError("'model' must be a string")
    timeout_s: float | None = None
    timeout_ms = header.get("timeout_ms")
    if timeout_ms is not None:
        try:
            timeout_s = float(timeout_ms) / 1000.0
        except (TypeError, ValueError):
            raise CodecError("'timeout_ms' must be a number") from None
        if timeout_s <= 0:
            raise CodecError("'timeout_ms' must be > 0")
    graphs = arrays_to_graphs(arrays)
    if not graphs:
        raise CodecError("binary request carries no graphs")
    return graphs, model, timeout_s


def encode_predict_response(body: dict) -> bytes:
    """Encode a predict/predict_proba response body in binary form.

    ``body`` is exactly the dict the JSON path would serialize —
    ``labels`` (ndarray/list, int) or ``proba`` (ndarray/list, float)
    plus the ``model`` / ``version`` / ``classes`` / ``trace_id`` /
    ``canary`` metadata — so the two codecs cannot drift on content.
    """
    header = {k: v for k, v in body.items() if k not in ("labels", "proba")}
    arrays: dict[str, np.ndarray] = {}
    if "proba" in body:
        header["kind"] = "predict_proba_response"
        arrays["proba"] = np.asarray(body["proba"], dtype=np.float64)
    else:
        header["kind"] = "predict_response"
        arrays["labels"] = np.asarray(body["labels"], dtype=np.int64)
    return wire.seal(wire.pack_message(header, arrays))


def decode_predict_response(body: bytes) -> dict:
    """Decode a binary response back into the JSON-shaped body dict.

    ``proba`` / ``labels`` come back as ndarrays (bitwise the server's
    tensors); everything else is the header metadata.
    """
    try:
        header, arrays = wire.unpack_message(
            wire.unseal(body, max_bytes=MAX_BINARY_REQUEST)
        )
    except wire.WireError as exc:
        raise CodecError(f"bad binary frame: {exc}") from None
    kind = header.pop("kind", None)
    if kind not in ("predict_response", "predict_proba_response"):
        raise CodecError(f"unexpected binary response kind {kind!r}")
    out = dict(header)
    if kind == "predict_proba_response":
        if "proba" not in arrays:
            raise CodecError("binary predict_proba response lacks 'proba'")
        out["proba"] = arrays["proba"]
    else:
        if "labels" not in arrays:
            raise CodecError("binary predict response lacks 'labels'")
        out["labels"] = arrays["labels"]
    return out
