"""Wire format: JSON graphs <-> :class:`repro.graph.Graph`.

One graph is the JSON object counterpart of the TU benchmark format
(:mod:`repro.datasets.tu_format`): the same three per-graph ingredients —
vertex count, undirected edge list, optional vertex labels — keyed
explicitly instead of split across ``DS_A.txt`` / ``DS_graph_indicator``
/ ``DS_node_labels`` files::

    {"num_vertices": 5,
     "edges": [[0, 1], [1, 2], [1, 3], [2, 4], [3, 4]],
     "labels": [1, 4, 3, 3, 2]}          # optional; defaults to all zeros

Vertex ids are 0-based (the in-memory convention) rather than the TU
files' 1-based global ids; each undirected edge appears once.  A predict
request wraps a list of such graphs::

    {"graphs": [...], "model": "default", "timeout_ms": 2000}

``model`` and ``timeout_ms`` are optional.  All parse errors raise
:class:`CodecError` (a ``ValueError``) whose message is safe to return
to the caller in a 400 response.
"""

from __future__ import annotations

import json
from typing import Any

from repro.graph.graph import Graph

__all__ = [
    "CodecError",
    "graph_from_json",
    "graph_to_json",
    "parse_predict_request",
]

#: Per-request graph-count ceiling: a single oversized request must not
#: be able to monopolise the batcher (requests larger than ``max_batch``
#: still run, but as their own batch).
MAX_GRAPHS_PER_REQUEST = 1024


class CodecError(ValueError):
    """Malformed request payload; the message is client-safe."""


def graph_from_json(obj: Any) -> Graph:
    """Build a :class:`Graph` from its JSON-object form (validated)."""
    if not isinstance(obj, dict):
        raise CodecError(f"graph must be an object, got {type(obj).__name__}")
    unknown = set(obj) - {"num_vertices", "edges", "labels"}
    if unknown:
        raise CodecError(f"unknown graph fields: {sorted(unknown)}")
    try:
        n = int(obj["num_vertices"])
    except KeyError:
        raise CodecError("graph is missing 'num_vertices'") from None
    except (TypeError, ValueError):
        raise CodecError("'num_vertices' must be an integer") from None
    edges = obj.get("edges", [])
    if not isinstance(edges, list):
        raise CodecError("'edges' must be a list of [u, v] pairs")
    pairs: list[tuple[int, int]] = []
    for i, edge in enumerate(edges):
        if not isinstance(edge, (list, tuple)) or len(edge) != 2:
            raise CodecError(f"edge {i} must be a [u, v] pair")
        try:
            pairs.append((int(edge[0]), int(edge[1])))
        except (TypeError, ValueError):
            raise CodecError(f"edge {i} endpoints must be integers") from None
    labels = obj.get("labels")
    if labels is not None:
        if not isinstance(labels, list):
            raise CodecError("'labels' must be a list of integers")
        try:
            labels = [int(v) for v in labels]
        except (TypeError, ValueError):
            raise CodecError("'labels' must be a list of integers") from None
    try:
        return Graph(n, pairs, labels)
    except ValueError as exc:  # out-of-range edge, self-loop, bad labels...
        raise CodecError(f"invalid graph: {exc}") from None


def graph_to_json(graph: Graph) -> dict:
    """JSON-object form of ``graph`` (inverse of :func:`graph_from_json`)."""
    return {
        "num_vertices": graph.n,
        "edges": [[int(u), int(v)] for u, v in graph.edges],
        "labels": [int(label) for label in graph.labels],
    }


def parse_predict_request(
    body: bytes,
) -> tuple[list[Graph], str | None, float | None]:
    """Parse a predict request body.

    Returns ``(graphs, model_name, timeout_s)`` where ``model_name`` and
    ``timeout_s`` are ``None`` when the request leaves them to the
    server's defaults.
    """
    try:
        payload = json.loads(body)
    except (UnicodeDecodeError, json.JSONDecodeError) as exc:
        raise CodecError(f"request body is not valid JSON: {exc}") from None
    if not isinstance(payload, dict):
        raise CodecError("request body must be a JSON object")
    unknown = set(payload) - {"graphs", "model", "timeout_ms"}
    if unknown:
        raise CodecError(f"unknown request fields: {sorted(unknown)}")
    raw_graphs = payload.get("graphs")
    if not isinstance(raw_graphs, list) or not raw_graphs:
        raise CodecError("'graphs' must be a non-empty list")
    if len(raw_graphs) > MAX_GRAPHS_PER_REQUEST:
        raise CodecError(
            f"too many graphs in one request "
            f"({len(raw_graphs)} > {MAX_GRAPHS_PER_REQUEST})"
        )
    graphs = [graph_from_json(g) for g in raw_graphs]
    model = payload.get("model")
    if model is not None and not isinstance(model, str):
        raise CodecError("'model' must be a string")
    timeout_s: float | None = None
    timeout_ms = payload.get("timeout_ms")
    if timeout_ms is not None:
        try:
            timeout_s = float(timeout_ms) / 1000.0
        except (TypeError, ValueError):
            raise CodecError("'timeout_ms' must be a number") from None
        if timeout_s <= 0:
            raise CodecError("'timeout_ms' must be > 0")
    return graphs, model, timeout_s
