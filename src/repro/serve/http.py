"""ThreadingHTTPServer front-end over the registry + micro-batcher.

Endpoints
---------
``POST /v1/predict``
    ``{"graphs": [...], "model": "default", "timeout_ms": 2000}`` ->
    ``{"labels": [...], "model": ..., "version": ...}``.
``POST /v1/predict_proba``
    Same request -> ``{"proba": [[...]], "classes": [...], ...}``.
``GET /healthz``
    Liveness + loaded-model inventory + queue depths.
``GET /metrics``
    The process-wide :mod:`repro.obs` metrics registry in Prometheus
    text-exposition format (queue depth, batch-size histograms, shed /
    deadline counters, request latencies).

Backpressure contract: every request is answered.  A full admission
queue is ``429 Too Many Requests`` with a ``Retry-After`` header; an
expired per-request deadline is ``504``; a stopped batcher is ``503``;
malformed payloads are ``400``; unknown models are ``404``.  The server
never sheds silently and never queues unboundedly.

Handler threads only parse/serialise; all model work happens on the
per-model batcher worker threads, so concurrency in the HTTP layer
translates into *larger fused batches*, not into concurrent forward
passes fighting over cores.
"""

from __future__ import annotations

import json
import threading
import time
from dataclasses import asdict, dataclass
from http.server import BaseHTTPRequestHandler, ThreadingHTTPServer

import numpy as np

from repro import obs
from repro.serve.batcher import (
    BatcherStopped,
    DeadlineExceeded,
    MicroBatcher,
    RequestShed,
    register_serve_metrics,
)
from repro.serve.codec import CodecError, parse_predict_request
from repro.serve.registry import ModelRegistry

__all__ = ["ServeConfig", "ReproServer"]

#: Bucket edges for end-to-end request latency (seconds).
REQUEST_SECONDS_BUCKETS = (0.001, 0.005, 0.01, 0.05, 0.1, 0.5, 1.0, 5.0)


@dataclass(frozen=True)
class ServeConfig:
    """Server tuning knobs (see ``docs/SERVING.md`` for guidance)."""

    host: str = "127.0.0.1"
    port: int = 0  # 0 = ephemeral; read the bound port from ReproServer.port
    max_batch: int = 32
    max_wait_ms: float = 5.0
    max_queue: int = 128
    request_timeout_s: float = 30.0
    retry_after_s: int = 1


class ReproServer:
    """Owns the HTTP listener and one :class:`MicroBatcher` per model."""

    def __init__(self, registry: ModelRegistry, config: ServeConfig | None = None) -> None:
        self.registry = registry
        self.config = config or ServeConfig()
        self._httpd: ThreadingHTTPServer | None = None
        self._serve_thread: threading.Thread | None = None
        self._batchers: dict[str, MicroBatcher] = {}
        self._batcher_lock = threading.Lock()
        self._started_at = 0.0
        self._owns_obs = False

    # ------------------------------------------------------------------
    # Lifecycle
    # ------------------------------------------------------------------
    def start(self) -> "ReproServer":
        if self._httpd is not None:
            return self
        # /metrics serves the process-wide obs registry; a serving
        # process wants it recording even when nobody asked for traces.
        if not obs.enabled():
            obs.enable()
            self._owns_obs = True
        # Expose the full serving surface from the first /metrics scrape,
        # even before any request creates a batcher.
        register_serve_metrics()
        obs.histogram("serve_request_seconds", REQUEST_SECONDS_BUCKETS)
        obs.counter("serve_internal_errors_total")
        handler = _make_handler(self)
        self._httpd = ThreadingHTTPServer(
            (self.config.host, self.config.port), handler
        )
        self._httpd.daemon_threads = True
        self._started_at = time.time()
        self._serve_thread = threading.Thread(
            target=self._httpd.serve_forever,
            name="repro-serve-http",
            daemon=True,
        )
        self._serve_thread.start()
        obs.event("server_started", host=self.host, port=self.port)
        return self

    def stop(self) -> None:
        if self._httpd is not None:
            self._httpd.shutdown()
            self._httpd.server_close()
            self._httpd = None
        if self._serve_thread is not None:
            self._serve_thread.join(timeout=5.0)
            self._serve_thread = None
        with self._batcher_lock:
            batchers, self._batchers = dict(self._batchers), {}
        for batcher in batchers.values():
            batcher.stop()
        if self._owns_obs:
            obs.disable()
            self._owns_obs = False

    def __enter__(self) -> "ReproServer":
        return self.start()

    def __exit__(self, *exc_info) -> None:
        self.stop()

    # ------------------------------------------------------------------
    @property
    def host(self) -> str:
        assert self._httpd is not None, "server not started"
        return self._httpd.server_address[0]

    @property
    def port(self) -> int:
        """The actually-bound port (meaningful with ``port=0``)."""
        assert self._httpd is not None, "server not started"
        return self._httpd.server_address[1]

    @property
    def url(self) -> str:
        return f"http://{self.host}:{self.port}"

    # ------------------------------------------------------------------
    # Batching
    # ------------------------------------------------------------------
    def batcher_for(self, name: str) -> MicroBatcher:
        """Get or lazily create the batcher serving model ``name``."""
        with self._batcher_lock:
            batcher = self._batchers.get(name)
            if batcher is None:
                cfg = self.config
                batcher = MicroBatcher(
                    self._make_infer(name),
                    max_batch=cfg.max_batch,
                    max_wait_ms=cfg.max_wait_ms,
                    max_queue=cfg.max_queue,
                ).start()
                self._batchers[name] = batcher
            return batcher

    def _make_infer(self, name: str):
        """Fused forward over the *current* version of model ``name``.

        The entry is resolved per batch, so a hot-swap takes effect at
        the next batch boundary and every request in one batch is
        answered by exactly one model version.
        """

        def infer(graphs):
            entry = self.registry.get(name)
            proba = entry.model.predict_proba(graphs)
            extra = {
                "model": entry.name,
                "version": entry.version,
                "classes": list(entry.classes),
            }
            return proba, extra

        return infer

    def queue_depths(self) -> dict[str, int]:
        with self._batcher_lock:
            return {name: b.depth() for name, b in sorted(self._batchers.items())}

    def healthz(self) -> dict:
        return {
            "status": "ok",
            "uptime_s": round(time.time() - self._started_at, 3),
            "models": self.registry.describe(),
            "queues": self.queue_depths(),
            "config": asdict(self.config),
        }


# ----------------------------------------------------------------------
# Request handler
# ----------------------------------------------------------------------

def _make_handler(server: "ReproServer") -> type[BaseHTTPRequestHandler]:
    """Bind a handler class to one :class:`ReproServer` instance."""

    class Handler(BaseHTTPRequestHandler):
        protocol_version = "HTTP/1.1"
        server_version = "repro-serve/1.0"
        app = server

        # Route stdlib request logging into the event log instead of
        # stderr (no-op while obs is disabled).
        def log_message(self, format: str, *args) -> None:  # noqa: A002
            obs.event("http_access", line=format % args)

        # -- GET --------------------------------------------------------
        def do_GET(self) -> None:  # noqa: N802 - stdlib naming
            if self.path == "/healthz":
                self._send_json(200, self.app.healthz())
            elif self.path == "/metrics":
                body = obs.get_metrics().to_promtext().encode()
                self.send_response(200)
                self.send_header("Content-Type", "text/plain; version=0.0.4")
                self.send_header("Content-Length", str(len(body)))
                self.end_headers()
                self.wfile.write(body)
            else:
                self._send_json(404, {"error": f"no such path: {self.path}"})

        # -- POST -------------------------------------------------------
        def do_POST(self) -> None:  # noqa: N802 - stdlib naming
            if self.path not in ("/v1/predict", "/v1/predict_proba"):
                self._send_json(404, {"error": f"no such path: {self.path}"})
                return
            start = time.perf_counter()
            status = 500
            try:
                status = self._handle_predict(want_proba=self.path.endswith("_proba"))
            except Exception as exc:  # noqa: BLE001 - last-resort 500
                obs.counter("serve_internal_errors_total").inc()
                self._send_json(500, {"error": f"internal error: {exc}"})
            finally:
                obs.histogram(
                    "serve_request_seconds", REQUEST_SECONDS_BUCKETS
                ).observe(time.perf_counter() - start)
                obs.counter(f"serve_responses_{status}_total").inc()

        def _handle_predict(self, want_proba: bool) -> int:
            try:
                length = int(self.headers.get("Content-Length", 0))
                graphs, model, timeout_s = parse_predict_request(
                    self.rfile.read(length)
                )
            except CodecError as exc:
                return self._send_json(400, {"error": str(exc)})
            name = model or "default"
            if timeout_s is None:
                timeout_s = self.app.config.request_timeout_s
            try:
                self.app.registry.get(name)
            except KeyError as exc:
                return self._send_json(404, {"error": str(exc.args[0])})
            batcher = self.app.batcher_for(name)
            try:
                proba, extra = batcher.submit(graphs, timeout_s=timeout_s)
            except RequestShed as exc:
                return self._send_json(
                    429,
                    {"error": str(exc)},
                    headers={"Retry-After": str(self.app.config.retry_after_s)},
                )
            except DeadlineExceeded as exc:
                return self._send_json(504, {"error": str(exc)})
            except BatcherStopped as exc:
                return self._send_json(503, {"error": str(exc)})
            body = {"model": extra["model"], "version": extra["version"]}
            if want_proba:
                body["classes"] = extra["classes"]
                body["proba"] = proba.tolist()
            else:
                classes = np.asarray(extra["classes"])
                body["labels"] = classes[np.argmax(proba, axis=1)].tolist()
            return self._send_json(200, body)

        # -- plumbing ---------------------------------------------------
        def _send_json(
            self, status: int, payload: dict, headers: dict | None = None
        ) -> int:
            body = json.dumps(payload).encode()
            self.send_response(status)
            self.send_header("Content-Type", "application/json")
            self.send_header("Content-Length", str(len(body)))
            for key, value in (headers or {}).items():
                self.send_header(key, value)
            self.end_headers()
            self.wfile.write(body)
            return status

    return Handler
