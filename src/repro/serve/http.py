"""ThreadingHTTPServer front-end over the registry + micro-batcher.

Endpoints
---------
``POST /v1/predict``
    ``{"graphs": [...], "model": "default", "timeout_ms": 2000}`` ->
    ``{"labels": [...], "model": ..., "version": ..., "trace_id": ...}``.
``POST /v1/predict_proba``
    Same request -> ``{"proba": [[...]], "classes": [...], ...}``.
``GET /healthz``
    Liveness + loaded-model inventory + queue depths + SLO state; the
    top-level ``status`` flips to ``degraded`` while any SLO objective
    (p95 latency, error budget) is breached.
``GET /metrics``
    The process-wide :mod:`repro.obs` metrics registry in Prometheus
    text-exposition format (queue depth + high-water, batch-size and
    wait-decomposition histograms, shed / deadline counters, request
    latencies, ``slo_*`` and ``resource_*`` gauges).
``GET /v1/traces/<id>``
    The stage waterfall of a recently answered request (bounded
    in-memory store; ``repro ops trace`` rebuilds the same record
    offline from a ``--log-json`` run file).

Request tracing: every request carries a trace id — minted at ingress
or supplied via the ``X-Repro-Trace-Id`` header — that is echoed in the
response (header + body) and stamped on every span the request
produces.  Per-request latency decomposes into ``queue_wait`` /
``batch_wait`` / ``infer`` / ``serialize`` child spans of one
``request`` span; the batcher's ``serve_batch`` span carries the fused
trace ids as span links.  See ``docs/SERVING.md`` for the contract.

Backpressure contract: every request is answered.  A full admission
queue is ``429 Too Many Requests`` with a ``Retry-After`` header; an
expired per-request deadline is ``504``; a stopped batcher is ``503``;
malformed payloads are ``400``; unknown models are ``404``.  The server
never sheds silently and never queues unboundedly.

Handler threads only parse/serialise; all model work happens on the
per-model batcher worker threads, so concurrency in the HTTP layer
translates into *larger fused batches*, not into concurrent forward
passes fighting over cores.
"""

from __future__ import annotations

import json
import threading
import time
from dataclasses import asdict, dataclass
from http.server import BaseHTTPRequestHandler, ThreadingHTTPServer

import numpy as np

from repro import obs
from repro.obs.reqtrace import (
    TRACE_HEADER,
    TraceStore,
    new_trace_id,
    valid_trace_id,
)
from repro.obs.resources import ResourceSampler, sample_resources
from repro.obs.slo import SloConfig, SloMonitor
from repro.serve.batcher import (
    Autoscaler,
    BatcherStopped,
    DeadlineExceeded,
    MicroBatcher,
    RequestShed,
    register_serve_metrics,
)
from repro.serve.codec import (
    BINARY_CONTENT_TYPE,
    CodecError,
    encode_predict_response,
    parse_predict_request,
    parse_predict_request_binary,
)
from repro.serve.pool import InferencePool, PoolError, register_pool_metrics
from repro.serve.registry import ModelRegistry

__all__ = ["ServeConfig", "ReproServer"]

#: Bucket edges for end-to-end request latency (seconds).
REQUEST_SECONDS_BUCKETS = (0.001, 0.005, 0.01, 0.05, 0.1, 0.5, 1.0, 5.0)

_TRACES_PREFIX = "/v1/traces/"


@dataclass(frozen=True)
class ServeConfig:
    """Server tuning knobs (see ``docs/SERVING.md`` for guidance)."""

    host: str = "127.0.0.1"
    port: int = 0  # 0 = ephemeral; read the bound port from ReproServer.port
    max_batch: int = 32
    max_wait_ms: float = 5.0
    max_queue: int = 128
    request_timeout_s: float = 30.0
    retry_after_s: int = 1
    # -- SLO objectives (see repro.obs.slo) -----------------------------
    slo_latency_p95_ms: float = 500.0
    slo_error_rate_target: float = 0.01
    slo_window_s: float = 60.0
    slo_min_samples: int = 20
    # -- telemetry ------------------------------------------------------
    resource_interval_s: float = 5.0  # <= 0 disables the sampler thread
    trace_capacity: int = 512
    # -- inference backend (see repro.serve.pool) -----------------------
    backend: str = "thread"  # "thread" (in-process) | "pool" (processes)
    pool_workers: int = 1
    pool_max_respawns: int = 3
    batcher_workers: int = 1
    # -- autoscaling (see repro.serve.batcher.Autoscaler) ---------------
    autoscale: bool = False
    autoscale_min: int = 1
    autoscale_max: int = 4
    autoscale_interval_s: float = 0.5

    def __post_init__(self) -> None:
        if self.backend not in ("thread", "pool"):
            raise ValueError(
                f"backend must be 'thread' or 'pool', got {self.backend!r}"
            )


class ReproServer:
    """Owns the HTTP listener and one :class:`MicroBatcher` per model."""

    def __init__(self, registry: ModelRegistry, config: ServeConfig | None = None) -> None:
        self.registry = registry
        self.config = config or ServeConfig()
        self._httpd: ThreadingHTTPServer | None = None
        self._serve_thread: threading.Thread | None = None
        self._batchers: dict[str, MicroBatcher] = {}
        self._batcher_lock = threading.Lock()
        self._autoscalers: dict[str, Autoscaler] = {}
        self._pool: InferencePool | None = None
        self._pool_lock = threading.Lock()
        self._started_at = 0.0
        self._owns_obs = False
        self.slo = SloMonitor(
            SloConfig(
                latency_p95_ms=self.config.slo_latency_p95_ms,
                error_rate_target=self.config.slo_error_rate_target,
                window_s=self.config.slo_window_s,
                min_samples=self.config.slo_min_samples,
            )
        )
        self.traces = TraceStore(capacity=self.config.trace_capacity)
        self._sampler = ResourceSampler(
            interval_s=self.config.resource_interval_s,
            extra=self._sampler_extra,
        )

    # ------------------------------------------------------------------
    # Lifecycle
    # ------------------------------------------------------------------
    def start(self) -> "ReproServer":
        if self._httpd is not None:
            return self
        # /metrics serves the process-wide obs registry; a serving
        # process wants it recording even when nobody asked for traces.
        if not obs.enabled():
            obs.enable()
            self._owns_obs = True
        # Expose the full serving surface from the first /metrics scrape,
        # even before any request creates a batcher.
        register_serve_metrics()
        register_pool_metrics()
        obs.histogram("serve_request_seconds", REQUEST_SECONDS_BUCKETS)
        obs.counter("serve_internal_errors_total")
        obs.counter("serve_canary_requests_total")
        obs.counter("serve_shadow_batches_total")
        obs.counter("serve_shadow_agree_total")
        obs.counter("serve_shadow_mismatch_total")
        obs.counter("serve_shadow_errors_total")
        registry = obs.get_metrics()
        registry.describe(
            "serve_request_seconds", "End-to-end HTTP predict latency."
        )
        registry.describe(
            "serve_internal_errors_total", "Requests answered with HTTP 500."
        )
        registry.describe(
            "serve_canary_requests_total", "Requests routed to a canary version."
        )
        registry.describe(
            "serve_shadow_batches_total", "Batches shadow-evaluated against a pinned version."
        )
        registry.describe(
            "serve_shadow_agree_total", "Shadowed graphs whose predicted label matched the live answer."
        )
        registry.describe(
            "serve_shadow_mismatch_total", "Shadowed graphs whose predicted label diverged from the live answer."
        )
        registry.describe(
            "serve_shadow_errors_total", "Shadow forward passes that raised (compared as errors, never returned)."
        )
        self._sampler.start()
        handler = _make_handler(self)
        self._httpd = ThreadingHTTPServer(
            (self.config.host, self.config.port), handler
        )
        self._httpd.daemon_threads = True
        self._started_at = time.time()
        self._serve_thread = threading.Thread(
            target=self._httpd.serve_forever,
            name="repro-serve-http",
            daemon=True,
        )
        self._serve_thread.start()
        obs.event("server_started", host=self.host, port=self.port)
        return self

    def stop(self) -> None:
        self._sampler.stop()
        if self._httpd is not None:
            self._httpd.shutdown()
            self._httpd.server_close()
            self._httpd = None
        if self._serve_thread is not None:
            self._serve_thread.join(timeout=5.0)
            self._serve_thread = None
        with self._batcher_lock:
            batchers, self._batchers = dict(self._batchers), {}
            scalers, self._autoscalers = dict(self._autoscalers), {}
        for scaler in scalers.values():
            scaler.stop()
        for batcher in batchers.values():
            batcher.stop()
        with self._pool_lock:
            pool, self._pool = self._pool, None
        if pool is not None:
            pool.stop()
        if self._owns_obs:
            obs.disable()
            self._owns_obs = False

    def __enter__(self) -> "ReproServer":
        return self.start()

    def __exit__(self, *exc_info) -> None:
        self.stop()

    # ------------------------------------------------------------------
    @property
    def host(self) -> str:
        assert self._httpd is not None, "server not started"
        return self._httpd.server_address[0]

    @property
    def port(self) -> int:
        """The actually-bound port (meaningful with ``port=0``)."""
        assert self._httpd is not None, "server not started"
        return self._httpd.server_address[1]

    @property
    def url(self) -> str:
        return f"http://{self.host}:{self.port}"

    # ------------------------------------------------------------------
    # Batching
    # ------------------------------------------------------------------
    def batcher_for(self, name: str, version: int | None = None) -> MicroBatcher:
        """Get or lazily create the batcher serving model ``name``.

        A pinned ``version`` gets its own channel batcher (keyed
        ``name@v<version>``) so canary traffic fuses separately from
        stable traffic — one batch is always answered by one version.
        """
        key = name if version is None else f"{name}@v{version}"
        with self._batcher_lock:
            batcher = self._batchers.get(key)
            if batcher is None:
                cfg = self.config
                batcher = MicroBatcher(
                    self._make_infer(name, version),
                    max_batch=cfg.max_batch,
                    max_wait_ms=cfg.max_wait_ms,
                    max_queue=cfg.max_queue,
                    workers=cfg.batcher_workers,
                ).start()
                self._batchers[key] = batcher
                if cfg.autoscale:
                    self._autoscalers[key] = Autoscaler(
                        min_workers=cfg.autoscale_min,
                        max_workers=cfg.autoscale_max,
                        depth_fn=batcher.depth,
                        workers_fn=lambda b=batcher: b.workers,
                        scale_fn=lambda n, b=batcher: self._apply_scale(b, n),
                        p95_fn=lambda: obs.gauge("slo_latency_p95_ms").value,
                        up_queue_depth=max(2, cfg.max_queue // 4),
                    ).start(cfg.autoscale_interval_s)
            return batcher

    def _apply_scale(self, batcher: MicroBatcher, workers: int) -> None:
        """One autoscaler step: drainers first, pool workers in lockstep.

        With the pool backend, drainer threads only pipeline handoffs —
        the forward passes run in pool processes — so the pool must grow
        with the batcher for added drainers to buy real parallelism.
        """
        batcher.resize(workers)
        with self._pool_lock:
            pool = self._pool
        if pool is not None:
            pool.resize(workers)

    def _pool_for(self, entry) -> InferencePool | None:
        """The shared process pool, created on first use (pool backend)."""
        if self.config.backend != "pool":
            return None
        with self._pool_lock:
            if self._pool is None:
                self._pool = InferencePool(
                    entry.path,
                    workers=self.config.pool_workers,
                    max_respawns=self.config.pool_max_respawns,
                ).start()
            return self._pool

    def _forward(self, entry, graphs) -> np.ndarray:
        """One fused forward pass on the configured backend.

        Pool jobs carry the entry's artifact path, so hot-swaps reach
        pool workers at the same batch boundary as in-thread callers.
        A degraded (or mid-degrading) pool falls back to the in-thread
        model — bitwise the same answer, reduced parallelism.
        """
        pool = self._pool_for(entry)
        if pool is not None:
            try:
                return pool.submit(
                    graphs, op="predict_proba", model_path=entry.path
                )
            except PoolError:
                obs.counter("serve_pool_fallback_jobs_total").inc()
        return entry.model.predict_proba(graphs)

    def _maybe_shadow(self, name: str, entry, graphs, proba) -> None:
        """Shadow-evaluate the batch; compare and count, never return.

        Comparison is on predicted labels (argmax through each entry's
        own class vector) — the question shadow answers is "would the
        candidate have answered differently?", not whether probabilities
        drifted in the 12th decimal.
        """
        try:
            shadow = self.registry.shadow(name)
        except KeyError:
            return
        if shadow is None or shadow.version == entry.version:
            return
        obs.counter("serve_shadow_batches_total").inc()
        try:
            shadow_proba = shadow.model.predict_proba(graphs)
        except Exception:  # noqa: BLE001 - shadow must never break serving
            obs.counter("serve_shadow_errors_total").inc()
            return
        live = np.asarray(entry.classes)[np.argmax(proba, axis=1)]
        cand = np.asarray(shadow.classes)[np.argmax(shadow_proba, axis=1)]
        agree = int(np.sum(live == cand))
        obs.counter("serve_shadow_agree_total").inc(agree)
        obs.counter("serve_shadow_mismatch_total").inc(len(live) - agree)

    def _make_infer(self, name: str, version: int | None = None):
        """Fused forward over model ``name`` (latest, or pinned version).

        The entry is resolved per batch, so a hot-swap takes effect at
        the next batch boundary and every request in one batch is
        answered by exactly one model version.
        """

        def infer(graphs):
            entry = self.registry.get(name, version)
            proba = self._forward(entry, graphs)
            if version is None:  # shadow mirrors stable traffic only
                self._maybe_shadow(name, entry, graphs, proba)
            extra = {
                "model": entry.name,
                "version": entry.version,
                "classes": list(entry.classes),
            }
            return proba, extra

        return infer

    def queue_depths(self) -> dict[str, int]:
        with self._batcher_lock:
            return {name: b.depth() for name, b in sorted(self._batchers.items())}

    def _sampler_extra(self) -> dict[str, float]:
        """Gauges published on the resource sampler's cadence.

        Refreshing ``serve_queue_depth`` here means the gauge decays
        back to the true (usually 0) depth while the server idles,
        instead of freezing at the last request's reading.
        """
        return {"serve_queue_depth": sum(self.queue_depths().values())}

    def healthz(self) -> dict:
        with self._pool_lock:
            pool = self._pool
        status = self.slo.status()
        if pool is not None and pool.degraded:
            # A degraded pool still answers (in-thread fallback) but has
            # lost its parallelism — surface it exactly like an SLO burn.
            status = "degraded"
        with self._batcher_lock:
            batchers = {
                key: {"depth": b.depth(), "workers": b.workers}
                for key, b in sorted(self._batchers.items())
            }
        return {
            "status": status,
            "uptime_s": round(time.time() - self._started_at, 3),
            "models": self.registry.describe(),
            "queues": self.queue_depths(),
            "batchers": batchers,
            "backend": {
                "kind": self.config.backend,
                "pool": None if pool is None else pool.describe(),
            },
            "slo": self.slo.snapshot(),
            "resources": sample_resources(),
            "config": asdict(self.config),
        }


# ----------------------------------------------------------------------
# Request handler
# ----------------------------------------------------------------------

def _make_handler(server: "ReproServer") -> type[BaseHTTPRequestHandler]:
    """Bind a handler class to one :class:`ReproServer` instance."""

    class Handler(BaseHTTPRequestHandler):
        protocol_version = "HTTP/1.1"
        server_version = "repro-serve/1.0"
        app = server

        # Structured access-log events (emitted per response in
        # _access_log) replace the stdlib's stderr line logging.
        def log_message(self, format: str, *args) -> None:  # noqa: A002
            pass

        def _access_log(
            self, method: str, status: int, duration_s: float, trace_id: str
        ) -> None:
            obs.event(
                "http_access",
                method=method,
                path=self.path,
                status=status,
                duration_ms=round(duration_s * 1000.0, 3),
                trace_id=trace_id,
            )

        def _ingress_trace_id(self) -> str:
            """Adopt a valid client-supplied trace id or mint one."""
            supplied = (self.headers.get(TRACE_HEADER) or "").strip()
            if valid_trace_id(supplied):
                return supplied.lower()
            return new_trace_id()

        # -- GET --------------------------------------------------------
        def do_GET(self) -> None:  # noqa: N802 - stdlib naming
            start = time.perf_counter()
            trace_id = self._ingress_trace_id()
            status = 500
            try:
                if self.path == "/healthz":
                    status = self._send_json(
                        200, self.app.healthz(), trace_id=trace_id
                    )
                elif self.path == "/metrics":
                    body = obs.get_metrics().to_promtext().encode()
                    self.send_response(200)
                    self.send_header("Content-Type", "text/plain; version=0.0.4")
                    self.send_header("Content-Length", str(len(body)))
                    self.send_header(TRACE_HEADER, trace_id)
                    self.end_headers()
                    self.wfile.write(body)
                    status = 200
                elif self.path.startswith(_TRACES_PREFIX):
                    status = self._handle_get_trace(trace_id)
                else:
                    status = self._send_json(
                        404,
                        {"error": f"no such path: {self.path}"},
                        trace_id=trace_id,
                    )
            finally:
                self._access_log("GET", status, time.perf_counter() - start, trace_id)

        def _handle_get_trace(self, trace_id: str) -> int:
            wanted = self.path[len(_TRACES_PREFIX):]
            record = self.app.traces.get(wanted)
            if record is None:
                return self._send_json(
                    404,
                    {"error": f"no stored trace with id {wanted!r}"},
                    trace_id=trace_id,
                )
            return self._send_json(200, record, trace_id=trace_id)

        # -- POST -------------------------------------------------------
        def do_POST(self) -> None:  # noqa: N802 - stdlib naming
            start = time.perf_counter()
            trace_id = self._ingress_trace_id()
            status = 500
            try:
                if self.path not in ("/v1/predict", "/v1/predict_proba"):
                    status = self._send_json(
                        404,
                        {"error": f"no such path: {self.path}"},
                        trace_id=trace_id,
                    )
                    return
                status = self._handle_predict(
                    want_proba=self.path.endswith("_proba"), trace_id=trace_id
                )
            except Exception as exc:  # noqa: BLE001 - last-resort 500
                obs.counter("serve_internal_errors_total").inc()
                status = self._send_json(
                    500, {"error": f"internal error: {exc}"}, trace_id=trace_id
                )
            finally:
                elapsed = time.perf_counter() - start
                obs.histogram(
                    "serve_request_seconds", REQUEST_SECONDS_BUCKETS
                ).observe(elapsed)
                obs.counter(f"serve_responses_{status}_total").inc()
                # Only predict traffic spends SLO budget; health and
                # metrics scrapes are not user-facing work.
                if self.path in ("/v1/predict", "/v1/predict_proba"):
                    self.app.slo.observe(elapsed, status)
                self._access_log("POST", status, elapsed, trace_id)

        def _handle_predict(self, want_proba: bool, trace_id: str) -> int:
            mono0 = time.monotonic()
            ts0 = time.time()
            endpoint = "predict_proba" if want_proba else "predict"
            status = 500
            timing: dict = {}
            serialize_started: float | None = None
            name = None
            with obs.span(
                "request", trace_id=trace_id, endpoint=endpoint, method="POST"
            ) as req_span:
                try:
                    status = self._predict_inner(
                        want_proba, trace_id, req_span, timing
                    )
                    name = timing.get("model")
                    serialize_started = timing.get("serialize_started_at")
                finally:
                    req_span.set_attr("status", status)
                    total_s = time.monotonic() - mono0
                    stages = _stage_spans(
                        mono0, timing, serialize_started, time.monotonic()
                    )
                    if obs.enabled():
                        tracer = obs.get_tracer()
                        for stage in stages:
                            tracer.graft(
                                {
                                    "name": stage["name"],
                                    "attrs": {
                                        "trace_id": trace_id,
                                        "offset_s": stage["offset_s"],
                                    },
                                    "duration": stage["duration_s"],
                                },
                                parent=req_span,
                            )
                    self.app.traces.put(
                        trace_id,
                        {
                            "trace_id": trace_id,
                            "endpoint": endpoint,
                            "model": name,
                            "status": status,
                            "batch_id": timing.get("batch_id"),
                            "ts": ts0,
                            "duration_s": total_s,
                            "spans": stages,
                        },
                    )
            return status

        def _content_type(self) -> str:
            return (
                (self.headers.get("Content-Type") or "")
                .split(";")[0]
                .strip()
                .lower()
            )

        def _wants_binary(self) -> bool:
            accept = (self.headers.get("Accept") or "").lower()
            return BINARY_CONTENT_TYPE in accept

        def _predict_inner(
            self, want_proba: bool, trace_id: str, req_span, timing: dict
        ) -> int:
            try:
                length = int(self.headers.get("Content-Length", 0))
                raw = self.rfile.read(length)
                if self._content_type() == BINARY_CONTENT_TYPE:
                    graphs, model, timeout_s = parse_predict_request_binary(raw)
                else:
                    graphs, model, timeout_s = parse_predict_request(raw)
            except CodecError as exc:
                return self._send_json(400, {"error": str(exc)}, trace_id=trace_id)
            name = model or "default"
            timing["model"] = name
            req_span.set_attr("model", name)
            if timeout_s is None:
                timeout_s = self.app.config.request_timeout_s
            try:
                entry, channel = self.app.registry.route(name, trace_id)
            except KeyError as exc:
                return self._send_json(
                    404, {"error": str(exc.args[0])}, trace_id=trace_id
                )
            canaried = self.app.registry.canary(name) is not None
            if channel == "canary":
                obs.counter("serve_canary_requests_total").inc()
                req_span.set_attr("channel", "canary")
                batcher = self.app.batcher_for(name, version=entry.version)
            else:
                batcher = self.app.batcher_for(name)
            try:
                proba, extra, stamps = batcher.submit_traced(
                    graphs, timeout_s=timeout_s, trace_id=trace_id
                )
                timing.update(stamps)
            except RequestShed as exc:
                return self._send_json(
                    429,
                    {"error": str(exc)},
                    headers={"Retry-After": str(self.app.config.retry_after_s)},
                    trace_id=trace_id,
                )
            except DeadlineExceeded as exc:
                return self._send_json(504, {"error": str(exc)}, trace_id=trace_id)
            except BatcherStopped as exc:
                return self._send_json(503, {"error": str(exc)}, trace_id=trace_id)
            req_span.set_attr("batch_id", stamps.get("batch_id"))
            body = {"model": extra["model"], "version": extra["version"]}
            if canaried:
                # Only present while a canary split is configured, so
                # steady-state responses don't grow a vestigial field.
                body["channel"] = channel
            if want_proba:
                body["classes"] = extra["classes"]
                body["proba"] = proba.tolist()
            else:
                classes = np.asarray(extra["classes"])
                body["labels"] = classes[np.argmax(proba, axis=1)].tolist()
            timing["serialize_started_at"] = time.monotonic()
            if self._wants_binary():
                return self._send_binary(200, body, trace_id=trace_id)
            return self._send_json(200, body, trace_id=trace_id)

        # -- plumbing ---------------------------------------------------
        def _send_binary(
            self, status: int, payload: dict, trace_id: str | None = None
        ) -> int:
            """Answer in the binary codec (client sent ``Accept: x-repro-graph``).

            Carries byte-for-byte the same tensors and metadata as the
            JSON path; errors still go out as JSON so a failing request
            is always inspectable with nothing but a text console.
            """
            if trace_id is not None and "trace_id" not in payload:
                payload = {**payload, "trace_id": trace_id}
            body = encode_predict_response(payload)
            self.send_response(status)
            self.send_header("Content-Type", BINARY_CONTENT_TYPE)
            self.send_header("Content-Length", str(len(body)))
            if trace_id is not None:
                self.send_header(TRACE_HEADER, trace_id)
            self.end_headers()
            self.wfile.write(body)
            return status

        def _send_json(
            self,
            status: int,
            payload: dict,
            headers: dict | None = None,
            trace_id: str | None = None,
        ) -> int:
            if trace_id is not None and "trace_id" not in payload:
                payload = {**payload, "trace_id": trace_id}
            body = json.dumps(payload).encode()
            self.send_response(status)
            self.send_header("Content-Type", "application/json")
            self.send_header("Content-Length", str(len(body)))
            if trace_id is not None:
                self.send_header(TRACE_HEADER, trace_id)
            for key, value in (headers or {}).items():
                self.send_header(key, value)
            self.end_headers()
            self.wfile.write(body)
            return status

    return Handler


def _stage_spans(
    mono0: float,
    timing: dict,
    serialize_started: float | None,
    serialize_ended: float,
) -> list[dict]:
    """Decompose one request into its waterfall stages.

    Stage boundaries come from the batcher's monotonic stamps
    (:meth:`MicroBatcher.submit_traced`); ``serialize`` covers response
    encoding + write.  Stages whose boundaries were never reached
    (sheds, deadline expiries, parse errors) are simply absent, so the
    durations always sum to at most the measured request latency.
    """
    spans: list[dict] = []

    def add(name: str, start: float | None, end: float | None) -> None:
        if start is None or end is None or end < start:
            return
        spans.append(
            {
                "name": name,
                "offset_s": max(0.0, start - mono0),
                "duration_s": end - start,
            }
        )

    add("queue_wait", timing.get("enqueued_at"), timing.get("collected_at"))
    add("batch_wait", timing.get("collected_at"), timing.get("infer_started_at"))
    add("infer", timing.get("infer_started_at"), timing.get("infer_ended_at"))
    add("serialize", serialize_started, serialize_ended)
    return spans
