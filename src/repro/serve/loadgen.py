"""Closed- and open-loop load generation against a serve endpoint.

Two standard load models:

* **closed-loop** — ``concurrency`` workers, each with its own
  keep-alive client, issuing the next request the moment the previous
  one finishes.  Offered load adapts to the server (classic
  think-time-zero closed system); this is the model that demonstrates
  micro-batching, because whenever the single inference worker is busy,
  the other ``concurrency - 1`` requests pile into the admission queue
  and fuse into one forward pass.
* **open-loop** — requests fire on a fixed global schedule of ``rps``
  regardless of completions (Poisson-less constant pacing).  Offered
  load is independent of the server, so saturation shows up honestly as
  shed (429) responses rather than as silently shrinking throughput.

Every request's fate is recorded — 2xx, 429 (shed), other statuses,
transport errors — so "no request silently dropped" is checkable:
``attempted == ok + shed + other + transport_errors``.

The report carries p50/p95/p99/mean latency, throughput over the
measurement window, per-status counts, and server-side readings taken
as one atomic ``GET /metrics`` snapshot before and one after the run:
the *mean fused batch size* over the window (delta of
``serve_batch_size_sum`` / ``_count``) and the admission queue's
high-water depth (``serve_queue_depth_peak``).
"""

from __future__ import annotations

import re
import threading
import time
from dataclasses import dataclass, field

import numpy as np

from repro.graph.graph import Graph
from repro.serve.client import ServeClient
from repro.serve.codec import encode_predict_request

__all__ = ["LoadResult", "parse_promtext", "parse_promtext_samples", "run_load"]

_LABEL_RE = re.compile(r'([a-zA-Z_][a-zA-Z0-9_]*)="((?:[^"\\]|\\.)*)"')

_UNESCAPE = {"\\": "\\", '"': '"', "n": "\n"}


def _unescape_label_value(value: str) -> str:
    """Invert :func:`repro.obs.escape_label_value`."""
    out: list[str] = []
    i = 0
    while i < len(value):
        ch = value[i]
        if ch == "\\" and i + 1 < len(value):
            out.append(_UNESCAPE.get(value[i + 1], value[i + 1]))
            i += 2
        else:
            out.append(ch)
            i += 1
    return "".join(out)


def parse_promtext_samples(text: str) -> list[tuple[str, dict[str, str], float]]:
    """Every sample in a Prometheus text dump as ``(name, labels, value)``.

    Labelled series (histogram buckets etc.) parse into a label dict
    with values unescaped per the exposition format; comment lines
    (``# HELP`` / ``# TYPE``) are skipped.  The round-trip with
    :meth:`~repro.obs.MetricsRegistry.to_promtext` is covered in
    ``tests/obs/test_metrics.py``.
    """
    samples: list[tuple[str, dict[str, str], float]] = []
    for line in text.splitlines():
        line = line.strip()
        if not line or line.startswith("#"):
            continue
        labels: dict[str, str] = {}
        if "{" in line:
            name, rest = line.split("{", 1)
            label_text, sep, value_text = rest.rpartition("} ")
            if not sep:
                continue
            labels = {
                key: _unescape_label_value(raw)
                for key, raw in _LABEL_RE.findall(label_text)
            }
        else:
            parts = line.split()
            if len(parts) != 2:
                continue
            name, value_text = parts
        try:
            samples.append((name.strip(), labels, float(value_text)))
        except ValueError:
            continue
    return samples


def parse_promtext(text: str) -> dict[str, float]:
    """Scalar samples from a Prometheus text dump (labelled series skipped)."""
    return {
        name: value
        for name, labels, value in parse_promtext_samples(text)
        if not labels
    }


@dataclass
class LoadResult:
    """Outcome of one load run (see :func:`run_load`)."""

    mode: str
    endpoint: str
    concurrency: int
    target_rps: float | None
    duration_s: float
    attempted: int
    ok: int
    shed: int
    deadline_expired: int
    other_status: dict[int, int] = field(default_factory=dict)
    transport_errors: int = 0
    latencies_ms: list[float] = field(default_factory=list)
    mean_batch_size: float | None = None
    batches: int | None = None
    queue_depth_peak: int | None = None

    # -- derived -------------------------------------------------------
    @property
    def throughput_rps(self) -> float:
        return self.ok / self.duration_s if self.duration_s > 0 else 0.0

    def percentile_ms(self, q: float) -> float:
        if not self.latencies_ms:
            return float("nan")
        return float(np.percentile(self.latencies_ms, q))

    @property
    def answered(self) -> int:
        """Requests that received *any* HTTP response."""
        return self.ok + self.shed + self.deadline_expired + sum(
            self.other_status.values()
        )

    def to_dict(self) -> dict:
        """JSON-safe summary (benchmarks check this in as an artifact)."""
        return {
            "mode": self.mode,
            "endpoint": self.endpoint,
            "concurrency": self.concurrency,
            "target_rps": self.target_rps,
            "duration_s": round(self.duration_s, 4),
            "attempted": self.attempted,
            "ok": self.ok,
            "shed": self.shed,
            "deadline_expired": self.deadline_expired,
            "other_status": {str(k): v for k, v in sorted(self.other_status.items())},
            "transport_errors": self.transport_errors,
            "throughput_rps": round(self.throughput_rps, 3),
            "latency_ms": {
                "p50": round(self.percentile_ms(50), 3),
                "p95": round(self.percentile_ms(95), 3),
                "p99": round(self.percentile_ms(99), 3),
                "mean": round(float(np.mean(self.latencies_ms)), 3)
                if self.latencies_ms
                else None,
            },
            "mean_batch_size": round(self.mean_batch_size, 3)
            if self.mean_batch_size is not None
            else None,
            "batches": self.batches,
            "queue_depth_peak": self.queue_depth_peak,
        }

    def summary(self) -> str:
        """Human-readable multi-line report."""
        lines = [
            f"{self.mode}-loop load: {self.attempted} requests in "
            f"{self.duration_s:.2f}s ({self.concurrency} workers"
            + (f", target {self.target_rps:g} rps" if self.target_rps else "")
            + ")",
            f"  ok {self.ok}  shed(429) {self.shed}  "
            f"deadline(504) {self.deadline_expired}  "
            f"other {sum(self.other_status.values())}  "
            f"transport-errors {self.transport_errors}",
            f"  throughput: {self.throughput_rps:.1f} ok/s",
            f"  latency ms: p50 {self.percentile_ms(50):.2f}  "
            f"p95 {self.percentile_ms(95):.2f}  p99 {self.percentile_ms(99):.2f}",
        ]
        if self.mean_batch_size is not None:
            lines.append(
                f"  server batching: {self.batches} batches, "
                f"mean {self.mean_batch_size:.2f} graphs/forward-pass"
            )
        if self.queue_depth_peak is not None:
            lines.append(
                f"  admission queue high-water: {self.queue_depth_peak} requests"
            )
        return "\n".join(lines)


class _Stats:
    """Mutable per-worker tallies merged after the run."""

    __slots__ = ("attempted", "ok", "shed", "deadline", "other", "errors", "latencies")

    def __init__(self) -> None:
        self.attempted = 0
        self.ok = 0
        self.shed = 0
        self.deadline = 0
        self.other: dict[int, int] = {}
        self.errors = 0
        self.latencies: list[float] = []

    def record(self, status: int | None, elapsed_s: float) -> None:
        self.attempted += 1
        if status is None:
            self.errors += 1
            return
        if status == 200:
            self.ok += 1
            self.latencies.append(elapsed_s * 1000.0)
        elif status == 429:
            self.shed += 1
        elif status == 504:
            self.deadline += 1
        else:
            self.other[status] = self.other.get(status, 0) + 1


def _metrics_snapshot(url: str) -> dict[str, float]:
    """One atomic ``GET /metrics`` scrape, parsed to scalar samples.

    Both the before- and after-run readings come from a *single* fetch
    each, so every delta computed between them (batch-size sum/count,
    request counters) describes the same instant of server state.
    """
    client = ServeClient(url)
    try:
        return parse_promtext(client.metrics())
    finally:
        client.close()


def run_load(
    url: str,
    graphs: list[Graph],
    *,
    mode: str = "closed",
    endpoint: str = "predict_proba",
    concurrency: int = 8,
    duration_s: float = 5.0,
    rps: float | None = None,
    timeout_ms: float | None = None,
    model: str | None = None,
    codec: str = "json",
) -> LoadResult:
    """Drive ``url`` with single-graph requests drawn round-robin from ``graphs``.

    ``mode="open"`` requires ``rps``; ``mode="closed"`` ignores it.
    ``codec="binary"`` sends/accepts ``application/x-repro-graph``
    frames instead of JSON — same responses, fewer bytes per request.
    Returns a :class:`LoadResult`; raises only on setup errors (a dead
    server mid-run is tallied as transport errors, not raised).
    """
    if not graphs:
        raise ValueError("need at least one graph to send")
    if mode not in ("closed", "open"):
        raise ValueError(f"mode must be 'closed' or 'open', got {mode!r}")
    if endpoint not in ("predict", "predict_proba"):
        raise ValueError(f"unknown endpoint {endpoint!r}")
    if mode == "open" and (rps is None or rps <= 0):
        raise ValueError("open-loop mode needs rps > 0")
    if concurrency < 1:
        raise ValueError(f"concurrency must be >= 1, got {concurrency}")
    if codec not in ("json", "binary"):
        raise ValueError(f"codec must be 'json' or 'binary', got {codec!r}")

    path = f"/v1/{endpoint}"
    before = _metrics_snapshot(url)
    stats = [_Stats() for _ in range(concurrency)]
    start = time.perf_counter()
    end_at = start + duration_s
    ticket_lock = threading.Lock()
    next_ticket = 0

    def take_ticket() -> int:
        nonlocal next_ticket
        with ticket_lock:
            ticket, next_ticket = next_ticket, next_ticket + 1
        return ticket

    def one_request(client: ServeClient, index: int, tally: _Stats) -> None:
        graph = graphs[index % len(graphs)]
        if codec == "binary":
            payload: dict | bytes = encode_predict_request(
                [graph], model=model, timeout_ms=timeout_ms
            )
        else:
            payload = ServeClient._payload([graph], model, timeout_ms)
        t0 = time.perf_counter()
        try:
            status, _, _ = client.request("POST", path, payload)
        except OSError:
            status = None
        tally.record(status, time.perf_counter() - t0)

    def closed_worker(worker: int) -> None:
        client = ServeClient(url, codec=codec)
        tally = stats[worker]
        k = 0
        try:
            while time.perf_counter() < end_at:
                one_request(client, worker + k * concurrency, tally)
                k += 1
        finally:
            client.close()

    def open_worker(worker: int) -> None:
        client = ServeClient(url, codec=codec)
        tally = stats[worker]
        assert rps is not None
        try:
            while True:
                ticket = take_ticket()
                fire_at = start + ticket / rps
                if fire_at >= end_at:
                    return
                delay = fire_at - time.perf_counter()
                if delay > 0:
                    time.sleep(delay)
                one_request(client, ticket, tally)
        finally:
            client.close()

    target = closed_worker if mode == "closed" else open_worker
    threads = [
        threading.Thread(target=target, args=(i,), name=f"loadgen-{i}", daemon=True)
        for i in range(concurrency)
    ]
    for thread in threads:
        thread.start()
    for thread in threads:
        thread.join()
    elapsed = time.perf_counter() - start

    after = _metrics_snapshot(url)
    d_sum = after.get("serve_batch_size_sum", 0.0) - before.get(
        "serve_batch_size_sum", 0.0
    )
    d_count = after.get("serve_batch_size_count", 0.0) - before.get(
        "serve_batch_size_count", 0.0
    )
    peak = after.get("serve_queue_depth_peak")

    result = LoadResult(
        mode=mode,
        endpoint=endpoint,
        concurrency=concurrency,
        target_rps=rps,
        duration_s=elapsed,
        attempted=sum(s.attempted for s in stats),
        ok=sum(s.ok for s in stats),
        shed=sum(s.shed for s in stats),
        deadline_expired=sum(s.deadline for s in stats),
        transport_errors=sum(s.errors for s in stats),
        latencies_ms=[x for s in stats for x in s.latencies],
        mean_batch_size=(d_sum / d_count) if d_count > 0 else None,
        batches=int(d_count) if d_count > 0 else None,
        queue_depth_peak=int(peak) if peak is not None else None,
    )
    for s in stats:
        for status, count in s.other.items():
            result.other_status[status] = result.other_status.get(status, 0) + count
    return result
