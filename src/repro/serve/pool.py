"""Process-pool inference backend with shared-memory tensor handoff.

The thread backend runs every fused forward pass on the batcher thread
of one process, so extra batcher workers only interleave — they never
use a second core.  :class:`InferencePool` moves the forward pass into
worker *processes*:

* each worker is a long-lived subprocess holding a loaded model (cached
  by artifact path, so a registry hot-swap simply ships a new path and
  the worker reloads);
* a fused batch travels as its flat CSR tensors
  (:func:`repro.serve.codec.graphs_to_arrays`): the parent packs them
  into one :class:`multiprocessing.shared_memory.SharedMemory` segment
  (:func:`repro.utils.wire.pack_arrays_into`) and sends only a small
  header over the worker's pipe — the ndarray payload crosses the
  process boundary zero-copy, following the pinned/unified-tensor idiom
  in DGL's ``pin_memory.py`` / ``unified_tensor.py``;
* when shared memory is unavailable (no ``/dev/shm``, permissions,
  platform) — or explicitly disabled — the same tensors fall back to
  pickle-free raw bytes *inside* the pipe message
  (:func:`~repro.utils.wire.pack_message`); results always return over
  the pipe (they are small: ``(n, classes)``).

Fault tolerance mirrors the repo's other pools: a worker death (crash,
``kill``/``raise`` faults at the ``pool_worker`` injection point) is
detected on the pipe, the job is retried on a freshly spawned worker,
and after ``max_respawns`` replacement workers the pool *degrades* —
every subsequent job runs in-thread through the ``fallback`` callable,
``/healthz`` reports ``degraded``, and the
``serve_pool_degradations_total`` counter records it.  Degradation
never changes results: pool execution is bitwise-identical to the
in-thread path (``tests/serve/test_differential.py``), because both
sides load the same checksummed artifact and run the same numpy code.
"""

from __future__ import annotations

import itertools
import multiprocessing as mp
import os
import queue
import threading
import time

import numpy as np

from repro import obs
from repro.resilience import faults
from repro.serve.codec import arrays_to_graphs, graphs_to_arrays
from repro.utils import wire

__all__ = ["FAULT_POINT", "InferencePool", "PoolError", "register_pool_metrics"]

#: Fault-injection point fired inside a pool worker, matched on the job
#: id (``kill@pool_worker:2`` kills the worker processing job 2).
FAULT_POINT = "pool_worker"

#: Environment switch forcing the pickle/pipe fallback path.
NO_SHM_ENV = "REPRO_SERVE_NO_SHM"

#: How long the parent waits for a worker to load its model and report
#: ready before declaring the spawn dead.
_READY_TIMEOUT_S = 120.0

_POOL_METRIC_HELP = {
    "serve_pool_workers": "Live inference-pool worker processes.",
    "serve_pool_jobs_total": "Fused batches executed by pool workers.",
    "serve_pool_shm_jobs_total": "Pool jobs whose tensors crossed via shared memory.",
    "serve_pool_respawns_total": "Pool workers respawned after a death.",
    "serve_pool_degradations_total": "Pools that fell back to in-thread execution.",
    "serve_pool_fallback_jobs_total": "Jobs executed in-thread by a degraded pool.",
}


def register_pool_metrics() -> None:
    """Pre-register the pool metric surface at its zero state."""
    for name in _POOL_METRIC_HELP:
        if name.endswith("_total"):
            obs.counter(name)
        else:
            obs.gauge(name)
    registry = obs.get_metrics()
    for name, help_text in _POOL_METRIC_HELP.items():
        registry.describe(name, help_text)


class PoolError(RuntimeError):
    """A pool job failed for a reason that is not a worker death."""


class _WorkerDied(RuntimeError):
    """The worker process exited mid-job (crash or injected kill)."""


def _shm_supported() -> bool:
    if os.environ.get(NO_SHM_ENV, "") not in ("", "0"):
        return False
    try:
        from multiprocessing import shared_memory

        probe = shared_memory.SharedMemory(create=True, size=16)
        probe.close()
        probe.unlink()
        return True
    except Exception:  # noqa: BLE001 - any failure means "no shm here"
        return False


# ----------------------------------------------------------------------
# Worker process
# ----------------------------------------------------------------------

def _graphs_from_shm(name: str, manifest: list[dict]):
    """Decode a graph batch from a shared-memory segment.

    Returns ``(graphs, error_message)``.  The zero-copy views — and any
    exception traceback whose frames reference them — are released
    *before* the segment is closed: ``SharedMemory.close`` refuses to
    unmap while exported ndarray pointers exist.
    """
    from multiprocessing import shared_memory

    shm = shared_memory.SharedMemory(name=name)
    graphs = error = views = None
    try:
        views = wire.unpack_arrays_from(shm.buf, manifest)
        graphs = arrays_to_graphs(views)
    except Exception as exc:  # noqa: BLE001 - reported over the pipe
        error = f"{type(exc).__name__}: {exc}"
    # The except-block's implicit `del exc` has already dropped the
    # traceback; dropping the views releases the last buffer exports.
    views = None
    try:
        shm.close()
    except BufferError:  # pragma: no cover - paranoid backstop
        pass
    return graphs, error


def _pool_worker_main(conn, worker_id: int) -> None:
    """Job loop of one inference worker process.

    Receives :func:`~repro.utils.wire.pack_message` frames over the
    pipe; tensors arrive either inline or as a shared-memory manifest.
    Per-job errors are answered (``ok: false``) and the loop continues;
    an :class:`~repro.resilience.faults.InjectedFault` escapes on
    purpose — killing the process so the parent exercises its respawn
    path exactly as it would for a real crash.
    """
    obs.reset()  # a forked child must not share the parent's run file
    from repro.core.persistence import load_model

    models: dict[str, object] = {}
    while True:
        try:
            blob = conn.recv_bytes()
        except (EOFError, OSError):
            return
        header, arrays = wire.unpack_message(blob)
        op = header.get("op")
        if op == "shutdown":
            conn.send_bytes(wire.pack_message({"ok": True, "op": "bye"}))
            return
        job = int(header.get("job", -1))
        try:
            faults.check(FAULT_POINT, job)
            if header.get("shm") is not None:
                graphs, error = _graphs_from_shm(header["shm"], header["manifest"])
                if error is not None:
                    raise PoolError(error)
            else:
                graphs = arrays_to_graphs(arrays)
            path = header["model_path"]
            model = models.get(path)
            if model is None:
                models.clear()  # hold at most one model per worker
                model = models[path] = load_model(path)
            if op == "predict_proba":
                out = model.predict_proba(graphs)
            elif op == "predict":
                out = model.predict(graphs)
            else:
                raise PoolError(f"unknown pool op {op!r}")
            reply = wire.pack_message(
                {"ok": True, "job": job, "worker": worker_id},
                {"result": np.ascontiguousarray(out)},
            )
        except Exception as exc:  # noqa: BLE001 - answered, loop continues
            reply = wire.pack_message(
                {"ok": False, "job": job, "error": f"{type(exc).__name__}: {exc}"}
            )
        conn.send_bytes(reply)


class _WorkerHandle:
    """Parent-side bookkeeping for one worker process."""

    def __init__(self, ctx, worker_id: int) -> None:
        self.id = worker_id
        self.conn, child_conn = mp.Pipe(duplex=True)
        self.proc = ctx.Process(
            target=_pool_worker_main,
            args=(child_conn, worker_id),
            name=f"repro-serve-pool-{worker_id}",
            daemon=True,
        )
        self.proc.start()
        child_conn.close()

    @property
    def alive(self) -> bool:
        return self.proc.is_alive()

    def recv(self, poll_s: float = 0.05) -> tuple[dict, dict[str, np.ndarray]]:
        """Receive one reply, raising :class:`_WorkerDied` on worker death."""
        while True:
            if self.conn.poll(poll_s):
                try:
                    blob = self.conn.recv_bytes()
                except (EOFError, OSError):
                    raise _WorkerDied(f"worker {self.id} died mid-job") from None
                return wire.unpack_message(blob)
            if not self.proc.is_alive():
                # One final poll: the reply may have landed between the
                # last poll and the death check.
                if self.conn.poll(0):
                    continue
                raise _WorkerDied(
                    f"worker {self.id} exited with code {self.proc.exitcode}"
                )

    def close(self, timeout_s: float = 2.0) -> None:
        """Shut the worker down, escalating to terminate/kill."""
        try:
            if self.proc.is_alive():
                self.conn.send_bytes(
                    wire.pack_message({"op": "shutdown"})
                )
                deadline = time.monotonic() + timeout_s
                while self.proc.is_alive() and time.monotonic() < deadline:
                    # Drain any straggler replies so the child can exit.
                    if self.conn.poll(0.02):
                        try:
                            self.conn.recv_bytes()
                        except (EOFError, OSError):
                            break
        except (BrokenPipeError, OSError):
            pass
        if self.proc.is_alive():
            self.proc.terminate()
            self.proc.join(timeout=timeout_s)
        if self.proc.is_alive():  # pragma: no cover - last resort
            self.proc.kill()
            self.proc.join(timeout=timeout_s)
        self.conn.close()


# ----------------------------------------------------------------------
# Parent-side pool
# ----------------------------------------------------------------------

class InferencePool:
    """A resizable pool of inference worker processes.

    Parameters
    ----------
    model_path:
        Artifact the workers load (per-job headers may override it, so
        hot-swapped registry entries reach the pool without a restart).
    workers:
        Initial worker-process count.
    max_respawns:
        Replacement-worker budget; once spent the pool degrades to the
        in-thread ``fallback`` for every subsequent job.
    fallback:
        ``fallback(graphs, op) -> ndarray`` executed in-process while
        degraded (and when ``workers == 0``).
    use_shm:
        Force shared memory on/off; ``None`` auto-detects (and honors
        ``REPRO_SERVE_NO_SHM=1``).

    ``submit`` is thread-safe: batcher-pool drainer threads call it
    concurrently, each job checking out one idle worker (blocking while
    all are busy).
    """

    def __init__(
        self,
        model_path: str,
        *,
        workers: int = 1,
        max_respawns: int = 3,
        fallback=None,
        use_shm: bool | None = None,
        name: str = "default",
    ) -> None:
        if workers < 0:
            raise ValueError(f"workers must be >= 0, got {workers}")
        self.model_path = str(model_path)
        self.name = name
        self.max_respawns = max_respawns
        self.fallback = fallback
        self.use_shm = _shm_supported() if use_shm is None else bool(use_shm)
        self._ctx = mp.get_context(
            "fork" if "fork" in mp.get_all_start_methods() else "spawn"
        )
        self._target = workers
        self._lock = threading.Lock()
        self._workers: dict[int, _WorkerHandle] = {}
        self._idle: queue.Queue[_WorkerHandle] = queue.Queue()
        self._ids = itertools.count()
        self._jobs = itertools.count()
        self._respawns = 0
        self._degraded = False
        self._started = False

    # -- lifecycle ------------------------------------------------------
    def start(self) -> "InferencePool":
        register_pool_metrics()
        with self._lock:
            if self._started:
                return self
            self._started = True
            for _ in range(self._target):
                self._spawn_locked()
        return self

    def _spawn_locked(self) -> None:
        handle = _WorkerHandle(self._ctx, next(self._ids))
        self._workers[handle.id] = handle
        self._idle.put(handle)
        obs.gauge("serve_pool_workers").set(len(self._workers))

    def stop(self) -> None:
        with self._lock:
            workers, self._workers = dict(self._workers), {}
            self._started = False
            while True:
                try:
                    self._idle.get_nowait()
                except queue.Empty:
                    break
        for handle in workers.values():
            handle.close()
        obs.gauge("serve_pool_workers").set(0)

    def resize(self, workers: int) -> int:
        """Grow or shrink the live worker set toward ``workers``.

        Growth is immediate.  Shrinking retires *idle* workers only —
        a worker mid-job finishes its batch and is retired when checked
        back in, so resize never tears an in-flight forward pass.
        Returns the new target.
        """
        if workers < 0:
            raise ValueError(f"workers must be >= 0, got {workers}")
        with self._lock:
            self._target = workers
            if not self._started:
                return workers
            while len(self._workers) < workers:
                self._spawn_locked()
            # Retire surplus workers that are idle right now; busy ones
            # retire at check-in (_checkin notices the shrunken target).
            surplus: list[_WorkerHandle] = []
            while len(self._workers) > workers:
                try:
                    handle = self._idle.get_nowait()
                except queue.Empty:
                    break
                self._workers.pop(handle.id, None)
                surplus.append(handle)
            obs.gauge("serve_pool_workers").set(len(self._workers))
        for handle in surplus:
            handle.close()
        return workers

    @property
    def workers(self) -> int:
        with self._lock:
            return len(self._workers)

    @property
    def degraded(self) -> bool:
        return self._degraded

    @property
    def respawns(self) -> int:
        return self._respawns

    def describe(self) -> dict:
        """JSON-safe pool state for ``GET /healthz``."""
        return {
            "backend": "pool",
            "workers": self.workers,
            "target_workers": self._target,
            "shared_memory": self.use_shm,
            "respawns": self._respawns,
            "max_respawns": self.max_respawns,
            "degraded": self._degraded,
        }

    # -- job execution --------------------------------------------------
    def _checkout(self) -> _WorkerHandle | None:
        """One idle live worker, or ``None`` when the pool is degraded."""
        while True:
            if self._degraded:
                return None
            try:
                handle = self._idle.get(timeout=0.1)
            except queue.Empty:
                with self._lock:
                    if not self._workers and self._started:
                        # Every worker died and the budget is spent.
                        return None
                continue
            if handle.alive:
                return handle
            self._note_death(handle)

    def _checkin(self, handle: _WorkerHandle) -> None:
        with self._lock:
            if handle.id in self._workers and len(self._workers) <= self._target:
                self._idle.put(handle)
                return
            self._workers.pop(handle.id, None)
            obs.gauge("serve_pool_workers").set(len(self._workers))
        handle.close()

    def _note_death(self, handle: _WorkerHandle) -> None:
        """Account a dead worker; respawn within budget, else degrade."""
        with self._lock:
            if self._workers.pop(handle.id, None) is None:
                return  # already retired
            obs.event(
                "pool_worker_died",
                pool=self.name,
                worker=handle.id,
                respawns=self._respawns,
            )
            if self._respawns >= self.max_respawns:
                # Budget spent: this death degrades instead of respawning.
                if not self._degraded:
                    self._degraded = True
                    obs.counter("serve_pool_degradations_total").inc()
                    obs.event(
                        "pool_degraded", pool=self.name, respawns=self._respawns
                    )
                obs.gauge("serve_pool_workers").set(len(self._workers))
            else:
                self._respawns += 1
                obs.counter("serve_pool_respawns_total").inc()
                self._spawn_locked()
        handle.close()

    def _run_fallback(self, graphs, op: str) -> np.ndarray:
        if self.fallback is None:
            raise PoolError(
                f"pool {self.name!r} is degraded and has no in-thread fallback"
            )
        obs.counter("serve_pool_fallback_jobs_total").inc()
        return self.fallback(graphs, op)

    def submit(
        self, graphs, op: str = "predict_proba", model_path: str | None = None
    ) -> np.ndarray:
        """Run one fused batch on a pool worker; bitwise == in-thread.

        Retries transparently across worker deaths (each death burns
        one respawn); once the budget is spent the job — and every job
        after it — runs through the in-thread ``fallback``.
        """
        if not self._started:
            raise PoolError("pool is not started")
        path = self.model_path if model_path is None else str(model_path)
        arrays = graphs_to_arrays(list(graphs))
        while True:
            handle = self._checkout()
            if handle is None:
                return self._run_fallback(graphs, op)
            try:
                result = self._run_job(handle, arrays, op, path)
            except _WorkerDied:
                self._note_death(handle)
                continue
            except BaseException:
                # Job-level failure with a healthy worker (e.g. a
                # PoolError reply): the worker goes back to the idle
                # queue, never leaks out of it.
                if handle.alive:
                    self._checkin(handle)
                else:
                    self._note_death(handle)
                raise
            self._checkin(handle)
            return result

    def _run_job(
        self,
        handle: _WorkerHandle,
        arrays: dict[str, np.ndarray],
        op: str,
        path: str,
    ) -> np.ndarray:
        header: dict = {
            "op": op,
            "job": next(self._jobs),
            "model_path": path,
            "shm": None,
        }
        shm = None
        try:
            if self.use_shm:
                from multiprocessing import shared_memory

                size = wire.arrays_nbytes(arrays)
                try:
                    shm = shared_memory.SharedMemory(
                        create=True, size=max(1, size)
                    )
                except OSError:
                    shm = None  # fall back to inline bytes for this job
            if shm is not None:
                header["shm"] = shm.name
                header["manifest"] = wire.pack_arrays_into(shm.buf, arrays)
                payload = wire.pack_message(header)
                obs.counter("serve_pool_shm_jobs_total").inc()
            else:
                payload = wire.pack_message(header, arrays)
            try:
                handle.conn.send_bytes(payload)
            except (BrokenPipeError, OSError):
                raise _WorkerDied(f"worker {handle.id} pipe closed") from None
            reply, reply_arrays = handle.recv()
        finally:
            if shm is not None:
                shm.close()
                try:
                    shm.unlink()
                except FileNotFoundError:  # pragma: no cover
                    pass
        if reply.get("job") != header["job"]:
            raise _WorkerDied(
                f"worker {handle.id} answered job {reply.get('job')} "
                f"instead of {header['job']}"
            )
        if not reply.get("ok"):
            raise PoolError(reply.get("error", "pool worker error"))
        obs.counter("serve_pool_jobs_total").inc()
        return reply_arrays["result"]
