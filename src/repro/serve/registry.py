"""Named, versioned model slots with warm preloading and atomic hot-swap.

A :class:`ModelRegistry` owns every model a server can route requests
to.  Each *name* (e.g. ``"default"``, ``"mutag-wl"``) holds a sequence
of numbered *versions*; :meth:`ModelRegistry.get` resolves a name to its
latest version unless the caller pins one.  Loading goes through
:func:`repro.core.persistence.load_model`, so the format version and
payload checksum are verified before a model ever enters a slot.

*Warm preloading* runs one small prediction through a freshly loaded
model before it is published, so the first real request never pays the
one-time costs (lazy imports, vocabulary/encoder touch, first-call numpy
allocations).  *Hot swap* (:meth:`ModelRegistry.swap`) loads and warms
the replacement completely outside the registry lock, then publishes it
with a single pointer update — in-flight batches keep the entry they
already resolved and every later request sees the new version; there is
no window where the name resolves to nothing.

*Canary routing* (:meth:`ModelRegistry.set_canary`) sends a configured
percentage of a slot's traffic to a pinned version instead of the
latest.  The split is a **deterministic hash of the trace id** — the
same request id always lands on the same channel, so a client retry or
a replayed trace never flip-flops between versions, and tests can pick
trace ids that provably land on either side.  *Shadow routing*
(:meth:`ModelRegistry.set_shadow`) names a version whose predictions
are computed for every batch and *compared* against the live answer —
counted, never returned (see ``serve_shadow_*`` counters).
"""

from __future__ import annotations

import hashlib
import threading
import time
from dataclasses import dataclass, field
from pathlib import Path

from repro import obs
from repro.core.model import DeepMapClassifier
from repro.core.persistence import load_model
from repro.graph.builders import cycle_graph

__all__ = [
    "CanaryRoute",
    "ModelEntry",
    "ModelRegistry",
    "canary_fraction",
    "parse_canary_spec",
]


def parse_canary_spec(spec: str) -> tuple[str, int, float]:
    """Parse ``name@version:pct`` (e.g. ``default@2:10``).

    Returns ``(name, version, pct)``; ``pct`` is a float in (0, 100].
    """
    try:
        name_version, pct_s = spec.rsplit(":", 1)
        name, version_s = name_version.rsplit("@", 1)
        version = int(version_s)
        pct = float(pct_s)
    except ValueError:
        raise ValueError(
            f"bad canary spec {spec!r}; expected name@version:pct"
        ) from None
    if not name:
        raise ValueError(f"bad canary spec {spec!r}: empty model name")
    if not 0.0 < pct <= 100.0:
        raise ValueError(f"canary pct must be in (0, 100], got {pct}")
    return name, version, pct


def canary_fraction(name: str, trace_id: str) -> float:
    """Deterministic [0, 100) bucket for one (slot, trace id) pair.

    BLAKE2b keyed on both so two slots canarying at the same pct do not
    pick the *same* requests (uncorrelated splits), yet a given request
    id always resolves to the same channel for a given slot.
    """
    digest = hashlib.blake2b(
        f"{name}\x00{trace_id}".encode(), digest_size=8
    ).digest()
    return int.from_bytes(digest, "big") % 100_000 / 1000.0


@dataclass(frozen=True)
class CanaryRoute:
    """An active canary split on one slot."""

    version: int
    pct: float

    def describe(self) -> dict:
        return {"version": self.version, "pct": self.pct}


@dataclass(frozen=True)
class ModelEntry:
    """One immutable (name, version) slot."""

    name: str
    version: int
    path: str
    model: DeepMapClassifier
    loaded_at: float
    warmed: bool
    warmup_seconds: float = 0.0
    classes: tuple[int, ...] = field(default_factory=tuple)

    def describe(self) -> dict:
        """JSON-safe summary (used by ``GET /healthz``)."""
        return {
            "name": self.name,
            "version": self.version,
            "path": self.path,
            "feature_map": self.model.extractor.name,
            "classes": list(self.classes),
            "warmed": self.warmed,
            "warmup_seconds": round(self.warmup_seconds, 6),
        }


class ModelRegistry:
    """Thread-safe name -> versioned :class:`ModelEntry` store."""

    def __init__(self, warm: bool = True) -> None:
        self.warm = warm
        self._lock = threading.Lock()
        self._slots: dict[str, dict[int, ModelEntry]] = {}
        self._latest: dict[str, int] = {}
        self._canaries: dict[str, CanaryRoute] = {}
        self._shadows: dict[str, int] = {}

    # ------------------------------------------------------------------
    def load(
        self,
        path: str | Path,
        name: str = "default",
        *,
        warm: bool | None = None,
    ) -> ModelEntry:
        """Load a persisted model into the next version of slot ``name``.

        The artifact is read, checksum-verified, and (by default) warmed
        *before* the slot pointer moves, so concurrent readers never see
        a half-initialised model.
        """
        model = load_model(path)
        entry = self._prepare(model, name, str(path), warm)
        with self._lock:
            version = self._latest.get(name, 0) + 1
            entry = ModelEntry(**{**entry.__dict__, "version": version})
            self._slots.setdefault(name, {})[version] = entry
            self._latest[name] = version
        obs.counter("serve_models_loaded_total").inc()
        obs.event("model_loaded", model=name, version=entry.version, path=str(path))
        return entry

    def swap(self, name: str, path: str | Path, *, warm: bool | None = None) -> ModelEntry:
        """Atomic hot-swap: ``load`` under a name that must already exist."""
        with self._lock:
            if name not in self._latest:
                raise KeyError(f"cannot swap unknown model {name!r}")
        return self.load(path, name, warm=warm)

    def _prepare(
        self, model: DeepMapClassifier, name: str, path: str, warm: bool | None
    ) -> ModelEntry:
        do_warm = self.warm if warm is None else warm
        warmup_seconds = 0.0
        if do_warm:
            start = time.perf_counter()
            self._warmup(model)
            warmup_seconds = time.perf_counter() - start
        classes = tuple(int(c) for c in model.classes_)  # type: ignore[union-attr]
        return ModelEntry(
            name=name,
            version=0,  # placeholder; assigned under the lock
            path=path,
            model=model,
            loaded_at=time.time(),
            warmed=do_warm,
            warmup_seconds=warmup_seconds,
            classes=classes,
        )

    @staticmethod
    def _warmup(model: DeepMapClassifier) -> None:
        """One throwaway prediction to pay first-request costs up front.

        A 6-cycle is large enough for every extractor family (graphlet
        sampling with the default ``k <= 5`` included) and its labels
        (all zero) need not appear in the training alphabet — unseen
        substructures vectorise to zero columns by design.
        """
        model.predict_proba([cycle_graph(6)])

    # ------------------------------------------------------------------
    def get(self, name: str = "default", version: int | None = None) -> ModelEntry:
        """Resolve ``name`` (latest version unless pinned); KeyError if absent."""
        with self._lock:
            versions = self._slots.get(name)
            if not versions:
                raise KeyError(f"unknown model {name!r}")
            if version is None:
                version = self._latest[name]
            entry = versions.get(version)
            if entry is None:
                raise KeyError(f"model {name!r} has no version {version}")
            return entry

    def names(self) -> list[str]:
        with self._lock:
            return sorted(self._latest)

    # ------------------------------------------------------------------
    # Canary / shadow routing
    # ------------------------------------------------------------------
    def set_canary(self, name: str, version: int, pct: float) -> CanaryRoute:
        """Route ``pct``% of slot ``name`` to ``version`` (must exist)."""
        if not 0.0 < pct <= 100.0:
            raise ValueError(f"canary pct must be in (0, 100], got {pct}")
        self.get(name, version)  # KeyError if the target does not exist
        route = CanaryRoute(version=version, pct=float(pct))
        with self._lock:
            self._canaries[name] = route
        obs.event("canary_set", model=name, version=version, pct=pct)
        return route

    def clear_canary(self, name: str) -> None:
        with self._lock:
            self._canaries.pop(name, None)

    def canary(self, name: str) -> CanaryRoute | None:
        with self._lock:
            return self._canaries.get(name)

    def set_shadow(self, name: str, version: int) -> None:
        """Shadow every batch of slot ``name`` against ``version``."""
        self.get(name, version)  # KeyError if the target does not exist
        with self._lock:
            self._shadows[name] = version
        obs.event("shadow_set", model=name, version=version)

    def clear_shadow(self, name: str) -> None:
        with self._lock:
            self._shadows.pop(name, None)

    def shadow(self, name: str) -> ModelEntry | None:
        """The entry shadow-evaluated alongside slot ``name``, if any."""
        with self._lock:
            version = self._shadows.get(name)
        return None if version is None else self.get(name, version)

    def route(self, name: str, trace_id: str) -> tuple[ModelEntry, str]:
        """Resolve ``name`` for one request: ``(entry, channel)``.

        ``channel`` is ``"canary"`` when the trace id's deterministic
        bucket falls inside the configured split, else ``"stable"``.
        """
        with self._lock:
            canary = self._canaries.get(name)
        if canary is not None and canary_fraction(name, trace_id) < canary.pct:
            return self.get(name, canary.version), "canary"
        return self.get(name), "stable"

    def describe(self) -> list[dict]:
        """Latest entry per name, JSON-safe (``GET /healthz`` payload)."""
        with self._lock:
            latest = [self._slots[name][self._latest[name]] for name in sorted(self._latest)]
            canaries = dict(self._canaries)
            shadows = dict(self._shadows)
        out = []
        for entry in latest:
            info = entry.describe()
            route = canaries.get(entry.name)
            if route is not None:
                info["canary"] = route.describe()
            if entry.name in shadows:
                info["shadow"] = {"version": shadows[entry.name]}
            out.append(info)
        return out

    def __len__(self) -> int:
        with self._lock:
            return sum(len(v) for v in self._slots.values())
