"""Streaming out-of-core dataset pipeline.

Lazy graph generation (:mod:`repro.datasets.streaming`), bounded-
prefetch shard production with crash requeue and synchronous
degradation (:mod:`repro.stream.prefetch`), cache-spilled encoded
shards with memory-mapped reloads (:mod:`repro.stream.shards`), and a
streamed training entry point bitwise-equal to the materialized fit
(:mod:`repro.stream.fit`).  Design notes: ``docs/STREAMING.md``.
"""

from repro.stream.fit import fit_stream
from repro.stream.prefetch import FAULT_POINT, ShardPrefetcher
from repro.stream.shards import (
    EncodedShardStore,
    StreamEncodedInputs,
    make_spool_cache,
    partition_bounds,
)

__all__ = [
    "FAULT_POINT",
    "ShardPrefetcher",
    "EncodedShardStore",
    "StreamEncodedInputs",
    "make_spool_cache",
    "partition_bounds",
    "fit_stream",
]
